//! Workspace root crate for the LH\*RS reproduction.
//!
//! This crate hosts the cross-crate integration tests in `tests/` and the
//! runnable examples in `examples/`, re-exports every member crate, and
//! offers a curated [`prelude`] so applications need a single import.
//!
//! ```
//! use lhrs_repro::prelude::*;
//!
//! let cfg = Config::builder().bucket_capacity(16).build().unwrap();
//! let mut file = LhrsFile::new(cfg).unwrap();
//! file.insert(7, b"payload".to_vec()).unwrap();
//! assert_eq!(file.lookup(7).unwrap().unwrap(), b"payload");
//! ```

pub use lhrs_baselines as baselines;
pub use lhrs_core as lhrs;
pub use lhrs_gf as gf;
pub use lhrs_lh as lh;
pub use lhrs_net as net;
pub use lhrs_obs as obs;
pub use lhrs_rs as rs;
pub use lhrs_sim as sim;

/// The curated one-import surface: configuration, the unified client API,
/// the simulated driver, the networked client, and observability.
///
/// # Writing transport-agnostic code
///
/// [`KvClient`] is implemented by both [`LhrsFile`] (simulator) and
/// [`NetClient`](crate::net::client::NetClient) (real TCP cluster), so a
/// load generator written against the trait runs over either:
///
/// ```
/// use lhrs_repro::prelude::*;
///
/// fn load<C: KvClient>(client: &mut C, n: u64) -> u64 {
///     let mut ok = 0;
///     for key in 0..n {
///         if client.insert(key, format!("v{key}").into_bytes()).is_ok() {
///             ok += 1;
///         }
///     }
///     ok
/// }
///
/// let mut file = LhrsFile::new(Config::default()).unwrap();
/// assert_eq!(load(&mut file, 10), 10);
/// ```
///
/// # Observability
///
/// Every [`LhrsFile`] records counters, latency histograms, and a
/// structured trace under a logical (simulated-time) clock:
///
/// ```
/// use lhrs_repro::prelude::*;
///
/// let mut file = LhrsFile::new(Config::default()).unwrap();
/// file.insert(1, b"x".to_vec()).unwrap();
/// let snap = file.metrics().snapshot();
/// assert!(snap.counter("deltas_emitted", "") >= 1);
/// assert!(file.metrics().render_prometheus().contains("lhrs_msgs_sent_total"));
/// ```
pub mod prelude {
    pub use lhrs_core::{
        Config, ConfigBuilder, ConfigError, CoordEvent, Error, FilterSpec, GfField, Key, KvClient,
        LhrsFile, NodeId, OpOutcome, OpResult, ScanTermination, UpgradeMode,
    };
    pub use lhrs_net::client::NetClient;
    pub use lhrs_net::cluster::ClusterSpec;
    pub use lhrs_obs::{Clock, Metrics, RecoveryReport, TraceLog};
}
