//! Workspace root crate for the LH*RS reproduction.
//!
//! This crate exists to host the cross-crate integration tests in `tests/`
//! and the runnable examples in `examples/`; the actual library surface lives
//! in the member crates re-exported below.

pub use lhrs_baselines as baselines;
pub use lhrs_core as lhrs;
pub use lhrs_gf as gf;
pub use lhrs_lh as lh;
pub use lhrs_rs as rs;
pub use lhrs_sim as sim;
