//! Parallel scans — the second headline access path of the LH\* family: a
//! predicate is shipped to every bucket at once, evaluated server-side, and
//! aggregated at the client with deterministic termination, even from a
//! client whose image knows almost none of the buckets.
//!
//! The scenario is a (simulated) RAM-resident event log queried by ad-hoc
//! analytics clients.
//!
//! ```sh
//! cargo run --release --example analytics_scan
//! ```

use lhrs_core::{Config, FilterSpec, LhrsFile};
use lhrs_sim::LatencyModel;

fn event(key: u64) -> Vec<u8> {
    // [severity tag | service name | message]
    let sev = match key % 20 {
        0 => "ERROR",
        1..=4 => "WARN ",
        _ => "INFO ",
    };
    let service = match key % 3 {
        0 => "auth",
        1 => "billing",
        _ => "search",
    };
    format!("{sev}|{service}|event #{key}").into_bytes()
}

fn main() {
    let mut file = LhrsFile::new(Config {
        group_size: 4,
        initial_k: 2,
        bucket_capacity: 64,
        record_len: 64,
        latency: LatencyModel::instant(),
        node_pool: 2048,
        ..Config::default()
    })
    .expect("config");

    let n = 10_000u64;
    file.insert_batch((0..n).map(|k| (lhrs_lh::scramble(k), event(k))))
        .expect("bulk load");
    println!(
        "event log: {n} events across M = {} buckets\n",
        file.bucket_count()
    );

    // Analytics query 1: all ERROR events, from the resident client.
    let cost = file.cost_of(|f| {
        let errors = f
            .scan(FilterSpec::PayloadContains(b"ERROR".to_vec()))
            .expect("scan");
        println!("errors: {} events", errors.len());
        assert_eq!(errors.len() as u64, n / 20);
    });
    println!(
        "  scan bill: {} msgs (~2 per bucket: request + reply)\n",
        cost.total_messages()
    );

    // Analytics query 2: a brand-new client that believes the file has ONE
    // bucket still reaches every bucket exactly once via server-side scan
    // propagation.
    let fresh = file.add_client();
    let cost = file.cost_of(|f| {
        let billing_errors = f
            .scan_via(
                fresh,
                FilterSpec::PayloadContains(b"ERROR|billing".to_vec()),
            )
            .expect("scan");
        println!(
            "billing errors from a fresh client: {} events",
            billing_errors.len()
        );
    });
    println!(
        "  fresh-client scan bill: {} msgs, of which {} forwarded scan hops",
        cost.total_messages(),
        cost.count("scan").saturating_sub(1), // client sent 1 under its image
    );

    // Analytics query 3: key-range scan (e.g. a time slice if keys are
    // timestamps).
    let slice = file
        .scan(FilterSpec::KeyRange(0, u64::MAX / 64))
        .expect("scan");
    println!("\nkey-range slice: {} events", slice.len());

    // Scans also survive failures after recovery: kill a bucket, recover,
    // scan again.
    file.crash_data_bucket(3);
    let report = file.check_group(0);
    assert!(report.recovered);
    let all = file.scan(FilterSpec::All).expect("scan after recovery");
    assert_eq!(all.len() as u64, n);
    println!("after bucket loss + recovery, full scan still sees all {n} events ✔");
}
