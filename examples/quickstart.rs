//! Quickstart: create an LH*RS file, store data, survive a failure.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lhrs_repro::prelude::*;

/// Workload written against the unified [`KvClient`] trait: the same code
/// drives the in-process simulator here and a real TCP cluster through
/// `NetClient` (see `examples/net_cluster.rs`).
fn ingest<C: KvClient>(client: &mut C, keys: u64) -> u64 {
    let mut stored = 0;
    for key in 0..keys {
        let payload = format!("record number {key}").into_bytes();
        if client.insert(lhrs_lh::scramble(key), payload).is_ok() {
            stored += 1;
        }
    }
    stored
}

fn main() {
    // An LH*RS file: bucket groups of m = 4 data buckets, each protected by
    // k = 2 Reed-Solomon parity buckets → any 2 server losses per group are
    // harmless. The builder rejects invalid combinations up front.
    let cfg = Config::builder()
        .group_size(4)
        .initial_k(2)
        .bucket_capacity(32)
        .record_len(128)
        .build()
        .expect("valid configuration");
    let mut file = LhrsFile::new(cfg).expect("file");

    // Insert records; the file splits and spreads over more (simulated)
    // servers automatically, with constant per-op messaging.
    let stored = ingest(&mut file, 2_000);
    println!(
        "loaded {stored} records into M = {} data buckets across {} groups (k = {})",
        file.bucket_count(),
        file.group_count(),
        file.k_file(),
    );

    // Ordinary reads cost ~2 messages each, no matter how large the file got.
    let key = lhrs_lh::scramble(1234);
    let value = file.lookup(key).expect("lookup").expect("present");
    println!("lookup(1234) -> {:?}", String::from_utf8_lossy(&value));

    // Kill the server holding this record's bucket plus a second member of
    // its group — within the availability level — and read straight through
    // the failure.
    let bucket = file.address_of(key);
    let group = bucket / 4;
    let sibling = group * 4 + (bucket + 1) % 4;
    file.crash_data_bucket(bucket);
    file.crash_data_bucket(sibling);
    println!("crashed data buckets {bucket} and {sibling}");

    let value = file
        .lookup(key)
        .expect("degraded lookup")
        .expect("still readable");
    println!(
        "degraded lookup(1234) -> {:?} (served from parity, rebuild running)",
        String::from_utf8_lossy(&value)
    );

    // The coordinator rebuilt both buckets onto hot spares in the background.
    file.verify_integrity()
        .expect("parity consistent after recovery");
    println!("integrity verified after recovery ✔");

    // Observability is built in: counters, latency histograms, and a
    // structured trace, all under the simulator's logical clock.
    let snap = file.metrics().snapshot();
    println!(
        "splits: {}, recoveries: {} (shards rebuilt: {}), degraded reads: {}",
        snap.counter("splits_completed", ""),
        snap.counter("recoveries_completed", ""),
        snap.counter("recovery_shards_rebuilt", ""),
        snap.counter("degraded_reads", ""),
    );
    let report = RecoveryReport::from_metrics("quickstart", file.metrics());
    println!("recovery report: {}", report.to_json());

    // Message accounting — the paper's primary metric — is built in too.
    let stats = file.stats();
    println!(
        "total network messages: {} ({} kinds tracked)",
        stats.total_messages(),
        stats.by_kind.len()
    );
}
