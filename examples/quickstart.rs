//! Quickstart: create an LH*RS file, store data, survive a failure.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lhrs_core::{Config, LhrsFile};

fn main() {
    // An LH*RS file: bucket groups of m = 4 data buckets, each protected by
    // k = 2 Reed-Solomon parity buckets → any 2 server losses per group are
    // harmless.
    let cfg = Config {
        group_size: 4,
        initial_k: 2,
        bucket_capacity: 32,
        record_len: 128,
        ..Config::default()
    };
    let mut file = LhrsFile::new(cfg).expect("valid configuration");

    // Insert records; the file splits and spreads over more (simulated)
    // servers automatically, with constant per-op messaging.
    for key in 0..2_000u64 {
        let payload = format!("record number {key}").into_bytes();
        file.insert(lhrs_lh::scramble(key), payload)
            .expect("insert");
    }
    println!(
        "loaded 2000 records into M = {} data buckets across {} groups (k = {})",
        file.bucket_count(),
        file.group_count(),
        file.k_file(),
    );

    // Ordinary reads cost ~2 messages each, no matter how large the file got.
    let key = lhrs_lh::scramble(1234);
    let value = file.lookup(key).expect("lookup").expect("present");
    println!("lookup(1234) -> {:?}", String::from_utf8_lossy(&value));

    // Kill the two servers holding this record's bucket group — within the
    // availability level — and read straight through the failure.
    let bucket = file.address_of(key);
    let group = bucket / 4;
    file.crash_data_bucket(group * 4);
    file.crash_data_bucket(group * 4 + 1);
    println!("crashed data buckets {} and {}", group * 4, group * 4 + 1);

    let value = file
        .lookup(key)
        .expect("degraded lookup")
        .expect("still readable");
    println!(
        "degraded lookup(1234) -> {:?} (served from parity, rebuild running)",
        String::from_utf8_lossy(&value)
    );

    // The coordinator rebuilt both buckets onto hot spares in the background.
    file.verify_integrity()
        .expect("parity consistent after recovery");
    println!("integrity verified after recovery ✔");

    // Message accounting — the paper's primary metric — is built in.
    let stats = file.stats();
    println!(
        "total network messages: {} ({} kinds tracked)",
        stats.total_messages(),
        stats.by_kind.len()
    );
}
