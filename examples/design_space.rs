//! Explore the (m, k) design space: for a target file size and per-server
//! availability, what do group size and availability level buy and cost?
//! This is the capacity-planning exercise an operator of an LH*RS
//! deployment would run — entirely from the analytic availability model
//! plus measured per-op costs.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use lhrs_core::availability::{file_availability, k_needed};
use lhrs_core::{Config, LhrsFile};
use lhrs_sim::LatencyModel;

fn main() {
    let p = 0.99; // per-server availability
    let m_buckets = 1024; // planned file size

    println!("design space for an M = {m_buckets} bucket file, p = {p}\n");
    println!(
        "{:>4} {:>3} {:>10} {:>10} {:>10} {:>10}",
        "m", "k", "P(file)", "overhead", "ins msgs", "rebuild"
    );
    for &m in &[2usize, 4, 8, 16] {
        for k in 1..=3usize {
            let avail = file_availability(m_buckets, m, k, p);
            println!(
                "{:>4} {:>3} {:>10.6} {:>10} {:>10} {:>10}",
                m,
                k,
                avail,
                format!("{:.1}%", 100.0 * k as f64 / m as f64),
                1 + k,
                format!("{} xfers", m),
            );
        }
    }

    println!("\nsmallest k meeting P ≥ 0.9999 by file size (m = 4):");
    for exp in [6u32, 8, 10, 12, 14, 16] {
        let m_now = 1u64 << exp;
        match k_needed(m_now, 4, p, 0.9999, 10) {
            Some(k) => println!("  M = {m_now:>6}: k = {k}"),
            None => println!("  M = {m_now:>6}: k > 10"),
        }
    }

    // Validate one chosen point empirically: (m = 8, k = 2).
    println!("\nempirical check of (m = 8, k = 2) on a live simulated file:");
    let mut file = LhrsFile::new(Config {
        group_size: 8,
        initial_k: 2,
        bucket_capacity: 32,
        record_len: 64,
        latency: LatencyModel::instant(),
        node_pool: 2048,
        ..Config::default()
    })
    .expect("config");
    for key in 0..4000u64 {
        file.insert(lhrs_lh::scramble(key), vec![0xCD; 64])
            .expect("insert");
    }
    let r = file.storage_report();
    println!(
        "  measured overhead: {:.3} (plan said {:.3}); load factor {:.2}",
        r.storage_overhead,
        2.0 / 8.0,
        r.load_factor
    );
    let cost = file.cost_of(|f| {
        for key in 10_000..10_100u64 {
            f.insert(lhrs_lh::scramble(key), vec![1; 64])
                .expect("insert");
        }
    });
    println!(
        "  measured insert cost: {:.2} msgs/op (plan said {})",
        cost.total_messages() as f64 / 100.0,
        1 + 2
    );
    file.verify_integrity().expect("consistent");
    println!("  integrity ✔");
}
