//! Scalable availability in action: watch k rise with the file so that
//! file-level availability stays flat while a fixed-k file would decay.
//!
//! ```sh
//! cargo run --release --example scalable_growth
//! ```

use lhrs_core::availability::{file_availability, group_availability};
use lhrs_core::{Config, CoordEvent, LhrsFile, UpgradeMode};
use lhrs_sim::LatencyModel;

fn main() {
    let p = 0.99; // per-server availability
    let mut file = LhrsFile::new(Config {
        group_size: 4,
        initial_k: 1,
        scale_thresholds: vec![8, 48, 200],
        upgrade_mode: UpgradeMode::Eager,
        bucket_capacity: 32,
        record_len: 64,
        latency: LatencyModel::instant(),
        node_pool: 8192,
        ..Config::default()
    })
    .expect("config");

    println!("growing a file under the rule k: 1 → 2 (M>8) → 3 (M>48) → 4 (M>200), p = {p}");
    println!(
        "{:>8} {:>4} {:>8} {:>10} {:>10}",
        "M", "k", "parity", "P(scaled)", "P(k=1)"
    );

    let mut key = 0u64;
    for target in [4u64, 8, 16, 32, 64, 128, 256] {
        while file.bucket_count() < target {
            file.insert(lhrs_lh::scramble(key), vec![0xAB; 64])
                .expect("insert");
            key += 1;
        }
        let m_now = file.bucket_count();
        let mut p_scaled = 1.0;
        for g in 0..file.group_count() as u64 {
            let cols = (m_now.saturating_sub(g * 4)).min(4) as usize;
            if cols > 0 {
                p_scaled *= group_availability(cols, file.group_k(g), p);
            }
        }
        println!(
            "{:>8} {:>4} {:>8} {:>10.4} {:>10.4}",
            m_now,
            file.k_file(),
            file.storage_report().parity_buckets,
            p_scaled,
            file_availability(m_now, 4, 1, p)
        );
    }

    let upgrades = file
        .events()
        .iter()
        .filter(|(_, e)| matches!(e, CoordEvent::GroupUpgraded { .. }))
        .count();
    let k_bumps: Vec<usize> = file
        .events()
        .iter()
        .filter_map(|(_, e)| match e {
            CoordEvent::KIncreased { k } => Some(*k),
            _ => None,
        })
        .collect();
    println!(
        "\n{} group upgrades executed as k stepped through {:?}; {} records stored",
        upgrades,
        k_bumps,
        file.storage_report().data_records
    );
    file.verify_integrity()
        .expect("all upgraded groups consistent");
    println!("integrity across every upgraded group ✔");
}
