//! The multi-process demo, runnable by hand: a real LH\*RS deployment on
//! localhost TCP — coordinator, data buckets, and parity buckets as
//! separate OS processes — that grows through splits, loses a data-bucket
//! process to `kill -9`, and recovers it over the network with zero
//! acked-data loss.
//!
//! ```sh
//! cargo build -p lhrs-net --bins          # the demo spawns these
//! cargo run --release --example net_cluster
//! ```

use std::path::PathBuf;
use std::process::Command;

use lhrs_net::demo::{self, DemoCommands};

/// Locate a compiled binary next to our own executable (`target/<profile>/`).
fn sibling_binary(name: &str) -> Option<PathBuf> {
    let mut dir = std::env::current_exe().ok()?;
    dir.pop(); // the example binary itself
    if dir.ends_with("examples") {
        dir.pop(); // examples/ -> target/<profile>/
    }
    let path = dir.join(name);
    path.is_file().then_some(path)
}

fn main() {
    // Use already-built binaries when present; build them otherwise.
    let (netd, netcli) = match (sibling_binary("lhrs-netd"), sibling_binary("lhrs-netcli")) {
        (Some(d), Some(c)) => (d, c),
        _ => {
            eprintln!("building lhrs-net binaries...");
            let status = Command::new(std::env::var_os("CARGO").unwrap_or_else(|| "cargo".into()))
                .args(["build", "-p", "lhrs-net", "--bins"])
                .status()
                .expect("run cargo");
            assert!(status.success(), "cargo build -p lhrs-net --bins failed");
            let find = |name: &str| {
                ["target/debug", "target/release"]
                    .iter()
                    .map(|d| PathBuf::from(d).join(name))
                    .find(|p| p.is_file())
                    .unwrap_or_else(|| panic!("{name} not found under target/"))
            };
            (find("lhrs-netd"), find("lhrs-netcli"))
        }
    };

    let cmds = DemoCommands {
        netd: vec![netd.display().to_string()],
        netcli: vec![netcli.display().to_string()],
    };
    let workdir = std::env::temp_dir().join(format!("lhrs-net-demo-{}", std::process::id()));
    std::fs::create_dir_all(&workdir).expect("create workdir");
    let result = demo::run(&cmds, &workdir);
    let _ = std::fs::remove_dir_all(&workdir);
    match result {
        Ok(transcript) => {
            println!("{transcript}");
            println!("demo passed: the cluster survived kill -9 with zero acked-data loss");
        }
        Err(e) => {
            eprintln!("demo failed: {e}");
            std::process::exit(1);
        }
    }
}
