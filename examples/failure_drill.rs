//! Failure drill: walk through every recovery path the scheme offers and
//! print the message bill for each — degraded record reads, single- and
//! multi-bucket rebuilds, parity loss, and file-state reconstruction.
//!
//! ```sh
//! cargo run --release --example failure_drill
//! ```

use lhrs_core::{Config, LhrsFile};
use lhrs_sim::LatencyModel;

fn main() {
    let mut file = LhrsFile::new(Config {
        group_size: 4,
        initial_k: 2,
        bucket_capacity: 32,
        record_len: 64,
        latency: LatencyModel::default(),
        node_pool: 1024,
        ..Config::default()
    })
    .expect("config");

    for key in 0..1_500u64 {
        file.insert(key, format!("drill-{key}").into_bytes())
            .expect("insert");
    }
    println!(
        "file ready: M = {} buckets, {} groups, k = 2\n",
        file.bucket_count(),
        file.group_count()
    );

    // --- Drill 1: degraded read through a dead bucket -------------------
    let key = 777u64;
    let bucket = file.address_of(key);
    file.crash_data_bucket(bucket);
    let cost = file.cost_of(|f| {
        let v = f.lookup(key).expect("degraded").expect("present");
        assert_eq!(v, format!("drill-{key}").into_bytes());
    });
    println!("drill 1 — degraded read of key {key} (bucket {bucket} dead):");
    println!(
        "  served correctly; {} msgs total, of which find-record={} read-cell={} transfers(rebuild)={}",
        cost.total_messages(),
        cost.count("find-record") + cost.count("find-record-reply"),
        cost.count("read-cell") + cost.count("cell-data"),
        cost.count("transfer-req") + cost.count("transfer-data"),
    );
    file.verify_integrity().expect("rebuilt");
    println!("  bucket rebuilt onto a spare, integrity ✔\n");

    // --- Drill 2: double failure in one group ---------------------------
    let group = 3u64;
    file.crash_data_bucket(group * 4);
    file.crash_data_bucket(group * 4 + 2);
    let mut report = None;
    let cost = file.cost_of(|f| report = Some(f.check_group(group)));
    let report = report.unwrap();
    println!("drill 2 — two data buckets of group {group} dead:");
    println!(
        "  failed shards {:?}, recovered = {}, {} msgs, {:.1} KB moved, {:.2} sim ms",
        report.failed_shards,
        report.recovered,
        cost.total_messages(),
        cost.total_bytes() as f64 / 1024.0,
        report.duration_us as f64 / 1000.0
    );
    file.verify_integrity().expect("group consistent");
    println!("  integrity ✔\n");

    // --- Drill 3: parity bucket loss ------------------------------------
    file.crash_parity_bucket(5, 1);
    let report = file.check_group(5);
    println!(
        "drill 3 — parity bucket (5, 1) dead: failed {:?}, recovered = {}",
        report.failed_shards, report.recovered
    );
    file.verify_integrity().expect("parity rebuilt");
    println!("  re-encoded from the group's data buckets, integrity ✔\n");

    // --- Drill 4: file-state reconstruction (A6; all scanned buckets alive) ---
    let cost = file.cost_of(|f| {
        let (n, i) = f.drill_file_state_recovery();
        println!("drill 4 — file state (n, i) rebuilt from a bucket scan: n = {n}, i = {i}");
    });
    println!(
        "  {} msgs ({} state queries / {} replies)",
        cost.total_messages(),
        cost.count("state-query"),
        cost.count("state-reply")
    );
    // --- Drill 5: losing more than k ------------------------------------
    let group = 7u64;
    for c in 0..3u64 {
        file.crash_data_bucket(group * 4 + c);
    }
    let report = file.check_group(group);
    println!(
        "drill 5 — three buckets of group {group} dead (k = 2): unrecoverable = {} (as designed)",
        report.unrecoverable
    );
    println!("  the scalable-availability rule exists precisely to keep this probability flat\n");
}
