//! A user-profile store — the classic SDDS motivating workload: a large,
//! ever-growing keyed dataset in distributed RAM with single-key CRUD plus
//! occasional parallel scans, required to survive server losses.
//!
//! ```sh
//! cargo run --release --example user_profiles
//! ```

use lhrs_lh::scramble;
use lhrs_repro::prelude::*;
use lhrs_testkit::Rng;

/// A fixed-layout profile record (a real system would use serde here; the
//  manual layout keeps the example dependency-free).
fn encode_profile(user_id: u64, age: u8, country: &str, handle: &str) -> Vec<u8> {
    let mut v = Vec::with_capacity(64);
    v.extend_from_slice(&user_id.to_le_bytes());
    v.push(age);
    v.push(country.len() as u8);
    v.extend_from_slice(country.as_bytes());
    v.push(handle.len() as u8);
    v.extend_from_slice(handle.as_bytes());
    v
}

fn decode_handle(payload: &[u8]) -> String {
    let clen = payload[9] as usize;
    let hstart = 10 + clen + 1;
    String::from_utf8_lossy(&payload[hstart..]).into_owned()
}

/// Profile edits through the unified [`KvClient`] trait: transport-agnostic
/// application code (works over `LhrsFile` and `NetClient` alike).
fn edit_profiles<C: KvClient>(store: &mut C, rng: &mut Rng, users: u64, countries: &[&str]) {
    for uid in (0..users).step_by(10) {
        let country = countries[(uid % 5) as usize];
        let profile = encode_profile(
            uid,
            rng.range(18, 90) as u8,
            country,
            &format!("user_{uid}_v2"),
        );
        assert!(store.update(scramble(uid), profile).is_ok(), "update");
    }
}

fn main() {
    // The builder validates the configuration as a whole (field limits,
    // threshold monotonicity, pool sizing) before any node exists.
    let cfg = Config::builder()
        .group_size(4)
        .initial_k(1)
        // Grow availability as the user base grows.
        .scale_thresholds([64, 512])
        .bucket_capacity(64)
        .record_len(96)
        .build()
        .expect("config");
    let mut file = LhrsFile::new(cfg).expect("file");
    let mut rng = Rng::new(7);
    let countries = ["se", "fr", "us", "jp", "br"];

    // Sign-ups.
    let users = 5_000u64;
    for uid in 0..users {
        let country = countries[(uid % 5) as usize];
        let profile = encode_profile(
            uid,
            rng.range(18, 90) as u8,
            country,
            &format!("user_{uid}"),
        );
        file.insert(scramble(uid), profile).expect("insert");
    }
    println!(
        "{users} profiles over M = {} buckets, k = {} (availability scaled with size)",
        file.bucket_count(),
        file.k_file()
    );

    // Profile edits: cheap Δ-commits to parity, 1 + k messages each.
    edit_profiles(&mut file, &mut rng, users, &countries);

    // Account deletions.
    for uid in (0..users).step_by(97) {
        file.delete(scramble(uid)).expect("delete");
    }

    // Point reads.
    let uid = 4321u64;
    let payload = file
        .lookup(scramble(uid))
        .expect("lookup")
        .expect("present");
    println!("user {uid} handle: {}", decode_handle(&payload));

    // Parallel scan: all profiles from Sweden (country bytes "se" at a fixed
    // offset means PayloadContains works as a crude predicate).
    let swedes = file
        .scan(FilterSpec::PayloadContains(b"\x02se".to_vec()))
        .expect("scan");
    println!("scan found {} Swedish profiles", swedes.len());

    // A server dies mid-operation; reads keep working.
    let victim_uid = scramble(1111);
    file.crash_data_bucket(file.address_of(victim_uid));
    let payload = file
        .lookup(victim_uid)
        .expect("degraded read")
        .expect("present");
    println!(
        "after a server crash, user 1111 still readable: {}",
        decode_handle(&payload)
    );
    file.verify_integrity().expect("consistent");

    let r = file.storage_report();
    println!(
        "storage: {} data B + {} parity B (overhead {:.2}), load factor {:.2}",
        r.data_bytes, r.parity_bytes, r.storage_overhead, r.load_factor
    );

    // The observability layer kept score the whole time.
    let snap = file.metrics().snapshot();
    println!(
        "observed: {} splits, {} Δ-commits, {} degraded reads, {} shard(s) rebuilt",
        snap.counter("splits_completed", ""),
        snap.counter("deltas_emitted", ""),
        snap.counter("degraded_reads", ""),
        snap.counter("recovery_shards_rebuilt", ""),
    );
}
