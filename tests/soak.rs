//! Soak scenario: one long, seeded, mixed-life run of a single file —
//! growth, shrink, failures (single, double, parity), degraded reads,
//! recoveries, restarts, scans, availability upgrades — with full parity
//! verification after every phase. The kind of run a downstream adopter
//! would script before trusting the library.

use std::collections::HashMap;

use lhrs_core::{Config, CoordEvent, Error, FilterSpec, LhrsFile, UpgradeMode};
use lhrs_lh::scramble;
use lhrs_sim::LatencyModel;

#[test]
fn long_mixed_lifecycle() {
    let mut file = LhrsFile::new(Config {
        group_size: 4,
        initial_k: 1,
        bucket_capacity: 16,
        record_len: 48,
        scale_thresholds: vec![12, 48],
        upgrade_mode: UpgradeMode::Eager,
        latency: LatencyModel::default(),
        node_pool: 2048,
        ..Config::default()
    })
    .unwrap();
    let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
    let val = |key: u64, gen: u64| format!("soak-{key}-{gen}").into_bytes();

    // Phase 1: growth through two availability-scaling thresholds.
    for key in 0..1200u64 {
        let k = scramble(key);
        file.insert(k, val(key, 0)).unwrap();
        model.insert(k, val(key, 0));
    }
    assert_eq!(file.k_file(), 3, "two thresholds crossed");
    file.verify_integrity().unwrap();

    // Phase 2: churn — updates, deletes, re-inserts.
    for key in (0..1200u64).step_by(2) {
        let k = scramble(key);
        file.update(k, val(key, 1)).unwrap();
        model.insert(k, val(key, 1));
    }
    for key in (0..1200u64).step_by(5) {
        let k = scramble(key);
        file.delete(k).unwrap();
        model.remove(&k);
    }
    for key in 1200..1500u64 {
        let k = scramble(key);
        file.insert(k, val(key, 2)).unwrap();
        model.insert(k, val(key, 2));
    }
    file.verify_integrity().unwrap();

    // Phase 3: failures in several groups, mixed shapes.
    let m_now = file.bucket_count();
    assert!(m_now >= 32);
    // 3a: single data bucket, healed by a degraded read.
    let victim = scramble(77);
    file.crash_data_bucket(file.address_of(victim));
    assert_eq!(
        file.lookup(victim).unwrap().as_ref(),
        model.get(&victim),
        "degraded read"
    );
    // 3b: triple failure in one group (k = 3 tolerates it).
    file.crash_data_bucket(8);
    file.crash_data_bucket(9);
    file.crash_parity_bucket(2, 1);
    let rep = file.check_group(2);
    assert!(rep.recovered, "{rep:?}");
    // 3c: parity-only failure elsewhere.
    file.crash_parity_bucket(5, 0);
    let rep = file.check_group(5);
    assert!(rep.recovered);
    file.verify_integrity().unwrap();

    // Phase 4: a restarted ghost node must demote itself.
    let bucket = file.address_of(scramble(300));
    file.crash_data_bucket(bucket);
    let _ = file.lookup(scramble(300)).unwrap(); // triggers rebuild elsewhere
    assert!(!file.restart_data_bucket(bucket), "ghost must retire");
    file.verify_integrity().unwrap();

    // Phase 5: shrink after a deletion wave, then regrow.
    for key in (0..1500u64).step_by(3) {
        let k = scramble(key);
        match file.delete(k) {
            Ok(()) => {
                model.remove(&k);
            }
            Err(Error::KeyNotFound(_)) => {}
            Err(e) => panic!("{e}"),
        }
    }
    for _ in 0..6 {
        assert!(file.force_merge());
    }
    file.verify_integrity().unwrap();
    for key in 2000..2400u64 {
        let k = scramble(key);
        file.insert(k, val(key, 3)).unwrap();
        model.insert(k, val(key, 3));
    }
    file.verify_integrity().unwrap();

    // Phase 6: full verification — every model record, a scan, a fresh
    // client, and the file-state drill.
    for (k, v) in &model {
        assert_eq!(file.lookup(*k).unwrap().as_ref(), Some(v), "key {k}");
    }
    let hits = file.scan(FilterSpec::All).unwrap();
    assert_eq!(hits.len(), model.len());
    let fresh = file.add_client();
    for (k, v) in model.iter().take(100) {
        assert_eq!(file.lookup_via(fresh, *k).unwrap().as_ref(), Some(v));
    }
    let (n, i) = file.drill_file_state_recovery();
    assert_eq!(n + (1 << i), file.bucket_count());

    // Phase 7: fault-injected churn. This file runs without write/parity
    // acks, so the plan stays loss-free (loss needs the acknowledged
    // retransmission paths — see crates/core/tests/fault_drills.rs);
    // duplication and reordering are absorbed by the replay cache and the
    // per-column Δ sequencing alone.
    file.set_fault_plan(
        lhrs_core::FaultPlan::new(0x50AC)
            .dup_permille(60)
            .reorder_permille(80)
            .reorder_window_us(400),
    );
    for key in 3000..3200u64 {
        let k = scramble(key);
        file.insert(k, val(key, 4)).unwrap();
        model.insert(k, val(key, 4));
    }
    for key in (3000..3200u64).step_by(2) {
        let k = scramble(key);
        file.update(k, val(key, 5)).unwrap();
        model.insert(k, val(key, 5));
    }
    for key in (3000..3200u64).step_by(7) {
        let k = scramble(key);
        file.delete(k).unwrap();
        model.remove(&k);
    }
    let stats = file.stats();
    assert!(stats.duplicated > 0, "duplication must actually fire");
    assert!(stats.reordered > 0, "reordering must actually fire");
    file.clear_fault_plan();
    file.verify_integrity().unwrap();
    for (k, v) in &model {
        assert_eq!(file.lookup(*k).unwrap().as_ref(), Some(v), "key {k}");
    }

    // Sanity over the whole life: every failure we injected was detected
    // and every recovery completed.
    let detected = file
        .events()
        .iter()
        .filter(|(_, e)| matches!(e, CoordEvent::FailureDetected { .. }))
        .count();
    let recovered = file
        .events()
        .iter()
        .filter(|(_, e)| matches!(e, CoordEvent::GroupRecovered { .. }))
        .count();
    assert!(detected >= 4, "{detected} detections");
    assert_eq!(detected, recovered, "every detection must end in recovery");
    let unrecoverable = file
        .events()
        .iter()
        .any(|(_, e)| matches!(e, CoordEvent::GroupUnrecoverable { .. }));
    assert!(!unrecoverable);
}
