//! System-level property tests: random operation mixes against a model
//! dictionary with deep parity verification, and random ≤ k crash patterns
//! that must always recover losslessly. Seeded cases via `lhrs-testkit`.

use std::collections::HashMap;

use lhrs_core::{Config, Error, LhrsFile};
use lhrs_sim::LatencyModel;
use lhrs_testkit::{cases, Rng};

fn cfg(m: usize, k: usize) -> Config {
    Config {
        group_size: m,
        initial_k: k,
        bucket_capacity: 8,
        record_len: 32,
        latency: LatencyModel::instant(),
        node_pool: 1024,
        ..Config::default()
    }
}

#[derive(Debug, Clone)]
enum Op {
    Insert(u16, u8),
    Update(u16, u8),
    Delete(u16),
    Lookup(u16),
    /// Undo the last split (no-op at initial size).
    Merge,
}

/// Weighted op mix matching the old proptest strategy (3:2:1:2:1).
fn random_op(rng: &mut Rng) -> Op {
    match rng.below(9) {
        0..=2 => Op::Insert(rng.next_u16(), rng.next_u8()),
        3..=4 => Op::Update(rng.next_u16(), rng.next_u8()),
        5 => Op::Delete(rng.next_u16()),
        6..=7 => Op::Lookup(rng.next_u16()),
        _ => Op::Merge,
    }
}

/// The file behaves exactly like a dictionary under any op mix, and the
/// parity never drifts from the data.
#[test]
fn file_matches_model_dictionary() {
    cases("file_matches_model_dictionary", 16, |rng| {
        let m = rng.range_usize(2, 6);
        let k = rng.range_usize(1, 4);
        let ops: Vec<Op> = (0..rng.range_usize(1, 120))
            .map(|_| random_op(rng))
            .collect();
        let mut file = LhrsFile::new(cfg(m, k)).unwrap();
        let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
        for op in ops {
            match op {
                Op::Insert(key, v) => {
                    let key = key as u64;
                    let payload = vec![v; (v % 24) as usize];
                    let expect_dup = model.contains_key(&key);
                    match file.insert(key, payload.clone()) {
                        Ok(()) => {
                            assert!(!expect_dup);
                            model.insert(key, payload);
                        }
                        Err(Error::DuplicateKey(_)) => assert!(expect_dup),
                        Err(e) => panic!("unexpected error {e}"),
                    }
                }
                Op::Update(key, v) => {
                    let key = key as u64;
                    let payload = vec![v.wrapping_add(1); (v % 20) as usize];
                    match file.update(key, payload.clone()) {
                        Ok(()) => {
                            assert!(model.contains_key(&key));
                            model.insert(key, payload);
                        }
                        Err(Error::KeyNotFound(_)) => assert!(!model.contains_key(&key)),
                        Err(e) => panic!("unexpected error {e}"),
                    }
                }
                Op::Delete(key) => {
                    let key = key as u64;
                    match file.delete(key) {
                        Ok(()) => {
                            assert!(model.remove(&key).is_some());
                        }
                        Err(Error::KeyNotFound(_)) => assert!(!model.contains_key(&key)),
                        Err(e) => panic!("unexpected error {e}"),
                    }
                }
                Op::Lookup(key) => {
                    let key = key as u64;
                    assert_eq!(file.lookup(key).unwrap(), model.get(&key).cloned());
                }
                Op::Merge => {
                    // Shrinking must never lose or corrupt records.
                    file.force_merge();
                }
            }
        }
        // Deep invariant: every parity record equals the RS encoding.
        file.verify_integrity().expect("parity drift");
        // Full content check.
        for (key, payload) in &model {
            let got = file.lookup(*key).unwrap();
            assert_eq!(got.as_ref(), Some(payload));
        }
    });
}

/// Any crash pattern of ≤ k shards per group is fully recoverable with
/// no data loss.
#[test]
fn random_crash_patterns_within_tolerance_recover() {
    cases(
        "random_crash_patterns_within_tolerance_recover",
        16,
        |rng| {
            let seed = rng.next_u64();
            let k = rng.range_usize(1, 4);
            let kills = rng.range_usize(1, 4).min(k);
            let mut c = cfg(4, k);
            c.latency = LatencyModel::default();
            let mut file = LhrsFile::new(c).unwrap();
            let n = 250u64;
            for key in 0..n {
                file.insert(key, vec![(key % 251) as u8; 16]).unwrap();
            }
            let groups = file.group_count() as u64;
            let group = seed % groups;
            // Pick `kills` distinct shards of the group (data cols that exist
            // + parity indices).
            let m_total = file.bucket_count();
            let existing = (m_total.saturating_sub(group * 4)).min(4) as usize;
            let shard_space: Vec<usize> = (0..existing).chain(4..4 + k).collect();
            let mut chosen = Vec::new();
            let mut s = seed;
            while chosen.len() < kills.min(shard_space.len()) {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let pick = shard_space[(s >> 33) as usize % shard_space.len()];
                if !chosen.contains(&pick) {
                    chosen.push(pick);
                }
            }
            for &shard in &chosen {
                if shard < 4 {
                    file.crash_data_bucket(group * 4 + shard as u64);
                } else {
                    file.crash_parity_bucket(group, shard - 4);
                }
            }
            let report = file.check_group(group);
            assert!(
                report.recovered,
                "pattern {chosen:?} not recovered: {report:?}"
            );
            file.verify_integrity().expect("parity drift");
            for key in 0..n {
                assert_eq!(
                    file.lookup(key).unwrap().unwrap(),
                    vec![(key % 251) as u8; 16]
                );
            }
        },
    );
}
