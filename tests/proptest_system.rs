//! System-level property tests: random operation mixes against a model
//! dictionary with deep parity verification, and random ≤ k crash patterns
//! that must always recover losslessly.

use std::collections::HashMap;

use lhrs_core::{Config, Error, LhrsFile};
use lhrs_sim::LatencyModel;
use proptest::prelude::*;

fn cfg(m: usize, k: usize) -> Config {
    Config {
        group_size: m,
        initial_k: k,
        bucket_capacity: 8,
        record_len: 32,
        latency: LatencyModel::instant(),
        node_pool: 1024,
        ..Config::default()
    }
}

#[derive(Debug, Clone)]
enum Op {
    Insert(u16, u8),
    Update(u16, u8),
    Delete(u16),
    Lookup(u16),
    /// Undo the last split (no-op at initial size).
    Merge,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (any::<u16>(), any::<u8>()).prop_map(|(k, v)| Op::Insert(k, v)),
        2 => (any::<u16>(), any::<u8>()).prop_map(|(k, v)| Op::Update(k, v)),
        1 => any::<u16>().prop_map(Op::Delete),
        2 => any::<u16>().prop_map(Op::Lookup),
        1 => Just(Op::Merge),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        .. ProptestConfig::default()
    })]

    /// The file behaves exactly like a dictionary under any op mix, and the
    /// parity never drifts from the data.
    #[test]
    fn file_matches_model_dictionary(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        m in 2usize..6,
        k in 1usize..4,
    ) {
        let mut file = LhrsFile::new(cfg(m, k)).unwrap();
        let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
        for op in ops {
            match op {
                Op::Insert(key, v) => {
                    let key = key as u64;
                    let payload = vec![v; (v % 24) as usize];
                    let expect_dup = model.contains_key(&key);
                    match file.insert(key, payload.clone()) {
                        Ok(()) => {
                            prop_assert!(!expect_dup);
                            model.insert(key, payload);
                        }
                        Err(Error::DuplicateKey(_)) => prop_assert!(expect_dup),
                        Err(e) => prop_assert!(false, "unexpected error {e}"),
                    }
                }
                Op::Update(key, v) => {
                    let key = key as u64;
                    let payload = vec![v.wrapping_add(1); (v % 20) as usize];
                    match file.update(key, payload.clone()) {
                        Ok(()) => {
                            prop_assert!(model.contains_key(&key));
                            model.insert(key, payload);
                        }
                        Err(Error::KeyNotFound(_)) => prop_assert!(!model.contains_key(&key)),
                        Err(e) => prop_assert!(false, "unexpected error {e}"),
                    }
                }
                Op::Delete(key) => {
                    let key = key as u64;
                    match file.delete(key) {
                        Ok(()) => {
                            prop_assert!(model.remove(&key).is_some());
                        }
                        Err(Error::KeyNotFound(_)) => prop_assert!(!model.contains_key(&key)),
                        Err(e) => prop_assert!(false, "unexpected error {e}"),
                    }
                }
                Op::Lookup(key) => {
                    let key = key as u64;
                    prop_assert_eq!(file.lookup(key).unwrap(), model.get(&key).cloned());
                }
                Op::Merge => {
                    // Shrinking must never lose or corrupt records.
                    file.force_merge();
                }
            }
        }
        // Deep invariant: every parity record equals the RS encoding.
        file.verify_integrity().map_err(TestCaseError::fail)?;
        // Full content check.
        for (key, payload) in &model {
            let got = file.lookup(*key).unwrap();
            prop_assert_eq!(got.as_ref(), Some(payload));
        }
    }

    /// Any crash pattern of ≤ k shards per group is fully recoverable with
    /// no data loss.
    #[test]
    fn random_crash_patterns_within_tolerance_recover(
        seed in any::<u64>(),
        kills in 1usize..=3,
        k in 1usize..4,
    ) {
        let kills = kills.min(k);
        let mut c = cfg(4, k);
        c.latency = LatencyModel::default();
        let mut file = LhrsFile::new(c).unwrap();
        let n = 250u64;
        for key in 0..n {
            file.insert(key, vec![(key % 251) as u8; 16]).unwrap();
        }
        let groups = file.group_count() as u64;
        let group = seed % groups;
        // Pick `kills` distinct shards of the group (data cols that exist
        // + parity indices).
        let m_total = file.bucket_count();
        let existing = (m_total.saturating_sub(group * 4)).min(4) as usize;
        let shard_space: Vec<usize> = (0..existing).chain(4..4 + k).collect();
        let mut chosen = Vec::new();
        let mut s = seed;
        while chosen.len() < kills.min(shard_space.len()) {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let pick = shard_space[(s >> 33) as usize % shard_space.len()];
            if !chosen.contains(&pick) {
                chosen.push(pick);
            }
        }
        for &shard in &chosen {
            if shard < 4 {
                file.crash_data_bucket(group * 4 + shard as u64);
            } else {
                file.crash_parity_bucket(group, shard - 4);
            }
        }
        let report = file.check_group(group);
        prop_assert!(report.recovered, "pattern {:?} not recovered: {:?}", chosen, report);
        file.verify_integrity().map_err(TestCaseError::fail)?;
        for key in 0..n {
            prop_assert_eq!(
                file.lookup(key).unwrap().unwrap(),
                vec![(key % 251) as u8; 16]
            );
        }
    }
}
