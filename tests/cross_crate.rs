//! Cross-crate integration: the public API surface of the whole workspace
//! exercised together — driver ↔ coding layer ↔ addressing ↔ simulator —
//! plus consistency checks between the analytic availability model and the
//! behavioural (simulated) failure tolerance.

use lhrs_baselines::{MirrorLh, PlainLh, Scheme, StripeLh};
use lhrs_core::{availability, Config, FilterSpec, LhrsFile};
use lhrs_gf::{GaloisField, Gf8};
use lhrs_lh::{scramble, FileState, LhTable};
use lhrs_rs::RsCode;
use lhrs_sim::LatencyModel;

fn cfg(k: usize) -> Config {
    Config {
        group_size: 4,
        initial_k: k,
        bucket_capacity: 16,
        record_len: 48,
        latency: LatencyModel::default(),
        node_pool: 1024,
        ..Config::default()
    }
}

#[test]
fn whole_stack_smoke() {
    // GF → RS → core file → scan, one pass through every layer.
    assert_eq!(Gf8::mul(Gf8::inv(7).unwrap(), 7), 1);
    let code: RsCode<Gf8> = RsCode::new(4, 2).unwrap();
    assert_eq!(code.coeff(0, 0), 1);

    let mut file = LhrsFile::new(cfg(2)).unwrap();
    for key in 0..300u64 {
        file.insert(scramble(key), format!("v{key}").into_bytes())
            .unwrap();
    }
    assert!(file.bucket_count() > 16);
    let hits = file.scan(FilterSpec::All).unwrap();
    assert_eq!(hits.len(), 300);
    file.verify_integrity().unwrap();
}

#[test]
fn simulated_tolerance_matches_analytic_model() {
    // The analytic model says a (m=4, k=2) group survives any 2 losses and
    // no 3; the simulation must agree behaviourally.
    let mut file = LhrsFile::new(cfg(2)).unwrap();
    for key in 0..400u64 {
        file.insert(key, vec![key as u8; 24]).unwrap();
    }
    // 2 losses in group 0: recoverable.
    file.crash_data_bucket(0);
    file.crash_data_bucket(1);
    let rep = file.check_group(0);
    assert!(rep.recovered);
    // 3 losses in group 1: unrecoverable — matching the model's tolerance.
    file.crash_data_bucket(4);
    file.crash_data_bucket(5);
    file.crash_data_bucket(6);
    let rep = file.check_group(1);
    assert!(rep.unrecoverable);
    assert!(availability::group_availability(4, 2, 0.99) < 1.0);
}

#[test]
fn lh_table_and_distributed_file_agree_on_addressing() {
    // The single-node LhTable and the distributed file share the hash
    // family; a key's bucket in the file equals FileState::address.
    let mut file = LhrsFile::new(cfg(1)).unwrap();
    let mut table = LhTable::new(16);
    for key in 0..500u64 {
        let k = scramble(key);
        file.insert(k, vec![1]).unwrap();
        table.insert(k, ());
    }
    let m = file.bucket_count();
    let mut state = FileState::new(1);
    while state.bucket_count() < m {
        state.split();
    }
    for key in 0..500u64 {
        let k = scramble(key);
        assert_eq!(file.address_of(k), state.address(k));
    }
    assert_eq!(table.len(), 500);
}

#[test]
fn schemes_rank_as_the_paper_argues() {
    // Search cost: LH*RS ≈ LH* ≪ LH*s. Storage overhead: LH*RS(k=1) ≪ LH*m.
    let latency = LatencyModel::instant();
    let mut plain = PlainLh::new(16, 512, latency);
    let mut mirror = MirrorLh::new(16, 512, latency);
    let mut stripe = StripeLh::new(4, 16, 1024, latency);
    let mut lhrs = lhrs_baselines::LhrsScheme::new(
        "lhrs",
        Config {
            group_size: 4,
            initial_k: 1,
            bucket_capacity: 16,
            record_len: 64,
            latency,
            node_pool: 1024,
            ..Config::default()
        },
    );

    let search_cost = |s: &mut dyn Scheme| -> f64 {
        for key in 0..600u64 {
            s.insert(scramble(key), vec![9u8; 48]);
        }
        for key in 0..50u64 {
            s.lookup(scramble(key));
        }
        let before = s.stats();
        for key in 0..100u64 {
            assert!(s.lookup(scramble(key)).is_some());
        }
        s.stats().since(&before).total_messages() as f64 / 100.0
    };

    let c_plain = search_cost(&mut plain);
    let c_mirror = search_cost(&mut mirror);
    let c_stripe = search_cost(&mut stripe);
    let c_lhrs = search_cost(&mut lhrs);
    assert!((c_plain - 2.0).abs() < 0.3, "plain {c_plain}");
    assert!((c_lhrs - 2.0).abs() < 0.3, "lhrs {c_lhrs}");
    assert!((c_mirror - 2.0).abs() < 0.3, "mirror {c_mirror}");
    assert!(c_stripe > 7.0, "stripe {c_stripe}");

    let (p_m, r_m) = mirror.storage_bytes();
    let (p_l, r_l) = lhrs.storage_bytes();
    assert!(
        (r_m as f64 / p_m as f64) > 0.99,
        "mirror overhead must be ~100%"
    );
    assert!(
        (r_l as f64 / p_l as f64) < 0.6,
        "lhrs k=1 overhead must be far below mirroring"
    );

    // Availability ordering at p = 0.99: plain < stripe/lhrs(k=1) ≤ mirror-ish.
    let p = 0.99;
    assert!(plain.availability(p) < lhrs.availability(p));
    assert!(plain.availability(p) < stripe.availability(p));
    assert!(lhrs.tolerates() == 1 && mirror.tolerates() == 1 && plain.tolerates() == 0);
}

#[test]
fn drills_work_back_to_back() {
    // Repeated failure/recovery cycles with interleaved writes keep the
    // file consistent.
    let mut file = LhrsFile::new(cfg(2)).unwrap();
    for key in 0..300u64 {
        file.insert(key, vec![key as u8; 32]).unwrap();
    }
    for round in 0..4u64 {
        let bucket = (round * 2) % file.bucket_count();
        file.crash_data_bucket(bucket);
        let group = bucket / 4;
        let rep = file.check_group(group);
        assert!(rep.recovered, "round {round}: {rep:?}");
        for key in 300 + round * 50..300 + (round + 1) * 50 {
            file.insert(key, vec![key as u8; 32]).unwrap();
        }
        file.verify_integrity().unwrap();
    }
    let (n, i) = file.drill_file_state_recovery();
    assert_eq!(n + (1 << i), file.bucket_count());
}
