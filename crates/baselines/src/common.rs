//! Shared machinery of the baseline schemes: message protocol, replicated
//! bucket servers, coordinator, and the generic client.
//!
//! All three baselines are "an LH\* file replicated `r` ways with a
//! client-side write/read policy": plain LH\* has `r = 1`, mirroring
//! `r = 2` (full copies), striping `r = m + 1` (fragments + XOR parity).
//! One bucket actor and one coordinator serve all of them; the client mode
//! decides what is written where and how lookups reassemble.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

use lhrs_lh::{a2_route, A2Outcome, ClientImage, FileState};
use lhrs_sim::{Actor, Env, NodeId, Payload, TimerId};

/// Which copy of the logical file a bucket belongs to: replica 0 is the
/// primary; mirroring uses replica 1; striping uses replicas `0..m` for
/// data fragments and `m` for the parity fragment.
pub type Replica = usize;

/// Client write/read policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Plain LH\*: one replica, whole records.
    Plain,
    /// LH\*m: two replicas, whole records to both.
    Mirror,
    /// LH\*s: `m` data fragments + 1 parity fragment.
    Stripe {
        /// Number of data fragments per record.
        m: usize,
    },
}

impl Mode {
    /// Replicas (bucket copies per logical bucket) the mode needs.
    pub fn replicas(&self) -> usize {
        match self {
            Mode::Plain => 1,
            Mode::Mirror => 2,
            Mode::Stripe { m } => m + 1,
        }
    }
}

/// Protocol of the baseline schemes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BMsg {
    /// Driver → client (not tallied).
    Do {
        /// Operation id.
        op_id: u64,
        /// Insert (key, full payload) or lookup (key).
        op: BOp,
    },
    /// Request to a bucket (possibly forwarded).
    Req {
        /// Operation id.
        op_id: u64,
        /// Reply target.
        client: NodeId,
        /// Replica the request addresses.
        replica: Replica,
        /// Server-to-server forwards so far.
        hops: u8,
        /// Request body.
        kind: BReq,
    },
    /// Bucket → client reply.
    Reply {
        /// Operation id.
        op_id: u64,
        /// Which replica replied (stripe reassembly needs it).
        replica: Replica,
        /// Payload (fragment) or `None`.
        value: Option<Vec<u8>>,
        /// IAM when the request was forwarded.
        iam: Option<(u8, u64)>,
    },
    /// Primary bucket → coordinator.
    ReportOverflow {
        /// Overflowing logical bucket.
        bucket: u64,
    },
    /// Coordinator → pool node.
    InitBucket {
        /// Logical bucket number.
        bucket: u64,
        /// Level.
        level: u8,
        /// Replica.
        replica: Replica,
    },
    /// Coordinator → splitting bucket.
    DoSplit {
        /// New bucket.
        target: u64,
        /// Level after the split.
        new_level: u8,
    },
    /// Splitting bucket → new bucket.
    SplitLoad {
        /// Records moving in.
        records: Vec<(u64, Vec<u8>)>,
    },
    /// Driver → coordinator: rebuild replica `replica` of logical bucket
    /// `bucket` onto a spare (the replica's node is presumed lost).
    RecoverReplica {
        /// Logical bucket.
        bucket: u64,
        /// Replica index to rebuild.
        replica: Replica,
    },
    /// Coordinator → surviving replica of the bucket: send your content.
    TransferBucket {
        /// Correlation token.
        token: u64,
    },
    /// Replica → coordinator: full content.
    BucketData {
        /// Echoed token.
        token: u64,
        /// Which replica this is.
        replica: Replica,
        /// `(key, payload-or-fragment)` records.
        records: Vec<(u64, Vec<u8>)>,
    },
    /// Coordinator → spare node: install rebuilt replica content.
    InstallBucket {
        /// Logical bucket.
        bucket: u64,
        /// Bucket level.
        level: u8,
        /// Replica index.
        replica: Replica,
        /// Content.
        records: Vec<(u64, Vec<u8>)>,
        /// Correlation token.
        token: u64,
    },
    /// Spare → coordinator: installed.
    InstallAck {
        /// Echoed token.
        token: u64,
    },
}

/// Request bodies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BOp {
    /// Insert a record (client chops it per mode).
    Insert(u64, Vec<u8>),
    /// Key search.
    Lookup(u64),
}

/// What a bucket is asked to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BReq {
    /// Store a (whole or fragment) payload.
    Insert(u64, Vec<u8>),
    /// Fetch the payload for a key.
    Lookup(u64),
}

impl BReq {
    fn key(&self) -> u64 {
        match self {
            BReq::Insert(k, _) | BReq::Lookup(k) => *k,
        }
    }
}

impl Payload for BMsg {
    fn kind(&self) -> &'static str {
        match self {
            BMsg::Do { .. } => "app-do",
            BMsg::Req {
                kind: BReq::Insert(..),
                ..
            } => "insert",
            BMsg::Req {
                kind: BReq::Lookup(..),
                ..
            } => "lookup",
            BMsg::Reply { .. } => "reply",
            BMsg::ReportOverflow { .. } => "overflow",
            BMsg::InitBucket { .. } => "init-data",
            BMsg::DoSplit { .. } => "split",
            BMsg::SplitLoad { .. } => "split-load",
            BMsg::RecoverReplica { .. } => "recover-replica",
            BMsg::TransferBucket { .. } => "transfer-req",
            BMsg::BucketData { .. } => "transfer-data",
            BMsg::InstallBucket { .. } => "install",
            BMsg::InstallAck { .. } => "install-ack",
        }
    }

    fn size_bytes(&self) -> usize {
        match self {
            BMsg::Do { .. } => 0,
            BMsg::Req {
                kind: BReq::Insert(_, p),
                ..
            } => 24 + p.len(),
            BMsg::Req {
                kind: BReq::Lookup(_),
                ..
            } => 24,
            BMsg::Reply { value, .. } => 16 + value.as_ref().map(Vec::len).unwrap_or(0),
            BMsg::ReportOverflow { .. } => 12,
            BMsg::InitBucket { .. } => 16,
            BMsg::DoSplit { .. } => 16,
            BMsg::SplitLoad { records } => {
                8 + records.iter().map(|(_, p)| 12 + p.len()).sum::<usize>()
            }
            BMsg::RecoverReplica { .. } => 12,
            BMsg::TransferBucket { .. } => 8,
            BMsg::BucketData { records, .. } => {
                12 + records.iter().map(|(_, p)| 12 + p.len()).sum::<usize>()
            }
            BMsg::InstallBucket { records, .. } => {
                24 + records.iter().map(|(_, p)| 12 + p.len()).sum::<usize>()
            }
            BMsg::InstallAck { .. } => 8,
        }
    }
}

/// Shared allocation table: `nodes[replica][bucket]`.
pub struct BRegistry {
    /// Node per (replica, bucket).
    pub nodes: Vec<Vec<NodeId>>,
    /// Coordinator node.
    pub coordinator: NodeId,
}

/// Shared handle.
pub struct BShared {
    /// The allocation table.
    pub registry: RefCell<BRegistry>,
    /// Mode (fixes replica count).
    pub mode: Mode,
    /// Bucket capacity `b` (records per primary bucket before overflow).
    pub capacity: usize,
}

/// Handle alias.
pub type BHandle = Rc<BShared>;

/// A bucket server (any replica).
pub struct BBucket {
    shared: BHandle,
    /// Logical bucket number.
    pub bucket: u64,
    /// Level.
    pub level: u8,
    /// Replica index.
    pub replica: Replica,
    /// Stored records (fragments for striping).
    pub records: HashMap<u64, Vec<u8>>,
    overflow_reported: bool,
}

impl BBucket {
    /// Fresh bucket.
    pub fn new(shared: BHandle, bucket: u64, level: u8, replica: Replica) -> Self {
        BBucket {
            shared,
            bucket,
            level,
            replica,
            records: HashMap::new(),
            overflow_reported: false,
        }
    }

    fn on_message(&mut self, env: &mut Env<'_, BMsg>, _from: NodeId, msg: BMsg) {
        match msg {
            BMsg::Req {
                op_id,
                client,
                replica,
                hops,
                kind,
            } => {
                debug_assert_eq!(replica, self.replica);
                match a2_route(self.bucket, self.level, kind.key(), 1) {
                    A2Outcome::Forward(next) => {
                        let node = self.shared.registry.borrow().nodes[self.replica][next as usize];
                        env.send(
                            node,
                            BMsg::Req {
                                op_id,
                                client,
                                replica,
                                hops: hops + 1,
                                kind,
                            },
                        );
                    }
                    A2Outcome::Accept => {
                        let iam = (hops > 0).then_some((self.level, self.bucket));
                        match kind {
                            BReq::Insert(key, payload) => {
                                self.records.insert(key, payload);
                                // Only the primary replica drives splits.
                                if self.replica == 0
                                    && !self.overflow_reported
                                    && self.records.len() > self.shared.capacity
                                {
                                    self.overflow_reported = true;
                                    let coord = self.shared.registry.borrow().coordinator;
                                    env.send(
                                        coord,
                                        BMsg::ReportOverflow {
                                            bucket: self.bucket,
                                        },
                                    );
                                }
                                if let Some(iam) = iam {
                                    env.send(
                                        client,
                                        BMsg::Reply {
                                            op_id,
                                            replica,
                                            value: None,
                                            iam: Some(iam),
                                        },
                                    );
                                }
                            }
                            BReq::Lookup(key) => {
                                env.send(
                                    client,
                                    BMsg::Reply {
                                        op_id,
                                        replica,
                                        value: self.records.get(&key).cloned(),
                                        iam,
                                    },
                                );
                            }
                        }
                    }
                }
            }
            BMsg::DoSplit { target, new_level } => {
                let movers: Vec<(u64, Vec<u8>)> = {
                    let keys: Vec<u64> = self
                        .records
                        .keys()
                        .copied()
                        .filter(|&k| lhrs_lh::h(new_level, 1, k) == target)
                        .collect();
                    keys.iter()
                        .map(|k| (*k, self.records.remove(k).expect("listed")))
                        .collect()
                };
                self.level = new_level;
                self.overflow_reported = false;
                let node = self.shared.registry.borrow().nodes[self.replica][target as usize];
                env.send(node, BMsg::SplitLoad { records: movers });
            }
            BMsg::SplitLoad { records } => {
                self.records.extend(records);
            }
            BMsg::TransferBucket { token } => {
                env.send(
                    _from,
                    BMsg::BucketData {
                        token,
                        replica: self.replica,
                        records: self.records.iter().map(|(k, v)| (*k, v.clone())).collect(),
                    },
                );
            }
            other => debug_assert!(false, "bucket got {other:?}"),
        }
    }
}

/// In-progress replica recovery at the baseline coordinator.
/// One surviving replica's transferred content.
type ReplicaContent = (Replica, Vec<(u64, Vec<u8>)>);

struct BRecovery {
    bucket: u64,
    replica: Replica,
    awaiting: usize,
    collected: Vec<ReplicaContent>,
}

/// The coordinator of a baseline file: drives the shared split sequence
/// across all replicas.
pub struct BCoordinator {
    shared: BHandle,
    /// Authoritative file state.
    pub state: FileState,
    pool: Vec<NodeId>,
    next_token: u64,
    recoveries: HashMap<u64, BRecovery>,
    /// Completed recoveries (bucket, replica) — driver-visible.
    pub recovered: Vec<(u64, Replica)>,
}

impl BCoordinator {
    /// New coordinator with a pool of blank nodes.
    pub fn new(shared: BHandle, pool: Vec<NodeId>) -> Self {
        BCoordinator {
            shared,
            state: FileState::new(1),
            pool,
            next_token: 1,
            recoveries: HashMap::new(),
            recovered: Vec::new(),
        }
    }

    fn on_message(&mut self, env: &mut Env<'_, BMsg>, _from: NodeId, msg: BMsg) {
        match msg {
            BMsg::ReportOverflow { .. } => {
                let plan = self.state.split();
                let replicas = self.shared.mode.replicas();
                for r in 0..replicas {
                    let node = self.pool.pop().expect("baseline pool exhausted");
                    env.send(
                        node,
                        BMsg::InitBucket {
                            bucket: plan.target,
                            level: plan.new_level,
                            replica: r,
                        },
                    );
                    let mut reg = self.shared.registry.borrow_mut();
                    debug_assert_eq!(reg.nodes[r].len() as u64, plan.target);
                    reg.nodes[r].push(node);
                    let source_node = reg.nodes[r][plan.source as usize];
                    drop(reg);
                    env.send(
                        source_node,
                        BMsg::DoSplit {
                            target: plan.target,
                            new_level: plan.new_level,
                        },
                    );
                }
            }
            BMsg::RecoverReplica { bucket, replica } => {
                // Ask every *other* replica of the logical bucket for its
                // content: mirroring needs just the copy; striping needs
                // all surviving fragments for the XOR rebuild. (For
                // mirroring that is exactly one transfer — the scheme's
                // recovery advantage.)
                let token = self.next_token;
                self.next_token += 1;
                let reg = self.shared.registry.borrow();
                let mut awaiting = 0;
                for (r, nodes) in reg.nodes.iter().enumerate() {
                    if r != replica {
                        env.send(nodes[bucket as usize], BMsg::TransferBucket { token });
                        awaiting += 1;
                    }
                }
                drop(reg);
                self.recoveries.insert(
                    token,
                    BRecovery {
                        bucket,
                        replica,
                        awaiting,
                        collected: Vec::new(),
                    },
                );
            }
            BMsg::BucketData {
                token,
                replica,
                records,
            } => {
                let done = {
                    let Some(ctx) = self.recoveries.get_mut(&token) else {
                        return;
                    };
                    ctx.collected.push((replica, records));
                    ctx.collected.len() == ctx.awaiting
                };
                if done {
                    let ctx = self.recoveries.remove(&token).expect("present");
                    let rebuilt = rebuild_replica(self.shared.mode, ctx.replica, &ctx.collected);
                    let spare = self.pool.pop().expect("baseline pool exhausted");
                    let level = self.state.level_of(ctx.bucket);
                    let install_token = self.next_token;
                    self.next_token += 1;
                    env.send(
                        spare,
                        BMsg::InstallBucket {
                            bucket: ctx.bucket,
                            level,
                            replica: ctx.replica,
                            records: rebuilt,
                            token: install_token,
                        },
                    );
                    self.shared.registry.borrow_mut().nodes[ctx.replica][ctx.bucket as usize] =
                        spare;
                    self.recoveries.insert(
                        install_token,
                        BRecovery {
                            bucket: ctx.bucket,
                            replica: ctx.replica,
                            awaiting: 0,
                            collected: Vec::new(),
                        },
                    );
                }
            }
            BMsg::InstallAck { token } => {
                if let Some(ctx) = self.recoveries.remove(&token) {
                    self.recovered.push((ctx.bucket, ctx.replica));
                }
            }
            other => debug_assert!(false, "coordinator got {other:?}"),
        }
    }
}

/// Rebuild one replica's content from the surviving replicas: mirroring
/// copies; striping XORs the surviving equal-length fragments (the missing
/// position does not matter — data and parity fragments rebuild alike).
fn rebuild_replica(
    mode: Mode,
    replica: Replica,
    collected: &[ReplicaContent],
) -> Vec<(u64, Vec<u8>)> {
    let _ = replica; // identical rebuild for every position (equal-length fragments)
    match mode {
        Mode::Plain => Vec::new(), // 0-availability: nothing to rebuild from
        Mode::Mirror => collected
            .first()
            .map(|(_, records)| records.clone())
            .expect("the mirror survives"),
        Mode::Stripe { .. } => {
            // All fragments of a record are equal length, so the missing
            // one — data or parity alike — is the XOR of the m survivors.
            use std::collections::HashMap;
            let mut by_key: HashMap<u64, Vec<&[u8]>> = HashMap::new();
            for (_, records) in collected {
                for (k, frag) in records {
                    by_key.entry(*k).or_default().push(frag);
                }
            }
            by_key
                .into_iter()
                .map(|(key, frags)| {
                    let flen = frags.first().map(|f| f.len()).unwrap_or(0);
                    let mut acc = vec![0u8; flen];
                    for f in frags {
                        debug_assert_eq!(f.len(), flen, "equal-length fragments");
                        for (a, b) in acc.iter_mut().zip(f) {
                            *a ^= b;
                        }
                    }
                    (key, acc)
                })
                .collect()
        }
    }
}

/// Outstanding client operation.
enum BPending {
    /// Write: settled optimistically by the driver.
    Write,
    /// Plain/mirror lookup: one reply expected.
    Lookup,
    /// Stripe lookup: gathering fragments.
    Gather {
        got: BTreeMap<Replica, Option<Vec<u8>>>,
        need: usize,
    },
}

/// The generic baseline client.
pub struct BClient {
    shared: BHandle,
    /// Client image of the logical file.
    pub image: ClientImage,
    pending: HashMap<u64, BPending>,
    results: Vec<(u64, Option<Vec<u8>>)>,
    /// IAMs received.
    pub iams_received: u64,
}

impl BClient {
    /// Fresh client (worst-case image).
    pub fn new(shared: BHandle) -> Self {
        BClient {
            shared,
            image: ClientImage::new(1),
            pending: HashMap::new(),
            results: Vec::new(),
            iams_received: 0,
        }
    }

    /// Drain results: `(op_id, Some(payload) | None)`. Writes settle as
    /// `None` via [`BClient::settle_writes`].
    pub fn take_results(&mut self) -> Vec<(u64, Option<Vec<u8>>)> {
        std::mem::take(&mut self.results)
    }

    /// Settle optimistic writes.
    pub fn settle_writes(&mut self) {
        let ids: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| matches!(p, BPending::Write))
            .map(|(id, _)| *id)
            .collect();
        for id in ids {
            self.pending.remove(&id);
            self.results.push((id, None));
        }
    }

    fn on_message(&mut self, env: &mut Env<'_, BMsg>, _from: NodeId, msg: BMsg) {
        match msg {
            BMsg::Do { op_id, op } => match op {
                BOp::Insert(key, payload) => self.start_insert(env, op_id, key, payload),
                BOp::Lookup(key) => self.start_lookup(env, op_id, key),
            },
            BMsg::Reply {
                op_id,
                replica,
                value,
                iam,
            } => {
                if let Some((level, bucket)) = iam {
                    self.image.adjust(level, bucket);
                    self.iams_received += 1;
                }
                match self.pending.get_mut(&op_id) {
                    Some(BPending::Lookup) => {
                        self.pending.remove(&op_id);
                        self.results.push((op_id, value));
                    }
                    Some(BPending::Gather { got, need }) => {
                        got.insert(replica, value);
                        if got.len() == *need {
                            // Reassemble fragments in replica order; a
                            // record exists iff fragment 0 exists.
                            let assembled = if got.get(&0).map(|v| v.is_some()).unwrap_or(false) {
                                let frags: Vec<Vec<u8>> = got.values().flatten().cloned().collect();
                                unstripe(&frags)
                            } else {
                                None
                            };
                            self.pending.remove(&op_id);
                            self.results.push((op_id, assembled));
                        }
                    }
                    Some(BPending::Write) | None => { /* IAM-only reply for a write */ }
                }
            }
            other => debug_assert!(false, "client got {other:?}"),
        }
    }

    fn start_insert(&mut self, env: &mut Env<'_, BMsg>, op_id: u64, key: u64, payload: Vec<u8>) {
        let bucket = self.image.address(key) as usize;
        let me = env.me();
        let reg = self.shared.registry.borrow();
        match self.shared.mode {
            Mode::Plain => {
                env.send(
                    reg.nodes[0][bucket],
                    BMsg::Req {
                        op_id,
                        client: me,
                        replica: 0,
                        hops: 0,
                        kind: BReq::Insert(key, payload),
                    },
                );
            }
            Mode::Mirror => {
                for r in 0..2 {
                    env.send(
                        reg.nodes[r][bucket],
                        BMsg::Req {
                            op_id,
                            client: me,
                            replica: r,
                            hops: 0,
                            kind: BReq::Insert(key, payload.clone()),
                        },
                    );
                }
            }
            Mode::Stripe { m } => {
                let frags = stripe_fragments(&payload, m);
                for (r, frag) in frags.into_iter().enumerate() {
                    env.send(
                        reg.nodes[r][bucket],
                        BMsg::Req {
                            op_id,
                            client: me,
                            replica: r,
                            hops: 0,
                            kind: BReq::Insert(key, frag),
                        },
                    );
                }
            }
        }
        drop(reg);
        self.pending.insert(op_id, BPending::Write);
    }

    fn start_lookup(&mut self, env: &mut Env<'_, BMsg>, op_id: u64, key: u64) {
        let bucket = self.image.address(key) as usize;
        let me = env.me();
        let reg = self.shared.registry.borrow();
        match self.shared.mode {
            Mode::Plain | Mode::Mirror => {
                // Mirrored lookups read the primary (mirror is for
                // availability, not load spreading, in the base scheme).
                env.send(
                    reg.nodes[0][bucket],
                    BMsg::Req {
                        op_id,
                        client: me,
                        replica: 0,
                        hops: 0,
                        kind: BReq::Lookup(key),
                    },
                );
                self.pending.insert(op_id, BPending::Lookup);
            }
            Mode::Stripe { m } => {
                // Gather the m data fragments (parity only read on repair).
                for r in 0..m {
                    env.send(
                        reg.nodes[r][bucket],
                        BMsg::Req {
                            op_id,
                            client: me,
                            replica: r,
                            hops: 0,
                            kind: BReq::Lookup(key),
                        },
                    );
                }
                self.pending.insert(
                    op_id,
                    BPending::Gather {
                        got: BTreeMap::new(),
                        need: m,
                    },
                );
            }
        }
    }
}

/// Chop a payload into `m` equal-length data fragments plus one XOR parity
/// fragment, as LH\*s does. The payload is length-prefixed and zero-padded
/// first (the stripe header of the original scheme), so any single missing
/// fragment is reconstructible by XOR alone and reassembly recovers the
/// exact payload.
pub fn stripe_fragments(payload: &[u8], m: usize) -> Vec<Vec<u8>> {
    let mut cell = Vec::with_capacity(4 + payload.len());
    cell.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    cell.extend_from_slice(payload);
    let flen = cell.len().div_ceil(m).max(1);
    cell.resize(m * flen, 0);
    let mut frags: Vec<Vec<u8>> = cell.chunks_exact(flen).map(|c| c.to_vec()).collect();
    let mut parity = vec![0u8; flen];
    for f in &frags {
        for (p, b) in parity.iter_mut().zip(f) {
            *p ^= b;
        }
    }
    frags.push(parity);
    frags
}

/// Reassemble the exact payload from the `m` data fragments (inverse of
/// [`stripe_fragments`]). `None` on a malformed length prefix.
pub fn unstripe(data_frags: &[Vec<u8>]) -> Option<Vec<u8>> {
    let cell: Vec<u8> = data_frags.iter().flatten().copied().collect();
    if cell.len() < 4 {
        return None;
    }
    let len = u32::from_le_bytes(cell[..4].try_into().ok()?) as usize;
    (4 + len <= cell.len()).then(|| cell[4..4 + len].to_vec())
}

/// Node roles of a baseline simulation.
pub enum BNode {
    /// Unallocated pool node (buffers early messages like the core's
    /// blanks).
    Blank {
        /// Shared handle.
        shared: BHandle,
        /// Buffered early messages.
        pending: Vec<(NodeId, BMsg)>,
    },
    /// Bucket server.
    Bucket(BBucket),
    /// Client.
    Client(BClient),
    /// Coordinator.
    Coordinator(BCoordinator),
}

impl BNode {
    /// Client accessor.
    pub fn as_client_mut(&mut self) -> &mut BClient {
        match self {
            BNode::Client(c) => c,
            _ => panic!("not a client"),
        }
    }

    /// Client accessor.
    pub fn as_client(&self) -> &BClient {
        match self {
            BNode::Client(c) => c,
            _ => panic!("not a client"),
        }
    }

    /// Coordinator accessor.
    pub fn as_coordinator(&self) -> &BCoordinator {
        match self {
            BNode::Coordinator(c) => c,
            _ => panic!("not the coordinator"),
        }
    }

    /// Bucket accessor.
    pub fn as_bucket(&self) -> &BBucket {
        match self {
            BNode::Bucket(b) => b,
            _ => panic!("not a bucket"),
        }
    }
}

impl Actor<BMsg> for BNode {
    fn on_message(&mut self, env: &mut Env<'_, BMsg>, from: NodeId, msg: BMsg) {
        match self {
            BNode::Blank { shared, pending } => match msg {
                BMsg::InitBucket {
                    bucket,
                    level,
                    replica,
                } => {
                    let mut node =
                        BNode::Bucket(BBucket::new(shared.clone(), bucket, level, replica));
                    let replay = std::mem::take(pending);
                    for (f, m) in replay {
                        node.on_message(env, f, m);
                    }
                    *self = node;
                }
                BMsg::InstallBucket {
                    bucket,
                    level,
                    replica,
                    records,
                    token,
                } => {
                    let mut b = BBucket::new(shared.clone(), bucket, level, replica);
                    b.records = records.into_iter().collect();
                    env.send(from, BMsg::InstallAck { token });
                    *self = BNode::Bucket(b);
                }
                other => pending.push((from, other)),
            },
            BNode::Bucket(b) => b.on_message(env, from, msg),
            BNode::Client(c) => c.on_message(env, from, msg),
            BNode::Coordinator(c) => c.on_message(env, from, msg),
        }
    }

    fn on_timer(&mut self, _env: &mut Env<'_, BMsg>, _timer: TimerId) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripe_fragments_reassemble() {
        for len in [0usize, 1, 5, 16, 17, 100] {
            let payload: Vec<u8> = (0..len as u32).map(|i| (i * 7 + 1) as u8).collect();
            for m in [1usize, 2, 4, 7] {
                let frags = stripe_fragments(&payload, m);
                assert_eq!(frags.len(), m + 1);
                // All fragments equal length.
                assert!(frags.iter().all(|f| f.len() == frags[0].len()));
                assert_eq!(unstripe(&frags[..m]).unwrap(), payload, "len={len} m={m}");
            }
        }
    }

    #[test]
    fn stripe_parity_recovers_any_fragment() {
        let payload: Vec<u8> = (0..50u8).collect();
        let m = 4;
        let frags = stripe_fragments(&payload, m);
        let flen = frags[m].len();
        for lost in 0..=m {
            let mut rec = vec![0u8; flen];
            for (i, f) in frags.iter().enumerate() {
                if i != lost {
                    for (r, b) in rec.iter_mut().zip(f) {
                        *r ^= b;
                    }
                }
            }
            assert_eq!(rec, frags[lost], "lost={lost}");
        }
    }
}
