//! The uniform [`Scheme`] interface the benchmark harness drives, the
//! shared [`BaseDriver`] behind the three baselines, and the adapter
//! wrapping `lhrs-core`.

use lhrs_sim::{LatencyModel, NetStats, NodeId, Sim};

use crate::common::{BClient, BCoordinator, BHandle, BMsg, BNode, BOp, BRegistry, BShared, Mode};
use lhrs_core::{Config, LhrsFile};

/// Uniform interface over every scheme in the comparison (T7).
pub trait Scheme {
    /// Scheme name for report rows.
    fn name(&self) -> &'static str;

    /// Insert a record (panics on duplicate key — the comparison workloads
    /// never produce one).
    fn insert(&mut self, key: u64, payload: Vec<u8>);

    /// Key search.
    fn lookup(&mut self, key: u64) -> Option<Vec<u8>>;

    /// Message statistics so far.
    fn stats(&self) -> NetStats;

    /// Logical data buckets `M`.
    fn data_buckets(&self) -> u64;

    /// Total servers consumed (buckets of every replica / parity).
    fn total_servers(&self) -> u64;

    /// `(application payload bytes, redundancy bytes)` stored.
    fn storage_bytes(&self) -> (u64, u64);

    /// Analytic probability that all data survives, with per-bucket
    /// availability `p`.
    fn availability(&self, p: f64) -> f64;

    /// How many arbitrary bucket losses the scheme always tolerates.
    fn tolerates(&self) -> usize;
}

/// Shared simulation driver of the three baseline schemes.
pub struct BaseDriver {
    sim: Sim<BMsg, BNode>,
    shared: BHandle,
    client: NodeId,
    next_op: u64,
    mode: Mode,
}

impl BaseDriver {
    /// Build a baseline file of the given mode.
    pub fn new(mode: Mode, capacity: usize, node_pool: usize, latency: LatencyModel) -> Self {
        let replicas = mode.replicas();
        let shared: BHandle = std::rc::Rc::new(BShared {
            registry: std::cell::RefCell::new(BRegistry {
                nodes: vec![Vec::new(); replicas],
                coordinator: lhrs_sim::EXTERNAL,
            }),
            mode,
            capacity,
        });
        let mut sim: Sim<BMsg, BNode> = Sim::new(latency);
        let ids: Vec<NodeId> = (0..node_pool)
            .map(|_| {
                sim.add_node(BNode::Blank {
                    shared: shared.clone(),
                    pending: Vec::new(),
                })
            })
            .collect();
        let coordinator = ids[0];
        let client = ids[1];
        {
            let mut reg = shared.registry.borrow_mut();
            reg.coordinator = coordinator;
            for r in 0..replicas {
                reg.nodes[r].push(ids[2 + r]);
            }
        }
        for r in 0..replicas {
            sim.replace(
                ids[2 + r],
                BNode::Bucket(crate::common::BBucket::new(shared.clone(), 0, 0, r)),
            );
        }
        let pool: Vec<NodeId> = ids[2 + replicas..].iter().rev().copied().collect();
        sim.replace(
            coordinator,
            BNode::Coordinator(BCoordinator::new(shared.clone(), pool)),
        );
        sim.replace(client, BNode::Client(BClient::new(shared.clone())));
        BaseDriver {
            sim,
            shared,
            client,
            next_op: 1,
            mode,
        }
    }

    fn exec(&mut self, op: BOp) -> Option<Vec<u8>> {
        let op_id = self.next_op;
        self.next_op += 1;
        self.sim.send_external(self.client, BMsg::Do { op_id, op });
        self.sim.run_until_idle();
        let c = self.sim.actor_mut(self.client).as_client_mut();
        c.settle_writes();
        c.take_results()
            .into_iter()
            .find(|(id, _)| *id == op_id)
            .expect("operation completed")
            .1
    }

    /// Insert a record.
    pub fn insert(&mut self, key: u64, payload: Vec<u8>) {
        self.exec(BOp::Insert(key, payload));
    }

    /// Key search.
    pub fn lookup(&mut self, key: u64) -> Option<Vec<u8>> {
        self.exec(BOp::Lookup(key))
    }

    /// Message statistics.
    pub fn stats(&self) -> NetStats {
        self.sim.stats().clone()
    }

    /// Logical bucket count.
    pub fn data_buckets(&self) -> u64 {
        self.sim
            .actor(self.shared.registry.borrow().coordinator)
            .as_coordinator()
            .state
            .bucket_count()
    }

    /// Total servers in use.
    pub fn total_servers(&self) -> u64 {
        self.data_buckets() * self.mode.replicas() as u64
    }

    /// `(primary payload bytes, redundancy bytes)`.
    pub fn storage_bytes(&self) -> (u64, u64) {
        let reg = self.shared.registry.borrow();
        let mut primary = 0u64;
        let mut redundant = 0u64;
        for (r, nodes) in reg.nodes.iter().enumerate() {
            for node in nodes {
                let bytes: u64 = self
                    .sim
                    .actor(*node)
                    .as_bucket()
                    .records
                    .values()
                    .map(|p| p.len() as u64)
                    .sum();
                match self.mode {
                    Mode::Plain => primary += bytes,
                    Mode::Mirror => {
                        if r == 0 {
                            primary += bytes
                        } else {
                            redundant += bytes
                        }
                    }
                    Mode::Stripe { m } => {
                        if r < m {
                            primary += bytes
                        } else {
                            redundant += bytes
                        }
                    }
                }
            }
        }
        (primary, redundant)
    }

    /// IAMs received by the client.
    pub fn client_iams(&self) -> u64 {
        self.sim.actor(self.client).as_client().iams_received
    }

    /// Crash the node carrying `(replica, bucket)`.
    pub fn crash_replica(&mut self, bucket: u64, replica: usize) {
        let node = self.shared.registry.borrow().nodes[replica][bucket as usize];
        self.sim.crash(node);
    }

    /// Rebuild `(replica, bucket)` onto a spare from the surviving
    /// replicas (copy for mirroring, XOR for striping). Returns whether
    /// the coordinator confirmed the install.
    pub fn recover_replica(&mut self, bucket: u64, replica: usize) -> bool {
        let coord = self.shared.registry.borrow().coordinator;
        self.sim
            .send_external(coord, BMsg::RecoverReplica { bucket, replica });
        self.sim.run_until_idle();
        let done = self
            .sim
            .actor(coord)
            .as_coordinator()
            .recovered
            .contains(&(bucket, replica));
        done
    }
}

/// Adapter presenting `lhrs-core` (at any `k`) through the [`Scheme`]
/// interface. `k = 1` is the LH\*g-equivalent XOR configuration.
pub struct LhrsScheme {
    file: LhrsFile,
    name: &'static str,
}

impl LhrsScheme {
    /// Wrap a file built from `cfg` under a display name.
    pub fn new(name: &'static str, cfg: Config) -> Self {
        LhrsScheme {
            file: LhrsFile::new(cfg).expect("valid config"),
            name,
        }
    }

    /// Access the wrapped file.
    pub fn file_mut(&mut self) -> &mut LhrsFile {
        &mut self.file
    }
}

impl Scheme for LhrsScheme {
    fn name(&self) -> &'static str {
        self.name
    }

    fn insert(&mut self, key: u64, payload: Vec<u8>) {
        self.file.insert(key, payload).expect("insert");
    }

    fn lookup(&mut self, key: u64) -> Option<Vec<u8>> {
        self.file.lookup(key).expect("lookup")
    }

    fn stats(&self) -> NetStats {
        self.file.stats().clone()
    }

    fn data_buckets(&self) -> u64 {
        self.file.bucket_count()
    }

    fn total_servers(&self) -> u64 {
        let r = self.file.storage_report();
        (r.data_buckets + r.parity_buckets) as u64
    }

    fn storage_bytes(&self) -> (u64, u64) {
        let r = self.file.storage_report();
        (r.data_bytes as u64, r.parity_bytes as u64)
    }

    fn availability(&self, p: f64) -> f64 {
        lhrs_core::availability::file_availability(
            self.file.bucket_count(),
            self.file.config().group_size,
            self.file.config().initial_k,
            p,
        )
    }

    fn tolerates(&self) -> usize {
        self.file.config().initial_k
    }
}
