//! **LH\*g with insertion-bound record groups** — the predecessor design
//! that LH\*RS evolved from, implemented as a baseline for the
//! split-cost/recovery-cost ablation.
//!
//! Structure (following the LH\*g paper):
//!
//! * The **primary file** `F1` is an LH\* file that starts with `m` buckets
//!   (`N = m`). A record inserted into bucket `b` is stamped with the
//!   record-group key `(g, r)` where `g = ⌊b/m⌋` is the *bucket group at
//!   insertion time* and `r` is bucket `b`'s insert counter. The stamp
//!   **never changes**: when splits move the record, it keeps `(g, r)`.
//! * The **parity file** `F2` is a *second, independent LH\* file* keyed by
//!   `(g, r)`, holding one XOR parity record (member keys + parity cell)
//!   per record group. Primary buckets act as LH\* *clients* of `F2`: they
//!   keep their own image of `F2` and are corrected by IAMs like any
//!   client.
//!
//! The two consequences the ablation measures:
//!
//! * **Splits are parity-free** (the scheme's selling point): movers keep
//!   their group keys, so a primary split sends zero parity messages —
//!   unlike LH\*RS, which retracts and re-enrols every mover (2k batch
//!   messages per split).
//! * **Recovery is scattered** (the scheme's weakness, and why LH\*RS
//!   re-bound groups to buckets): a record group's members drift apart
//!   arbitrarily as the file grows, so reconstructing one record costs a
//!   scan of `F2` plus up to `m − 1` key searches anywhere in `F1` — and
//!   bucket recovery cannot bulk-transfer from a fixed set of partners.
//!
//! Only single-XOR parity (1-availability) is supported, as in the
//! original. Manipulations (insert/lookup/update/delete), both files'
//! splits, and record recovery (algorithm A7) are implemented; full bucket
//! recovery (A4) is costed analytically in the experiment notes.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use lhrs_lh::{a2_route, A2Outcome, ClientImage, FileState};
use lhrs_sim::{Actor, Env, LatencyModel, NetStats, NodeId, Payload, Sim, TimerId};

/// Record-group key `(g, r)` packed into one `u64` so the parity file can
/// hash it with the ordinary LH family.
fn pack_gkey(g: u64, r: u64) -> u64 {
    debug_assert!(g < (1 << 31) && r < (1 << 31));
    // Scramble so the parity file's `mod 2^l` hashing spreads group keys
    // uniformly (raw (g, r) pairs are highly clustered).
    lhrs_lh::scramble((g << 31) | r)
}

/// Fixed-size coding cell: `[len | payload | zero pad]`, as in the core.
fn cell(payload: &[u8], cell_len: usize) -> Vec<u8> {
    assert!(payload.len() + 4 <= cell_len);
    let mut c = vec![0u8; cell_len];
    c[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    c[4..4 + payload.len()].copy_from_slice(payload);
    c
}

fn uncell(c: &[u8]) -> Option<Vec<u8>> {
    let len = u32::from_le_bytes(c[..4].try_into().ok()?) as usize;
    (4 + len <= c.len()).then(|| c[4..4 + len].to_vec())
}

fn xor_into(src: &[u8], dst: &mut [u8]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= s;
    }
}

/// Parity-file key operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum POp {
    /// New member: append key, fold cell in.
    Add(u64, Vec<u8>),
    /// Member gone: remove key, fold its old cell out.
    Remove(u64, Vec<u8>),
    /// Member payload changed: fold Δ in, keys unchanged.
    Update(Vec<u8>),
}

/// The LH\*g message protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GMsg {
    /// Driver → client.
    Do {
        /// Operation id.
        op_id: u64,
        /// Operation.
        op: GOp,
    },
    /// Client/coordinator → primary bucket (A2-forwarded).
    Req {
        /// Operation id.
        op_id: u64,
        /// Reply target.
        reply_to: NodeId,
        /// Forward count.
        hops: u8,
        /// Request.
        kind: GReq,
    },
    /// Primary bucket → requester.
    Reply {
        /// Operation id.
        op_id: u64,
        /// Payload or `None`.
        value: Option<Vec<u8>>,
        /// IAM for the primary file.
        iam: Option<(u8, u64)>,
    },
    /// Primary bucket (as F2 client) → parity bucket (A2-forwarded within
    /// F2).
    PReq {
        /// Packed `(g, r)` key.
        gkey: u64,
        /// The parity operation.
        op: POp,
        /// The primary bucket node (for the F2 IAM).
        origin: NodeId,
        /// Forward count within F2.
        hops: u8,
    },
    /// Parity bucket → primary bucket: F2 image adjustment after a forward.
    PIam {
        /// Level of the parity bucket that accepted.
        level: u8,
        /// Its bucket number.
        bucket: u64,
    },
    /// Primary bucket → coordinator.
    OverflowPrimary {
        /// Overflowing bucket.
        bucket: u64,
    },
    /// Parity bucket → coordinator.
    OverflowParity {
        /// Overflowing parity bucket.
        bucket: u64,
    },
    /// Coordinator → pool node: become primary bucket.
    InitPrimary {
        /// Bucket number.
        bucket: u64,
        /// Level.
        level: u8,
    },
    /// Coordinator → pool node: become parity bucket.
    InitParity {
        /// Parity-file bucket number.
        bucket: u64,
        /// Level.
        level: u8,
    },
    /// Coordinator → splitting primary bucket.
    SplitPrimary {
        /// New bucket.
        target: u64,
        /// New level.
        new_level: u8,
    },
    /// Splitting primary → new primary: movers (group keys travel along —
    /// no parity traffic).
    LoadPrimary {
        /// `(key, g, r, payload)` records.
        records: Vec<(u64, u64, u64, Vec<u8>)>,
    },
    /// Coordinator → splitting parity bucket.
    SplitParity {
        /// New parity bucket.
        target: u64,
        /// New level.
        new_level: u8,
    },
    /// Splitting parity → new parity bucket.
    LoadParity {
        /// `(gkey, member keys, parity cell)` records.
        records: Vec<(u64, Vec<u64>, Vec<u8>)>,
    },
    /// Driver → coordinator: reconstruct the record with this key
    /// (algorithm A7; the record's bucket is presumed unavailable, so the
    /// coordinator may not read it directly).
    RecoverRecord {
        /// Key to reconstruct.
        key: u64,
        /// The bucket the driver declared unavailable.
        unavailable: u64,
    },
    /// Coordinator → every parity bucket: find the parity record holding
    /// `key` (deterministic termination: every bucket replies).
    PScan {
        /// Correlation token.
        token: u64,
        /// Key searched.
        key: u64,
    },
    /// Parity bucket → coordinator.
    PScanReply {
        /// Echoed token.
        token: u64,
        /// Replying parity bucket.
        bucket: u64,
        /// Match, if any: `(gkey, member keys, parity cell)`.
        found: Option<(u64, Vec<u64>, Vec<u8>)>,
    },
}

/// Application operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GOp {
    /// Insert.
    Insert(u64, Vec<u8>),
    /// Key search.
    Lookup(u64),
    /// Update in place.
    Update(u64, Vec<u8>),
    /// Delete.
    Delete(u64),
}

/// Bucket-level requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GReq {
    /// Insert.
    Insert(u64, Vec<u8>),
    /// Key search.
    Lookup(u64),
    /// Update.
    Update(u64, Vec<u8>),
    /// Delete.
    Delete(u64),
    /// Recovery-driven key search: return the *cell* (padded) rather than
    /// the payload, and do not count as an application lookup.
    FetchCell(u64),
}

impl GReq {
    fn key(&self) -> u64 {
        match self {
            GReq::Insert(k, _)
            | GReq::Lookup(k)
            | GReq::Update(k, _)
            | GReq::Delete(k)
            | GReq::FetchCell(k) => *k,
        }
    }
}

impl Payload for GMsg {
    fn kind(&self) -> &'static str {
        match self {
            GMsg::Do { .. } => "app-do",
            GMsg::Req { kind, .. } => match kind {
                GReq::Insert(..) => "insert",
                GReq::Lookup(..) => "lookup",
                GReq::Update(..) => "update",
                GReq::Delete(..) => "delete",
                GReq::FetchCell(..) => "fetch-cell",
            },
            GMsg::Reply { .. } => "reply",
            GMsg::PReq { .. } => "parity-delta",
            GMsg::PIam { .. } => "parity-iam",
            GMsg::OverflowPrimary { .. } | GMsg::OverflowParity { .. } => "overflow",
            GMsg::InitPrimary { .. } | GMsg::InitParity { .. } => "init-data",
            GMsg::SplitPrimary { .. } | GMsg::SplitParity { .. } => "split",
            GMsg::LoadPrimary { .. } | GMsg::LoadParity { .. } => "split-load",
            GMsg::RecoverRecord { .. } => "recover-record",
            GMsg::PScan { .. } => "find-record",
            GMsg::PScanReply { .. } => "find-record-reply",
        }
    }

    fn size_bytes(&self) -> usize {
        match self {
            GMsg::Do { .. } => 0,
            GMsg::Req { kind, .. } => match kind {
                GReq::Insert(_, p) | GReq::Update(_, p) => 24 + p.len(),
                _ => 24,
            },
            GMsg::Reply { value, .. } => 16 + value.as_ref().map(Vec::len).unwrap_or(0),
            GMsg::PReq { op, .. } => {
                16 + match op {
                    POp::Add(_, c) | POp::Remove(_, c) => 8 + c.len(),
                    POp::Update(c) => c.len(),
                }
            }
            GMsg::PIam { .. } => 12,
            GMsg::OverflowPrimary { .. } | GMsg::OverflowParity { .. } => 12,
            GMsg::InitPrimary { .. } | GMsg::InitParity { .. } => 12,
            GMsg::SplitPrimary { .. } | GMsg::SplitParity { .. } => 16,
            GMsg::LoadPrimary { records } => {
                8 + records
                    .iter()
                    .map(|(_, _, _, p)| 28 + p.len())
                    .sum::<usize>()
            }
            GMsg::LoadParity { records } => {
                8 + records
                    .iter()
                    .map(|(_, ks, c)| 12 + 8 * ks.len() + c.len())
                    .sum::<usize>()
            }
            GMsg::RecoverRecord { .. } => 16,
            GMsg::PScan { .. } => 16,
            GMsg::PScanReply { found, .. } => {
                16 + found
                    .as_ref()
                    .map(|(_, ks, c)| 8 + 8 * ks.len() + c.len())
                    .unwrap_or(0)
            }
        }
    }
}

/// Shared allocation tables for both files.
struct GShared {
    primary: RefCell<Vec<NodeId>>,
    parity: RefCell<Vec<NodeId>>,
    coordinator: RefCell<NodeId>,
    m: usize,
    cell_len: usize,
    capacity: usize,
}

type GHandle = Rc<GShared>;

/// A primary record.
#[derive(Debug, Clone)]
struct GRecord {
    g: u64,
    r: u64,
    payload: Vec<u8>,
}

/// Primary bucket: stores records with their immutable `(g, r)` stamps and
/// acts as an LH\* client of the parity file.
struct GPrimary {
    shared: GHandle,
    bucket: u64,
    level: u8,
    records: HashMap<u64, GRecord>,
    /// The insert counter `r` — never decremented, unaffected by splits.
    counter: u64,
    /// This bucket's image of the parity file (it is an F2 *client*).
    parity_image: ClientImage,
    overflow_reported: bool,
}

impl GPrimary {
    fn new(shared: GHandle, bucket: u64, level: u8) -> Self {
        GPrimary {
            shared,
            bucket,
            level,
            records: HashMap::new(),
            counter: 0,
            parity_image: ClientImage::new(1),
            overflow_reported: false,
        }
    }

    fn send_parity(&mut self, env: &mut Env<'_, GMsg>, gkey: u64, op: POp) {
        let a = self.parity_image.address(gkey);
        let node = self.shared.parity.borrow()[a as usize];
        env.send(
            node,
            GMsg::PReq {
                gkey,
                op,
                origin: env.me(),
                hops: 0,
            },
        );
    }

    fn on_message(&mut self, env: &mut Env<'_, GMsg>, from: NodeId, msg: GMsg) {
        let m = self.shared.m as u64;
        let cell_len = self.shared.cell_len;
        match msg {
            GMsg::Req {
                op_id,
                reply_to,
                hops,
                kind,
            } => {
                match a2_route(self.bucket, self.level, kind.key(), m) {
                    A2Outcome::Forward(next) => {
                        let node = self.shared.primary.borrow()[next as usize];
                        env.send(
                            node,
                            GMsg::Req {
                                op_id,
                                reply_to,
                                hops: hops + 1,
                                kind,
                            },
                        );
                        return;
                    }
                    A2Outcome::Accept => {}
                }
                let iam = (hops > 0).then_some((self.level, self.bucket));
                match kind {
                    GReq::Lookup(key) => {
                        let value = self.records.get(&key).map(|r| r.payload.clone());
                        env.send(reply_to, GMsg::Reply { op_id, value, iam });
                    }
                    GReq::FetchCell(key) => {
                        let value = self.records.get(&key).map(|r| cell(&r.payload, cell_len));
                        env.send(reply_to, GMsg::Reply { op_id, value, iam });
                    }
                    GReq::Insert(key, payload) => {
                        if self.records.contains_key(&key) {
                            env.send(
                                reply_to,
                                GMsg::Reply {
                                    op_id,
                                    value: None,
                                    iam,
                                },
                            );
                            return;
                        }
                        // Insertion-time group binding: g from THIS bucket,
                        // r from its counter — immutable thereafter.
                        let g = self.bucket / m;
                        self.counter += 1;
                        let r = self.counter;
                        let c = cell(&payload, cell_len);
                        self.records.insert(key, GRecord { g, r, payload });
                        self.send_parity(env, pack_gkey(g, r), POp::Add(key, c));
                        if !self.overflow_reported && self.records.len() > self.shared.capacity {
                            self.overflow_reported = true;
                            let coord = *self.shared.coordinator.borrow();
                            env.send(
                                coord,
                                GMsg::OverflowPrimary {
                                    bucket: self.bucket,
                                },
                            );
                        }
                        if iam.is_some() {
                            env.send(
                                reply_to,
                                GMsg::Reply {
                                    op_id,
                                    value: Some(Vec::new()),
                                    iam,
                                },
                            );
                        }
                    }
                    GReq::Update(key, payload) => {
                        let Some(rec) = self.records.get_mut(&key) else {
                            env.send(
                                reply_to,
                                GMsg::Reply {
                                    op_id,
                                    value: None,
                                    iam,
                                },
                            );
                            return;
                        };
                        let mut delta = cell(&rec.payload, cell_len);
                        let newc = cell(&payload, cell_len);
                        xor_into(&newc, &mut delta);
                        rec.payload = payload;
                        let (g, r) = (rec.g, rec.r);
                        self.send_parity(env, pack_gkey(g, r), POp::Update(delta));
                        if iam.is_some() {
                            env.send(
                                reply_to,
                                GMsg::Reply {
                                    op_id,
                                    value: Some(Vec::new()),
                                    iam,
                                },
                            );
                        }
                    }
                    GReq::Delete(key) => {
                        let Some(rec) = self.records.remove(&key) else {
                            env.send(
                                reply_to,
                                GMsg::Reply {
                                    op_id,
                                    value: None,
                                    iam,
                                },
                            );
                            return;
                        };
                        let c = cell(&rec.payload, cell_len);
                        self.send_parity(env, pack_gkey(rec.g, rec.r), POp::Remove(key, c));
                        if iam.is_some() {
                            env.send(
                                reply_to,
                                GMsg::Reply {
                                    op_id,
                                    value: Some(Vec::new()),
                                    iam,
                                },
                            );
                        }
                    }
                }
            }
            GMsg::SplitPrimary { target, new_level } => {
                // THE LH*g HEADLINE: movers keep (g, r); zero parity
                // messages here.
                let moving: Vec<u64> = self
                    .records
                    .iter()
                    .filter(|(k, _)| lhrs_lh::h(new_level, m, **k) == target)
                    .map(|(k, _)| *k)
                    .collect();
                let records: Vec<(u64, u64, u64, Vec<u8>)> = moving
                    .into_iter()
                    .map(|k| {
                        let rec = self.records.remove(&k).expect("listed");
                        (k, rec.g, rec.r, rec.payload)
                    })
                    .collect();
                self.level = new_level;
                self.overflow_reported = false;
                let node = self.shared.primary.borrow()[target as usize];
                env.send(node, GMsg::LoadPrimary { records });
            }
            GMsg::LoadPrimary { records } => {
                // Movers arrive with their original stamps; the counter of
                // the receiving bucket is NOT advanced (its own inserts
                // start a fresh rank space tied to ITS group number).
                for (key, g, r, payload) in records {
                    self.records.insert(key, GRecord { g, r, payload });
                }
            }
            GMsg::PIam { level, bucket } => {
                self.parity_image.adjust(level, bucket);
            }
            GMsg::PScan { .. } | GMsg::PScanReply { .. } => {
                debug_assert!(false, "parity scan reached a primary bucket");
            }
            other => {
                debug_assert!(false, "primary bucket got {other:?}");
            }
        }
        let _ = from;
    }
}

/// One XOR parity record of the parity file.
#[derive(Debug, Clone, PartialEq, Eq)]
struct GParityRecord {
    keys: Vec<u64>,
    cell: Vec<u8>,
}

/// Parity bucket of the separate parity LH\* file.
struct GParity {
    shared: GHandle,
    bucket: u64,
    level: u8,
    records: HashMap<u64, GParityRecord>,
    overflow_reported: bool,
}

impl GParity {
    fn new(shared: GHandle, bucket: u64, level: u8) -> Self {
        GParity {
            shared,
            bucket,
            level,
            records: HashMap::new(),
            overflow_reported: false,
        }
    }

    fn on_message(&mut self, env: &mut Env<'_, GMsg>, from: NodeId, msg: GMsg) {
        match msg {
            GMsg::PReq {
                gkey,
                op,
                origin,
                hops,
            } => {
                match a2_route(self.bucket, self.level, gkey, 1) {
                    A2Outcome::Forward(next) => {
                        let node = self.shared.parity.borrow()[next as usize];
                        env.send(
                            node,
                            GMsg::PReq {
                                gkey,
                                op,
                                origin,
                                hops: hops + 1,
                            },
                        );
                        return;
                    }
                    A2Outcome::Accept => {}
                }
                if hops > 0 {
                    env.send(
                        origin,
                        GMsg::PIam {
                            level: self.level,
                            bucket: self.bucket,
                        },
                    );
                }
                let cell_len = self.shared.cell_len;
                match op {
                    POp::Add(key, c) => {
                        let rec = self.records.entry(gkey).or_insert_with(|| GParityRecord {
                            keys: Vec::new(),
                            cell: vec![0u8; cell_len],
                        });
                        debug_assert!(!rec.keys.contains(&key));
                        rec.keys.push(key);
                        xor_into(&c, &mut rec.cell);
                    }
                    POp::Remove(key, c) => {
                        if let Some(rec) = self.records.get_mut(&gkey) {
                            rec.keys.retain(|k| *k != key);
                            xor_into(&c, &mut rec.cell);
                            if rec.keys.is_empty() {
                                self.records.remove(&gkey);
                            }
                        }
                    }
                    POp::Update(delta) => {
                        if let Some(rec) = self.records.get_mut(&gkey) {
                            xor_into(&delta, &mut rec.cell);
                        }
                    }
                }
                if !self.overflow_reported && self.records.len() > self.shared.capacity {
                    self.overflow_reported = true;
                    let coord = *self.shared.coordinator.borrow();
                    env.send(
                        coord,
                        GMsg::OverflowParity {
                            bucket: self.bucket,
                        },
                    );
                }
            }
            GMsg::SplitParity { target, new_level } => {
                let moving: Vec<u64> = self
                    .records
                    .keys()
                    .copied()
                    .filter(|gk| lhrs_lh::h(new_level, 1, *gk) == target)
                    .collect();
                let records: Vec<(u64, Vec<u64>, Vec<u8>)> = moving
                    .into_iter()
                    .map(|gk| {
                        let rec = self.records.remove(&gk).expect("listed");
                        (gk, rec.keys, rec.cell)
                    })
                    .collect();
                self.level = new_level;
                self.overflow_reported = false;
                let node = self.shared.parity.borrow()[target as usize];
                env.send(node, GMsg::LoadParity { records });
            }
            GMsg::LoadParity { records } => {
                for (gk, keys, cellv) in records {
                    self.records.insert(gk, GParityRecord { keys, cell: cellv });
                }
            }
            GMsg::PScan { token, key } => {
                let found = self
                    .records
                    .iter()
                    .find(|(_, rec)| rec.keys.contains(&key))
                    .map(|(gk, rec)| (*gk, rec.keys.clone(), rec.cell.clone()));
                env.send(
                    from,
                    GMsg::PScanReply {
                        token,
                        bucket: self.bucket,
                        found,
                    },
                );
            }
            other => {
                debug_assert!(false, "parity bucket got {other:?}");
            }
        }
    }
}

/// In-progress A7 record recovery at the coordinator.
struct RecoveryCtx {
    key: u64,
    unavailable: u64,
    /// Parity scan replies received (deterministic termination over the
    /// parity file).
    scan_replies: usize,
    found: Option<(u64, Vec<u64>, Vec<u8>)>,
    /// Outstanding member-cell fetches: op_id → key.
    fetches: HashMap<u64, u64>,
    cells: Vec<Vec<u8>>,
}

/// Coordinator of both files.
struct GCoordinator {
    shared: GHandle,
    primary_state: FileState,
    parity_state: FileState,
    pool: Vec<NodeId>,
    next_token: u64,
    recoveries: HashMap<u64, RecoveryCtx>,
    /// Completed record recoveries: key → payload (None = not in file).
    pub recovered: Vec<(u64, Option<Vec<u8>>)>,
}

impl GCoordinator {
    fn alloc(&mut self) -> NodeId {
        self.pool.pop().expect("LH*g pool exhausted")
    }

    fn on_message(&mut self, env: &mut Env<'_, GMsg>, from: NodeId, msg: GMsg) {
        match msg {
            GMsg::OverflowPrimary { .. } => {
                let plan = self.primary_state.split();
                let node = self.alloc();
                env.send(
                    node,
                    GMsg::InitPrimary {
                        bucket: plan.target,
                        level: plan.new_level,
                    },
                );
                let mut primary = self.shared.primary.borrow_mut();
                debug_assert_eq!(primary.len() as u64, plan.target);
                primary.push(node);
                let source = primary[plan.source as usize];
                drop(primary);
                env.send(
                    source,
                    GMsg::SplitPrimary {
                        target: plan.target,
                        new_level: plan.new_level,
                    },
                );
            }
            GMsg::OverflowParity { .. } => {
                let plan = self.parity_state.split();
                let node = self.alloc();
                env.send(
                    node,
                    GMsg::InitParity {
                        bucket: plan.target,
                        level: plan.new_level,
                    },
                );
                let mut parity = self.shared.parity.borrow_mut();
                debug_assert_eq!(parity.len() as u64, plan.target);
                parity.push(node);
                let source = parity[plan.source as usize];
                drop(parity);
                env.send(
                    source,
                    GMsg::SplitParity {
                        target: plan.target,
                        new_level: plan.new_level,
                    },
                );
            }
            GMsg::RecoverRecord { key, unavailable } => {
                // A7 step 1: scan F2 for the parity record holding `key`.
                let token = self.next_token;
                self.next_token += 1;
                let nodes: Vec<NodeId> = self.shared.parity.borrow().clone();
                for n in &nodes {
                    env.send(*n, GMsg::PScan { token, key });
                }
                self.recoveries.insert(
                    token,
                    RecoveryCtx {
                        key,
                        unavailable,
                        scan_replies: 0,
                        found: None,
                        fetches: HashMap::new(),
                        cells: Vec::new(),
                    },
                );
            }
            GMsg::PScanReply { token, found, .. } => {
                let done = {
                    let Some(ctx) = self.recoveries.get_mut(&token) else {
                        return;
                    };
                    ctx.scan_replies += 1;
                    if found.is_some() {
                        ctx.found = found;
                    }
                    ctx.scan_replies == self.shared.parity.borrow().len()
                };
                if done {
                    self.start_member_fetches(env, token);
                }
            }
            GMsg::Reply { op_id, value, .. } => {
                // A member-cell fetch for some recovery.
                let Some(token) = self
                    .recoveries
                    .iter()
                    .find(|(_, c)| c.fetches.contains_key(&op_id))
                    .map(|(t, _)| *t)
                else {
                    return;
                };
                let finished = {
                    let ctx = self.recoveries.get_mut(&token).expect("found");
                    ctx.fetches.remove(&op_id);
                    ctx.cells
                        .push(value.expect("member record must exist for recovery"));
                    ctx.fetches.is_empty()
                };
                if finished {
                    self.finish_recovery(token);
                }
            }
            other => {
                debug_assert!(false, "LH*g coordinator got {other:?}");
            }
        }
        let _ = from;
    }

    /// A7 steps 3–4: fetch every *other* member's cell by key search, then
    /// XOR with the parity cell.
    fn start_member_fetches(&mut self, env: &mut Env<'_, GMsg>, token: u64) {
        let me = env.me();
        let (others, key) = {
            let ctx = self.recoveries.get_mut(&token).expect("present");
            let Some((_, keys, _)) = &ctx.found else {
                // A7 step 2: no parity record ⇒ the key never existed.
                let key = ctx.key;
                self.recoveries.remove(&token);
                self.recovered.push((key, None));
                return;
            };
            (
                keys.iter()
                    .copied()
                    .filter(|k| *k != ctx.key)
                    .collect::<Vec<u64>>(),
                ctx.key,
            )
        };
        let _ = key;
        if others.is_empty() {
            // Sole member: the parity cell IS the record (step 3).
            self.finish_recovery(token);
            return;
        }
        let primary = self.shared.primary.borrow().clone();
        let mut fetches = HashMap::new();
        for member in others {
            let op_id = self.next_token;
            self.next_token += 1;
            // The coordinator knows the true state: address directly.
            let b = self.primary_state.address(member);
            debug_assert_ne!(
                b, self.recoveries[&token].unavailable,
                "two group members in one bucket would break 1-availability"
            );
            env.send(
                primary[b as usize],
                GMsg::Req {
                    op_id,
                    reply_to: me,
                    hops: 0,
                    kind: GReq::FetchCell(member),
                },
            );
            fetches.insert(op_id, member);
        }
        self.recoveries.get_mut(&token).expect("present").fetches = fetches;
    }

    fn finish_recovery(&mut self, token: u64) {
        let ctx = self.recoveries.remove(&token).expect("present");
        let (_, _, pcell) = ctx.found.expect("members imply a parity record");
        let mut acc = pcell;
        for c in &ctx.cells {
            xor_into(c, &mut acc);
        }
        self.recovered.push((ctx.key, uncell(&acc)));
    }
}

/// Client of the primary file.
struct GClient {
    shared: GHandle,
    image: ClientImage,
    pending: HashMap<u64, bool /* expects value */>,
    results: Vec<(u64, Option<Vec<u8>>)>,
}

impl GClient {
    fn on_message(&mut self, env: &mut Env<'_, GMsg>, _from: NodeId, msg: GMsg) {
        match msg {
            GMsg::Do { op_id, op } => {
                let kind = match op {
                    GOp::Insert(k, p) => GReq::Insert(k, p),
                    GOp::Lookup(k) => GReq::Lookup(k),
                    GOp::Update(k, p) => GReq::Update(k, p),
                    GOp::Delete(k) => GReq::Delete(k),
                };
                let expects_value = matches!(kind, GReq::Lookup(_));
                let a = self.image.address(kind.key());
                let node = self.shared.primary.borrow()[a as usize];
                self.pending.insert(op_id, expects_value);
                env.send(
                    node,
                    GMsg::Req {
                        op_id,
                        reply_to: env.me(),
                        hops: 0,
                        kind,
                    },
                );
            }
            GMsg::Reply { op_id, value, iam } => {
                if let Some((level, bucket)) = iam {
                    self.image.adjust(level, bucket);
                }
                if self.pending.remove(&op_id).is_some() {
                    self.results.push((op_id, value));
                }
            }
            other => {
                debug_assert!(false, "LH*g client got {other:?}");
            }
        }
    }

    fn settle_writes(&mut self) {
        // Fire-and-forget writes: anything still pending is a completed
        // write (errors would have been replied).
        let ids: Vec<u64> = self.pending.keys().copied().collect();
        for id in ids {
            self.pending.remove(&id);
            self.results.push((id, Some(Vec::new())));
        }
    }
}

/// Node roles.
enum GNode {
    Blank {
        shared: GHandle,
        pending: Vec<(NodeId, GMsg)>,
    },
    Primary(GPrimary),
    Parity(GParity),
    Client(GClient),
    Coordinator(Box<GCoordinator>),
}

impl Actor<GMsg> for GNode {
    fn on_message(&mut self, env: &mut Env<'_, GMsg>, from: NodeId, msg: GMsg) {
        match self {
            GNode::Blank { shared, pending } => {
                let built = match msg {
                    GMsg::InitPrimary { bucket, level } => {
                        Some(GNode::Primary(GPrimary::new(shared.clone(), bucket, level)))
                    }
                    GMsg::InitParity { bucket, level } => {
                        Some(GNode::Parity(GParity::new(shared.clone(), bucket, level)))
                    }
                    other => {
                        pending.push((from, other));
                        None
                    }
                };
                if let Some(mut node) = built {
                    let replay = std::mem::take(pending);
                    for (f, m) in replay {
                        node.on_message(env, f, m);
                    }
                    *self = node;
                }
            }
            GNode::Primary(p) => p.on_message(env, from, msg),
            GNode::Parity(p) => p.on_message(env, from, msg),
            GNode::Client(c) => c.on_message(env, from, msg),
            GNode::Coordinator(c) => c.on_message(env, from, msg),
        }
    }

    fn on_timer(&mut self, _env: &mut Env<'_, GMsg>, _timer: TimerId) {}
}

/// Driver for the insertion-bound LH\*g baseline.
pub struct GroupedLh {
    sim: Sim<GMsg, GNode>,
    shared: GHandle,
    client: NodeId,
    coordinator: NodeId,
    next_op: u64,
}

impl GroupedLh {
    /// Create a file with group size `m` (the primary file starts with `m`
    /// buckets, as in the paper), bucket capacity `b`, and `record_len`-byte
    /// max payloads.
    pub fn new(
        m: usize,
        capacity: usize,
        record_len: usize,
        node_pool: usize,
        latency: LatencyModel,
    ) -> Self {
        assert!(m >= 2, "LH*g needs group size > 1");
        let shared: GHandle = Rc::new(GShared {
            primary: RefCell::new(Vec::new()),
            parity: RefCell::new(Vec::new()),
            coordinator: RefCell::new(lhrs_sim::EXTERNAL),
            m,
            cell_len: record_len + 4,
            capacity,
        });
        let mut sim: Sim<GMsg, GNode> = Sim::new(latency);
        let ids: Vec<NodeId> = (0..node_pool)
            .map(|_| {
                sim.add_node(GNode::Blank {
                    shared: shared.clone(),
                    pending: Vec::new(),
                })
            })
            .collect();
        let coordinator = ids[0];
        let client = ids[1];
        *shared.coordinator.borrow_mut() = coordinator;
        // Primary file starts with m buckets (N = m); parity with 1.
        for (i, id) in ids[2..2 + m].iter().enumerate() {
            sim.replace(
                *id,
                GNode::Primary(GPrimary::new(shared.clone(), i as u64, 0)),
            );
            shared.primary.borrow_mut().push(*id);
        }
        let parity0 = ids[2 + m];
        sim.replace(parity0, GNode::Parity(GParity::new(shared.clone(), 0, 0)));
        shared.parity.borrow_mut().push(parity0);
        let pool: Vec<NodeId> = ids[3 + m..].iter().rev().copied().collect();
        sim.replace(
            coordinator,
            GNode::Coordinator(Box::new(GCoordinator {
                shared: shared.clone(),
                primary_state: FileState::new(m as u64),
                parity_state: FileState::new(1),
                pool,
                next_token: 1,
                recoveries: HashMap::new(),
                recovered: Vec::new(),
            })),
        );
        sim.replace(
            client,
            GNode::Client(GClient {
                shared: shared.clone(),
                image: ClientImage::new(m as u64),
                pending: HashMap::new(),
                results: Vec::new(),
            }),
        );
        GroupedLh {
            sim,
            shared,
            client,
            coordinator,
            next_op: 1,
        }
    }

    fn exec(&mut self, op: GOp) -> Option<Vec<u8>> {
        let op_id = self.next_op;
        self.next_op += 1;
        self.sim.send_external(self.client, GMsg::Do { op_id, op });
        self.sim.run_until_idle();
        let client = match self.sim.actor_mut(self.client) {
            GNode::Client(c) => c,
            _ => unreachable!(),
        };
        client.settle_writes();
        let results = std::mem::take(&mut client.results);
        results
            .into_iter()
            .find(|(id, _)| *id == op_id)
            .expect("op completed")
            .1
    }

    /// Insert a record.
    pub fn insert(&mut self, key: u64, payload: Vec<u8>) {
        assert!(payload.len() + 4 <= self.shared.cell_len);
        self.exec(GOp::Insert(key, payload));
    }

    /// Key search.
    pub fn lookup(&mut self, key: u64) -> Option<Vec<u8>> {
        self.exec(GOp::Lookup(key))
    }

    /// Update a record (no-op if absent, as un-acked writes are blind).
    pub fn update(&mut self, key: u64, payload: Vec<u8>) {
        self.exec(GOp::Update(key, payload));
    }

    /// Delete a record.
    pub fn delete(&mut self, key: u64) {
        self.exec(GOp::Delete(key));
    }

    /// Algorithm A7: reconstruct the record with `key` *without touching
    /// its bucket* (declared unavailable), from the parity file and the
    /// other group members. Returns the payload or `None` for a key that
    /// never existed.
    pub fn recover_record(&mut self, key: u64) -> Option<Vec<u8>> {
        let unavailable = self.coordinator_state().address(key);
        self.sim
            .send_external(self.coordinator, GMsg::RecoverRecord { key, unavailable });
        self.sim.run_until_idle();
        let coord = match self.sim.actor_mut(self.coordinator) {
            GNode::Coordinator(c) => c,
            _ => unreachable!(),
        };
        let pos = coord
            .recovered
            .iter()
            .position(|(k, _)| *k == key)
            .expect("recovery completed");
        coord.recovered.remove(pos).1
    }

    /// The true primary-file state.
    fn coordinator_state(&self) -> FileState {
        match self.sim.actor(self.coordinator) {
            GNode::Coordinator(c) => c.primary_state,
            _ => unreachable!(),
        }
    }

    /// Primary buckets `M`.
    pub fn primary_buckets(&self) -> u64 {
        self.coordinator_state().bucket_count()
    }

    /// Parity-file buckets.
    pub fn parity_buckets(&self) -> u64 {
        self.shared.parity.borrow().len() as u64
    }

    /// Message statistics.
    pub fn stats(&self) -> NetStats {
        self.sim.stats().clone()
    }

    /// Deep invariant: for every record group, the XOR of the member cells
    /// equals the parity cell, the key lists match exactly, and no group
    /// has two members in one bucket (Proposition 1).
    pub fn verify_integrity(&self) -> Result<(), String> {
        use std::collections::HashSet;
        let cell_len = self.shared.cell_len;
        // Gather all primary records by group key.
        type Members = Vec<(u64, u64, Vec<u8>)>; // (key, bucket, payload)
        let mut groups: HashMap<(u64, u64), Members> = HashMap::new();
        for (b, node) in self.shared.primary.borrow().iter().enumerate() {
            let bucket = match self.sim.actor(*node) {
                GNode::Primary(p) => p,
                _ => return Err(format!("primary slot {b} holds a non-primary node")),
            };
            for (key, rec) in &bucket.records {
                groups.entry((rec.g, rec.r)).or_default().push((
                    *key,
                    b as u64,
                    rec.payload.clone(),
                ));
            }
        }
        // Proposition 1 and parity consistency.
        let mut all_parity: HashMap<u64, GParityRecord> = HashMap::new();
        for node in self.shared.parity.borrow().iter() {
            let pb = match self.sim.actor(*node) {
                GNode::Parity(p) => p,
                _ => return Err("parity slot holds a non-parity node".into()),
            };
            for (gk, rec) in &pb.records {
                all_parity.insert(*gk, rec.clone());
            }
        }
        for ((g, r), members) in &groups {
            if members.len() > self.shared.m {
                return Err(format!("group ({g},{r}) has {} members", members.len()));
            }
            let buckets: HashSet<u64> = members.iter().map(|(_, b, _)| *b).collect();
            if buckets.len() != members.len() {
                return Err(format!(
                    "group ({g},{r}) has two members in one bucket — Proposition 1 violated"
                ));
            }
            let gk = pack_gkey(*g, *r);
            let Some(prec) = all_parity.get(&gk) else {
                return Err(format!("group ({g},{r}) has no parity record"));
            };
            let mut expect = vec![0u8; cell_len];
            for (_, _, payload) in members {
                xor_into(&cell(payload, cell_len), &mut expect);
            }
            if prec.cell != expect {
                return Err(format!("group ({g},{r}): parity cell mismatch"));
            }
            let mut pk: Vec<u64> = prec.keys.clone();
            pk.sort_unstable();
            let mut mk: Vec<u64> = members.iter().map(|(k, _, _)| *k).collect();
            mk.sort_unstable();
            if pk != mk {
                return Err(format!("group ({g},{r}): key lists differ"));
            }
        }
        // No ghost parity records.
        for gk in all_parity.keys() {
            if !groups.iter().any(|((g, r), _)| pack_gkey(*g, *r) == *gk) {
                return Err(format!("ghost parity record for packed gkey {gk}"));
            }
        }
        Ok(())
    }
}

impl crate::Scheme for GroupedLh {
    fn name(&self) -> &'static str {
        "LH*g (ins-bound)"
    }

    fn insert(&mut self, key: u64, payload: Vec<u8>) {
        GroupedLh::insert(self, key, payload);
    }

    fn lookup(&mut self, key: u64) -> Option<Vec<u8>> {
        GroupedLh::lookup(self, key)
    }

    fn stats(&self) -> NetStats {
        GroupedLh::stats(self)
    }

    fn data_buckets(&self) -> u64 {
        self.primary_buckets()
    }

    fn total_servers(&self) -> u64 {
        self.primary_buckets() + self.parity_buckets()
    }

    fn storage_bytes(&self) -> (u64, u64) {
        let mut primary = 0u64;
        for node in self.shared.primary.borrow().iter() {
            if let GNode::Primary(p) = self.sim.actor(*node) {
                primary += p
                    .records
                    .values()
                    .map(|r| r.payload.len() as u64)
                    .sum::<u64>();
            }
        }
        let mut redundant = 0u64;
        for node in self.shared.parity.borrow().iter() {
            if let GNode::Parity(p) = self.sim.actor(*node) {
                redundant += p.records.values().map(|r| r.cell.len() as u64).sum::<u64>();
            }
        }
        (primary, redundant)
    }

    fn availability(&self, p: f64) -> f64 {
        // Record groups never co-locate two members (Proposition 1), so any
        // single bucket loss is recoverable; the k = 1 group formula is the
        // closest closed form (members scatter, making exact analysis
        // workload-dependent — see the module docs).
        lhrs_core::availability::file_availability(
            self.primary_buckets() + self.parity_buckets(),
            self.shared.m,
            1,
            p,
        )
    }

    fn tolerates(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> GroupedLh {
        GroupedLh::new(3, 8, 32, 1024, LatencyModel::instant())
    }

    fn payload(key: u64) -> Vec<u8> {
        format!("g{key}").into_bytes()
    }

    #[test]
    fn crud_roundtrip_with_parity_integrity() {
        let mut f = small();
        for key in 0..400u64 {
            f.insert(lhrs_lh::scramble(key), payload(key));
        }
        assert!(f.primary_buckets() > 20);
        assert!(f.parity_buckets() > 1, "parity file must have split too");
        f.verify_integrity().unwrap();
        for key in 0..400u64 {
            assert_eq!(f.lookup(lhrs_lh::scramble(key)).unwrap(), payload(key));
        }
        for key in (0..400u64).step_by(3) {
            f.update(lhrs_lh::scramble(key), format!("u{key}").into_bytes());
        }
        for key in (0..400u64).step_by(5) {
            f.delete(lhrs_lh::scramble(key));
        }
        f.verify_integrity().unwrap();
        assert_eq!(f.lookup(lhrs_lh::scramble(3)).unwrap(), b"u3");
        assert_eq!(f.lookup(lhrs_lh::scramble(5)), None);
    }

    #[test]
    fn splits_send_zero_parity_messages() {
        // Load until several splits happened, then compare: every
        // parity-delta message corresponds to an insert/update/delete,
        // never to a split (the LH*g headline property).
        let mut f = small();
        let n = 600u64;
        for key in 0..n {
            f.insert(lhrs_lh::scramble(key), payload(key));
        }
        let stats = f.stats();
        assert!(stats.count("split") > 10, "file must have split");
        // One parity delta per insert, plus only A2 forwards inside F2 —
        // none added by splits. Every forwarded chain is ≤ 2 hops and ends
        // with exactly one IAM, so: n ≤ deltas ≤ n + 2·IAMs.
        let deltas = stats.count("parity-delta");
        let iams = stats.count("parity-iam");
        assert!(deltas >= n, "every insert commits parity");
        assert!(
            deltas <= n + 2 * iams,
            "splits leaked parity traffic: {deltas} deltas for {n} inserts ({iams} F2 IAMs)"
        );
        f.verify_integrity().unwrap();
    }

    #[test]
    fn record_recovery_without_touching_the_bucket() {
        let mut f = small();
        for key in 0..300u64 {
            f.insert(lhrs_lh::scramble(key), payload(key));
        }
        // Recover several records purely from parity + other members.
        for key in [0u64, 17, 123, 299] {
            let got = f.recover_record(lhrs_lh::scramble(key));
            assert_eq!(got.unwrap(), payload(key), "key {key}");
        }
        // A key that never existed: unsuccessful-search semantics.
        assert_eq!(f.recover_record(42_424_242), None);
    }

    #[test]
    fn proposition_1_holds_across_heavy_splitting() {
        let mut f = GroupedLh::new(4, 4, 24, 2048, LatencyModel::instant());
        for key in 0..1500u64 {
            f.insert(lhrs_lh::scramble(key), vec![(key % 250) as u8; 12]);
        }
        // verify_integrity checks Proposition 1 (≤ m members, all in
        // distinct buckets) for every group.
        f.verify_integrity().unwrap();
    }

    #[test]
    fn duplicate_inserts_are_rejected_silently() {
        let mut f = small();
        f.insert(7, b"a".to_vec());
        f.insert(7, b"b".to_vec());
        assert_eq!(f.lookup(7).unwrap(), b"a");
        f.verify_integrity().unwrap();
    }
}
