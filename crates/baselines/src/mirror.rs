//! LH\*m — structural mirroring: every bucket has a full copy on a
//! separate server. 1-availability at 100 % storage overhead; recovery is
//! a plain copy.

use lhrs_sim::{LatencyModel, NetStats};

use crate::common::Mode;
use crate::scheme::{BaseDriver, Scheme};

/// An LH\*m file: primary + mirror bucket per logical bucket.
pub struct MirrorLh {
    driver: BaseDriver,
}

impl MirrorLh {
    /// Create with the given bucket capacity.
    pub fn new(capacity: usize, node_pool: usize, latency: LatencyModel) -> Self {
        MirrorLh {
            driver: BaseDriver::new(Mode::Mirror, capacity, node_pool, latency),
        }
    }

    /// Crash one copy of a logical bucket (replica 0 = primary, 1 = mirror).
    pub fn crash_replica(&mut self, bucket: u64, replica: usize) {
        self.driver.crash_replica(bucket, replica);
    }

    /// Rebuild a lost copy from its mirror — the LH\*m recovery: one bulk
    /// copy, no decoding.
    pub fn recover_replica(&mut self, bucket: u64, replica: usize) -> bool {
        self.driver.recover_replica(bucket, replica)
    }
}

impl Scheme for MirrorLh {
    fn name(&self) -> &'static str {
        "LH*m"
    }

    fn insert(&mut self, key: u64, payload: Vec<u8>) {
        self.driver.insert(key, payload);
    }

    fn lookup(&mut self, key: u64) -> Option<Vec<u8>> {
        self.driver.lookup(key)
    }

    fn stats(&self) -> NetStats {
        self.driver.stats()
    }

    fn data_buckets(&self) -> u64 {
        self.driver.data_buckets()
    }

    fn total_servers(&self) -> u64 {
        self.driver.total_servers()
    }

    fn storage_bytes(&self) -> (u64, u64) {
        self.driver.storage_bytes()
    }

    fn availability(&self, p: f64) -> f64 {
        lhrs_core::availability::mirrored_availability(self.data_buckets(), p)
    }

    fn tolerates(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirror_stores_two_full_copies() {
        let mut f = MirrorLh::new(8, 768, LatencyModel::instant());
        for k in 0..800u64 {
            f.insert(lhrs_lh::scramble(k), vec![7u8; 20]);
        }
        for k in 0..800u64 {
            assert_eq!(f.lookup(lhrs_lh::scramble(k)).unwrap(), vec![7u8; 20]);
        }
        let (primary, redundant) = f.storage_bytes();
        assert_eq!(primary, 800 * 20);
        assert_eq!(redundant, 800 * 20, "mirror must hold a full copy");
        assert_eq!(f.total_servers(), 2 * f.data_buckets());
    }

    #[test]
    fn mirror_recovery_is_one_bulk_copy() {
        let mut f = MirrorLh::new(8, 768, LatencyModel::instant());
        for k in 0..500u64 {
            f.insert(lhrs_lh::scramble(k), vec![5u8; 24]);
        }
        // Lose the primary copy of bucket 3; rebuild it from the mirror.
        f.crash_replica(3, 0);
        let before = f.stats();
        assert!(f.recover_replica(3, 0));
        let cost = f.stats().since(&before);
        // 1 transfer request + 1 bulk reply + install + ack.
        assert_eq!(cost.count("transfer-req"), 1);
        assert_eq!(cost.count("transfer-data"), 1);
        assert_eq!(cost.count("install"), 1);
        // Everything still readable.
        for k in 0..500u64 {
            assert_eq!(f.lookup(lhrs_lh::scramble(k)).unwrap(), vec![5u8; 24]);
        }
    }

    #[test]
    fn mirror_insert_costs_two_messages() {
        let mut f = MirrorLh::new(16, 768, LatencyModel::instant());
        for k in 0..1500u64 {
            f.insert(lhrs_lh::scramble(k), vec![0u8; 16]);
        }
        for k in 0..100u64 {
            f.lookup(lhrs_lh::scramble(k));
        }
        let before = f.stats();
        for k in 10_000..10_100u64 {
            f.insert(lhrs_lh::scramble(k), vec![0u8; 16]);
        }
        let cost = f.stats().since(&before);
        let structural: u64 = ["overflow", "split", "split-load", "init-data"]
            .iter()
            .map(|k| cost.count(k))
            .sum();
        let per_insert = (cost.total_messages() - structural) as f64 / 100.0;
        assert!(
            (2.0..=2.4).contains(&per_insert),
            "LH*m insert cost {per_insert}"
        );
    }
}
