//! Plain LH\* — the 0-availability base scheme.

use lhrs_sim::{LatencyModel, NetStats};

use crate::common::Mode;
use crate::scheme::{BaseDriver, Scheme};

/// A plain LH\* file: one bucket per server, no redundancy.
pub struct PlainLh {
    driver: BaseDriver,
}

impl PlainLh {
    /// Create with the given bucket capacity.
    pub fn new(capacity: usize, node_pool: usize, latency: LatencyModel) -> Self {
        PlainLh {
            driver: BaseDriver::new(Mode::Plain, capacity, node_pool, latency),
        }
    }

    /// IAMs received by the client.
    pub fn client_iams(&self) -> u64 {
        self.driver.client_iams()
    }
}

impl Scheme for PlainLh {
    fn name(&self) -> &'static str {
        "LH*"
    }

    fn insert(&mut self, key: u64, payload: Vec<u8>) {
        self.driver.insert(key, payload);
    }

    fn lookup(&mut self, key: u64) -> Option<Vec<u8>> {
        self.driver.lookup(key)
    }

    fn stats(&self) -> NetStats {
        self.driver.stats()
    }

    fn data_buckets(&self) -> u64 {
        self.driver.data_buckets()
    }

    fn total_servers(&self) -> u64 {
        self.driver.total_servers()
    }

    fn storage_bytes(&self) -> (u64, u64) {
        self.driver.storage_bytes()
    }

    fn availability(&self, p: f64) -> f64 {
        lhrs_core::availability::lh_star_availability(self.data_buckets(), p)
    }

    fn tolerates(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhrs_sim::LatencyModel;

    #[test]
    fn plain_lh_scales_and_serves() {
        let mut f = PlainLh::new(8, 512, LatencyModel::instant());
        for k in 0..1000u64 {
            f.insert(lhrs_lh::scramble(k), format!("v{k}").into_bytes());
        }
        assert!(f.data_buckets() > 60);
        for k in 0..1000u64 {
            assert_eq!(
                f.lookup(lhrs_lh::scramble(k)).unwrap(),
                format!("v{k}").into_bytes()
            );
        }
        assert_eq!(f.lookup(u64::MAX), None);
        let (primary, redundant) = f.storage_bytes();
        assert!(primary > 0);
        assert_eq!(redundant, 0);
        assert_eq!(f.total_servers(), f.data_buckets());
    }

    #[test]
    fn plain_insert_costs_one_message_steady_state() {
        let mut f = PlainLh::new(16, 512, LatencyModel::instant());
        for k in 0..2000u64 {
            f.insert(lhrs_lh::scramble(k), vec![0u8; 16]);
        }
        // Warm the image.
        for k in 0..100u64 {
            f.lookup(lhrs_lh::scramble(k));
        }
        let before = f.stats();
        for k in 10_000..10_100u64 {
            f.insert(lhrs_lh::scramble(k), vec![0u8; 16]);
        }
        let cost = f.stats().since(&before);
        let structural: u64 = ["overflow", "split", "split-load", "init-data"]
            .iter()
            .map(|k| cost.count(k))
            .sum();
        let per_insert = (cost.total_messages() - structural) as f64 / 100.0;
        assert!(
            (1.0..=1.2).contains(&per_insert),
            "LH* insert cost {per_insert}"
        );
    }
}
