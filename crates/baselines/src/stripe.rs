//! LH\*s — record striping: each record is chopped into `m` fragments plus
//! one XOR parity fragment on `m + 1` servers per logical bucket.
//! 1-availability at ≈ 1/m storage overhead, but a key search must gather
//! all `m` data fragments — the access-cost penalty that motivated record
//! grouping.

use lhrs_sim::{LatencyModel, NetStats};

use crate::common::Mode;
use crate::scheme::{BaseDriver, Scheme};

/// An LH\*s file with stripe width `m`.
pub struct StripeLh {
    driver: BaseDriver,
    m: usize,
}

impl StripeLh {
    /// Create with stripe width `m` and the given bucket capacity.
    pub fn new(m: usize, capacity: usize, node_pool: usize, latency: LatencyModel) -> Self {
        assert!(m >= 1);
        StripeLh {
            driver: BaseDriver::new(Mode::Stripe { m }, capacity, node_pool, latency),
            m,
        }
    }

    /// Stripe width.
    pub fn stripe_width(&self) -> usize {
        self.m
    }

    /// Crash one stripe server of a logical bucket (`replica < m` = data
    /// fragment, `= m` = parity fragment).
    pub fn crash_replica(&mut self, bucket: u64, replica: usize) {
        self.driver.crash_replica(bucket, replica);
    }

    /// Rebuild a lost stripe server by XOR over the surviving `m`
    /// fragments of every record — the LH\*s recovery.
    pub fn recover_replica(&mut self, bucket: u64, replica: usize) -> bool {
        self.driver.recover_replica(bucket, replica)
    }
}

impl Scheme for StripeLh {
    fn name(&self) -> &'static str {
        "LH*s"
    }

    fn insert(&mut self, key: u64, payload: Vec<u8>) {
        self.driver.insert(key, payload);
    }

    fn lookup(&mut self, key: u64) -> Option<Vec<u8>> {
        self.driver.lookup(key)
    }

    fn stats(&self) -> NetStats {
        self.driver.stats()
    }

    fn data_buckets(&self) -> u64 {
        self.driver.data_buckets()
    }

    fn total_servers(&self) -> u64 {
        self.driver.total_servers()
    }

    fn storage_bytes(&self) -> (u64, u64) {
        self.driver.storage_bytes()
    }

    fn availability(&self, p: f64) -> f64 {
        // Each logical bucket's m+1 stripe servers tolerate one loss.
        lhrs_core::availability::group_availability(self.m, 1, p).powi(self.data_buckets() as i32)
    }

    fn tolerates(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn striped_records_reassemble_exactly() {
        let mut f = StripeLh::new(4, 8, 1024, LatencyModel::instant());
        for k in 0..500u64 {
            let payload = format!("record-{k}-{}", "x".repeat((k % 23) as usize)).into_bytes();
            f.insert(lhrs_lh::scramble(k), payload);
        }
        for k in 0..500u64 {
            let expect = format!("record-{k}-{}", "x".repeat((k % 23) as usize)).into_bytes();
            assert_eq!(f.lookup(lhrs_lh::scramble(k)).unwrap(), expect, "key {k}");
        }
        assert_eq!(f.lookup(u64::MAX), None);
        assert_eq!(f.total_servers(), 5 * f.data_buckets());
    }

    #[test]
    fn stripe_recovery_rebuilds_any_fragment_server() {
        let mut f = StripeLh::new(4, 8, 1024, LatencyModel::instant());
        for k in 0..400u64 {
            let payload = format!("sr-{k}-{}", "y".repeat((k % 13) as usize)).into_bytes();
            f.insert(lhrs_lh::scramble(k), payload);
        }
        // Lose a data-fragment server and the parity server of bucket 2.
        for replica in [1usize, 4] {
            f.crash_replica(2, replica);
            let before = f.stats();
            assert!(f.recover_replica(2, replica));
            let cost = f.stats().since(&before);
            // m = 4 surviving replicas consulted.
            assert_eq!(cost.count("transfer-req"), 4);
            assert_eq!(cost.count("transfer-data"), 4);
        }
        for k in 0..400u64 {
            let expect = format!("sr-{k}-{}", "y".repeat((k % 13) as usize)).into_bytes();
            assert_eq!(f.lookup(lhrs_lh::scramble(k)).unwrap(), expect, "key {k}");
        }
    }

    #[test]
    fn stripe_lookup_costs_two_m_messages() {
        let m = 4;
        let mut f = StripeLh::new(m, 16, 1024, LatencyModel::instant());
        for k in 0..1000u64 {
            f.insert(lhrs_lh::scramble(k), vec![1u8; 64]);
        }
        for k in 0..100u64 {
            f.lookup(lhrs_lh::scramble(k)); // warm image
        }
        let before = f.stats();
        for k in 0..100u64 {
            f.lookup(lhrs_lh::scramble(k));
        }
        let cost = f.stats().since(&before);
        let per_lookup = cost.total_messages() as f64 / 100.0;
        // m requests + m replies.
        assert!(
            (2.0 * m as f64..=2.0 * m as f64 + 0.5).contains(&per_lookup),
            "LH*s lookup cost {per_lookup}"
        );
    }

    #[test]
    fn stripe_overhead_is_one_over_m() {
        let mut f = StripeLh::new(4, 8, 1024, LatencyModel::instant());
        for k in 0..400u64 {
            f.insert(lhrs_lh::scramble(k), vec![9u8; 64]);
        }
        let (primary, redundant) = f.storage_bytes();
        // The striped cell is [4-byte len | payload] = 68 B → 17 B/fragment.
        assert_eq!(primary, 400 * 68);
        assert_eq!(redundant, 400 * 17);
        // Overhead ratio is exactly 1/m.
        assert!((redundant as f64 / primary as f64 - 0.25).abs() < 1e-9);
    }
}
