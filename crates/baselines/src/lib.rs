//! Baseline SDDS schemes the LH\*RS evaluation compares against, all built
//! on the same simulator, addressing core, and cost accounting as
//! `lhrs-core` so comparisons are apples to apples:
//!
//! * [`PlainLh`] — **LH\***: the base scheme, no redundancy
//!   (0-availability). Insert costs 1 message, key search 2; any bucket
//!   loss loses data.
//! * [`MirrorLh`] — **LH\*m**: every bucket has a mirror on a separate
//!   server. Insert costs 2 messages; storage overhead is 100 %;
//!   1-availability per pair with trivial (copy) recovery.
//! * [`StripeLh`] — **LH\*s**: each record is striped into `m` fragments
//!   plus one XOR parity fragment on `m + 1` servers per logical bucket.
//!   Storage overhead ≈ 1/m like LH\*RS at k = 1, but a key search must
//!   gather `m` fragments (2m messages) — the search-cost weakness LH\*RS
//!   record grouping exists to avoid.
//! * **LH\*g** comes in two flavours: the *bucket-bound* grouping that
//!   LH\*RS generalises is exactly `lhrs-core` with `k = 1` (the
//!   generator's first parity column is all ones; wrap it with
//!   [`LhrsScheme`]), while [`GroupedLh`] implements the original
//!   *insertion-bound* grouping with a separate parity LH\* file — whose
//!   splits are parity-free but whose recovery must chase scattered group
//!   members (the trade-off LH\*RS flipped).
//!
//! The [`Scheme`] trait gives the benchmark harness a uniform surface:
//! insert, lookup, message statistics, storage accounting, and analytic
//! availability.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod common;
pub mod grouped;
mod mirror;
mod plain;
mod scheme;
mod stripe;

pub use grouped::GroupedLh;
pub use mirror::MirrorLh;
pub use plain::PlainLh;
pub use scheme::{LhrsScheme, Scheme};
pub use stripe::StripeLh;
