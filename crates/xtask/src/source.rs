//! A token-level model of one Rust source file.
//!
//! The workspace is hermetic (no crates registry), so there is no `syn`;
//! instead this module builds a *masked* copy of the source — identical
//! byte-for-byte layout, but with comments, string literals, and char
//! literals blanked out — so the checks can pattern-match tokens without
//! being fooled by `"unwrap"` inside a string or an example in a doc
//! comment. Alongside the mask it records:
//!
//! - `// lhrs-lint: allow(<check>) reason="..."` escape-hatch directives,
//! - which lines fall inside `#[cfg(test)]` modules or `#[test]` functions
//!   (the panic-freedom audit only governs production code).

/// One parsed escape-hatch directive.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// 1-based line the comment sits on. The directive silences findings on
    /// this line (trailing comment) and the next line (own-line comment).
    pub line: usize,
    /// The check name inside `allow(...)`.
    pub check: String,
    /// The justification string, if present and nonempty.
    pub reason: Option<String>,
}

/// Masked view of a source file plus the side tables the checks need.
pub struct SourceModel {
    /// Original text (for excerpting in messages).
    pub raw: String,
    /// Same length as `raw`; comments/strings/chars replaced by spaces
    /// (newlines preserved so offsets and line numbers agree).
    pub masked: String,
    /// Escape-hatch directives found in comments.
    pub allows: Vec<AllowDirective>,
    /// `in_test[line-1]` is true when the line is inside a `#[cfg(test)]`
    /// module or a `#[test]` function body.
    in_test: Vec<bool>,
}

impl SourceModel {
    /// Lex `raw` into a model.
    pub fn parse(raw: &str) -> SourceModel {
        let (masked, comments) = mask(raw);
        let allows = comments.iter().flat_map(parse_allow).collect();
        let in_test = test_regions(&masked);
        SourceModel {
            raw: raw.to_string(),
            masked,
            allows,
            in_test,
        }
    }

    /// Is the (1-based) line inside test-only code?
    pub fn line_in_test(&self, line: usize) -> bool {
        self.in_test
            .get(line.saturating_sub(1))
            .copied()
            .unwrap_or(false)
    }

    /// 1-based line number of a byte offset.
    pub fn line_of(&self, offset: usize) -> usize {
        self.raw[..offset.min(self.raw.len())]
            .bytes()
            .filter(|&b| b == b'\n')
            .count()
            + 1
    }

    /// The allow directive (if any) covering `line` for `check`.
    pub fn allow_for(&self, check: &str, line: usize) -> Option<&AllowDirective> {
        self.allows
            .iter()
            .find(|a| a.check == check && (a.line == line || a.line + 1 == line))
    }
}

/// A comment's text plus the 1-based line it starts on.
struct Comment {
    line: usize,
    text: String,
}

/// Blank out comments, strings, and char literals; collect comment text.
fn mask(raw: &str) -> (String, Vec<Comment>) {
    let bytes = raw.as_bytes();
    let mut out = bytes.to_vec();
    let mut comments = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    // Blank `out[a..b]`, preserving newlines.
    fn blank(out: &mut [u8], a: usize, b: usize) {
        for c in out.iter_mut().take(b).skip(a) {
            if *c != b'\n' {
                *c = b' ';
            }
        }
    }

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                let start = i;
                let start_line = line;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                comments.push(Comment {
                    line: start_line,
                    text: raw[start..i].to_string(),
                });
                blank(&mut out, start, i);
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let start = i;
                let start_line = line;
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                comments.push(Comment {
                    line: start_line,
                    text: raw[start..i.min(raw.len())].to_string(),
                });
                blank(&mut out, start, i);
            }
            b'"' => {
                let start = i;
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                blank(&mut out, start, i);
            }
            b'r' | b'b' if is_raw_string_start(bytes, i) => {
                // r"..", r#".."#, br".."; skip the prefix to the quote.
                let start = i;
                while i < bytes.len() && bytes[i] != b'"' && bytes[i] != b'#' {
                    i += 1;
                }
                let mut hashes = 0usize;
                while i < bytes.len() && bytes[i] == b'#' {
                    hashes += 1;
                    i += 1;
                }
                i += 1; // opening quote
                loop {
                    if i >= bytes.len() {
                        break;
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                        continue;
                    }
                    if bytes[i] == b'"' {
                        let mut j = i + 1;
                        let mut seen = 0usize;
                        while j < bytes.len() && bytes[j] == b'#' && seen < hashes {
                            seen += 1;
                            j += 1;
                        }
                        if seen == hashes {
                            i = j;
                            break;
                        }
                    }
                    i += 1;
                }
                blank(&mut out, start, i);
            }
            b'b' if i + 1 < bytes.len() && bytes[i + 1] == b'\'' && !prev_is_ident(bytes, i) => {
                let start = i;
                i += 2;
                i = skip_char_literal_body(bytes, i);
                blank(&mut out, start, i);
            }
            b'\'' => {
                // Char literal or lifetime. A lifetime is `'ident` not
                // followed by a closing quote.
                if is_char_literal(bytes, i) {
                    let start = i;
                    i += 1;
                    i = skip_char_literal_body(bytes, i);
                    blank(&mut out, start, i);
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    // `out` only ever swaps ASCII bytes for spaces, so it stays valid UTF-8.
    (String::from_utf8_lossy(&out).into_owned(), comments)
}

fn prev_is_ident(bytes: &[u8], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_')
}

fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    if prev_is_ident(bytes, i) {
        return false;
    }
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if j >= bytes.len() || bytes[j] != b'r' {
        return false;
    }
    j += 1;
    while j < bytes.len() && bytes[j] == b'#' {
        j += 1;
    }
    j < bytes.len() && bytes[j] == b'"'
}

/// After the opening quote of a char/byte literal: skip to past the close.
fn skip_char_literal_body(bytes: &[u8], mut i: usize) -> usize {
    if i < bytes.len() && bytes[i] == b'\\' {
        i += 2;
        // \u{...}
        while i < bytes.len() && bytes[i] != b'\'' {
            i += 1;
        }
        return (i + 1).min(bytes.len());
    }
    // Single (possibly multi-byte) char then closing quote.
    while i < bytes.len() && bytes[i] != b'\'' {
        i += 1;
    }
    (i + 1).min(bytes.len())
}

/// `'x'` vs `'lifetime`: a char literal closes with `'` within a couple of
/// chars (or after an escape); a lifetime never closes.
fn is_char_literal(bytes: &[u8], i: usize) -> bool {
    let mut j = i + 1;
    if j >= bytes.len() {
        return false;
    }
    if bytes[j] == b'\\' {
        return true;
    }
    // Skip one UTF-8 char.
    j += 1;
    while j < bytes.len() && (bytes[j] & 0xC0) == 0x80 {
        j += 1;
    }
    j < bytes.len() && bytes[j] == b'\''
}

/// Parse `// lhrs-lint: allow(<check>[, <check>...]) reason="..."`.
/// A comma-separated list silences several checks on the same line with one
/// shared justification; each listed check becomes its own directive.
fn parse_allow(c: &Comment) -> Vec<AllowDirective> {
    let text = c.text.trim_start_matches('/').trim();
    let Some(rest) = text.strip_prefix("lhrs-lint:").map(str::trim) else {
        return Vec::new();
    };
    let Some(rest) = rest.strip_prefix("allow(") else {
        return Vec::new();
    };
    let Some(close) = rest.find(')') else {
        return Vec::new();
    };
    let tail = rest[close + 1..].trim();
    let reason = tail
        .strip_prefix("reason=\"")
        .and_then(|r| r.find('"').map(|end| r[..end].trim().to_string()))
        .filter(|r| !r.is_empty());
    rest[..close]
        .split(',')
        .map(str::trim)
        .filter(|check| !check.is_empty())
        .map(|check| AllowDirective {
            line: c.line,
            check: check.to_string(),
            reason: reason.clone(),
        })
        .collect()
}

/// Mark lines covered by `#[cfg(test)] mod ... { }` blocks and
/// `#[test] fn ... { }` bodies. Works on the masked text so braces inside
/// strings cannot unbalance the match.
fn test_regions(masked: &str) -> Vec<bool> {
    let lines = masked.bytes().filter(|&b| b == b'\n').count() + 1;
    let mut in_test = vec![false; lines];
    let bytes = masked.as_bytes();
    for marker in ["#[cfg(test)]", "#[test]"] {
        let mut from = 0usize;
        while let Some(pos) = find_from(masked, marker, from) {
            from = pos + marker.len();
            // The attribute line itself is test-only too.
            let start_line = line_at(bytes, pos);
            if let Some((_open, close)) = next_brace_block(bytes, from) {
                let end_line = line_at(bytes, close);
                for l in in_test
                    .iter_mut()
                    .take(end_line.min(lines))
                    .skip(start_line.saturating_sub(1))
                {
                    *l = true;
                }
            }
        }
    }
    in_test
}

fn find_from(hay: &str, needle: &str, from: usize) -> Option<usize> {
    hay.get(from..)?.find(needle).map(|p| p + from)
}

fn line_at(bytes: &[u8], pos: usize) -> usize {
    bytes
        .iter()
        .take(pos.min(bytes.len()))
        .filter(|&&b| b == b'\n')
        .count()
        + 1
}

/// From `from`, find the next `{` and its matching `}` (byte offsets).
pub fn next_brace_block(bytes: &[u8], from: usize) -> Option<(usize, usize)> {
    let mut i = from;
    while i < bytes.len() && bytes[i] != b'{' {
        // A `;` before any `{` means the item has no body (e.g. a
        // declaration) — do not leak into the next item's braces.
        if bytes[i] == b';' {
            return None;
        }
        i += 1;
    }
    if i >= bytes.len() {
        return None;
    }
    let open = i;
    let mut depth = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some((open, i));
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// A minimal token over the masked text: identifier or single punct byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier/keyword with its byte offset.
    Ident { text: String, offset: usize },
    /// One punctuation byte with its offset.
    Punct { ch: u8, offset: usize },
}

impl Tok {
    /// Byte offset of the token start.
    pub fn offset(&self) -> usize {
        match self {
            Tok::Ident { offset, .. } | Tok::Punct { offset, .. } => *offset,
        }
    }
}

/// Tokenize masked text (whitespace dropped; numbers lex as idents, which is
/// fine for the pattern checks here).
pub fn tokenize(masked: &str) -> Vec<Tok> {
    let bytes = masked.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        if c.is_ascii_whitespace() {
            i += 1;
        } else if c.is_ascii_alphanumeric() || c == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            toks.push(Tok::Ident {
                text: masked[start..i].to_string(),
                offset: start,
            });
        } else if c < 0x80 {
            toks.push(Tok::Punct { ch: c, offset: i });
            i += 1;
        } else {
            // Non-ASCII outside strings/comments: skip.
            i += 1;
        }
    }
    toks
}
