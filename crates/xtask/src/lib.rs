//! lhrs-xtask: project-specific static analysis for the LH\*RS workspace.
//!
//! `cargo run -p lhrs-xtask -- lint` runs five checks that generic tooling
//! (`clippy -D warnings`) cannot express because they encode *protocol*
//! invariants, not language idioms:
//!
//! 1. **panic-freedom** — the actor hot paths (`core::{coordinator,
//!    data_bucket, client}`, `rs::code`, `net::{frame, transport, host}`)
//!    must not contain `.unwrap()`, `.expect(...)`, `panic!`/`unreachable!`
//!    macros, direct slice indexing, or narrowing `as` casts. LH\*RS sells
//!    k-availability; the protocol logic itself aborting on a malformed
//!    frame or a lagging peer defeats the whole design.
//! 2. **codec-exhaustiveness** — every `Msg` and `CoordEvent` variant must
//!    have an arm in both the encode and decode halves of `core/src/wire.rs`
//!    so a new protocol message cannot ship without wire coverage.
//! 3. **config-knob** — every `Config` field must be read somewhere (dead
//!    knobs silently ignore operator intent).
//! 4. **test-hygiene** — no bare `#[ignore]`, no sleep-based
//!    synchronization in `crates/net` tests.
//! 5. **obs-coverage** — every `Msg` variant must carry its own `fn kind`
//!    label (a `_ =>` wildcard would collapse new protocol messages into
//!    one counter bucket), and the `msgs_sent`/`msgs_recv` counter sites
//!    in the simulator and the TCP host must stay in place.
//!
//! Escape hatch: `// lhrs-lint: allow(<check>) reason="..."` on the finding
//! line or the line above. The reason string is mandatory and must be
//! nonempty — an allow without a justification is itself a finding.

#![forbid(unsafe_code)]

pub mod checks;
pub mod source;

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Which check produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Check {
    /// Panic-freedom audit of the actor hot paths.
    PanicFreedom,
    /// Wire-codec exhaustiveness over `Msg`/`CoordEvent`.
    CodecExhaustiveness,
    /// Dead-knob detection on `Config`.
    ConfigKnob,
    /// Test-attribute hygiene.
    TestHygiene,
    /// Observability coverage over `Msg` kinds and counter sites.
    ObsCoverage,
}

impl Check {
    /// The name used in `allow(<name>)` directives and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            Check::PanicFreedom => "panic-freedom",
            Check::CodecExhaustiveness => "codec-exhaustiveness",
            Check::ConfigKnob => "config-knob",
            Check::TestHygiene => "test-hygiene",
            Check::ObsCoverage => "obs-coverage",
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The check that fired.
    pub check: Check,
    /// File label (workspace-relative path).
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
    /// `Some(reason)` when silenced by a justified escape hatch.
    pub allowed: Option<String>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.check.name(),
            self.message
        )?;
        if let Some(r) = &self.allowed {
            write!(f, " (allowed: {r})")?;
        }
        Ok(())
    }
}

/// Hot-path modules governed by the panic-freedom audit
/// (workspace-relative paths).
pub const HOT_PATHS: [&str; 9] = [
    "crates/core/src/coordinator.rs",
    "crates/core/src/data_bucket.rs",
    "crates/core/src/client.rs",
    "crates/core/src/storage.rs",
    "crates/rs/src/code.rs",
    "crates/net/src/frame.rs",
    "crates/net/src/transport.rs",
    "crates/net/src/host.rs",
    "crates/wal/src/lib.rs",
];

/// Walk a directory tree collecting `.rs` files (sorted for determinism).
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            // `target/` holds build products; `crates/xtask` is the lint
            // itself (its sources and fixtures deliberately contain the
            // patterns being hunted).
            if name == "target" || name == ".git" || path.ends_with("crates/xtask") {
                continue;
            }
            rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Load every workspace source as `(workspace-relative label, text)`.
pub fn workspace_sources(root: &Path) -> Vec<(String, String)> {
    let mut files = Vec::new();
    rs_files(root, &mut files);
    files
        .into_iter()
        .filter_map(|p| {
            let label = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace('\\', "/");
            fs::read_to_string(&p).ok().map(|text| (label, text))
        })
        .collect()
}

/// Run every check over the workspace rooted at `root`.
///
/// Returns *all* findings, including allowed ones (callers filter on
/// [`Finding::allowed`] to decide pass/fail).
pub fn run_all(root: &Path) -> Vec<Finding> {
    let sources = workspace_sources(root);
    let get =
        |label: &str| -> Option<&(String, String)> { sources.iter().find(|(l, _)| l == label) };
    let mut findings = Vec::new();

    // 1. Panic freedom over the hot paths.
    for hp in HOT_PATHS {
        if let Some((label, text)) = get(hp) {
            findings.extend(checks::check_panic_freedom(label, text));
        } else {
            findings.push(Finding {
                check: Check::PanicFreedom,
                file: hp.to_string(),
                line: 1,
                message: "hot-path module listed in lhrs_xtask::HOT_PATHS is missing".to_string(),
                allowed: None,
            });
        }
    }

    // 2. Codec exhaustiveness: Msg and CoordEvent against wire.rs.
    if let Some((wire_label, wire_src)) = get("crates/core/src/wire.rs") {
        for (enum_name, def, enc, dec) in [
            ("Msg", "crates/core/src/msg.rs", "encode_msg", "decode_msg"),
            (
                "CoordEvent",
                "crates/core/src/coordinator.rs",
                "encode_coord_event",
                "decode_coord_event",
            ),
        ] {
            if let Some((_, enum_src)) = get(def) {
                findings.extend(checks::check_codec_exhaustiveness(
                    enum_name, enum_src, wire_label, wire_src, enc, dec,
                ));
            }
        }
    } else {
        findings.push(Finding {
            check: Check::CodecExhaustiveness,
            file: "crates/core/src/wire.rs".to_string(),
            line: 1,
            message: "wire.rs missing".to_string(),
            allowed: None,
        });
    }

    // 3. Config-knob coverage. The `ConfigBuilder` impl is excluded: its
    // setters *store* every knob, which must not count as the knob being
    // honored anywhere.
    if let Some((def_label, def_src)) = get("crates/core/src/config.rs") {
        findings.extend(checks::check_config_knobs(
            "Config",
            def_label,
            def_src,
            &sources,
            Some("ConfigBuilder"),
        ));
    }

    // 4. Test hygiene, workspace-wide.
    for (label, text) in &sources {
        let in_net = label.starts_with("crates/net/");
        findings.extend(checks::check_test_hygiene(label, text, in_net));
    }

    // 5. Observability coverage: per-variant kind labels on `Msg`, and the
    // counter call sites that feed `msgs_sent`/`msgs_recv`.
    if let Some((msg_label, msg_src)) = get("crates/core/src/msg.rs") {
        let site = |label: &'static str| (label, get(label).map(|(_, t)| t.as_str()));
        let sites: Vec<checks::ObsSite<'_>> = OBS_SITES
            .iter()
            .map(|(label, needle, role)| {
                let (label, text) = site(label);
                (label, text, *needle, *role)
            })
            .collect();
        findings.extend(checks::check_obs_coverage(
            "Msg", msg_src, msg_label, msg_src, &sites,
        ));
    } else {
        findings.push(Finding {
            check: Check::ObsCoverage,
            file: "crates/core/src/msg.rs".to_string(),
            line: 1,
            message: "msg.rs missing".to_string(),
            allowed: None,
        });
    }

    findings
}

/// The counter call sites the obs-coverage check pins down: deleting any
/// one silently blinds the drill assertions built on the metrics.
pub const OBS_SITES: [(&str, &str, &str); 4] = [
    (
        "crates/sim/src/actor.rs",
        "incr_kind(\"msgs_sent\"",
        "Env::send",
    ),
    (
        "crates/sim/src/actor.rs",
        "add_kind(\"msgs_sent\"",
        "Env::multicast",
    ),
    (
        "crates/sim/src/engine.rs",
        "incr_kind(\"msgs_recv\"",
        "Sim::step",
    ),
    (
        "crates/net/src/host.rs",
        "incr_kind(\"msgs_recv\"",
        "NodeHost dispatch",
    ),
];

/// Format the `--fix-allow` output: one suggested escape-hatch comment per
/// unallowed finding, TODO-annotated so the residue stays visible in review.
pub fn fix_allow_report(findings: &[Finding]) -> String {
    let mut out = String::new();
    let open: Vec<_> = findings.iter().filter(|f| f.allowed.is_none()).collect();
    if open.is_empty() {
        out.push_str("no unallowed findings; nothing to emit\n");
        return out;
    }
    out.push_str(
        "# lhrs-lint allowlist — paste each comment on the line above its finding\n\
         # and replace the TODO with a real justification before merging.\n",
    );
    for f in open {
        out.push_str(&format!(
            "{}:{}:\n    // lhrs-lint: allow({}) reason=\"TODO: justify — {}\"\n",
            f.file,
            f.line,
            f.check.name(),
            f.message.replace('"', "'"),
        ));
    }
    out
}

/// Locate the workspace root: walk up from `start` until a `Cargo.toml`
/// containing `[workspace]` is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
