//! lhrs-xtask: project-specific static analysis for the LH\*RS workspace.
//!
//! `cargo run -p lhrs-xtask -- lint` runs ten checks that generic tooling
//! (`clippy -D warnings`) cannot express because they encode *protocol*
//! invariants, not language idioms:
//!
//! 1. **panic-freedom** — the actor hot-path modules (see [`HOT_PATHS`])
//!    must not contain `.unwrap()`, `.expect(...)`, `panic!`/`unreachable!`
//!    macros, direct slice indexing, or narrowing `as` casts. LH\*RS sells
//!    k-availability; the protocol logic itself aborting on a malformed
//!    frame or a lagging peer defeats the whole design.
//! 2. **transitive-panic** — the same patterns (plus the `assert!` family)
//!    anywhere in `gf`/`rs`/`lh`/`obs`/`convert` code *reachable* from the
//!    hot paths through the workspace call graph ([`graph`]); each finding
//!    prints the offending call chain.
//! 3. **unchecked-arithmetic** — raw `+`/`-`/`*`/`<<` on reachable
//!    helper-crate code; overflow semantics must be spelled out with
//!    `checked_`/`saturating_`/`wrapping_` (or justified).
//! 4. **codec-exhaustiveness** — every `Msg` and `CoordEvent` variant must
//!    have an arm in both the encode and decode halves of `core/src/wire.rs`
//!    so a new protocol message cannot ship without wire coverage.
//! 5. **wire-tag** — the extracted `mod tag`/`mod etag` tables must agree
//!    with the pinned manifest `wire_tags.toml` (no collisions, no drift,
//!    no reuse of retired tags) — see [`manifest`].
//! 6. **drill-coverage** — every `CoordEvent` variant and every
//!    `restart_*`/`wal_*`/`recovery_*` counter must be asserted by at
//!    least one test, so a new failure path cannot land untested.
//! 7. **config-knob** — every `Config` field must be read somewhere (dead
//!    knobs silently ignore operator intent).
//! 8. **test-hygiene** — no bare `#[ignore]`, no sleep-based
//!    synchronization in `crates/net` tests.
//! 9. **obs-coverage** — every `Msg` variant must carry its own `fn kind`
//!    label (a `_ =>` wildcard would collapse new protocol messages into
//!    one counter bucket), and the `msgs_sent`/`msgs_recv` counter sites
//!    in the simulator and the TCP host must stay in place.
//! 10. **unused-allow** — every escape-hatch directive must still silence
//!     something; stale allows rot into false confidence.
//!
//! Escape hatch: `// lhrs-lint: allow(<check>) reason="..."` on the finding
//! line or the line above. The reason string is mandatory and must be
//! nonempty — an allow without a justification is itself a finding.
//!
//! `--json` emits the findings as a machine-readable array for CI
//! annotation; see [`findings_to_json`].

#![forbid(unsafe_code)]

pub mod checks;
pub mod graph;
pub mod items;
pub mod manifest;
pub mod source;

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Which check produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Check {
    /// Panic-freedom audit of the actor hot paths.
    PanicFreedom,
    /// Transitive panic-reachability through the workspace call graph.
    TransitivePanic,
    /// Unchecked integer arithmetic on reachable helper-crate code.
    UncheckedArith,
    /// Wire-codec exhaustiveness over `Msg`/`CoordEvent`.
    CodecExhaustiveness,
    /// Wire-tag manifest agreement (`wire_tags.toml`).
    WireTag,
    /// Drill coverage: events and counters asserted by tests.
    DrillCoverage,
    /// Dead-knob detection on `Config`.
    ConfigKnob,
    /// Test-attribute hygiene.
    TestHygiene,
    /// Observability coverage over `Msg` kinds and counter sites.
    ObsCoverage,
    /// Escape-hatch directives that no longer silence anything.
    UnusedAllow,
}

impl Check {
    /// The name used in `allow(<name>)` directives and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            Check::PanicFreedom => "panic-freedom",
            Check::TransitivePanic => "transitive-panic",
            Check::UncheckedArith => "unchecked-arithmetic",
            Check::CodecExhaustiveness => "codec-exhaustiveness",
            Check::WireTag => "wire-tag",
            Check::DrillCoverage => "drill-coverage",
            Check::ConfigKnob => "config-knob",
            Check::TestHygiene => "test-hygiene",
            Check::ObsCoverage => "obs-coverage",
            Check::UnusedAllow => "unused-allow",
        }
    }

    /// Every check name, for validating `allow(...)` directives.
    pub const ALL: [Check; 10] = [
        Check::PanicFreedom,
        Check::TransitivePanic,
        Check::UncheckedArith,
        Check::CodecExhaustiveness,
        Check::WireTag,
        Check::DrillCoverage,
        Check::ConfigKnob,
        Check::TestHygiene,
        Check::ObsCoverage,
        Check::UnusedAllow,
    ];
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The check that fired.
    pub check: Check,
    /// File label (workspace-relative path).
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
    /// `Some(reason)` when silenced by a justified escape hatch.
    pub allowed: Option<String>,
    /// For graph checks: the call chain `root → … → offending fn`.
    pub chain: Vec<String>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.check.name(),
            self.message
        )?;
        if let Some(r) = &self.allowed {
            write!(f, " (allowed: {r})")?;
        }
        for (i, hop) in self.chain.iter().enumerate() {
            write!(f, "\n    {}{}", if i == 0 { "via " } else { "  → " }, hop)?;
        }
        Ok(())
    }
}

/// Hot-path modules governed by the strict per-file panic-freedom audit
/// (workspace-relative paths).
///
/// This is a subset of [`graph::ROOT_FILES`]: every file here is also a
/// reachability root, but the roots additionally include the client-side
/// orchestration modules (`file.rs`, `parity_bucket.rs`) whose *helpers*
/// must be panic-free transitively even though the modules themselves keep
/// driver-validated invariants that the per-file audit would reject.
pub const HOT_PATHS: [&str; 10] = [
    "crates/core/src/coordinator.rs",
    "crates/core/src/data_bucket.rs",
    "crates/core/src/client.rs",
    "crates/core/src/storage.rs",
    "crates/rs/src/code.rs",
    "crates/net/src/frame.rs",
    "crates/net/src/transport.rs",
    "crates/net/src/host.rs",
    "crates/net/src/durable.rs",
    "crates/wal/src/lib.rs",
];

/// Walk a directory tree collecting `.rs` files (sorted for determinism).
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            // `target/` holds build products; `crates/xtask` is the lint
            // itself (its sources and fixtures deliberately contain the
            // patterns being hunted).
            if name == "target" || name == ".git" || path.ends_with("crates/xtask") {
                continue;
            }
            rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Load every workspace source as `(workspace-relative label, text)`.
pub fn workspace_sources(root: &Path) -> Vec<(String, String)> {
    let mut files = Vec::new();
    rs_files(root, &mut files);
    files
        .into_iter()
        .filter_map(|p| {
            let label = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace('\\', "/");
            fs::read_to_string(&p).ok().map(|text| (label, text))
        })
        .collect()
}

/// Run every check over the workspace rooted at `root`.
///
/// Returns *all* findings, including allowed ones (callers filter on
/// [`Finding::allowed`] to decide pass/fail).
pub fn run_all(root: &Path) -> Vec<Finding> {
    let sources = workspace_sources(root);
    let get =
        |label: &str| -> Option<&(String, String)> { sources.iter().find(|(l, _)| l == label) };
    let mut findings = Vec::new();

    // 1. Panic freedom over the hot paths.
    for hp in HOT_PATHS {
        if let Some((label, text)) = get(hp) {
            findings.extend(checks::check_panic_freedom(label, text));
        } else {
            findings.push(Finding {
                check: Check::PanicFreedom,
                file: hp.to_string(),
                line: 1,
                message: "hot-path module listed in lhrs_xtask::HOT_PATHS is missing".to_string(),
                allowed: None,
                chain: Vec::new(),
            });
        }
    }

    // 2. Codec exhaustiveness: Msg and CoordEvent against wire.rs.
    if let Some((wire_label, wire_src)) = get("crates/core/src/wire.rs") {
        for (enum_name, def, enc, dec) in [
            ("Msg", "crates/core/src/msg.rs", "encode_msg", "decode_msg"),
            (
                "CoordEvent",
                "crates/core/src/coordinator.rs",
                "encode_coord_event",
                "decode_coord_event",
            ),
        ] {
            if let Some((_, enum_src)) = get(def) {
                findings.extend(checks::check_codec_exhaustiveness(
                    enum_name, enum_src, wire_label, wire_src, enc, dec,
                ));
            }
        }
    } else {
        findings.push(Finding {
            check: Check::CodecExhaustiveness,
            file: "crates/core/src/wire.rs".to_string(),
            line: 1,
            message: "wire.rs missing".to_string(),
            allowed: None,
            chain: Vec::new(),
        });
    }

    // 3. Config-knob coverage. The `ConfigBuilder` impl is excluded: its
    // setters *store* every knob, which must not count as the knob being
    // honored anywhere.
    if let Some((def_label, def_src)) = get("crates/core/src/config.rs") {
        findings.extend(checks::check_config_knobs(
            "Config",
            def_label,
            def_src,
            &sources,
            Some("ConfigBuilder"),
        ));
    }

    // 4. Test hygiene, workspace-wide.
    for (label, text) in &sources {
        let in_net = label.starts_with("crates/net/");
        findings.extend(checks::check_test_hygiene(label, text, in_net));
    }

    // 5. Observability coverage: per-variant kind labels on `Msg`, and the
    // counter call sites that feed `msgs_sent`/`msgs_recv`.
    if let Some((msg_label, msg_src)) = get("crates/core/src/msg.rs") {
        let site = |label: &'static str| (label, get(label).map(|(_, t)| t.as_str()));
        let sites: Vec<checks::ObsSite<'_>> = OBS_SITES
            .iter()
            .map(|(label, needle, role)| {
                let (label, text) = site(label);
                (label, text, *needle, *role)
            })
            .collect();
        findings.extend(checks::check_obs_coverage(
            "Msg", msg_src, msg_label, msg_src, &sites,
        ));
    } else {
        findings.push(Finding {
            check: Check::ObsCoverage,
            file: "crates/core/src/msg.rs".to_string(),
            line: 1,
            message: "msg.rs missing".to_string(),
            allowed: None,
            chain: Vec::new(),
        });
    }

    // 6. Call-graph checks: transitive panic-reachability and unchecked
    // arithmetic over everything the actor hot paths can reach.
    let ws = items::WorkspaceIndex::build(&sources);
    let adj = graph::build_graph(&ws);
    let reach_info = graph::reach(&ws, &adj, |f| {
        graph::ROOT_FILES.contains(&ws.files[f.file].label.as_str())
    });
    findings.extend(graph::run_graph_checks(&ws, &reach_info));

    // 7. Wire-tag manifest agreement.
    if let Some((wire_label, wire_src)) = get("crates/core/src/wire.rs") {
        let manifest_text = fs::read_to_string(root.join("wire_tags.toml")).ok();
        findings.extend(manifest::check_wire_tags(
            wire_label,
            wire_src,
            manifest_text.as_deref(),
        ));
    }

    // 8. Drill coverage: CoordEvent variants and recovery counters must be
    // asserted by at least one test.
    if let Some((coord_label, coord_src)) = get("crates/core/src/coordinator.rs") {
        findings.extend(checks::check_drill_coverage(
            coord_label,
            coord_src,
            &sources,
        ));
    }

    // 9. Unused allows — runs last, over every other check's matches.
    let stale = check_unused_allows(&sources, &findings);
    findings.extend(stale);

    findings
}

/// Report escape-hatch directives that silence nothing (or name a check
/// that does not exist). A stale allow is worse than none: it advertises a
/// suppressed finding that is no longer there, and it would silently
/// re-arm if the pattern ever came back in a different shape.
pub fn check_unused_allows(sources: &[(String, String)], findings: &[Finding]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (label, text) in sources {
        let model = source::SourceModel::parse(text);
        for a in &model.allows {
            if !Check::ALL.iter().any(|c| c.name() == a.check) {
                out.push(Finding {
                    check: Check::UnusedAllow,
                    file: label.clone(),
                    line: a.line,
                    message: format!(
                        "allow({}) names an unknown check; valid names: {}",
                        a.check,
                        Check::ALL
                            .iter()
                            .map(|c| c.name())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                    allowed: None,
                    chain: Vec::new(),
                });
                continue;
            }
            let used = findings.iter().any(|f| {
                f.file == *label
                    && f.check.name() == a.check
                    && (f.line == a.line || f.line == a.line + 1)
            });
            if !used {
                out.push(Finding {
                    check: Check::UnusedAllow,
                    file: label.clone(),
                    line: a.line,
                    message: format!(
                        "allow({}) no longer silences any finding; delete the stale escape hatch",
                        a.check
                    ),
                    allowed: None,
                    chain: Vec::new(),
                });
            }
        }
    }
    out
}

/// Render findings as a JSON array for CI annotation (`--json`). Hand-
/// rolled emission — the analyzer stays zero-dep.
pub fn findings_to_json(findings: &[Finding]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut out = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        let chain = f
            .chain
            .iter()
            .map(|h| format!("\"{}\"", esc(h)))
            .collect::<Vec<_>>()
            .join(", ");
        let allowed = match &f.allowed {
            Some(r) => format!("\"{}\"", esc(r)),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "  {{\"check\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\", \
             \"allowed\": {}, \"chain\": [{}]}}{}\n",
            f.check.name(),
            esc(&f.file),
            f.line,
            esc(&f.message),
            allowed,
            chain,
            if i + 1 == findings.len() { "" } else { "," }
        ));
    }
    out.push_str("]\n");
    out
}

/// The counter call sites the obs-coverage check pins down: deleting any
/// one silently blinds the drill assertions built on the metrics.
pub const OBS_SITES: [(&str, &str, &str); 4] = [
    (
        "crates/sim/src/actor.rs",
        "incr_kind(\"msgs_sent\"",
        "Env::send",
    ),
    (
        "crates/sim/src/actor.rs",
        "add_kind(\"msgs_sent\"",
        "Env::multicast",
    ),
    (
        "crates/sim/src/engine.rs",
        "incr_kind(\"msgs_recv\"",
        "Sim::step",
    ),
    (
        "crates/net/src/host.rs",
        "incr_kind(\"msgs_recv\"",
        "NodeHost dispatch",
    ),
];

/// Format the `--fix-allow` output: one suggested escape-hatch comment per
/// unallowed finding, TODO-annotated so the residue stays visible in review.
pub fn fix_allow_report(findings: &[Finding]) -> String {
    let mut out = String::new();
    let open: Vec<_> = findings.iter().filter(|f| f.allowed.is_none()).collect();
    if open.is_empty() {
        out.push_str("no unallowed findings; nothing to emit\n");
        return out;
    }
    out.push_str(
        "# lhrs-lint allowlist — paste each comment on the line above its finding\n\
         # and replace the TODO with a real justification before merging.\n",
    );
    for f in open {
        out.push_str(&format!(
            "{}:{}:\n    // lhrs-lint: allow({}) reason=\"TODO: justify — {}\"\n",
            f.file,
            f.line,
            f.check.name(),
            f.message.replace('"', "'"),
        ));
    }
    out
}

/// Locate the workspace root: walk up from `start` until a `Cargo.toml`
/// containing `[workspace]` is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
