//! Item-level parse of the workspace: functions, impl blocks, and call
//! sites, built on the [`crate::source`] masked lexer.
//!
//! This is deliberately *not* a Rust parser. It recovers exactly the three
//! facts the call-graph checks need from each file:
//!
//! 1. every `fn` item — name, body span, enclosing `impl` type, whether it
//!    takes `self`, and whether it is test-only code;
//! 2. every `impl` block span and its `Self` type name (the segment after
//!    `for` in trait impls);
//! 3. every call site — callee name, `Q::` qualifier or `.method` shape,
//!    and the innermost enclosing function.
//!
//! Anything it cannot classify it skips; the graph layer compensates by
//! resolving names conservatively (over-approximating reachability), which
//! is the right failure mode for an availability lint: a spurious edge can
//! at worst demand an extra justification, a missed edge would hide a
//! panic.

use crate::source::{next_brace_block, tokenize, SourceModel, Tok};

/// One parsed source file plus its token stream.
pub struct FileIndex {
    /// Workspace-relative label (e.g. `crates/gf/src/field.rs`).
    pub label: String,
    /// Masked model (comments/strings blanked).
    pub model: SourceModel,
    /// Token stream over the masked text.
    pub toks: Vec<Tok>,
    /// True when every item in the file is test-only (integration tests
    /// under a `tests/` directory).
    pub all_test: bool,
}

/// One `fn` item with a body.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Index into [`WorkspaceIndex::files`].
    pub file: usize,
    /// Bare function name.
    pub name: String,
    /// `Self` type of the innermost enclosing `impl`, if any.
    pub impl_type: Option<String>,
    /// Whether the parameter list starts with (some form of) `self`.
    pub has_self: bool,
    /// Byte offsets of the body `{` and `}` in the file.
    pub body: (usize, usize),
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Test-only code (`#[cfg(test)]`, `#[test]`, or a `tests/` file).
    pub is_test: bool,
}

/// One call site attributed to its innermost enclosing function.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Index into [`WorkspaceIndex::files`].
    pub file: usize,
    /// Index of the enclosing [`FnItem`], if the call sits inside one
    /// (const initializers and statics have `None` and produce no edge).
    pub caller: Option<usize>,
    /// Bare callee name.
    pub callee: String,
    /// `Q` from a `Q::callee(...)` path call, if any.
    pub qualifier: Option<String>,
    /// True for `.callee(...)` method-call syntax.
    pub is_method: bool,
    /// Byte offset of the callee identifier.
    pub offset: usize,
    /// 1-based line of the call.
    pub line: usize,
}

/// The whole-workspace item index the call graph is built over.
pub struct WorkspaceIndex {
    /// Every parsed file.
    pub files: Vec<FileIndex>,
    /// Every `fn` item, ordered by (file, body start).
    pub fns: Vec<FnItem>,
    /// Every call site.
    pub calls: Vec<CallSite>,
}

/// Keywords that look like `name(`-style calls but are not.
const CALL_KEYWORDS: [&str; 14] = [
    "if", "else", "match", "while", "for", "loop", "return", "fn", "let", "in", "as", "move",
    "ref", "break",
];

/// An `impl` block's span and `Self` type.
struct ImplSpan {
    type_name: String,
    open: usize,
    close: usize,
}

impl WorkspaceIndex {
    /// Parse every `(label, text)` source into one index.
    pub fn build(sources: &[(String, String)]) -> WorkspaceIndex {
        let mut files = Vec::new();
        let mut fns = Vec::new();
        let mut calls = Vec::new();
        for (label, text) in sources {
            let model = SourceModel::parse(text);
            let toks = tokenize(&model.masked);
            let all_test = label.contains("/tests/") || label.starts_with("tests/");
            let file = files.len();
            let impls = impl_spans(&toks, &model);
            collect_fns(file, &toks, &model, &impls, all_test, &mut fns);
            files.push(FileIndex {
                label: label.clone(),
                model,
                toks,
                all_test,
            });
        }
        // Attribute call sites once all fns are known (innermost wins).
        for (file, fi) in files.iter().enumerate() {
            collect_calls(file, fi, &fns, &mut calls);
        }
        WorkspaceIndex { files, fns, calls }
    }

    /// Indices of fns defined in the file with the given label.
    pub fn fns_in_file(&self, label: &str) -> Vec<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| self.files[f.file].label == label)
            .map(|(i, _)| i)
            .collect()
    }

    /// `file::name` rendering for chain output.
    pub fn fn_display(&self, idx: usize) -> String {
        let f = &self.fns[idx];
        let file = &self.files[f.file].label;
        match &f.impl_type {
            Some(t) => format!("{file}::{t}::{}", f.name),
            None => format!("{file}::{}", f.name),
        }
    }
}

/// Collect `impl` block spans and their `Self` type names.
fn impl_spans(toks: &[Tok], model: &SourceModel) -> Vec<ImplSpan> {
    let bytes = model.masked.as_bytes();
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let Tok::Ident { text, offset } = t else {
            continue;
        };
        if text != "impl" {
            continue;
        }
        // Walk the header tokens up to the body `{`, tracking the last
        // path segment seen; a `for` resets it (trait impls name the Self
        // type after `for`). Generic argument lists are skipped.
        let Some((open, close)) = next_brace_block(bytes, *offset) else {
            continue;
        };
        let mut type_name: Option<String> = None;
        let mut j = i + 1;
        let mut angle = 0i32;
        while j < toks.len() && toks[j].offset() < open {
            match &toks[j] {
                Tok::Punct { ch: b'<', .. } => angle += 1,
                Tok::Punct { ch: b'>', .. } => angle -= 1,
                Tok::Ident { text, .. } if angle == 0 => {
                    if text == "for" {
                        type_name = None;
                    } else if text == "where" {
                        break;
                    } else if text.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                        type_name = Some(text.clone());
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if let Some(type_name) = type_name {
            out.push(ImplSpan {
                type_name,
                open,
                close,
            });
        }
    }
    out
}

/// Find the body block of a `fn` whose name ends at `from`.
///
/// Unlike [`next_brace_block`], this tolerates `;` inside the signature's
/// parens and brackets — `fn f() -> ([u8; 16], [u8; 16]) { ... }` has a
/// body even though a raw scan sees a semicolon before the brace. A `;` at
/// bracket depth 0 is a genuine bodyless declaration (trait method).
fn fn_body_block(bytes: &[u8], from: usize) -> Option<(usize, usize)> {
    let mut depth = 0usize;
    let mut i = from;
    while i < bytes.len() {
        match bytes[i] {
            b'(' | b'[' => depth += 1,
            b')' | b']' => depth = depth.saturating_sub(1),
            b';' if depth == 0 => return None,
            b'{' if depth == 0 => return next_brace_block(bytes, i),
            _ => {}
        }
        i += 1;
    }
    None
}

/// Collect every `fn` item with a body in one file.
fn collect_fns(
    file: usize,
    toks: &[Tok],
    model: &SourceModel,
    impls: &[ImplSpan],
    all_test: bool,
    out: &mut Vec<FnItem>,
) {
    let bytes = model.masked.as_bytes();
    for (i, t) in toks.iter().enumerate() {
        let Tok::Ident { text, offset } = t else {
            continue;
        };
        if text != "fn" {
            continue;
        }
        let Some(Tok::Ident {
            text: name,
            offset: name_off,
        }) = toks.get(i + 1)
        else {
            continue; // `fn(...)` pointer type
        };
        let Some(body) = fn_body_block(bytes, name_off + name.len()) else {
            continue; // trait method declaration (no body)
        };
        let line = model.line_of(*offset);
        // Innermost impl containing the signature.
        let impl_type = impls
            .iter()
            .filter(|s| s.open < *offset && *offset < s.close)
            .max_by_key(|s| s.open)
            .map(|s| s.type_name.clone());
        out.push(FnItem {
            file,
            name: name.clone(),
            impl_type,
            has_self: param_list_has_self(toks, i + 2, body.0),
            body,
            line,
            is_test: all_test || model.line_in_test(line),
        });
    }
}

/// Does the parameter list opening at/after token `from` (bounded by the
/// body `{` at byte `body_open`) start with a `self` receiver?
fn param_list_has_self(toks: &[Tok], from: usize, body_open: usize) -> bool {
    // Find the opening paren of the parameter list (skipping generics).
    let mut j = from;
    let mut angle = 0i32;
    while j < toks.len() && toks[j].offset() < body_open {
        match &toks[j] {
            Tok::Punct { ch: b'<', .. } => angle += 1,
            Tok::Punct { ch: b'>', .. } => angle -= 1,
            Tok::Punct { ch: b'(', .. } if angle == 0 => break,
            _ => {}
        }
        j += 1;
    }
    // Scan the first parameter (up to the first depth-1 comma) for `self`.
    let mut depth = 0i32;
    while j < toks.len() && toks[j].offset() < body_open {
        match &toks[j] {
            Tok::Punct { ch: b'(', .. } | Tok::Punct { ch: b'[', .. } => depth += 1,
            Tok::Punct { ch: b')', .. } | Tok::Punct { ch: b']', .. } => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            Tok::Punct { ch: b',', .. } if depth == 1 => return false,
            Tok::Ident { text, .. } if depth == 1 && text == "self" => return true,
            _ => {}
        }
        j += 1;
    }
    false
}

/// Collect call sites in one file, attributing each to the innermost
/// enclosing fn (scanned over the *global* fn list so indices line up).
fn collect_calls(file: usize, fi: &FileIndex, fns: &[FnItem], out: &mut Vec<CallSite>) {
    let toks = &fi.toks;
    // Fns of this file, for innermost-enclosing lookup.
    let local: Vec<(usize, &FnItem)> = fns
        .iter()
        .enumerate()
        .filter(|(_, f)| f.file == file)
        .collect();
    for (i, t) in toks.iter().enumerate() {
        let Tok::Ident { text: name, offset } = t else {
            continue;
        };
        if CALL_KEYWORDS.contains(&name.as_str()) {
            continue;
        }
        // Variant/tuple-struct constructors are uppercase; workspace fns
        // are snake_case. Numbers lex as idents too — skip both.
        let first = name.chars().next().unwrap_or('0');
        if !(first.is_ascii_lowercase() || first == '_') {
            continue;
        }
        // Macro invocation `name!(...)` is not a call edge.
        if matches!(toks.get(i + 1), Some(Tok::Punct { ch: b'!', .. })) {
            continue;
        }
        // Require `(`, optionally through a turbofish `::<...>`.
        let mut j = i + 1;
        if matches!(toks.get(j), Some(Tok::Punct { ch: b':', .. }))
            && matches!(toks.get(j + 1), Some(Tok::Punct { ch: b':', .. }))
            && matches!(toks.get(j + 2), Some(Tok::Punct { ch: b'<', .. }))
        {
            let mut angle = 0i32;
            j += 2;
            while j < toks.len() {
                match &toks[j] {
                    Tok::Punct { ch: b'<', .. } => angle += 1,
                    Tok::Punct { ch: b'>', .. } => {
                        angle -= 1;
                        if angle == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        if !matches!(toks.get(j), Some(Tok::Punct { ch: b'(', .. })) {
            continue;
        }
        let is_method = matches!(
            i.checked_sub(1).map(|p| &toks[p]),
            Some(Tok::Punct { ch: b'.', .. })
        );
        let qualifier = if !is_method
            && i >= 3
            && matches!(&toks[i - 1], Tok::Punct { ch: b':', .. })
            && matches!(&toks[i - 2], Tok::Punct { ch: b':', .. })
        {
            match &toks[i - 3] {
                Tok::Ident { text, .. } => Some(text.clone()),
                _ => None,
            }
        } else {
            None
        };
        let caller = local
            .iter()
            .filter(|(_, f)| f.body.0 < *offset && *offset < f.body.1)
            .max_by_key(|(_, f)| f.body.0)
            .map(|(idx, _)| *idx);
        out.push(CallSite {
            file,
            caller,
            callee: name.clone(),
            qualifier,
            is_method,
            offset: *offset,
            line: fi.model.line_of(*offset),
        });
    }
}
