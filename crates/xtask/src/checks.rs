//! The five protocol-invariant checks.
//!
//! Each check takes source text (already independent of the filesystem so
//! the seeded-violation fixtures can drive it directly) and returns
//! [`Finding`]s. Escape hatches (`// lhrs-lint: allow(<check>)
//! reason="..."`) are resolved here: a silenced finding is returned with
//! `allowed = Some(reason)` so callers can still display the residue, and a
//! directive with a missing/empty reason is itself a finding.

use crate::source::{next_brace_block, tokenize, SourceModel, Tok};
use crate::{Check, Finding};

/// Resolve the escape hatch for a raw finding.
fn apply_allow(model: &SourceModel, mut f: Finding) -> Finding {
    if let Some(a) = model.allow_for(f.check.name(), f.line) {
        match &a.reason {
            Some(r) => f.allowed = Some(r.clone()),
            None => {
                f.message = format!(
                    "{} (escape hatch present but reason=\"...\" is missing or empty; \
                     a justification string is required)",
                    f.message
                );
            }
        }
    }
    f
}

// ---------------------------------------------------------------------------
// Check 1: panic-freedom audit
// ---------------------------------------------------------------------------

/// Deny `.unwrap()`, `.expect(...)`, `panic!`, `unreachable!`, `todo!`,
/// `unimplemented!`, direct slice indexing `expr[...]`, and narrowing `as`
/// casts in hot-path sources. Test-only code (`#[cfg(test)]` modules,
/// `#[test]` fns) is exempt.
pub fn check_panic_freedom(label: &str, source: &str) -> Vec<Finding> {
    let model = SourceModel::parse(source);
    let toks = tokenize(&model.masked);
    let mut out = Vec::new();
    let mut push = |offset: usize, message: String| {
        let line = model.line_of(offset);
        if model.line_in_test(line) {
            return;
        }
        out.push(apply_allow(
            &model,
            Finding {
                check: Check::PanicFreedom,
                file: label.to_string(),
                line,
                message,
                allowed: None,
                chain: Vec::new(),
            },
        ));
    };

    const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
    const NARROW_CASTS: [&str; 8] = ["u8", "u16", "u32", "i8", "i16", "i32", "usize", "isize"];

    for (idx, tok) in toks.iter().enumerate() {
        match tok {
            Tok::Ident { text, offset } if text == "unwrap" || text == "expect" => {
                let prev_dot = matches!(
                    idx.checked_sub(1).map(|p| &toks[p]),
                    Some(Tok::Punct { ch: b'.', .. })
                );
                let next_paren = matches!(toks.get(idx + 1), Some(Tok::Punct { ch: b'(', .. }));
                if prev_dot && next_paren {
                    push(
                        *offset,
                        format!(".{text}() panics on the error path; return a typed error instead"),
                    );
                }
            }
            Tok::Ident { text, offset } if PANIC_MACROS.contains(&text.as_str()) => {
                if matches!(toks.get(idx + 1), Some(Tok::Punct { ch: b'!', .. })) {
                    push(
                        *offset,
                        format!("{text}! aborts the actor; surface a degraded-mode event instead"),
                    );
                }
            }
            Tok::Ident { text, offset } if text == "as" => {
                if let Some(Tok::Ident { text: ty, .. }) = toks.get(idx + 1) {
                    if NARROW_CASTS.contains(&ty.as_str()) {
                        push(
                            *offset,
                            format!("`as {ty}` silently truncates; use a checked conversion"),
                        );
                    }
                }
            }
            Tok::Punct { ch: b'[', offset } => {
                // Indexing when the previous token can end an expression:
                // identifier, `)`, `]`, or `?`. (Attributes follow `#`,
                // array types follow `:`/`&`/`<`/`(`, macros follow `!`.)
                let is_index = match idx.checked_sub(1).map(|p| &toks[p]) {
                    Some(Tok::Ident { text, .. }) => {
                        // `impl Index<Range<usize>> for T` style or keyword
                        // positions (`in`, `return`, ...) are not expressions.
                        !matches!(
                            text.as_str(),
                            "in" | "return"
                                | "break"
                                | "if"
                                | "else"
                                | "match"
                                | "mut"
                                | "const"
                                | "static"
                                | "dyn"
                                | "where"
                                | "impl"
                                | "for"
                                | "let" // `let [a, b] = ...` slice patterns
                        )
                    }
                    Some(Tok::Punct { ch: b')', .. }) | Some(Tok::Punct { ch: b']', .. }) => true,
                    _ => false,
                };
                if is_index {
                    push(*offset, "direct indexing panics out of bounds; use .get()/.get_mut() or split_at_checked".to_string());
                }
            }
            _ => {}
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Check 2: wire-codec exhaustiveness
// ---------------------------------------------------------------------------

/// Extract variant names from `pub enum <name> { ... }` in `enum_src`.
pub fn enum_variants(enum_name: &str, enum_src: &str) -> Option<Vec<String>> {
    let model = SourceModel::parse(enum_src);
    let needle = format!("enum {enum_name}");
    let mut from = 0usize;
    let pos = loop {
        let p = model.masked[from..].find(&needle)? + from;
        // Require a non-ident boundary after the name (`Msg` vs `MsgKind`).
        let after = p + needle.len();
        let boundary = model
            .masked
            .as_bytes()
            .get(after)
            .is_none_or(|b| !(b.is_ascii_alphanumeric() || *b == b'_'));
        if boundary {
            break p;
        }
        from = after;
    };
    let (open, close) = next_brace_block(model.masked.as_bytes(), pos)?;
    let body = &model.masked[open + 1..close];
    let toks = tokenize(body);
    let mut variants = Vec::new();
    let mut depth = 0i32;
    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i] {
            Tok::Punct { ch, .. } => match ch {
                b'{' | b'(' | b'[' | b'<' => depth += 1,
                b'}' | b')' | b']' | b'>' => depth -= 1,
                _ => {}
            },
            // At enum-body depth 0 the only uppercase-initial identifiers
            // are variant names (attribute contents sit inside `[...]`).
            Tok::Ident { text, .. }
                if depth == 0 && text.chars().next().is_some_and(|c| c.is_ascii_uppercase()) =>
            {
                variants.push(text.clone());
            }
            _ => {}
        }
        i += 1;
    }
    Some(variants)
}

/// Extract the body of `fn <name>` from `src` (masked).
fn fn_body(src_masked: &str, name: &str) -> Option<(usize, String)> {
    let needle = format!("fn {name}");
    let mut from = 0usize;
    loop {
        let p = src_masked[from..].find(&needle)? + from;
        let after = p + needle.len();
        let b = src_masked.as_bytes().get(after);
        if b.is_none_or(|b| !(b.is_ascii_alphanumeric() || *b == b'_')) {
            let (open, close) = next_brace_block(src_masked.as_bytes(), after)?;
            return Some((open, src_masked[open..=close].to_string()));
        }
        from = after;
    }
}

/// Every variant of `enum_name` (defined in `enum_src`) must appear as
/// `<enum_name>::<Variant>` inside BOTH `fn <encode_fn>` and
/// `fn <decode_fn>` in `wire_src`.
pub fn check_codec_exhaustiveness(
    enum_name: &str,
    enum_src: &str,
    wire_label: &str,
    wire_src: &str,
    encode_fn: &str,
    decode_fn: &str,
) -> Vec<Finding> {
    let model = SourceModel::parse(wire_src);
    let mut out = Vec::new();
    let Some(variants) = enum_variants(enum_name, enum_src) else {
        out.push(Finding {
            check: Check::CodecExhaustiveness,
            file: wire_label.to_string(),
            line: 1,
            message: format!("could not locate `pub enum {enum_name}` to audit the codec against"),
            allowed: None,
            chain: Vec::new(),
        });
        return out;
    };
    for (fn_name, role) in [(encode_fn, "encode"), (decode_fn, "decode")] {
        let Some((open, body)) = fn_body(&model.masked, fn_name) else {
            out.push(Finding {
                check: Check::CodecExhaustiveness,
                file: wire_label.to_string(),
                line: 1,
                message: format!(
                    "`fn {fn_name}` not found: every `{enum_name}` variant needs a {role} arm"
                ),
                allowed: None,
                chain: Vec::new(),
            });
            continue;
        };
        let line = model.line_of(open);
        let toks = tokenize(&body);
        for v in &variants {
            let mut present = false;
            for (i, t) in toks.iter().enumerate() {
                if let Tok::Ident { text, .. } = t {
                    if text == v
                        && i >= 3
                        && matches!(&toks[i - 1], Tok::Punct { ch: b':', .. })
                        && matches!(&toks[i - 2], Tok::Punct { ch: b':', .. })
                        && matches!(&toks[i - 3], Tok::Ident { text: e, .. } if e == enum_name)
                    {
                        present = true;
                        break;
                    }
                }
            }
            if !present {
                out.push(apply_allow(
                    &model,
                    Finding {
                        check: Check::CodecExhaustiveness,
                        file: wire_label.to_string(),
                        line,
                        message: format!(
                            "`{enum_name}::{v}` has no arm in `{fn_name}`: a peer speaking this \
                             variant would hit an unknown-tag error at runtime"
                        ),
                        allowed: None,
                        chain: Vec::new(),
                    },
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Check 3: config-knob coverage
// ---------------------------------------------------------------------------

/// `struct_fields` result: the struct body's byte span in the masked
/// source plus each field's name and line number.
pub type StructFields = (usize, usize, Vec<(String, usize)>);

/// Field names of `pub struct <name> { ... }` in `src`.
pub fn struct_fields(struct_name: &str, src: &str) -> Option<StructFields> {
    let model = SourceModel::parse(src);
    let needle = format!("struct {struct_name}");
    let pos = model.masked.find(&needle)?;
    let after = pos + needle.len();
    if model
        .masked
        .as_bytes()
        .get(after)
        .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_')
    {
        return None;
    }
    let (open, close) = next_brace_block(model.masked.as_bytes(), after)?;
    let body = &model.masked[open + 1..close];
    let toks = tokenize(body);
    let mut fields = Vec::new();
    let mut depth = 0i32;
    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i] {
            Tok::Punct { ch, .. } => match ch {
                b'{' | b'(' | b'[' | b'<' => depth += 1,
                b'}' | b')' | b']' | b'>' => depth -= 1,
                _ => {}
            },
            Tok::Ident { text, offset } if depth == 0 && text != "pub" => {
                // `name : Type ,` — take the ident, then skip to the
                // field-separating comma at depth 0.
                if matches!(toks.get(i + 1), Some(Tok::Punct { ch: b':', .. })) {
                    fields.push((text.clone(), model.line_of(open + 1 + offset)));
                    let mut d = 0i32;
                    i += 1;
                    while i < toks.len() {
                        if let Tok::Punct { ch, .. } = &toks[i] {
                            match ch {
                                b'{' | b'(' | b'[' | b'<' => d += 1,
                                b'}' | b')' | b']' | b'>' => d -= 1,
                                b',' if d == 0 => break,
                                _ => {}
                            }
                        }
                        i += 1;
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    Some((model.line_of(open), model.line_of(close), fields))
}

/// Line spans (inclusive) of every `impl <type_name>` block in `src` —
/// used to exclude a builder's fluent setters from knob-coverage: a
/// `self.cfg.field = v` write inside `impl ConfigBuilder` stores operator
/// intent, it does not *honor* it, so it must not count as a read.
pub fn impl_block_spans(type_name: &str, src: &str) -> Vec<(usize, usize)> {
    let model = SourceModel::parse(src);
    let needle = format!("impl {type_name}");
    let mut spans = Vec::new();
    let mut from = 0usize;
    while let Some(rel) = model.masked[from..].find(&needle) {
        let pos = from + rel;
        let after = pos + needle.len();
        from = after;
        // Reject identifier continuations (`impl ConfigBuilderExt`).
        if model
            .masked
            .as_bytes()
            .get(after)
            .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_')
        {
            continue;
        }
        if let Some((open, close)) = next_brace_block(model.masked.as_bytes(), after) {
            spans.push((model.line_of(open), model.line_of(close)));
        }
    }
    spans
}

/// Every `Config` field must be *read* somewhere: `.field` access in any
/// workspace source outside the struct definition itself. `sources` is
/// `(label, text)` for every file to search (including the defining file).
/// `builder_name` names a fluent-builder type in the defining file whose
/// `impl` blocks are excluded from counting as reads (see
/// [`impl_block_spans`]).
pub fn check_config_knobs(
    struct_name: &str,
    def_label: &str,
    def_src: &str,
    sources: &[(String, String)],
    builder_name: Option<&str>,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let builder_spans: Vec<(usize, usize)> =
        builder_name.map_or_else(Vec::new, |b| impl_block_spans(b, def_src));
    let Some((def_start, def_end, fields)) = struct_fields(struct_name, def_src) else {
        out.push(Finding {
            check: Check::ConfigKnob,
            file: def_label.to_string(),
            line: 1,
            message: format!("could not locate `pub struct {struct_name}`"),
            allowed: None,
            chain: Vec::new(),
        });
        return out;
    };
    let def_model = SourceModel::parse(def_src);
    for (field, fline) in &fields {
        let mut used = false;
        'files: for (label, text) in sources {
            let model;
            let m: &SourceModel = if label == def_label {
                &def_model
            } else {
                model = SourceModel::parse(text);
                &model
            };
            let toks = tokenize(&m.masked);
            for (i, t) in toks.iter().enumerate() {
                if let Tok::Ident { text: id, offset } = t {
                    if id == field && i >= 1 && matches!(&toks[i - 1], Tok::Punct { ch: b'.', .. })
                    {
                        // Accesses inside the struct definition don't count
                        // (there are none, but keep the rule tight), and
                        // neither do the builder's own setters/validators.
                        if label == def_label {
                            let l = m.line_of(*offset);
                            if l >= def_start && l <= def_end {
                                continue;
                            }
                            if builder_spans.iter().any(|(s, e)| l >= *s && l <= *e) {
                                continue;
                            }
                        }
                        used = true;
                        break 'files;
                    }
                }
            }
        }
        if !used {
            out.push(apply_allow(
                &def_model,
                Finding {
                    check: Check::ConfigKnob,
                    file: def_label.to_string(),
                    line: *fline,
                    message: format!(
                        "`{struct_name}.{field}` is never read outside its definition: \
                         a dead knob silently ignores operator intent"
                    ),
                    allowed: None,
                    chain: Vec::new(),
                },
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Check 4: test-attribute hygiene
// ---------------------------------------------------------------------------

/// `#[ignore]` needs a reason; `crates/net` tests must not synchronize with
/// `sleep`. `in_net_tests` marks files whose test code is subject to the
/// sleep rule (any file under `crates/net`).
pub fn check_test_hygiene(label: &str, source: &str, in_net: bool) -> Vec<Finding> {
    let model = SourceModel::parse(source);
    let mut out = Vec::new();
    let toks = tokenize(&model.masked);
    for (i, t) in toks.iter().enumerate() {
        if let Tok::Ident { text, offset } = t {
            if text == "ignore"
                && i >= 2
                && matches!(&toks[i - 1], Tok::Punct { ch: b'[', .. })
                && matches!(&toks[i - 2], Tok::Punct { ch: b'#', .. })
                && matches!(toks.get(i + 1), Some(Tok::Punct { ch: b']', .. }))
            {
                let line = model.line_of(*offset);
                out.push(apply_allow(
                    &model,
                    Finding {
                        check: Check::TestHygiene,
                        file: label.to_string(),
                        line,
                        message: "#[ignore] without a reason: use #[ignore = \"why\"] so the skip is auditable".to_string(),
                        allowed: None,
                        chain: Vec::new(),
                    },
                ));
            }
            if in_net && text == "sleep" {
                let line = model.line_of(*offset);
                let is_test_file = label.contains("/tests/");
                if (is_test_file || model.line_in_test(line))
                    && matches!(toks.get(i + 1), Some(Tok::Punct { ch: b'(', .. }))
                {
                    out.push(apply_allow(
                        &model,
                        Finding {
                            check: Check::TestHygiene,
                            file: label.to_string(),
                            line,
                            message: "sleep-based synchronization in a net test: poll a condition or use a channel/timeout instead".to_string(),
                            allowed: None,
                            chain: Vec::new(),
                        },
                    ));
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Check 5: observability coverage
// ---------------------------------------------------------------------------

/// One required instrumentation site: `(file label, file text if found,
/// needle that must appear in the raw text, what the site does)`.
pub type ObsSite<'a> = (&'a str, Option<&'a str>, &'a str, &'a str);

/// The message counters are driven by `Payload::kind()`, so coverage has
/// two halves:
///
/// 1. Every variant of `enum_name` must have its own arm in `fn kind` —
///    Rust's match exhaustiveness is satisfied by a `_ =>` wildcard, which
///    would silently collapse new protocol messages into one counter
///    bucket and hide them from the per-kind `msgs_sent`/`msgs_recv`
///    series and the recovery timeline.
/// 2. The counter call sites themselves (`sites`) must still exist: the
///    simulator send/step paths and the TCP host dispatch each increment
///    the counters, and deleting any one of them silently blinds every
///    drill assertion built on the metrics.
pub fn check_obs_coverage(
    enum_name: &str,
    enum_src: &str,
    kind_label: &str,
    kind_src: &str,
    sites: &[ObsSite<'_>],
) -> Vec<Finding> {
    let mut out = Vec::new();

    // Half 1: per-variant kind labels.
    let model = SourceModel::parse(kind_src);
    match enum_variants(enum_name, enum_src) {
        None => out.push(Finding {
            check: Check::ObsCoverage,
            file: kind_label.to_string(),
            line: 1,
            message: format!("could not locate `pub enum {enum_name}` to audit kind labels"),
            allowed: None,
            chain: Vec::new(),
        }),
        Some(variants) => match fn_body(&model.masked, "kind") {
            None => out.push(Finding {
                check: Check::ObsCoverage,
                file: kind_label.to_string(),
                line: 1,
                message: format!(
                    "`fn kind` not found: `{enum_name}` needs per-variant counter labels"
                ),
                allowed: None,
                chain: Vec::new(),
            }),
            Some((open, body)) => {
                let line = model.line_of(open);
                let toks = tokenize(&body);
                for v in &variants {
                    let mut present = false;
                    for (i, t) in toks.iter().enumerate() {
                        if let Tok::Ident { text, .. } = t {
                            if text == v
                                && i >= 3
                                && matches!(&toks[i - 1], Tok::Punct { ch: b':', .. })
                                && matches!(&toks[i - 2], Tok::Punct { ch: b':', .. })
                                && matches!(&toks[i - 3], Tok::Ident { text: e, .. } if e == enum_name)
                            {
                                present = true;
                                break;
                            }
                        }
                    }
                    if !present {
                        out.push(apply_allow(
                            &model,
                            Finding {
                                check: Check::ObsCoverage,
                                file: kind_label.to_string(),
                                line,
                                message: format!(
                                    "`{enum_name}::{v}` has no arm in `fn kind`: a wildcard label \
                                     collapses this message into one counter bucket, hiding it \
                                     from `msgs_sent`/`msgs_recv` and the recovery timeline"
                                ),
                                allowed: None,
                                chain: Vec::new(),
                            },
                        ));
                    }
                }
            }
        },
    }

    // Half 2: the counter call sites. Raw-text search on purpose — the
    // needles are string literals (`incr_kind("msgs_sent"`), which the
    // masked source erases.
    for (label, text, needle, role) in sites {
        match text {
            None => out.push(Finding {
                check: Check::ObsCoverage,
                file: (*label).to_string(),
                line: 1,
                message: format!("instrumentation site missing: file not found ({role})"),
                allowed: None,
                chain: Vec::new(),
            }),
            Some(text) if !text.contains(needle) => out.push(Finding {
                check: Check::ObsCoverage,
                file: (*label).to_string(),
                line: 1,
                message: format!(
                    "instrumentation site `{needle}...)` is gone: {role} no longer feeds the \
                     message counters, blinding every drill assertion built on the metrics"
                ),
                allowed: None,
                chain: Vec::new(),
            }),
            Some(_) => {}
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Check 6: drill coverage
// ---------------------------------------------------------------------------

/// Counter-name prefixes whose series must be asserted by at least one
/// test: the recovery/durability metrics the kill drills gate on, plus the
/// pipelined-client window accounting (`inflight_*`/`window_*`) the
/// multiplexed drills gate on.
pub const DRILL_COUNTER_PREFIXES: [&str; 5] =
    ["restart_", "wal_", "recovery_", "inflight_", "window_"];

/// Is this label an integration-test file (everything in it is test code)?
fn is_test_file(label: &str) -> bool {
    label.contains("/tests/") || label.starts_with("tests/")
}

/// Extract `"restart_*"`/`"wal_*"`/`"recovery_*"` string literals from the
/// raw text, with the 1-based line of each first occurrence. Only literals
/// outside test regions count — a counter minted by a test is not a
/// production failure-path metric.
fn drill_counters(text: &str, model: &SourceModel) -> Vec<(String, usize)> {
    let mut out: Vec<(String, usize)> = Vec::new();
    let bytes = text.as_bytes();
    for prefix in DRILL_COUNTER_PREFIXES {
        let mut from = 0usize;
        while let Some(rel) = text.get(from..).and_then(|t| t.find(prefix)) {
            let pos = from + rel;
            from = pos + prefix.len();
            // Must be a string literal: opening quote right before.
            if pos == 0 || bytes[pos - 1] != b'"' {
                continue;
            }
            let mut end = pos;
            while end < bytes.len()
                && (bytes[end].is_ascii_lowercase()
                    || bytes[end].is_ascii_digit()
                    || bytes[end] == b'_')
            {
                end += 1;
            }
            // …and close immediately after the [a-z0-9_]+ name.
            if end >= bytes.len() || bytes[end] != b'"' {
                continue;
            }
            let name = &text[pos..end];
            let line = model.line_of(pos);
            if model.line_in_test(line) {
                continue;
            }
            if !out.iter().any(|(n, _)| n == name) {
                out.push((name.to_string(), line));
            }
        }
    }
    out
}

/// Every `CoordEvent` variant and every `restart_*`/`wal_*`/`recovery_*`
/// counter minted by production code must appear in at least one test
/// (integration-test files or `#[cfg(test)]` regions) — a failure path
/// nobody asserts on is a failure path nobody will notice regressing.
pub fn check_drill_coverage(
    coord_label: &str,
    coord_src: &str,
    sources: &[(String, String)],
) -> Vec<Finding> {
    let mut out = Vec::new();
    let coord_model = SourceModel::parse(coord_src);

    // Assemble the test corpus: whole integration-test files plus the
    // `#[cfg(test)]`/`#[test]` regions of everything else.
    let mut corpus = String::new();
    for (label, text) in sources {
        if is_test_file(label) {
            corpus.push_str(text);
            corpus.push('\n');
        } else {
            let model = SourceModel::parse(text);
            for (i, line) in text.lines().enumerate() {
                if model.line_in_test(i + 1) {
                    corpus.push_str(line);
                    corpus.push('\n');
                }
            }
        }
    }

    // Half 1: every CoordEvent variant asserted somewhere.
    match enum_variants("CoordEvent", coord_src) {
        None => out.push(Finding {
            check: Check::DrillCoverage,
            file: coord_label.to_string(),
            line: 1,
            message: "could not locate `pub enum CoordEvent` to audit drill coverage".to_string(),
            allowed: None,
            chain: Vec::new(),
        }),
        Some(variants) => {
            for v in &variants {
                if !corpus.contains(&format!("CoordEvent::{v}")) {
                    out.push(apply_allow(
                        &coord_model,
                        Finding {
                            check: Check::DrillCoverage,
                            file: coord_label.to_string(),
                            line: 1,
                            message: format!(
                                "`CoordEvent::{v}` is asserted by no test: this failure path \
                                 can regress without any drill noticing"
                            ),
                            allowed: None,
                            chain: Vec::new(),
                        },
                    ));
                }
            }
        }
    }

    // Half 2: every production drill counter asserted somewhere.
    for (label, text) in sources {
        if is_test_file(label) {
            continue;
        }
        let model = SourceModel::parse(text);
        for (name, line) in drill_counters(text, &model) {
            if !corpus.contains(&name) {
                out.push(apply_allow(
                    &model,
                    Finding {
                        check: Check::DrillCoverage,
                        file: label.clone(),
                        line,
                        message: format!(
                            "counter `{name}` is asserted by no test: the metric can silently \
                             stop moving and every drill built on it stays green"
                        ),
                        allowed: None,
                        chain: Vec::new(),
                    },
                ));
            }
        }
    }
    out
}
