//! Workspace call graph, reachability from the actor entry points, and the
//! two graph-driven checks (transitive panic-reachability and unchecked
//! integer arithmetic).
//!
//! Name resolution is deliberately conservative — it over-approximates the
//! real call graph:
//!
//! - `Q::name(...)` resolves to fns named `name` whose enclosing impl is
//!   `Q`; if none match (`Q` is a generic parameter like `F::mul`, or a
//!   module path), it falls back to *every* fn named `name`;
//! - `.name(...)` resolves to every fn named `name` that takes `self`
//!   (a `.get(...)` on a `BTreeMap` therefore also points at
//!   `Matrix::get` — a spurious edge, never a missed one);
//! - a bare `name(...)` resolves to every fn named `name`.
//!
//! A spurious edge can at worst demand one extra justification in a helper
//! crate; a missed edge would let a panic hide on a hot path. For an
//! availability lint the asymmetry decides.

use std::collections::{BTreeMap, VecDeque};

use crate::items::{FnItem, WorkspaceIndex};
use crate::source::Tok;
use crate::{Check, Finding};

/// Reachability result over [`WorkspaceIndex::fns`].
pub struct Reachability {
    /// `reachable[f]` — is fn `f` reachable from any root?
    pub reachable: Vec<bool>,
    /// For non-root reachable fns: `(caller fn, call line)` of the BFS
    /// discovery edge — walking parents reaches a root.
    pub parent: Vec<Option<(usize, usize)>>,
}

/// Adjacency: for every fn, the list of `(callee fn, call line)` edges.
pub type CallGraph = Vec<Vec<(usize, usize)>>;

/// Resolve every call site into fn→fn edges.
pub fn build_graph(ws: &WorkspaceIndex) -> CallGraph {
    // Deterministic name→fns index.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, f) in ws.fns.iter().enumerate() {
        by_name.entry(f.name.as_str()).or_default().push(i);
    }
    let mut adj: CallGraph = vec![Vec::new(); ws.fns.len()];
    for call in &ws.calls {
        let Some(caller) = call.caller else {
            continue; // const initializer / static — no runtime edge
        };
        if ws.fns[caller].is_test {
            continue; // test-only callers never feed hot-path reachability
        }
        let Some(candidates) = by_name.get(call.callee.as_str()) else {
            continue; // std / external
        };
        let resolved: Vec<usize> = if let Some(q) = &call.qualifier {
            // `Self::helper(...)` refers to the caller's own impl type.
            let q: &str = if q == "Self" {
                ws.fns[caller].impl_type.as_deref().unwrap_or(q)
            } else {
                q
            };
            let exact: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&c| ws.fns[c].impl_type.as_deref() == Some(q))
                .collect();
            if exact.is_empty() {
                candidates.clone() // generic param or module path qualifier
            } else {
                exact
            }
        } else if call.is_method {
            candidates
                .iter()
                .copied()
                .filter(|&c| ws.fns[c].has_self)
                .collect()
        } else {
            candidates.clone()
        };
        for callee in resolved {
            if !adj[caller].iter().any(|(c, _)| *c == callee) {
                adj[caller].push((callee, call.line));
            }
        }
    }
    adj
}

/// BFS from every fn satisfying `is_root`, recording discovery parents.
pub fn reach(
    ws: &WorkspaceIndex,
    adj: &CallGraph,
    is_root: impl Fn(&FnItem) -> bool,
) -> Reachability {
    let n = ws.fns.len();
    let mut reachable = vec![false; n];
    let mut parent: Vec<Option<(usize, usize)>> = vec![None; n];
    let mut queue = VecDeque::new();
    for (i, f) in ws.fns.iter().enumerate() {
        if !f.is_test && is_root(f) {
            reachable[i] = true;
            queue.push_back(i);
        }
    }
    while let Some(f) = queue.pop_front() {
        for &(callee, line) in &adj[f] {
            if !reachable[callee] && !ws.fns[callee].is_test {
                reachable[callee] = true;
                parent[callee] = Some((f, line));
                queue.push_back(callee);
            }
        }
    }
    Reachability { reachable, parent }
}

impl Reachability {
    /// Render the call chain `root → … → fn` for a reachable fn.
    pub fn chain(&self, ws: &WorkspaceIndex, mut f: usize) -> Vec<String> {
        let mut rev = vec![ws.fn_display(f)];
        let mut hops = 0usize;
        while let Some((p, line)) = self.parent[f] {
            rev.push(format!("{} (call at line {line})", ws.fn_display(p)));
            f = p;
            hops += 1;
            if hops > ws.fns.len() {
                break; // cycle guard; parents form a tree, belt-and-braces
            }
        }
        rev.reverse();
        rev
    }
}

/// Files whose fns are reachability roots: the actor hot paths (every
/// `Msg` handler, `on_timer` poll, and boot/recovery path lives in one of
/// these modules).
pub const ROOT_FILES: [&str; 12] = [
    "crates/core/src/coordinator.rs",
    "crates/core/src/data_bucket.rs",
    "crates/core/src/parity_bucket.rs",
    "crates/core/src/client.rs",
    "crates/core/src/file.rs",
    "crates/core/src/storage.rs",
    "crates/rs/src/code.rs",
    "crates/net/src/frame.rs",
    "crates/net/src/transport.rs",
    "crates/net/src/host.rs",
    "crates/net/src/durable.rs",
    "crates/wal/src/lib.rs",
];

/// Helper-crate scope of the transitive checks: files whose panics are
/// invisible to the per-file audit yet reachable from the hot paths. Root
/// files are excluded — the per-file panic-freedom check already covers
/// 100% of their lines, which subsumes transitive coverage.
pub fn in_helper_scope(label: &str) -> bool {
    (label.starts_with("crates/gf/src/")
        || label.starts_with("crates/rs/src/")
        || label.starts_with("crates/lh/src/")
        || label.starts_with("crates/obs/src/")
        || label == "crates/core/src/convert.rs")
        && !ROOT_FILES.contains(&label)
}

/// Shared output shape for the two body-scanning graph checks.
struct BodyScanCtx<'a> {
    ws: &'a WorkspaceIndex,
    reach: &'a Reachability,
}

/// Run both graph checks over every reachable helper-scope fn.
pub fn run_graph_checks(ws: &WorkspaceIndex, reach_info: &Reachability) -> Vec<Finding> {
    let ctx = BodyScanCtx {
        ws,
        reach: reach_info,
    };
    let mut out = Vec::new();
    for (idx, f) in ws.fns.iter().enumerate() {
        if !reach_info.reachable[idx] || f.is_test {
            continue;
        }
        let label = &ws.files[f.file].label;
        if !in_helper_scope(label) {
            continue;
        }
        scan_panics(&ctx, idx, &mut out);
        scan_arithmetic(&ctx, idx, &mut out);
    }
    out
}

/// Body token range of fn `idx` (tokens whose offsets sit inside the body,
/// excluding tokens of *nested* fns — those are scanned as their own item).
fn body_tokens(ws: &WorkspaceIndex, idx: usize) -> Vec<(usize, &Tok)> {
    let f = &ws.fns[idx];
    let file = &ws.files[f.file];
    let nested: Vec<(usize, usize)> = ws
        .fns
        .iter()
        .filter(|g| g.file == f.file && g.body.0 > f.body.0 && g.body.1 < f.body.1)
        .map(|g| g.body)
        .collect();
    file.toks
        .iter()
        .enumerate()
        .filter(|(_, t)| {
            let o = t.offset();
            o > f.body.0 && o < f.body.1 && !nested.iter().any(|(a, b)| o > *a && o < *b)
        })
        .collect()
}

/// The panic patterns of the per-file check, plus the `assert!` family —
/// helper crates must not even assert on a hot path: a failed assertion in
/// `gf`/`rs`/`lh` is an actor abort the coordinator will misread as a
/// killed bucket.
fn scan_panics(ctx: &BodyScanCtx<'_>, idx: usize, out: &mut Vec<Finding>) {
    const PANIC_MACROS: [&str; 7] = [
        "panic",
        "unreachable",
        "todo",
        "unimplemented",
        "assert",
        "assert_eq",
        "assert_ne",
    ];
    const NARROW_CASTS: [&str; 8] = ["u8", "u16", "u32", "i8", "i16", "i32", "usize", "isize"];
    let ws = ctx.ws;
    let f = &ws.fns[idx];
    let file = &ws.files[f.file];
    let toks = &file.toks;
    let body = body_tokens(ws, idx);
    let mut hits: Vec<(usize, String)> = Vec::new();
    for &(i, t) in &body {
        match t {
            Tok::Ident { text, offset } if text == "unwrap" || text == "expect" => {
                let prev_dot = matches!(
                    i.checked_sub(1).map(|p| &toks[p]),
                    Some(Tok::Punct { ch: b'.', .. })
                );
                let next_paren = matches!(toks.get(i + 1), Some(Tok::Punct { ch: b'(', .. }));
                if prev_dot && next_paren {
                    hits.push((*offset, format!(".{text}() panics on the error path")));
                }
            }
            Tok::Ident { text, offset } if PANIC_MACROS.contains(&text.as_str()) => {
                if matches!(toks.get(i + 1), Some(Tok::Punct { ch: b'!', .. })) {
                    hits.push((*offset, format!("{text}! aborts the calling actor")));
                }
            }
            Tok::Ident { text, offset } if text == "as" => {
                if let Some(Tok::Ident { text: ty, .. }) = toks.get(i + 1) {
                    if NARROW_CASTS.contains(&ty.as_str()) {
                        hits.push((*offset, format!("`as {ty}` silently truncates")));
                    }
                }
            }
            Tok::Punct { ch: b'[', offset } => {
                let is_index = match i.checked_sub(1).map(|p| &toks[p]) {
                    Some(Tok::Ident { text, .. }) => !matches!(
                        text.as_str(),
                        "in" | "return"
                            | "break"
                            | "if"
                            | "else"
                            | "match"
                            | "mut"
                            | "const"
                            | "static"
                            | "dyn"
                            | "where"
                            | "impl"
                            | "for"
                            | "let"
                    ),
                    Some(Tok::Punct { ch: b')', .. }) | Some(Tok::Punct { ch: b']', .. }) => true,
                    _ => false,
                };
                if is_index {
                    hits.push((*offset, "direct indexing panics out of bounds".to_string()));
                }
            }
            _ => {}
        }
    }
    emit(ctx, idx, Check::TransitivePanic, hits, out);
}

/// Can the previous token end an expression (making a following `+`/`-`/
/// `*`/`<<` a binary operator rather than a sign, deref, or arrow)?
fn ends_expr(t: Option<&&Tok>) -> bool {
    match t {
        Some(Tok::Ident { text, .. }) => !matches!(
            text.as_str(),
            "return" | "in" | "if" | "else" | "match" | "break" | "as" | "mut" | "where"
        ),
        Some(Tok::Punct { ch: b')', .. }) | Some(Tok::Punct { ch: b']', .. }) => true,
        _ => false,
    }
}

fn is_numeric(t: Option<&&Tok>) -> bool {
    matches!(t, Some(Tok::Ident { text, .. }) if text.chars().next().is_some_and(|c| c.is_ascii_digit()))
}

/// Flag raw binary `+`, `-`, `*`, `<<` (and their compound assignments) on
/// reachable helper-scope code: overflow panics in debug builds and wraps
/// silently in release — both wrong on a hot path. `checked_*`,
/// `saturating_*`, or `wrapping_*` spell the intended semantics out.
fn scan_arithmetic(ctx: &BodyScanCtx<'_>, idx: usize, out: &mut Vec<Finding>) {
    let ws = ctx.ws;
    let f = &ws.fns[idx];
    let file = &ws.files[f.file];
    let toks = &file.toks;
    let body = body_tokens(ws, idx);
    let mut hits: Vec<(usize, String)> = Vec::new();
    let mut skip_next = false;
    for &(i, t) in &body {
        if skip_next {
            skip_next = false;
            continue;
        }
        let Tok::Punct { ch, offset } = t else {
            continue;
        };
        let op: &str = match ch {
            b'+' => "+",
            b'-' => "-",
            b'*' => "*",
            b'<' => {
                // `<<` is two adjacent `<` puncts.
                match toks.get(i + 1) {
                    Some(Tok::Punct {
                        ch: b'<',
                        offset: o2,
                    }) if *o2 == offset + 1 => {
                        skip_next = true;
                        "<<"
                    }
                    _ => continue,
                }
            }
            _ => continue,
        };
        let prev = i.checked_sub(1).map(|p| &toks[p]);
        if !ends_expr(prev.as_ref()) {
            continue; // unary minus, deref, generic bracket, …
        }
        // `->` return-type arrow.
        if op == "-" && matches!(toks.get(i + 1), Some(Tok::Punct { ch: b'>', .. })) {
            continue;
        }
        // Operand after the operator (and after a compound `=`).
        let mut j = if skip_next { i + 2 } else { i + 1 };
        let compound = matches!(toks.get(j), Some(Tok::Punct { ch: b'=', .. }));
        if compound {
            j += 1;
        }
        let next = toks.get(j);
        let next_ok = matches!(
            next,
            Some(Tok::Ident { .. })
                | Some(Tok::Punct { ch: b'(', .. })
                | Some(Tok::Punct { ch: b'&', .. })
                | Some(Tok::Punct { ch: b'*', .. })
                | Some(Tok::Punct { ch: b'-', .. })
                | Some(Tok::Punct { ch: b'!', .. })
        );
        if !next_ok {
            continue; // `x..`, trailing operators in ranges, etc.
        }
        // Literal-only expressions cannot overflow at runtime.
        if is_numeric(prev.as_ref()) && is_numeric(next.as_ref()) {
            continue;
        }
        let shown = if compound {
            format!("{op}=")
        } else {
            op.to_string()
        };
        hits.push((
            *offset,
            format!(
                "unchecked `{shown}` on a hot path; spell the overflow semantics out with \
                 checked_/saturating_/wrapping_"
            ),
        ));
    }
    emit(ctx, idx, Check::UncheckedArith, hits, out);
}

/// Turn raw `(offset, message)` hits into findings carrying the call chain,
/// honoring the per-line escape hatch.
fn emit(
    ctx: &BodyScanCtx<'_>,
    fn_idx: usize,
    check: Check,
    hits: Vec<(usize, String)>,
    out: &mut Vec<Finding>,
) {
    let ws = ctx.ws;
    let f = &ws.fns[fn_idx];
    let file = &ws.files[f.file];
    let chain = ctx.reach.chain(ws, fn_idx);
    for (offset, message) in hits {
        let line = file.model.line_of(offset);
        if file.model.line_in_test(line) {
            continue;
        }
        let mut finding = Finding {
            check,
            file: file.label.clone(),
            line,
            message: format!("{message} (reachable from the actor hot paths)"),
            allowed: None,
            chain: chain.clone(),
        };
        if let Some(a) = file.model.allow_for(check.name(), line) {
            match &a.reason {
                Some(r) => finding.allowed = Some(r.clone()),
                None => {
                    finding.message = format!(
                        "{} (escape hatch present but reason=\"...\" is missing or empty; \
                         a justification string is required)",
                        finding.message
                    );
                }
            }
        }
        out.push(finding);
    }
}
