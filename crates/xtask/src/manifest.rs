//! The pinned wire-tag manifest check.
//!
//! `wire_tags.toml` at the workspace root is the single source of truth
//! for every `Msg` (`mod tag`) and `CoordEvent` (`mod etag`) wire tag.
//! The analyzer extracts the `pub const NAME: u8 = N;` tables from
//! `crates/core/src/wire.rs` and fails on:
//!
//! - a **collision** — two constants in one namespace sharing a value;
//! - **drift** — a tag present in the code but not the manifest, present in
//!   the manifest but not the code, or present in both with different
//!   values (the PR-7 hand-assigned tag 42 is exactly the class of edit
//!   this pins down);
//! - **reuse of a retired tag** — deleting a message must retire its tag
//!   in the manifest's `[retired]` table; a later message reusing the value
//!   would be mis-decoded by peers still speaking the old protocol.
//!
//! The manifest parser covers only the TOML subset the file uses (comments,
//! `[section]` headers, `KEY = <int>`, `key = [int, int, ...]`) — the
//! analyzer stays zero-dep.

use crate::source::{next_brace_block, tokenize, SourceModel, Tok};
use crate::{Check, Finding};

/// Parsed manifest: `(msg tags, coord_event tags, retired msg values,
/// retired coord_event values)`.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct WireManifest {
    /// `[msg]` table: `NAME = tag`.
    pub msg: Vec<(String, u32)>,
    /// `[coord_event]` table: `NAME = tag`.
    pub coord_event: Vec<(String, u32)>,
    /// `[retired] msg = [...]` — values that may never be reassigned.
    pub retired_msg: Vec<u32>,
    /// `[retired] coord_event = [...]`.
    pub retired_coord_event: Vec<u32>,
}

/// Parse the TOML subset of `wire_tags.toml`. Returns `Err(line, message)`
/// on anything outside the subset, so a malformed manifest is a loud
/// finding rather than silently-dropped pins.
pub fn parse_manifest(text: &str) -> Result<WireManifest, (usize, String)> {
    let mut m = WireManifest::default();
    let mut section = String::new();
    for (i, raw_line) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = match raw_line.find('#') {
            Some(p) => &raw_line[..p],
            None => raw_line,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = name.trim().to_string();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err((lineno, format!("expected `key = value`, got `{line}`")));
        };
        let key = key.trim().to_string();
        let value = value.trim();
        match section.as_str() {
            "msg" | "coord_event" => {
                let tag: u32 = value.parse().map_err(|_| {
                    (
                        lineno,
                        format!("`{key}` needs an integer tag, got `{value}`"),
                    )
                })?;
                if section == "msg" {
                    m.msg.push((key, tag));
                } else {
                    m.coord_event.push((key, tag));
                }
            }
            "retired" => {
                let inner = value
                    .strip_prefix('[')
                    .and_then(|v| v.strip_suffix(']'))
                    .ok_or_else(|| {
                        (
                            lineno,
                            format!("`{key}` needs an `[int, ...]` list, got `{value}`"),
                        )
                    })?;
                let mut vals = Vec::new();
                for part in inner.split(',') {
                    let part = part.trim();
                    if part.is_empty() {
                        continue;
                    }
                    vals.push(part.parse().map_err(|_| {
                        (
                            lineno,
                            format!("retired list entry `{part}` is not an integer"),
                        )
                    })?);
                }
                match key.as_str() {
                    "msg" => m.retired_msg = vals,
                    "coord_event" => m.retired_coord_event = vals,
                    other => return Err((lineno, format!("unknown retired namespace `{other}`"))),
                }
            }
            other => return Err((lineno, format!("unknown section `[{other}]`"))),
        }
    }
    Ok(m)
}

/// Extract `pub const NAME: u8 = N;` entries from `mod <mod_name>` in
/// `wire_src`, with the 1-based line of each constant.
pub fn extract_tags(wire_src: &str, mod_name: &str) -> Option<Vec<(String, u32, usize)>> {
    let model = SourceModel::parse(wire_src);
    let needle = format!("mod {mod_name}");
    let mut from = 0usize;
    let pos = loop {
        let p = model.masked[from..].find(&needle)? + from;
        let after = p + needle.len();
        let boundary = model
            .masked
            .as_bytes()
            .get(after)
            .is_none_or(|b| !(b.is_ascii_alphanumeric() || *b == b'_'));
        if boundary {
            break p;
        }
        from = after;
    };
    let (open, close) = next_brace_block(model.masked.as_bytes(), pos)?;
    let body = &model.masked[open + 1..close];
    let toks = tokenize(body);
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        // const NAME : u8 = N ;
        if let Tok::Ident { text, .. } = &toks[i] {
            if text == "const" {
                if let (
                    Some(Tok::Ident {
                        text: name,
                        offset: name_off,
                    }),
                    Some(Tok::Ident { text: value, .. }),
                ) = (toks.get(i + 1), toks.get(i + 5))
                {
                    if let Ok(v) = value.parse::<u32>() {
                        let line = model.line_of(open + 1 + name_off);
                        out.push((name.clone(), v, line));
                        i += 6;
                        continue;
                    }
                }
            }
        }
        i += 1;
    }
    Some(out)
}

/// Compare one namespace's extracted tags against the manifest.
fn check_namespace(
    wire_label: &str,
    namespace: &str,
    extracted: &[(String, u32, usize)],
    pinned: &[(String, u32)],
    retired: &[u32],
    out: &mut Vec<Finding>,
) {
    let push = |out: &mut Vec<Finding>, line: usize, message: String| {
        out.push(Finding {
            check: Check::WireTag,
            file: wire_label.to_string(),
            line,
            message,
            allowed: None,
            chain: Vec::new(),
        });
    };
    // Collisions inside the code itself.
    for (i, (name, value, line)) in extracted.iter().enumerate() {
        if let Some((other, _, _)) = extracted[..i].iter().find(|(_, v, _)| v == value) {
            push(
                out,
                *line,
                format!(
                    "[{namespace}] tag collision: `{name}` and `{other}` both use {value}; \
                     peers cannot distinguish the two messages on the wire"
                ),
            );
        }
        if retired.contains(value) {
            push(
                out,
                *line,
                format!(
                    "[{namespace}] `{name}` reuses retired tag {value}; old peers would \
                     mis-decode it as the retired message"
                ),
            );
        }
        match pinned.iter().find(|(n, _)| n == name) {
            None => push(
                out,
                *line,
                format!(
                    "[{namespace}] `{name} = {value}` is not pinned in wire_tags.toml; \
                     add it to the manifest to freeze the wire format"
                ),
            ),
            Some((_, pv)) if pv != value => push(
                out,
                *line,
                format!(
                    "[{namespace}] `{name}` drifted: code says {value}, wire_tags.toml \
                     pins {pv}; changing a shipped tag breaks every deployed peer"
                ),
            ),
            Some(_) => {}
        }
    }
    for (name, value) in pinned {
        if !extracted.iter().any(|(n, _, _)| n == name) {
            push(
                out,
                1,
                format!(
                    "[{namespace}] manifest pins `{name} = {value}` but the code no longer \
                     defines it; delete the message's pin and move {value} to [retired]"
                ),
            );
        }
    }
}

/// The wire-tag manifest check: `manifest_text` is the contents of
/// `wire_tags.toml` (or `None` when the file is missing).
pub fn check_wire_tags(
    wire_label: &str,
    wire_src: &str,
    manifest_text: Option<&str>,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let missing = |out: &mut Vec<Finding>, what: String| {
        out.push(Finding {
            check: Check::WireTag,
            file: wire_label.to_string(),
            line: 1,
            message: what,
            allowed: None,
            chain: Vec::new(),
        });
    };
    let manifest = match manifest_text {
        None => {
            missing(
                &mut out,
                "wire_tags.toml is missing at the workspace root; the wire format is unpinned"
                    .to_string(),
            );
            return out;
        }
        Some(text) => match parse_manifest(text) {
            Ok(m) => m,
            Err((line, msg)) => {
                missing(&mut out, format!("wire_tags.toml:{line}: {msg}"));
                return out;
            }
        },
    };
    for (mod_name, namespace, pinned, retired) in [
        ("tag", "msg", &manifest.msg, &manifest.retired_msg),
        (
            "etag",
            "coord_event",
            &manifest.coord_event,
            &manifest.retired_coord_event,
        ),
    ] {
        match extract_tags(wire_src, mod_name) {
            None => missing(
                &mut out,
                format!("`mod {mod_name}` not found in wire.rs; cannot audit [{namespace}] tags"),
            ),
            Some(extracted) => {
                check_namespace(wire_label, namespace, &extracted, pinned, retired, &mut out)
            }
        }
    }
    out
}
