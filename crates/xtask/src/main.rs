//! CLI for the LH\*RS protocol-invariant lints.
//!
//! ```text
//! cargo run -p lhrs-xtask -- lint              # exit 1 on unallowed findings
//! cargo run -p lhrs-xtask -- lint --verbose    # also show justified allows
//! cargo run -p lhrs-xtask -- lint --json       # machine-readable findings
//! cargo run -p lhrs-xtask -- lint --fix-allow  # emit a TODO allowlist
//! cargo run -p lhrs-xtask -- lint --root DIR   # lint another tree
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use lhrs_xtask::{find_workspace_root, findings_to_json, fix_allow_report, run_all};

const USAGE: &str = "usage: lhrs-xtask lint [--fix-allow] [--verbose] [--json] [--root DIR]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut fix_allow = false;
    let mut verbose = false;
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "lint" if cmd.is_none() => cmd = Some("lint"),
            "--fix-allow" => fix_allow = true,
            "--verbose" | "-v" => verbose = true,
            "--json" => json = true,
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if cmd != Some("lint") {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("could not locate the workspace root (no Cargo.toml with [workspace])");
            return ExitCode::from(2);
        }
    };

    let findings = run_all(&root);
    let open: Vec<_> = findings.iter().filter(|f| f.allowed.is_none()).collect();
    let allowed = findings.len() - open.len();

    if fix_allow {
        print!("{}", fix_allow_report(&findings));
        return ExitCode::SUCCESS;
    }

    if json {
        // Open findings first so CI annotations lead with what fails the
        // build; allowed residue follows for the artifact.
        let mut ordered: Vec<_> = findings
            .iter()
            .filter(|f| f.allowed.is_none())
            .cloned()
            .collect();
        ordered.extend(findings.iter().filter(|f| f.allowed.is_some()).cloned());
        print!("{}", findings_to_json(&ordered));
        return if open.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    for f in &open {
        println!("{f}");
    }
    if verbose {
        for f in findings.iter().filter(|f| f.allowed.is_some()) {
            println!("{f}");
        }
    }
    println!(
        "lhrs-lint: {} finding(s), {} justified allow(s)",
        open.len(),
        allowed
    );
    if open.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
