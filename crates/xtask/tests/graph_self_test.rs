//! Self-tests for the whole-workspace analyzer: call-graph
//! panic-reachability, unchecked arithmetic, the wire-tag manifest, drill
//! coverage, and stale-allow reporting — each against a seeded fixture,
//! plus the acceptance gate that a panic planted in the real `crates/gf`
//! is traced back to `data_bucket.rs` with its full call chain.

use std::path::Path;

use lhrs_xtask::checks::check_drill_coverage;
use lhrs_xtask::graph::{build_graph, reach, run_graph_checks, ROOT_FILES};
use lhrs_xtask::items::WorkspaceIndex;
use lhrs_xtask::manifest::{check_wire_tags, parse_manifest};
use lhrs_xtask::{check_unused_allows, workspace_sources, Check, Finding};

const GRAPH_ROOT: &str = include_str!("fixtures/graph_root_bucket.rs");
const GRAPH_HELPER: &str = include_str!("fixtures/graph_helper_panics.rs");
const WIRE_COLLISION: &str = include_str!("fixtures/wire_collision.rs");
const WIRE_TAGS_BAD: &str = include_str!("fixtures/wire_tags_bad.toml");
const DRILL_GAP: &str = include_str!("fixtures/drill_gap.rs");
const DRILL_COORD: &str = include_str!("fixtures/drill_coord.rs");
const UNUSED_ALLOW: &str = include_str!("fixtures/unused_allow.rs");

fn graph_findings(sources: &[(String, String)]) -> Vec<Finding> {
    let ws = WorkspaceIndex::build(sources);
    let adj = build_graph(&ws);
    let reach_info = reach(&ws, &adj, |f| {
        ROOT_FILES.contains(&ws.files[f.file].label.as_str())
    });
    run_graph_checks(&ws, &reach_info)
}

#[test]
fn panic_two_calls_deep_is_traced_to_the_hot_path() {
    let sources = vec![
        (
            "crates/core/src/data_bucket.rs".to_string(),
            GRAPH_ROOT.to_string(),
        ),
        (
            "crates/gf/src/helper.rs".to_string(),
            GRAPH_HELPER.to_string(),
        ),
    ];
    let findings = graph_findings(&sources);

    let panics: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.check == Check::TransitivePanic)
        .collect();
    // `panic!` plus the seeded `cell[0]` index in `inner_step`; the decoy's
    // `unreachable!` must NOT appear.
    assert!(
        panics
            .iter()
            .all(|f| f.file == "crates/gf/src/helper.rs" && !f.message.contains("unreachable")),
        "only reachable sites may fire: {panics:#?}"
    );
    let seeded: Vec<&&Finding> = panics
        .iter()
        .filter(|f| f.message.contains("panic!"))
        .collect();
    assert_eq!(seeded.len(), 1, "{panics:#?}");
    let chain = &seeded[0].chain;
    assert!(
        chain.len() >= 3,
        "root → helper_entry → inner_step is two hops: {chain:#?}"
    );
    assert!(chain[0].contains("data_bucket.rs") && chain[0].contains("on_message"));
    assert!(chain.last().unwrap().contains("inner_step"));

    let arith: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.check == Check::UncheckedArith)
        .collect();
    assert_eq!(arith.len(), 1, "{arith:#?}");
    assert!(arith[0].message.contains('+'));
}

#[test]
fn colliding_and_retired_wire_tags_are_flagged() {
    let findings = check_wire_tags(
        "fixtures/wire_collision.rs",
        WIRE_COLLISION,
        Some(WIRE_TAGS_BAD),
    );
    let msg = |needle: &str| {
        findings
            .iter()
            .filter(|f| f.message.contains(needle))
            .count()
    };
    assert_eq!(msg("tag collision"), 1, "{findings:#?}");
    assert_eq!(msg("reuses retired tag 9"), 1, "{findings:#?}");
    assert_eq!(msg("`NEW = 3` is not pinned"), 1, "{findings:#?}");
    assert_eq!(msg("manifest pins `GONE = 7`"), 1, "{findings:#?}");
    assert_eq!(findings.len(), 4, "no extra findings: {findings:#?}");
}

#[test]
fn drifted_tag_value_is_flagged() {
    let drifted = WIRE_TAGS_BAD.replace("PUT = 1", "PUT = 2");
    let findings = check_wire_tags("fixtures/wire_collision.rs", WIRE_COLLISION, Some(&drifted));
    assert!(
        findings.iter().any(|f| f
            .message
            .contains("`PUT` drifted: code says 1, wire_tags.toml pins 2")),
        "{findings:#?}"
    );
}

#[test]
fn manifest_parser_round_trips_the_fixture() {
    let m = parse_manifest(WIRE_TAGS_BAD).expect("fixture manifest parses");
    assert_eq!(m.msg.len(), 4);
    assert_eq!(m.coord_event, vec![("SPLIT_DONE".to_string(), 1)]);
    assert_eq!(m.retired_msg, vec![9]);
    assert!(m.retired_coord_event.is_empty());
    // Malformed input is a loud error, not silently-dropped pins.
    assert!(parse_manifest("[msg]\nPUT = banana").is_err());
    assert!(parse_manifest("[mystery]\nx = 1").is_err());
}

#[test]
fn unasserted_drill_counter_is_flagged() {
    let sources = vec![
        (
            "crates/core/src/coordinator.rs".to_string(),
            DRILL_COORD.to_string(),
        ),
        (
            "crates/wal/src/fixture.rs".to_string(),
            DRILL_GAP.to_string(),
        ),
    ];
    let findings = check_drill_coverage("crates/core/src/coordinator.rs", DRILL_COORD, &sources);
    assert_eq!(findings.len(), 2, "{findings:#?}");
    assert!(findings
        .iter()
        .any(|f| f.message.contains("`wal_rotations`")));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("`window_full_stalls`")));
    // `recovery_probe_ok` and `inflight_launched` are asserted by the
    // fixture's test region and `CoordEvent::SplitDone` is named there
    // too — all three must stay silent.
}

#[test]
fn stale_and_unknown_allows_are_reported() {
    let sources = vec![(
        "fixtures/unused_allow.rs".to_string(),
        UNUSED_ALLOW.to_string(),
    )];
    let findings = check_unused_allows(&sources, &[]);
    assert_eq!(findings.len(), 2, "{findings:#?}");
    assert!(findings
        .iter()
        .any(|f| f.message.contains("no longer silences any finding")));
    assert!(findings.iter().any(|f| f.message.contains("unknown check")));
}

/// The acceptance gate: a panic planted in the real `crates/gf` kernel is
/// reported with a transitive call chain starting at `data_bucket.rs`.
#[test]
fn seeded_gf_panic_is_reachable_from_the_real_data_bucket() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/xtask sits two levels below the workspace root");
    let mut sources = workspace_sources(root);
    let field = sources
        .iter_mut()
        .find(|(l, _)| l == "crates/gf/src/field.rs")
        .expect("field.rs in workspace");
    let seeded = field.1.replace(
        "pub fn add_slice(src: &[u8], dst: &mut [u8]) {",
        "pub fn add_slice(src: &[u8], dst: &mut [u8]) {\n    panic!(\"seeded\");",
    );
    assert_ne!(seeded, field.1, "the kernel we sabotage must exist");
    field.1 = seeded;

    // Root the reachability at the data bucket alone: the chain the finding
    // carries must then pass through `data_bucket.rs` by construction (the
    // full root set would be free to discover the panic via another actor
    // first, e.g. the parity path through `rs/code.rs`).
    let ws = WorkspaceIndex::build(&sources);
    let adj = build_graph(&ws);
    let reach_info = reach(&ws, &adj, |f| {
        ws.files[f.file].label == "crates/core/src/data_bucket.rs"
    });
    let findings = run_graph_checks(&ws, &reach_info);
    let hit = findings
        .iter()
        .find(|f| {
            f.check == Check::TransitivePanic
                && f.file == "crates/gf/src/field.rs"
                && f.message.contains("panic!")
        })
        .unwrap_or_else(|| panic!("seeded panic not found: {findings:#?}"));
    assert!(
        hit.chain
            .iter()
            .any(|hop| hop.contains("crates/core/src/data_bucket.rs")),
        "chain must pass through the data bucket: {:#?}",
        hit.chain
    );
    assert!(
        hit.chain.last().unwrap().contains("add_slice"),
        "{:#?}",
        hit.chain
    );
}
