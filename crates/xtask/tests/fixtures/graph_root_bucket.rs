//! Fixture: a fake data-bucket hot path. In the self-test this file is
//! labeled `crates/core/src/data_bucket.rs`, making every fn here a
//! reachability root.

pub fn on_message(cell: &mut [u8]) {
    helper_entry(cell);
    let _ = unchecked_sum(1, 2);
}
