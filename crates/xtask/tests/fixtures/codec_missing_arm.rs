//! A miniature codec where `Msg::Gamma` has an encode arm but no decode
//! arm: the exhaustiveness check must fire exactly once.

pub enum Msg {
    Alpha { x: u64 },
    Beta(Vec<u8>),
    Gamma,
}

pub fn encode_msg(m: &Msg, out: &mut Vec<u8>) {
    match m {
        Msg::Alpha { x } => out.push(*x as u8),
        Msg::Beta(b) => out.extend_from_slice(b),
        Msg::Gamma => out.push(2),
    }
}

pub fn decode_msg(buf: &[u8]) -> Option<Msg> {
    match buf.first()? {
        0 => Some(Msg::Alpha { x: 7 }),
        1 => Some(Msg::Beta(buf[1..].to_vec())),
        _ => None, // Msg dash Gamma is missing: seeded violation
    }
}
