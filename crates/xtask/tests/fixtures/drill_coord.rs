//! Fixture: minimal coordinator enum for the drill-coverage self-test.

pub enum CoordEvent {
    SplitDone,
}
