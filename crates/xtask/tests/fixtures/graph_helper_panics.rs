//! Fixture: a helper-crate module (labeled `crates/gf/src/helper.rs` in the
//! self-test) with one panic seeded two calls below the hot path, one
//! unchecked addition, and an unreachable decoy that must stay silent.

pub fn helper_entry(cell: &mut [u8]) {
    inner_step(cell);
}

fn inner_step(cell: &mut [u8]) {
    if cell.is_empty() {
        panic!("seeded: two calls below the hot path");
    }
    cell[0] = 0;
}

pub fn unchecked_sum(a: u64, b: u64) -> u64 {
    a + b
}

fn orphan_decoy() {
    unreachable!("decoy: no hot path reaches this fn");
}
