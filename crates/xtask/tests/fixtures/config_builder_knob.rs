//! A config struct with a fluent builder. `builder_only_knob` is written
//! by a builder setter (and read by the builder's validator) but honored
//! nowhere else — with the builder excluded, the coverage check must still
//! flag it as dead.

pub struct Config {
    pub live_knob: usize,
    pub builder_only_knob: usize,
}

pub struct ConfigBuilder {
    cfg: Config,
}

impl ConfigBuilder {
    pub fn live_knob(mut self, v: usize) -> Self {
        self.cfg.live_knob = v;
        self
    }

    pub fn builder_only_knob(mut self, v: usize) -> Self {
        self.cfg.builder_only_knob = v;
        self
    }

    pub fn build(self) -> Result<Config, String> {
        if self.cfg.builder_only_knob == 0 {
            return Err("builder_only_knob must be nonzero".to_string());
        }
        Ok(self.cfg)
    }
}

pub fn consumer(cfg: &Config) -> usize {
    cfg.live_knob
}
