//! A config struct with one live knob and one dead knob. The coverage
//! check must flag `dead_knob` exactly once.

pub struct Config {
    pub live_knob: usize,
    pub dead_knob: usize,
    pub nested: Vec<(u32, u32)>,
}

pub fn consumer(cfg: &Config) -> usize {
    cfg.live_knob + cfg.nested.len()
}
