//! An escape hatch with no justification string: the directive must NOT
//! silence the finding (one unallowed finding expected).

pub fn bad(opt: Option<u32>) -> u32 {
    // lhrs-lint: allow(panic-freedom)
    opt.unwrap()
}
