//! A message enum whose `fn kind` hides one variant behind a wildcard —
//! the obs-coverage check must flag `Msg::Gamma` exactly once.

pub enum Msg {
    Alpha,
    Beta { x: u8 },
    Gamma(u32),
}

impl Msg {
    fn kind(&self) -> &'static str {
        match self {
            Msg::Alpha => "alpha",
            Msg::Beta { .. } => "beta",
            _ => "other",
        }
    }
}
