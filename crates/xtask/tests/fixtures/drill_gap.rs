//! Fixture: production code minting two drill counters; the test region
//! asserts one of them (`recovery_probe_ok`) and the seeded gap
//! (`wal_rotations`) is asserted nowhere.

pub fn rotate(metrics: &Metrics) {
    metrics.incr("wal_rotations");
    metrics.incr("recovery_probe_ok");
}

#[cfg(test)]
mod tests {
    #[test]
    fn probe_counter_moves() {
        let m = Metrics::default();
        rotate(&m);
        assert!(m.counter("recovery_probe_ok") > 0);
        let _ = CoordEvent::SplitDone;
    }
}
