//! Fixture: production code minting four drill counters; the test region
//! asserts two of them (`recovery_probe_ok`, `inflight_launched`) and the
//! seeded gaps (`wal_rotations`, `window_full_stalls`) are asserted
//! nowhere.

pub fn rotate(metrics: &Metrics) {
    metrics.incr("wal_rotations");
    metrics.incr("recovery_probe_ok");
}

pub fn pipelined_submit(metrics: &Metrics) {
    metrics.incr("inflight_launched");
    metrics.incr("window_full_stalls");
}

#[cfg(test)]
mod tests {
    #[test]
    fn probe_counter_moves() {
        let m = Metrics::default();
        rotate(&m);
        assert!(m.counter("recovery_probe_ok") > 0);
        let _ = CoordEvent::SplitDone;
    }

    #[test]
    fn submit_counter_moves() {
        let m = Metrics::default();
        pipelined_submit(&m);
        assert!(m.counter("inflight_launched") > 0);
    }
}
