//! Test-hygiene seeds: one bare `#[ignore]` and one sleep-based
//! synchronization inside a net test module — two findings. The reasoned
//! ignore and the non-test sleep are decoys.

pub fn shutdown_delay() {
    // A sleep in production code is the panic-freedom check's business (it
    // isn't banned); the hygiene check only polices tests.
    std::thread::sleep(std::time::Duration::from_millis(1));
}

#[cfg(test)]
mod tests {
    #[test]
    #[ignore]
    fn flaky_without_reason() {} // seeded: bare #[ignore]

    #[test]
    #[ignore = "needs two NICs; run manually"]
    fn reasoned_ignore_is_fine() {}

    #[test]
    fn sleeps_for_sync() {
        std::thread::sleep(std::time::Duration::from_millis(50)); // seeded
    }
}
