//! The same six banned patterns as `panic_violations.rs`, each silenced by
//! a justified escape hatch — the lint must report ZERO unallowed findings
//! here (and six allowed ones).

pub fn allowed(opt: Option<u32>, buf: &[u8], n: u64) -> u32 {
    // lhrs-lint: allow(panic-freedom) reason="fixture: directive on the line above"
    let a = opt.unwrap();
    let b = opt.expect("present"); // lhrs-lint: allow(panic-freedom) reason="fixture: trailing directive"
    if buf.is_empty() {
        // lhrs-lint: allow(panic-freedom) reason="fixture: macro site"
        panic!("empty");
    }
    if n == 0 {
        // lhrs-lint: allow(panic-freedom) reason="fixture: unreachable site"
        unreachable!();
    }
    let c = buf[0]; // lhrs-lint: allow(panic-freedom) reason="fixture: index site"
    let d = n as u32; // lhrs-lint: allow(panic-freedom) reason="fixture: cast site"
    a + b + u32::from(c) + d
}
