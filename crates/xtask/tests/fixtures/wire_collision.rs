//! Fixture: wire-tag tables with a collision, a retired-tag reuse, and an
//! unpinned tag (the manifest side of the drift lives in
//! `wire_tags_bad.toml`).

pub mod tag {
    pub const PUT: u8 = 1;
    pub const GET: u8 = 1;
    pub const DEL: u8 = 9;
    pub const NEW: u8 = 3;
}

pub mod etag {
    pub const SPLIT_DONE: u8 = 1;
}
