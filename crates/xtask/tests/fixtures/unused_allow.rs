//! Fixture: escape hatches that silence nothing — one stale allow on a
//! clean line, one naming a check that does not exist.

pub fn tidy(a: u64) -> u64 {
    // lhrs-lint: allow(panic-freedom) reason="seeded: nothing here to silence"
    a.saturating_add(1)
}

pub fn bogus(a: u64) -> u64 {
    // lhrs-lint: allow(no-such-check) reason="seeded: unknown check name"
    a
}
