//! Seeded violations for the panic-freedom audit: exactly SIX findings,
//! one per banned pattern. Everything else in this file is a decoy the
//! check must NOT flag. (This fixture is never compiled; the lint
//! self-tests feed it to the checker as text.)

/// Doc-comment decoy with a code fence the lint must skip:
/// ```
/// let x: Option<u32> = None;
/// x.unwrap(); // inside a doc comment — not a finding
/// ```
pub fn violations(opt: Option<u32>, buf: &[u8], n: u64) -> u32 {
    let a = opt.unwrap(); // finding 1: unwrap
    let b = opt.expect("present"); // finding 2: expect
    if buf.is_empty() {
        panic!("empty"); // finding 3: panic!
    }
    if n == 0 {
        unreachable!(); // finding 4: unreachable!
    }
    let c = buf[0]; // finding 5: direct indexing
    let d = n as u32; // finding 6: narrowing cast
    a + b + u32::from(c) + d
}

pub fn decoys(opt: Option<u32>, n: u32) -> u64 {
    let a = opt.unwrap_or(7); // unwrap_or: fine
    let b = opt.unwrap_or_else(|| 9); // unwrap_or_else: fine
    let s = "calling .unwrap() and buf[0] in a string is fine";
    let v = vec![1u8, 2, 3]; // vec! macro bracket is not indexing
    let arr: [u8; 4] = [0; 4]; // array type/literal is not indexing
    let widened = n as u64; // widening cast: fine
    let first = v.first().copied().unwrap_or(0);
    u64::from(a + b) + s.len() as u64 + arr.len() as u64 + widened + u64::from(first)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let v: Vec<u8> = vec![1, 2, 3];
        assert_eq!(v[0], 1); // indexing in tests: fine
        let x: Option<u8> = Some(3);
        x.unwrap(); // unwrap in tests: fine
    }
}
