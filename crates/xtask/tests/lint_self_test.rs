//! The analyzer is itself tested: every check must fire on its seeded
//! fixture (exactly once per planted violation), stay silent on the
//! decoys, and honour the escape hatch.

use std::path::Path;

use lhrs_xtask::checks::{
    check_codec_exhaustiveness, check_config_knobs, check_obs_coverage, check_panic_freedom,
    check_test_hygiene, enum_variants, struct_fields,
};
use lhrs_xtask::{fix_allow_report, run_all, Finding, OBS_SITES};

const PANIC_VIOLATIONS: &str = include_str!("fixtures/panic_violations.rs");
const PANIC_ALLOWED: &str = include_str!("fixtures/panic_allowed.rs");
const PANIC_BAD_ALLOW: &str = include_str!("fixtures/panic_bad_allow.rs");
const CODEC_MISSING: &str = include_str!("fixtures/codec_missing_arm.rs");
const CONFIG_DEAD: &str = include_str!("fixtures/config_dead_knob.rs");
const CONFIG_BUILDER: &str = include_str!("fixtures/config_builder_knob.rs");
const HYGIENE: &str = include_str!("fixtures/hygiene_violations.rs");
const OBS_WILDCARD: &str = include_str!("fixtures/obs_kind_wildcard.rs");

fn unallowed(findings: &[Finding]) -> Vec<&Finding> {
    findings.iter().filter(|f| f.allowed.is_none()).collect()
}

#[test]
fn panic_freedom_fires_once_per_seeded_violation() {
    let findings = check_panic_freedom("fixtures/panic_violations.rs", PANIC_VIOLATIONS);
    let open = unallowed(&findings);
    let mut lines: Vec<usize> = open.iter().map(|f| f.line).collect();
    lines.dedup();
    assert_eq!(
        open.len(),
        6,
        "expected exactly 6 findings (one per seeded pattern), got:\n{:#?}",
        open
    );
    assert_eq!(lines.len(), 6, "each violation is on its own line");
    for needle in [
        ".unwrap()",
        ".expect()",
        "panic!",
        "unreachable!",
        "direct indexing",
        "`as u32`",
    ] {
        assert_eq!(
            open.iter().filter(|f| f.message.contains(needle)).count(),
            1,
            "expected exactly one `{needle}` finding"
        );
    }
}

#[test]
fn escape_hatch_silences_with_justification() {
    let findings = check_panic_freedom("fixtures/panic_allowed.rs", PANIC_ALLOWED);
    let open = unallowed(&findings);
    assert!(
        open.is_empty(),
        "justified allows must silence every finding, got:\n{:#?}",
        open
    );
    assert_eq!(
        findings.iter().filter(|f| f.allowed.is_some()).count(),
        6,
        "the six silenced findings are still reported as allowed residue"
    );
}

#[test]
fn escape_hatch_requires_nonempty_reason() {
    let findings = check_panic_freedom("fixtures/panic_bad_allow.rs", PANIC_BAD_ALLOW);
    let open = unallowed(&findings);
    assert_eq!(open.len(), 1);
    assert!(
        open[0].message.contains("justification"),
        "message should call out the missing reason: {}",
        open[0].message
    );
}

#[test]
fn codec_check_finds_the_missing_decode_arm() {
    let findings = check_codec_exhaustiveness(
        "Msg",
        CODEC_MISSING,
        "fixtures/codec_missing_arm.rs",
        CODEC_MISSING,
        "encode_msg",
        "decode_msg",
    );
    let open = unallowed(&findings);
    assert_eq!(open.len(), 1, "exactly the seeded gap: {:#?}", open);
    assert!(open[0].message.contains("Msg::Gamma"));
    assert!(open[0].message.contains("decode_msg"));
}

#[test]
fn codec_variant_extraction_sees_all_shapes() {
    let vars = enum_variants("Msg", CODEC_MISSING).expect("enum found");
    assert_eq!(vars, ["Alpha", "Beta", "Gamma"]);
}

#[test]
fn config_check_flags_only_the_dead_knob() {
    let sources = vec![(
        "fixtures/config_dead_knob.rs".to_string(),
        CONFIG_DEAD.to_string(),
    )];
    let findings = check_config_knobs(
        "Config",
        "fixtures/config_dead_knob.rs",
        CONFIG_DEAD,
        &sources,
        None,
    );
    let open = unallowed(&findings);
    assert_eq!(open.len(), 1, "{:#?}", open);
    assert!(open[0].message.contains("dead_knob"));

    let (_, _, fields) = struct_fields("Config", CONFIG_DEAD).expect("struct found");
    let names: Vec<&str> = fields.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(names, ["live_knob", "dead_knob", "nested"]);
}

#[test]
fn config_check_is_builder_aware() {
    let sources = vec![(
        "fixtures/config_builder_knob.rs".to_string(),
        CONFIG_BUILDER.to_string(),
    )];
    // Without exclusion, the builder's setter writes mask the dead knob.
    let masked = check_config_knobs(
        "Config",
        "fixtures/config_builder_knob.rs",
        CONFIG_BUILDER,
        &sources,
        None,
    );
    assert!(unallowed(&masked).is_empty(), "{:#?}", masked);
    // With the builder impl excluded, only the genuinely honored knob
    // survives: `builder_only_knob` is stored and validated by the builder
    // but read nowhere else, so it must be flagged.
    let findings = check_config_knobs(
        "Config",
        "fixtures/config_builder_knob.rs",
        CONFIG_BUILDER,
        &sources,
        Some("ConfigBuilder"),
    );
    let open = unallowed(&findings);
    assert_eq!(open.len(), 1, "{:#?}", open);
    assert!(open[0].message.contains("builder_only_knob"));
}

#[test]
fn hygiene_check_fires_on_bare_ignore_and_test_sleep() {
    let findings = check_test_hygiene(
        "crates/net/src/fixture.rs",
        HYGIENE,
        /* in_net = */ true,
    );
    let open = unallowed(&findings);
    assert_eq!(open.len(), 2, "{:#?}", open);
    assert_eq!(
        open.iter()
            .filter(|f| f.message.contains("#[ignore]"))
            .count(),
        1
    );
    assert_eq!(
        open.iter()
            .filter(|f| f.message.contains("sleep-based"))
            .count(),
        1
    );
    // Outside crates/net the sleep rule does not apply; the bare #[ignore]
    // still does.
    let findings = check_test_hygiene("crates/core/src/fixture.rs", HYGIENE, false);
    assert_eq!(unallowed(&findings).len(), 1);
}

#[test]
fn fix_allow_report_lists_open_findings_with_todo_reasons() {
    let findings = check_panic_freedom("fixtures/panic_violations.rs", PANIC_VIOLATIONS);
    let report = fix_allow_report(&findings);
    assert_eq!(
        report.matches("lhrs-lint: allow(panic-freedom)").count(),
        6,
        "one suggested directive per open finding:\n{report}"
    );
    assert!(report.contains("TODO: justify"));
}

#[test]
fn obs_check_flags_the_wildcard_kind_arm() {
    let findings = check_obs_coverage(
        "Msg",
        OBS_WILDCARD,
        "fixtures/obs_kind_wildcard.rs",
        OBS_WILDCARD,
        &[],
    );
    let open = unallowed(&findings);
    assert_eq!(open.len(), 1, "{:#?}", open);
    assert!(open[0].message.contains("Msg::Gamma"));
    assert!(open[0].message.contains("wildcard"));
}

#[test]
fn obs_check_verifies_counter_sites() {
    // A site whose needle is present stays silent; a gutted site and a
    // missing file each produce one finding.
    let good = r#"fn send() { self.obs.incr_kind("msgs_sent", msg.kind()); }"#;
    let bad = "fn send() { /* counters removed */ }";
    let findings = check_obs_coverage(
        "Msg",
        OBS_WILDCARD,
        "fixtures/obs_kind_wildcard.rs",
        OBS_WILDCARD,
        &[
            (
                "sim/actor.rs",
                Some(good),
                "incr_kind(\"msgs_sent\"",
                "Env::send",
            ),
            (
                "sim/engine.rs",
                Some(bad),
                "incr_kind(\"msgs_recv\"",
                "Sim::step",
            ),
            (
                "net/host.rs",
                None,
                "incr_kind(\"msgs_recv\"",
                "NodeHost dispatch",
            ),
        ],
    );
    let open = unallowed(&findings);
    let site_findings: Vec<_> = open
        .iter()
        .filter(|f| !f.message.contains("Msg::Gamma"))
        .collect();
    assert_eq!(site_findings.len(), 2, "{:#?}", site_findings);
    assert!(site_findings
        .iter()
        .any(|f| f.file == "sim/engine.rs" && f.message.contains("Sim::step")));
    assert!(site_findings
        .iter()
        .any(|f| f.file == "net/host.rs" && f.message.contains("file not found")));
}

/// Gutting the real `Env::send` counter call must break the obs check —
/// the regression it exists to catch.
#[test]
fn deleting_a_real_counter_site_breaks_the_obs_check() {
    let root = workspace_root();
    let msg_src = std::fs::read_to_string(root.join("crates/core/src/msg.rs")).expect("msg.rs");
    let actor_src =
        std::fs::read_to_string(root.join("crates/sim/src/actor.rs")).expect("actor.rs");
    let gutted = actor_src.replace("incr_kind(\"msgs_sent\"", "incr_kind(\"renamed\"");
    assert_ne!(gutted, actor_src, "the site we delete must exist");

    let sites: Vec<lhrs_xtask::checks::ObsSite<'_>> = OBS_SITES
        .iter()
        .map(|(label, needle, role)| {
            let text = if *label == "crates/sim/src/actor.rs" {
                gutted.as_str()
            } else {
                // Other sites aren't under test; feed them their needle.
                *needle
            };
            (*label, Some(text), *needle, *role)
        })
        .collect();
    let findings = check_obs_coverage("Msg", &msg_src, "crates/core/src/msg.rs", &msg_src, &sites);
    let open = unallowed(&findings);
    assert_eq!(open.len(), 1, "{:#?}", open);
    assert!(open[0].message.contains("Env::send"));
}

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/xtask sits two levels below the workspace root")
}

/// The acceptance gate: the real tree carries zero unallowed findings.
#[test]
fn real_workspace_is_clean() {
    let findings = run_all(workspace_root());
    let open = unallowed(&findings);
    assert!(
        open.is_empty(),
        "the workspace must lint clean; found:\n{}",
        open.iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Deleting one `Msg` arm from the real `wire.rs` encode half must make the
/// codec check fail — this is the regression the lint exists to catch.
#[test]
fn deleting_a_real_encode_arm_breaks_the_codec_check() {
    let root = workspace_root();
    let msg_src = std::fs::read_to_string(root.join("crates/core/src/msg.rs")).expect("msg.rs");
    let wire_src = std::fs::read_to_string(root.join("crates/core/src/wire.rs")).expect("wire.rs");

    // Intact tree: no codec findings.
    let clean = check_codec_exhaustiveness(
        "Msg",
        &msg_src,
        "crates/core/src/wire.rs",
        &wire_src,
        "encode_msg",
        "decode_msg",
    );
    assert!(unallowed(&clean).is_empty(), "{:#?}", clean);

    // Drop the ForceMerge encode arm and re-run.
    let sabotaged = wire_src.replace("Msg::ForceMerge => out.push(tag::FORCE_MERGE),", "");
    assert_ne!(sabotaged, wire_src, "the arm we delete must exist");
    let broken = check_codec_exhaustiveness(
        "Msg",
        &msg_src,
        "crates/core/src/wire.rs",
        &sabotaged,
        "encode_msg",
        "decode_msg",
    );
    let open = unallowed(&broken);
    assert_eq!(open.len(), 1, "{:#?}", open);
    assert!(open[0].message.contains("Msg::ForceMerge"));
    assert!(open[0].message.contains("encode_msg"));
}
