//! The structured trace-event taxonomy shared by the simulator and the TCP
//! runtime, plus a dependency-free JSONL encoding of it.

/// One structured observation emitted by an actor hot path.
///
/// Node identifiers are carried as raw `u32`s (the payload of
/// `lhrs_sim::NodeId`) so this crate stays dependency-free and usable from
/// every layer of the workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A protocol message left a node.
    MsgSent {
        /// Message kind label (`Payload::kind()`).
        kind: &'static str,
        /// Sending node.
        from: u32,
        /// Destination node.
        to: u32,
        /// Encoded payload size.
        bytes: u64,
    },
    /// A protocol message was delivered to a node.
    MsgRecv {
        /// Message kind label (`Payload::kind()`).
        kind: &'static str,
        /// Sending node.
        from: u32,
        /// Receiving node.
        to: u32,
    },
    /// A client re-sent an operation after a timeout.
    Retry {
        /// The operation id being retried.
        op: u64,
        /// Retry attempt number (1 = first resend).
        attempt: u64,
    },
    /// A bucket split began (coordinator issued `DoSplit`).
    SplitStart {
        /// The bucket being split.
        bucket: u64,
    },
    /// A bucket split completed (coordinator saw `SplitDone`).
    SplitEnd {
        /// The bucket that split.
        bucket: u64,
        /// The new sibling bucket created by the split.
        new_bucket: u64,
    },
    /// A data bucket committed a Δ to its parity group.
    DeltaCommit {
        /// The emitting data bucket.
        bucket: u64,
        /// Δ payload bytes pushed to parity.
        bytes: u64,
        /// Number of parity columns addressed (k).
        columns: u64,
    },
    /// Group recovery started (failure confirmed, spares allocated).
    RecoveryStart {
        /// The bucket group being recovered.
        group: u64,
        /// Number of failed shards being rebuilt.
        failed: u64,
    },
    /// One shard finished rebuilding onto its spare.
    RecoveryShard {
        /// The bucket group.
        group: u64,
        /// Shard index inside the group (data column or m+parity column).
        shard: u64,
        /// Bytes installed on the spare.
        bytes: u64,
    },
    /// Group recovery finished.
    RecoveryEnd {
        /// The bucket group.
        group: u64,
        /// Shards rebuilt during this recovery.
        rebuilt: u64,
        /// `false` when the group was declared unrecoverable.
        ok: bool,
    },
    /// A read was served through parity decoding while data buckets were
    /// down — the user-visible availability event.
    DegradedRead {
        /// The bucket group that served the read.
        group: u64,
    },
    /// A protocol invariant was violated; the actor degraded instead of
    /// aborting.
    InvariantViolated {
        /// Human-readable context (mirrors `CoordEvent::InvariantViolated`).
        context: String,
    },
    /// The networked runtime failed to decode an inbound frame or message.
    DecodeError {
        /// What failed to decode.
        context: String,
    },
    /// A bucket rebuilt itself from its local snapshot + write-ahead log
    /// after a process restart.
    WalReplay {
        /// The replayed shard: the data bucket number, or `m + index` for
        /// parity column `index` (the shard-index convention of recovery).
        bucket: u64,
        /// Logged ops folded over the snapshot.
        ops: u64,
        /// Bytes of logged ops replayed.
        bytes: u64,
    },
    /// A restarted data bucket caught up via a Δ-suffix from its parity
    /// group instead of a full RS rebuild.
    RestartSuffix {
        /// The catching-up data bucket.
        bucket: u64,
        /// Suffix entries applied.
        entries: u64,
        /// Suffix payload bytes applied.
        bytes: u64,
    },
    /// A restart could not be served by Δ-suffix catch-up (divergent parity
    /// watermarks, truncated history, or a busy group): the coordinator
    /// fell back to the full RS rebuild.
    RestartFallback {
        /// The data bucket that fell back.
        bucket: u64,
    },
}

/// Append a JSON string literal (with escaping) to `out`.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Event {
    /// Stable label for the event type (used as the JSON `"type"` field and
    /// in per-event-type counters).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::MsgSent { .. } => "msg_sent",
            Event::MsgRecv { .. } => "msg_recv",
            Event::Retry { .. } => "retry",
            Event::SplitStart { .. } => "split_start",
            Event::SplitEnd { .. } => "split_end",
            Event::DeltaCommit { .. } => "delta_commit",
            Event::RecoveryStart { .. } => "recovery_start",
            Event::RecoveryShard { .. } => "recovery_shard",
            Event::RecoveryEnd { .. } => "recovery_end",
            Event::DegradedRead { .. } => "degraded_read",
            Event::InvariantViolated { .. } => "invariant_violated",
            Event::DecodeError { .. } => "decode_error",
            Event::WalReplay { .. } => "wal_replay",
            Event::RestartSuffix { .. } => "restart_suffix",
            Event::RestartFallback { .. } => "restart_fallback",
        }
    }

    /// Append this event's fields as JSON key/value pairs (no surrounding
    /// braces; the caller owns the object envelope).
    pub(crate) fn write_json_fields(&self, out: &mut String) {
        match self {
            Event::MsgSent {
                kind,
                from,
                to,
                bytes,
            } => {
                out.push_str(&format!(
                    "\"kind\":\"{kind}\",\"from\":{from},\"to\":{to},\"bytes\":{bytes}"
                ));
            }
            Event::MsgRecv { kind, from, to } => {
                out.push_str(&format!("\"kind\":\"{kind}\",\"from\":{from},\"to\":{to}"));
            }
            Event::Retry { op, attempt } => {
                out.push_str(&format!("\"op\":{op},\"attempt\":{attempt}"));
            }
            Event::SplitStart { bucket } => {
                out.push_str(&format!("\"bucket\":{bucket}"));
            }
            Event::SplitEnd { bucket, new_bucket } => {
                out.push_str(&format!("\"bucket\":{bucket},\"new_bucket\":{new_bucket}"));
            }
            Event::DeltaCommit {
                bucket,
                bytes,
                columns,
            } => {
                out.push_str(&format!(
                    "\"bucket\":{bucket},\"bytes\":{bytes},\"columns\":{columns}"
                ));
            }
            Event::RecoveryStart { group, failed } => {
                out.push_str(&format!("\"group\":{group},\"failed\":{failed}"));
            }
            Event::RecoveryShard {
                group,
                shard,
                bytes,
            } => {
                out.push_str(&format!(
                    "\"group\":{group},\"shard\":{shard},\"bytes\":{bytes}"
                ));
            }
            Event::RecoveryEnd { group, rebuilt, ok } => {
                out.push_str(&format!(
                    "\"group\":{group},\"rebuilt\":{rebuilt},\"ok\":{ok}"
                ));
            }
            Event::DegradedRead { group } => {
                out.push_str(&format!("\"group\":{group}"));
            }
            Event::InvariantViolated { context } | Event::DecodeError { context } => {
                out.push_str("\"context\":");
                push_json_str(out, context);
            }
            Event::WalReplay { bucket, ops, bytes } => {
                out.push_str(&format!(
                    "\"bucket\":{bucket},\"ops\":{ops},\"bytes\":{bytes}"
                ));
            }
            Event::RestartSuffix {
                bucket,
                entries,
                bytes,
            } => {
                out.push_str(&format!(
                    "\"bucket\":{bucket},\"entries\":{entries},\"bytes\":{bytes}"
                ));
            }
            Event::RestartFallback { bucket } => {
                out.push_str(&format!("\"bucket\":{bucket}"));
            }
        }
    }
}

/// An [`Event`] stamped with a timestamp and a global push sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedEvent {
    /// Timestamp in microseconds: logical sim time or wall time since host
    /// start, depending on the recording [`crate::Clock`].
    pub at_us: u64,
    /// Global push index (monotone across ring wraparound).
    pub seq: u64,
    /// The event.
    pub event: Event,
}

impl TimedEvent {
    /// Render as one JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str(&format!(
            "{{\"at_us\":{},\"seq\":{},\"type\":\"{}\",",
            self.at_us,
            self.seq,
            self.event.kind()
        ));
        self.event.write_json_fields(&mut out);
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_of_context_strings() {
        let ev = TimedEvent {
            at_us: 7,
            seq: 0,
            event: Event::InvariantViolated {
                context: "quote \" backslash \\ newline \n ctrl \u{1}".to_string(),
            },
        };
        let json = ev.to_json();
        assert!(json.contains("\\\""));
        assert!(json.contains("\\\\"));
        assert!(json.contains("\\n"));
        assert!(json.contains("\\u0001"));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn recovery_and_wal_kinds_reach_the_json_type_field() {
        // The kill drills gate on these per-event-type series; pin the
        // labels all the way through the serialization path so a renamed
        // variant cannot silently break every drill built on them.
        let cases = [
            (
                Event::RecoveryStart {
                    group: 3,
                    failed: 1,
                },
                "recovery_start",
            ),
            (
                Event::RecoveryEnd {
                    group: 3,
                    rebuilt: 1,
                    ok: true,
                },
                "recovery_end",
            ),
            (
                Event::WalReplay {
                    bucket: 0,
                    ops: 9,
                    bytes: 128,
                },
                "wal_replay",
            ),
        ];
        for (event, kind) in cases {
            assert_eq!(event.kind(), kind);
            let json = TimedEvent {
                at_us: 1,
                seq: 0,
                event,
            }
            .to_json();
            assert!(
                json.contains(&format!("\"type\":\"{kind}\"")),
                "label missing from envelope: {json}"
            );
        }
    }

    #[test]
    fn every_event_renders_valid_envelope() {
        let events = [
            Event::MsgSent {
                kind: "insert",
                from: 1,
                to: 2,
                bytes: 64,
            },
            Event::MsgRecv {
                kind: "insert",
                from: 1,
                to: 2,
            },
            Event::Retry { op: 9, attempt: 1 },
            Event::SplitStart { bucket: 0 },
            Event::SplitEnd {
                bucket: 0,
                new_bucket: 4,
            },
            Event::DeltaCommit {
                bucket: 2,
                bytes: 132,
                columns: 2,
            },
            Event::RecoveryStart {
                group: 0,
                failed: 2,
            },
            Event::RecoveryShard {
                group: 0,
                shard: 1,
                bytes: 4096,
            },
            Event::RecoveryEnd {
                group: 0,
                rebuilt: 2,
                ok: true,
            },
            Event::DegradedRead { group: 0 },
            Event::InvariantViolated {
                context: "x".into(),
            },
            Event::DecodeError {
                context: "frame".into(),
            },
            Event::WalReplay {
                bucket: 3,
                ops: 12,
                bytes: 400,
            },
            Event::RestartSuffix {
                bucket: 3,
                entries: 5,
                bytes: 160,
            },
            Event::RestartFallback { bucket: 3 },
        ];
        for (i, event) in events.into_iter().enumerate() {
            let t = TimedEvent {
                at_us: i as u64,
                seq: i as u64,
                event,
            };
            let json = t.to_json();
            assert!(
                json.contains(&format!("\"type\":\"{}\"", t.event.kind())),
                "{json}"
            );
        }
    }
}
