//! lhrs-obs: the workspace-wide observability layer.
//!
//! One [`Metrics`] handle carries three instruments:
//!
//! - **counters** — cheap saturating [`AtomicU64`]s, optionally labeled
//!   (e.g. `msgs_sent{kind="insert"}`);
//! - **histograms** — fixed power-of-two-bucket latency histograms
//!   ([`Histogram`]);
//! - **a trace log** — a bounded ring buffer of structured [`Event`]s
//!   ([`TraceLog`]), each stamped with a timestamp.
//!
//! The same handle is threaded through `lhrs_sim::Env` (so every actor is
//! instrumented identically in the simulator and over TCP) and cloned into
//! hosts and transports; clones share state. Timestamps come from the
//! [`Clock`] seam: `Clock::Logical` defers to caller-supplied sim time,
//! `Clock::wall()` measures microseconds since an epoch `Instant`.
//!
//! `Metrics::disabled()` is a no-op handle: every operation short-circuits
//! on a `None` inner pointer, so instrumentation costs ~one branch when
//! observability is off.
//!
//! Snapshots render to Prometheus text exposition format
//! ([`Snapshot::render_prometheus`]) and the trace log to JSONL; a derived
//! [`RecoveryReport`] condenses a drill run into the paper's recovery
//! metrics (shards rebuilt, bytes moved, duration, messages by type).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod hist;
mod report;
mod trace;

pub use event::{Event, TimedEvent};
pub use hist::{Histogram, HistogramSnapshot, BUCKET_BOUNDS_US};
pub use report::{RecoveryReport, RestartReport};
pub use trace::{TraceLog, DEFAULT_TRACE_CAPACITY};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Counter key: `(name, label)`; unlabeled counters use `label = ""`.
type Key = (&'static str, &'static str);

/// The timestamp source for trace events recorded without an explicit
/// caller-supplied time.
#[derive(Debug, Clone)]
pub enum Clock {
    /// Logical time: the recording site supplies timestamps (simulated
    /// microseconds). [`Clock::now_us`] reads 0.
    Logical,
    /// Wall time: microseconds elapsed since the contained epoch.
    Wall(Instant),
}

impl Clock {
    /// A wall clock anchored at "now".
    pub fn wall() -> Clock {
        Clock::Wall(Instant::now())
    }

    /// The logical (caller-timestamped) clock.
    pub fn logical() -> Clock {
        Clock::Logical
    }

    /// Microseconds on this clock: elapsed-since-epoch for wall clocks,
    /// 0 for the logical clock (logical sites pass their own `now`).
    pub fn now_us(&self) -> u64 {
        match self {
            Clock::Logical => 0,
            Clock::Wall(epoch) => u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX),
        }
    }

    /// Stable label for reports ("logical-us" / "wall-us").
    pub fn label(&self) -> &'static str {
        match self {
            Clock::Logical => "logical-us",
            Clock::Wall(_) => "wall-us",
        }
    }
}

#[derive(Debug)]
struct Inner {
    clock: Clock,
    counters: Mutex<BTreeMap<Key, Arc<AtomicU64>>>,
    hists: Mutex<BTreeMap<&'static str, Arc<Histogram>>>,
    trace: TraceLog,
    /// When false (the default), `MsgSent`/`MsgRecv` trace *events* are
    /// suppressed (the counters still run) so per-message noise cannot
    /// wash recovery timelines out of the bounded ring.
    trace_msgs: AtomicBool,
}

/// Recover from mutex poisoning: registry maps hold plain data with no
/// cross-panic invariants, and the observer must never abort the observed
/// system.
fn lock_or_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn saturating_add(cell: &AtomicU64, delta: u64) {
    let _ = cell.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
        Some(v.saturating_add(delta))
    });
}

/// A cloneable, thread-safe observability handle. Clones share state;
/// [`Metrics::disabled`] handles do nothing.
#[derive(Debug, Clone)]
pub struct Metrics {
    inner: Option<Arc<Inner>>,
}

impl Default for Metrics {
    /// The default handle is **disabled** — instrumentation is opt-in.
    fn default() -> Self {
        Metrics::disabled()
    }
}

impl Metrics {
    /// An enabled registry using `clock` for implicit timestamps and the
    /// default trace capacity.
    pub fn new(clock: Clock) -> Metrics {
        Metrics::with_trace_capacity(clock, DEFAULT_TRACE_CAPACITY)
    }

    /// An enabled registry with an explicit trace-ring capacity.
    pub fn with_trace_capacity(clock: Clock, capacity: usize) -> Metrics {
        Metrics {
            inner: Some(Arc::new(Inner {
                clock,
                counters: Mutex::new(BTreeMap::new()),
                hists: Mutex::new(BTreeMap::new()),
                trace: TraceLog::with_capacity(capacity),
                trace_msgs: AtomicBool::new(false),
            })),
        }
    }

    /// The no-op handle: every operation returns immediately.
    pub fn disabled() -> Metrics {
        Metrics { inner: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Current time on the registry's [`Clock`] (0 when disabled or
    /// logical).
    pub fn now_us(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.clock.now_us())
    }

    /// The clock label ("logical-us"/"wall-us"; "disabled" for the no-op
    /// handle).
    pub fn clock_label(&self) -> &'static str {
        self.inner.as_ref().map_or("disabled", |i| i.clock.label())
    }

    /// Opt into recording `MsgSent`/`MsgRecv` **trace events** (their
    /// counters always run). Off by default so bulk traffic cannot evict
    /// recovery timelines from the bounded ring.
    pub fn set_msg_trace(&self, enabled: bool) {
        if let Some(inner) = &self.inner {
            inner.trace_msgs.store(enabled, Ordering::Relaxed);
        }
    }

    /// Whether per-message trace events are being recorded.
    pub fn msg_trace(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|i| i.trace_msgs.load(Ordering::Relaxed))
    }

    fn counter_cell(&self, name: &'static str, label: &'static str) -> Option<Arc<AtomicU64>> {
        let inner = self.inner.as_ref()?;
        let mut map = lock_or_recover(&inner.counters);
        Some(Arc::clone(
            map.entry((name, label)).or_insert_with(Default::default),
        ))
    }

    /// Add 1 to the unlabeled counter `name`.
    pub fn incr(&self, name: &'static str) {
        self.add(name, 1);
    }

    /// Add `delta` to the unlabeled counter `name` (saturating).
    pub fn add(&self, name: &'static str, delta: u64) {
        if let Some(cell) = self.counter_cell(name, "") {
            saturating_add(&cell, delta);
        }
    }

    /// Add 1 to the labeled counter `name{kind=label}`.
    pub fn incr_kind(&self, name: &'static str, label: &'static str) {
        self.add_kind(name, label, 1);
    }

    /// Add `delta` to the labeled counter `name{kind=label}` (saturating).
    pub fn add_kind(&self, name: &'static str, label: &'static str, delta: u64) {
        if let Some(cell) = self.counter_cell(name, label) {
            saturating_add(&cell, delta);
        }
    }

    /// Read the unlabeled counter `name` (0 if never touched or disabled).
    pub fn counter(&self, name: &'static str) -> u64 {
        self.counter_kind(name, "")
    }

    /// Read the labeled counter `name{kind=label}`.
    pub fn counter_kind(&self, name: &'static str, label: &'static str) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        let map = lock_or_recover(&inner.counters);
        map.get(&(name, label))
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Sum of all labels of counter `name` (including the unlabeled cell).
    pub fn counter_total(&self, name: &'static str) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        let map = lock_or_recover(&inner.counters);
        map.iter()
            .filter(|((n, _), _)| *n == name)
            .fold(0u64, |acc, (_, c)| {
                acc.saturating_add(c.load(Ordering::Relaxed))
            })
    }

    /// Record one latency observation into histogram `name`.
    pub fn observe_us(&self, name: &'static str, value_us: u64) {
        let Some(inner) = &self.inner else { return };
        let hist = {
            let mut map = lock_or_recover(&inner.hists);
            Arc::clone(map.entry(name).or_insert_with(Default::default))
        };
        hist.observe(value_us);
    }

    /// Snapshot histogram `name`, if it has ever been observed.
    pub fn histogram(&self, name: &'static str) -> Option<HistogramSnapshot> {
        let inner = self.inner.as_ref()?;
        let map = lock_or_recover(&inner.hists);
        map.get(name).map(|h| h.snapshot())
    }

    /// Record a trace event stamped with the caller's timestamp (simulated
    /// or wall µs). Also bumps the `events{kind=<event type>}` counter.
    pub fn trace(&self, at_us: u64, event: Event) {
        let Some(inner) = &self.inner else { return };
        if matches!(event, Event::MsgSent { .. } | Event::MsgRecv { .. })
            && !inner.trace_msgs.load(Ordering::Relaxed)
        {
            return;
        }
        self.incr_kind("events", event.kind());
        inner.trace.push(at_us, event);
    }

    /// Record a trace event stamped by the registry's own [`Clock`] — for
    /// recording sites without access to an actor environment (transport
    /// reader threads, host loops).
    pub fn trace_now(&self, event: Event) {
        self.trace(self.now_us(), event);
    }

    /// The retained trace events, oldest first.
    pub fn events(&self) -> Vec<TimedEvent> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.trace.events())
    }

    /// The trace log (for capacity/drop introspection), when enabled.
    pub fn trace_log(&self) -> Option<&TraceLog> {
        self.inner.as_ref().map(|i| &i.trace)
    }

    /// Render the retained trace as JSONL (empty string when disabled).
    pub fn trace_jsonl(&self) -> String {
        self.inner
            .as_ref()
            .map_or_else(String::new, |i| i.trace.to_jsonl())
    }

    /// A point-in-time copy of every counter and histogram.
    pub fn snapshot(&self) -> Snapshot {
        let Some(inner) = &self.inner else {
            return Snapshot::default();
        };
        let counters = {
            let map = lock_or_recover(&inner.counters);
            map.iter()
                .map(|((name, label), cell)| CounterSample {
                    name: (*name).to_string(),
                    label: (*label).to_string(),
                    value: cell.load(Ordering::Relaxed),
                })
                .collect()
        };
        let histograms = {
            let map = lock_or_recover(&inner.hists);
            map.iter()
                .map(|(name, h)| ((*name).to_string(), h.snapshot()))
                .collect()
        };
        Snapshot {
            counters,
            histograms,
        }
    }

    /// Shorthand: render the current [`Snapshot`] as Prometheus text.
    pub fn render_prometheus(&self) -> String {
        self.snapshot().render_prometheus()
    }
}

/// One counter reading inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSample {
    /// Counter name (e.g. `msgs_sent`).
    pub name: String,
    /// `kind` label value; empty for unlabeled counters.
    pub label: String,
    /// The reading.
    pub value: u64,
}

/// A point-in-time copy of a [`Metrics`] registry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// All counters, sorted by (name, label).
    pub counters: Vec<CounterSample>,
    /// All histograms, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// Read one counter back out of the snapshot (`label = ""` for
    /// unlabeled).
    pub fn counter(&self, name: &str, label: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name && c.label == label)
            .map_or(0, |c| c.value)
    }

    /// Render in Prometheus text exposition format. Counter names gain the
    /// `lhrs_` prefix and `_total` suffix; labeled counters render a
    /// `kind` label.
    pub fn render_prometheus(&self) -> String {
        let mut out =
            String::with_capacity(self.counters.len().saturating_add(1).saturating_mul(64));
        let mut last_name = "";
        for c in &self.counters {
            if c.name != last_name {
                out.push_str(&format!("# TYPE lhrs_{}_total counter\n", c.name));
                last_name = &c.name;
            }
            if c.label.is_empty() {
                out.push_str(&format!("lhrs_{}_total {}\n", c.name, c.value));
            } else {
                out.push_str(&format!(
                    "lhrs_{}_total{{kind=\"{}\"}} {}\n",
                    c.name, c.label, c.value
                ));
            }
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!("# TYPE lhrs_{name}_us histogram\n"));
            let mut cum = 0u64;
            for (i, bound) in BUCKET_BOUNDS_US.iter().enumerate() {
                cum = cum.saturating_add(h.counts.get(i).copied().unwrap_or(0));
                out.push_str(&format!("lhrs_{name}_us_bucket{{le=\"{bound}\"}} {cum}\n"));
            }
            out.push_str(&format!(
                "lhrs_{name}_us_bucket{{le=\"+Inf\"}} {}\n",
                h.count
            ));
            out.push_str(&format!("lhrs_{name}_us_sum {}\n", h.sum_us));
            out.push_str(&format!("lhrs_{name}_us_count {}\n", h.count));
        }
        out
    }
}

/// Parse a Prometheus text snapshot back into `(series, value)` pairs,
/// where `series` is the full sample name including any label set (e.g.
/// `lhrs_msgs_sent_total{kind="insert"}`). Comment and malformed lines are
/// skipped — the scraper side of the [`Snapshot::render_prometheus`] seam,
/// used by `lhrs-netcli stats`, drill assertions, and CI.
pub fn parse_prometheus(text: &str) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((series, value)) = line.rsplit_once(' ') else {
            continue;
        };
        let Ok(value) = value.trim().parse::<u64>() else {
            continue;
        };
        out.push((series.trim().to_string(), value));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_a_no_op() {
        let m = Metrics::disabled();
        m.incr("x");
        m.add_kind("msgs_sent", "insert", 5);
        m.observe_us("op_latency", 42);
        m.trace(1, Event::SplitStart { bucket: 0 });
        assert!(!m.is_enabled());
        assert_eq!(m.counter("x"), 0);
        assert_eq!(m.counter_kind("msgs_sent", "insert"), 0);
        assert!(m.histogram("op_latency").is_none());
        assert!(m.events().is_empty());
        assert_eq!(m.snapshot(), Snapshot::default());
        assert_eq!(m.render_prometheus(), "");
        assert_eq!(m.now_us(), 0);
    }

    #[test]
    fn clones_share_state() {
        let a = Metrics::new(Clock::logical());
        let b = a.clone();
        a.incr("hits");
        b.add("hits", 2);
        assert_eq!(a.counter("hits"), 3);
        b.trace(9, Event::DegradedRead { group: 1 });
        assert_eq!(a.events().len(), 1);
    }

    #[test]
    fn concurrent_writers_lose_nothing() {
        // The registry is hammered from the host loop, the TCP reader
        // threads, and STATS pulls at once; totals must stay exact.
        const THREADS: usize = 8;
        const ROUNDS: u64 = 1_000;
        let m = Metrics::new(Clock::logical());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let m = m.clone();
                std::thread::spawn(move || {
                    let kind = if t % 2 == 0 { "insert" } else { "lookup" };
                    for i in 0..ROUNDS {
                        m.incr_kind("msgs_sent", kind);
                        m.observe_us("op_latency", i);
                        m.trace(i, Event::DegradedRead { group: t as u64 });
                        // Concurrent readers must never see torn state.
                        if i % 251 == 0 {
                            let _ = m.snapshot();
                            let _ = m.render_prometheus();
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("writer thread");
        }
        assert_eq!(m.counter_total("msgs_sent"), THREADS as u64 * ROUNDS);
        assert_eq!(m.counter_kind("msgs_sent", "insert"), 4 * ROUNDS);
        assert_eq!(m.counter_kind("msgs_sent", "lookup"), 4 * ROUNDS);
        let snap = m.snapshot();
        let (_, hist) = snap
            .histograms
            .iter()
            .find(|(name, _)| name == "op_latency")
            .expect("histogram recorded");
        assert_eq!(hist.count, THREADS as u64 * ROUNDS);
        if let Some(log) = m.trace_log() {
            assert_eq!(log.pushed(), THREADS as u64 * ROUNDS);
        }
    }

    #[test]
    fn labeled_counters_and_totals() {
        let m = Metrics::new(Clock::logical());
        m.incr_kind("msgs_sent", "insert");
        m.incr_kind("msgs_sent", "insert");
        m.incr_kind("msgs_sent", "lookup");
        assert_eq!(m.counter_kind("msgs_sent", "insert"), 2);
        assert_eq!(m.counter_kind("msgs_sent", "lookup"), 1);
        assert_eq!(m.counter_total("msgs_sent"), 3);
        assert_eq!(m.counter_kind("msgs_sent", "delete"), 0);
    }

    #[test]
    fn counters_saturate() {
        let m = Metrics::new(Clock::logical());
        m.add("big", u64::MAX - 1);
        m.add("big", 5);
        assert_eq!(m.counter("big"), u64::MAX);
    }

    #[test]
    fn msg_trace_events_are_gated_but_counters_are_not() {
        let m = Metrics::new(Clock::logical());
        m.trace(
            1,
            Event::MsgSent {
                kind: "insert",
                from: 0,
                to: 1,
                bytes: 8,
            },
        );
        assert!(m.events().is_empty(), "msg events gated off by default");
        m.set_msg_trace(true);
        m.trace(
            2,
            Event::MsgSent {
                kind: "insert",
                from: 0,
                to: 1,
                bytes: 8,
            },
        );
        assert_eq!(m.events().len(), 1);
        // Non-msg events always pass the gate.
        m.set_msg_trace(false);
        m.trace(
            3,
            Event::RecoveryStart {
                group: 0,
                failed: 1,
            },
        );
        assert_eq!(m.events().len(), 2);
    }

    #[test]
    fn prometheus_roundtrip_through_parser() {
        let m = Metrics::new(Clock::logical());
        m.incr_kind("msgs_sent", "insert");
        m.add("recovery_shards_rebuilt", 2);
        m.observe_us("op_latency", 3);
        let text = m.render_prometheus();
        let parsed = parse_prometheus(&text);
        let get = |series: &str| {
            parsed
                .iter()
                .find(|(s, _)| s == series)
                .map(|(_, v)| *v)
                .unwrap_or(u64::MAX)
        };
        assert_eq!(get("lhrs_msgs_sent_total{kind=\"insert\"}"), 1);
        assert_eq!(get("lhrs_recovery_shards_rebuilt_total"), 2);
        assert_eq!(get("lhrs_op_latency_us_count"), 1);
        assert_eq!(get("lhrs_op_latency_us_bucket{le=\"4\"}"), 1);
        assert_eq!(get("lhrs_op_latency_us_bucket{le=\"1\"}"), 0);
    }

    #[test]
    fn snapshot_counter_lookup() {
        let m = Metrics::new(Clock::logical());
        m.incr_kind("events", "split_start");
        m.incr("deltas_applied");
        let snap = m.snapshot();
        assert_eq!(snap.counter("events", "split_start"), 1);
        assert_eq!(snap.counter("deltas_applied", ""), 1);
        assert_eq!(snap.counter("missing", ""), 0);
    }

    #[test]
    fn wall_clock_advances() {
        let m = Metrics::new(Clock::wall());
        let a = m.now_us();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(m.now_us() > a);
        assert_eq!(m.clock_label(), "wall-us");
    }
}
