//! Bounded ring-buffer trace log: the newest `capacity` events survive;
//! older ones are overwritten (and counted) rather than growing memory.

use std::sync::Mutex;

use crate::event::{Event, TimedEvent};

/// Default event capacity of a [`TraceLog`].
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

#[derive(Debug, Default)]
struct Ring {
    buf: Vec<TimedEvent>,
    /// Index of the oldest retained event once the buffer is full.
    head: usize,
    /// Total events ever pushed (monotone; doubles as the next seq).
    pushed: u64,
    /// Events overwritten by wraparound.
    dropped: u64,
}

/// A bounded, thread-safe log of [`TimedEvent`]s.
#[derive(Debug)]
pub struct TraceLog {
    capacity: usize,
    ring: Mutex<Ring>,
}

/// Recover the guard from a poisoned mutex: the protected state is plain
/// data (no invariants spanning a panic), so continuing is always safe and
/// keeps the observer from ever aborting the observed system.
fn lock_or_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl TraceLog {
    /// A log retaining at most `capacity` events (minimum 1).
    pub fn with_capacity(capacity: usize) -> TraceLog {
        TraceLog {
            capacity: capacity.max(1),
            ring: Mutex::new(Ring::default()),
        }
    }

    /// Append an event stamped `at_us`.
    pub fn push(&self, at_us: u64, event: Event) {
        let mut ring = lock_or_recover(&self.ring);
        let seq = ring.pushed;
        ring.pushed = ring.pushed.saturating_add(1);
        let ev = TimedEvent { at_us, seq, event };
        if ring.buf.len() < self.capacity {
            ring.buf.push(ev);
        } else {
            let head = ring.head;
            if let Some(slot) = ring.buf.get_mut(head) {
                *slot = ev;
            }
            // head < capacity <= usize::MAX, so the increment cannot wrap;
            // the modulo keeps the cursor in range either way.
            ring.head = head.wrapping_add(1) % self.capacity;
            ring.dropped = ring.dropped.saturating_add(1);
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<TimedEvent> {
        let ring = lock_or_recover(&self.ring);
        let mut out = Vec::with_capacity(ring.buf.len());
        out.extend_from_slice(ring.buf.get(ring.head..).unwrap_or(&[]));
        out.extend_from_slice(ring.buf.get(..ring.head).unwrap_or(&[]));
        out
    }

    /// Total events ever pushed (retained + overwritten).
    pub fn pushed(&self) -> u64 {
        lock_or_recover(&self.ring).pushed
    }

    /// Events lost to wraparound.
    pub fn dropped(&self) -> u64 {
        lock_or_recover(&self.ring).dropped
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Render the retained events as JSONL, one event per line, oldest
    /// first (trailing newline included when nonempty).
    pub fn to_jsonl(&self) -> String {
        let events = self.events();
        let mut out = String::with_capacity(events.len() * 96);
        for ev in events {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }
}

impl Default for TraceLog {
    fn default() -> Self {
        TraceLog::with_capacity(DEFAULT_TRACE_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(n: u64) -> Event {
        Event::SplitStart { bucket: n }
    }

    #[test]
    fn retains_everything_below_capacity() {
        let log = TraceLog::with_capacity(8);
        for i in 0..5 {
            log.push(i, ev(i));
        }
        let events = log.events();
        assert_eq!(events.len(), 5);
        assert_eq!(log.pushed(), 5);
        assert_eq!(log.dropped(), 0);
        assert!(events.windows(2).all(|w| w[0].seq + 1 == w[1].seq));
    }

    #[test]
    fn wraparound_keeps_the_newest_in_order() {
        let log = TraceLog::with_capacity(4);
        for i in 0..10 {
            log.push(i * 10, ev(i));
        }
        let events = log.events();
        assert_eq!(events.len(), 4);
        assert_eq!(log.pushed(), 10);
        assert_eq!(log.dropped(), 6);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "oldest-first, newest retained");
        assert_eq!(events[0].at_us, 60);
    }

    #[test]
    fn jsonl_has_one_line_per_retained_event() {
        let log = TraceLog::with_capacity(2);
        for i in 0..3 {
            log.push(i, ev(i));
        }
        let jsonl = log.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl
            .lines()
            .all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let log = TraceLog::with_capacity(0);
        log.push(1, ev(1));
        log.push(2, ev(2));
        assert_eq!(log.events().len(), 1);
        assert_eq!(log.events()[0].seq, 1);
    }
}
