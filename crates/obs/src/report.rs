//! Machine-readable recovery reports: condense one drill run into the
//! paper's recovery metrics (shards rebuilt, bytes moved, duration,
//! messages by type), ready to land in `bench_out/` as JSON.

use crate::event::Event;
use crate::Metrics;

/// A derived summary of the recovery work one [`Metrics`] registry saw.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// What produced the numbers (drill name).
    pub scenario: String,
    /// Timestamp domain of `duration_us` ("logical-us" or "wall-us").
    pub clock: &'static str,
    /// Recoveries started (`recovery_start` events).
    pub recoveries_started: u64,
    /// Recoveries that completed successfully.
    pub recoveries_completed: u64,
    /// Total shards rebuilt onto spares.
    pub shards_rebuilt: u64,
    /// Bytes installed on spares during rebuilds.
    pub bytes_moved: u64,
    /// Reads served through parity decoding while servers were down.
    pub degraded_reads: u64,
    /// Client retries observed.
    pub retries: u64,
    /// First `RecoveryStart` → last `RecoveryEnd` span in the trace
    /// (0 when the trace saw no complete recovery).
    pub duration_us: u64,
    /// `msgs_sent` counter per message kind, sorted by kind.
    pub messages_by_kind: Vec<(String, u64)>,
    /// Sum over `messages_by_kind`.
    pub total_messages: u64,
}

impl RecoveryReport {
    /// Derive a report from the counters and retained trace of `metrics`.
    pub fn from_metrics(scenario: &str, metrics: &Metrics) -> RecoveryReport {
        let snap = metrics.snapshot();
        let mut messages_by_kind: Vec<(String, u64)> = snap
            .counters
            .iter()
            .filter(|c| c.name == "msgs_sent" && !c.label.is_empty())
            .map(|c| (c.label.clone(), c.value))
            .collect();
        messages_by_kind.sort();
        let total_messages = messages_by_kind
            .iter()
            .fold(0u64, |acc, (_, v)| acc.saturating_add(*v));

        let mut first_start = None;
        let mut last_end = None;
        for ev in metrics.events() {
            match ev.event {
                Event::RecoveryStart { .. } => {
                    first_start.get_or_insert(ev.at_us);
                }
                Event::RecoveryEnd { .. } => last_end = Some(ev.at_us),
                _ => {}
            }
        }
        let duration_us = match (first_start, last_end) {
            (Some(s), Some(e)) if e >= s => e - s,
            _ => 0,
        };

        RecoveryReport {
            scenario: scenario.to_string(),
            clock: metrics.clock_label(),
            recoveries_started: metrics.counter("recoveries_started"),
            recoveries_completed: metrics.counter("recoveries_completed"),
            shards_rebuilt: metrics.counter("recovery_shards_rebuilt"),
            bytes_moved: metrics.counter("recovery_bytes_moved"),
            degraded_reads: metrics.counter("degraded_reads"),
            retries: metrics.counter("client_retries"),
            duration_us,
            messages_by_kind,
            total_messages,
        }
    }

    /// Render as a pretty-printed JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"scenario\": \"{}\",\n",
            self.scenario.replace('\\', "\\\\").replace('"', "\\\"")
        ));
        out.push_str(&format!("  \"clock\": \"{}\",\n", self.clock));
        out.push_str(&format!(
            "  \"recoveries_started\": {},\n",
            self.recoveries_started
        ));
        out.push_str(&format!(
            "  \"recoveries_completed\": {},\n",
            self.recoveries_completed
        ));
        out.push_str(&format!("  \"shards_rebuilt\": {},\n", self.shards_rebuilt));
        out.push_str(&format!("  \"bytes_moved\": {},\n", self.bytes_moved));
        out.push_str(&format!("  \"degraded_reads\": {},\n", self.degraded_reads));
        out.push_str(&format!("  \"retries\": {},\n", self.retries));
        out.push_str(&format!("  \"duration_us\": {},\n", self.duration_us));
        out.push_str("  \"messages_by_kind\": {");
        for (i, (kind, v)) in self.messages_by_kind.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{kind}\": {v}"));
        }
        out.push_str("},\n");
        out.push_str(&format!("  \"total_messages\": {}\n", self.total_messages));
        out.push_str("}\n");
        out
    }
}

/// A derived summary of one restart drill: how a rebooted bucket got its
/// state back (local WAL replay + Δ-suffix vs full RS rebuild) and what it
/// cost in bytes and messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestartReport {
    /// What produced the numbers (drill arm name).
    pub scenario: String,
    /// Timestamp domain of trace timestamps ("logical-us" or "wall-us").
    pub clock: &'static str,
    /// WAL records appended during the run.
    pub wal_appends: u64,
    /// WAL payload bytes appended.
    pub wal_bytes: u64,
    /// Snapshots taken (seeding, periodic, and structural).
    pub wal_snapshots: u64,
    /// WAL append/snapshot errors swallowed by the degrade-don't-abort rule.
    pub wal_errors: u64,
    /// Restarts that completed via log replay + Δ-suffix catch-up.
    pub restart_recoveries: u64,
    /// Restarts that fell back to the full RS rebuild path.
    pub restart_fallbacks: u64,
    /// Catch-ups the restarting bucket itself aborted (inapplicable
    /// Δ-suffix entry, or a wedged handshake past its watchdog).
    pub restart_aborts: u64,
    /// Δ-suffix entries applied by catching-up buckets.
    pub suffix_entries: u64,
    /// Δ-suffix payload bytes applied.
    pub suffix_bytes: u64,
    /// Bytes moved over the network for recovery (suffix pulls and shard
    /// installs both land here — the experiment's headline cost).
    pub recovery_bytes_moved: u64,
    /// Shards rebuilt through the full RS decode path.
    pub recovery_shards_rebuilt: u64,
    /// Ops folded over local snapshots during WAL replay (trace-derived).
    pub replay_ops: u64,
    /// Bytes of logged ops replayed locally (trace-derived).
    pub replay_bytes: u64,
}

impl RestartReport {
    /// Derive a report from the counters and retained trace of `metrics`.
    pub fn from_metrics(scenario: &str, metrics: &Metrics) -> RestartReport {
        let mut replay_ops = 0u64;
        let mut replay_bytes = 0u64;
        for ev in metrics.events() {
            if let Event::WalReplay { ops, bytes, .. } = ev.event {
                replay_ops = replay_ops.saturating_add(ops);
                replay_bytes = replay_bytes.saturating_add(bytes);
            }
        }
        RestartReport {
            scenario: scenario.to_string(),
            clock: metrics.clock_label(),
            wal_appends: metrics.counter("wal_appends"),
            wal_bytes: metrics.counter("wal_bytes"),
            wal_snapshots: metrics.counter("wal_snapshots"),
            wal_errors: metrics.counter("wal_errors"),
            restart_recoveries: metrics.counter("restart_recoveries"),
            restart_fallbacks: metrics.counter("restart_fallbacks"),
            restart_aborts: metrics.counter("restart_aborts"),
            suffix_entries: metrics.counter("restart_suffix_entries"),
            suffix_bytes: metrics.counter("restart_suffix_bytes"),
            recovery_bytes_moved: metrics.counter("recovery_bytes_moved"),
            recovery_shards_rebuilt: metrics.counter("recovery_shards_rebuilt"),
            replay_ops,
            replay_bytes,
        }
    }

    /// Render as a pretty-printed JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"scenario\": \"{}\",\n",
            self.scenario.replace('\\', "\\\\").replace('"', "\\\"")
        ));
        out.push_str(&format!("  \"clock\": \"{}\",\n", self.clock));
        out.push_str(&format!("  \"wal_appends\": {},\n", self.wal_appends));
        out.push_str(&format!("  \"wal_bytes\": {},\n", self.wal_bytes));
        out.push_str(&format!("  \"wal_snapshots\": {},\n", self.wal_snapshots));
        out.push_str(&format!("  \"wal_errors\": {},\n", self.wal_errors));
        out.push_str(&format!(
            "  \"restart_recoveries\": {},\n",
            self.restart_recoveries
        ));
        out.push_str(&format!(
            "  \"restart_fallbacks\": {},\n",
            self.restart_fallbacks
        ));
        out.push_str(&format!("  \"restart_aborts\": {},\n", self.restart_aborts));
        out.push_str(&format!("  \"suffix_entries\": {},\n", self.suffix_entries));
        out.push_str(&format!("  \"suffix_bytes\": {},\n", self.suffix_bytes));
        out.push_str(&format!(
            "  \"recovery_bytes_moved\": {},\n",
            self.recovery_bytes_moved
        ));
        out.push_str(&format!(
            "  \"recovery_shards_rebuilt\": {},\n",
            self.recovery_shards_rebuilt
        ));
        out.push_str(&format!("  \"replay_ops\": {},\n", self.replay_ops));
        out.push_str(&format!("  \"replay_bytes\": {}\n", self.replay_bytes));
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Clock;

    #[test]
    fn report_derives_from_counters_and_trace() {
        let m = Metrics::new(Clock::logical());
        m.incr("recoveries_started");
        m.incr("recoveries_completed");
        m.add("recovery_shards_rebuilt", 2);
        m.add("recovery_bytes_moved", 8192);
        m.incr("degraded_reads");
        m.incr_kind("msgs_sent", "insert");
        m.add_kind("msgs_sent", "parity-delta", 3);
        m.trace(
            1_000,
            Event::RecoveryStart {
                group: 0,
                failed: 2,
            },
        );
        m.trace(
            5_500,
            Event::RecoveryEnd {
                group: 0,
                rebuilt: 2,
                ok: true,
            },
        );
        let r = RecoveryReport::from_metrics("unit", &m);
        assert_eq!(r.recoveries_started, 1);
        assert_eq!(r.shards_rebuilt, 2);
        assert_eq!(r.bytes_moved, 8192);
        assert_eq!(r.duration_us, 4_500);
        assert_eq!(r.total_messages, 4);
        assert_eq!(r.clock, "logical-us");
        let json = r.to_json();
        assert!(json.contains("\"shards_rebuilt\": 2"));
        assert!(json.contains("\"parity-delta\": 3"));
        assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
    }

    #[test]
    fn restart_report_derives_from_counters_and_trace() {
        let m = Metrics::new(Clock::logical());
        m.add("wal_appends", 40);
        m.add("wal_bytes", 1600);
        m.add("wal_snapshots", 3);
        m.incr("restart_recoveries");
        m.add("restart_suffix_entries", 5);
        m.add("restart_suffix_bytes", 160);
        m.add("recovery_bytes_moved", 160);
        m.trace(
            100,
            Event::WalReplay {
                bucket: 2,
                ops: 12,
                bytes: 480,
            },
        );
        m.trace(
            150,
            Event::WalReplay {
                bucket: 6,
                ops: 3,
                bytes: 96,
            },
        );
        let r = RestartReport::from_metrics("disk-survives", &m);
        assert_eq!(r.wal_appends, 40);
        assert_eq!(r.restart_recoveries, 1);
        assert_eq!(r.restart_fallbacks, 0);
        assert_eq!(r.suffix_entries, 5);
        assert_eq!(r.replay_ops, 15);
        assert_eq!(r.replay_bytes, 576);
        let json = r.to_json();
        assert!(json.contains("\"restart_recoveries\": 1"));
        assert!(json.contains("\"replay_ops\": 15"));
        assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
    }

    #[test]
    fn empty_metrics_yield_a_zero_report() {
        let m = Metrics::disabled();
        let r = RecoveryReport::from_metrics("empty", &m);
        assert_eq!(r.shards_rebuilt, 0);
        assert_eq!(r.duration_us, 0);
        assert!(r.messages_by_kind.is_empty());
        assert!(r.to_json().contains("\"messages_by_kind\": {}"));
    }
}
