//! Fixed-bucket latency histograms: power-of-two microsecond boundaries,
//! lock-free observation, Prometheus-compatible cumulative snapshots.

use std::sync::atomic::{AtomicU64, Ordering};

/// Upper bounds (inclusive, microseconds) of the finite histogram buckets.
/// Powers of two from 1 µs to ~131 ms; everything above lands in the
/// implicit `+Inf` bucket.
pub const BUCKET_BOUNDS_US: [u64; 18] = [
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072,
];

const NBUCKETS: usize = BUCKET_BOUNDS_US.len() + 1; // + the +Inf bucket

/// A concurrent fixed-bucket histogram. Observations and snapshots are
/// wait-free; buckets saturate instead of wrapping.
#[derive(Debug, Default)]
pub struct Histogram {
    counts: [AtomicU64; NBUCKETS],
    sum_us: AtomicU64,
    count: AtomicU64,
}

fn saturating_incr(cell: &AtomicU64, delta: u64) {
    // fetch_update never fails with a `Some(..)` closure; the result is
    // ignored rather than unwrapped to keep the hot path panic-free.
    let _ = cell.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
        Some(v.saturating_add(delta))
    });
}

impl Histogram {
    /// Record one latency observation, in microseconds.
    pub fn observe(&self, value_us: u64) {
        let idx = BUCKET_BOUNDS_US
            .iter()
            .position(|b| value_us <= *b)
            .unwrap_or(NBUCKETS.saturating_sub(1));
        if let Some(cell) = self.counts.get(idx) {
            saturating_incr(cell, 1);
        }
        saturating_incr(&self.sum_us, value_us);
        saturating_incr(&self.count, 1);
    }

    /// A consistent-enough copy of the current state (individual cells are
    /// read atomically; cross-cell skew is bounded by in-flight updates).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = [0u64; NBUCKETS];
        for (dst, src) in counts.iter_mut().zip(self.counts.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            counts,
            sum_us: self.sum_us.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) observation counts; the last entry is
    /// the `+Inf` overflow bucket.
    pub counts: [u64; NBUCKETS],
    /// Sum of all observed values, µs (saturating).
    pub sum_us: u64,
    /// Total number of observations (saturating).
    pub count: u64,
}

impl HistogramSnapshot {
    /// Cumulative count of observations `<= bound_us`, where `bound_us`
    /// must be one of [`BUCKET_BOUNDS_US`]; any other value returns the
    /// total count (the `+Inf` reading).
    pub fn cumulative_le(&self, bound_us: u64) -> u64 {
        match BUCKET_BOUNDS_US.iter().position(|b| *b == bound_us) {
            Some(idx) => self.counts.iter().take(idx + 1).sum(),
            None => self.count,
        }
    }

    /// Mean observation in µs (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.count).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_land_in_the_right_buckets() {
        let h = Histogram::default();
        // Boundary values are inclusive: v <= bound.
        h.observe(1); // bucket le=1
        h.observe(2); // le=2
        h.observe(3); // le=4
        h.observe(4); // le=4
        h.observe(5); // le=8
        let s = h.snapshot();
        assert_eq!(s.counts[0], 1);
        assert_eq!(s.counts[1], 1);
        assert_eq!(s.counts[2], 2);
        assert_eq!(s.counts[3], 1);
        assert_eq!(s.cumulative_le(4), 4);
        assert_eq!(s.cumulative_le(8), 5);
        assert_eq!(s.count, 5);
        assert_eq!(s.sum_us, 15);
        assert_eq!(s.mean_us(), 3);
    }

    #[test]
    fn zero_goes_to_smallest_bucket_and_huge_to_inf() {
        let h = Histogram::default();
        h.observe(0);
        h.observe(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.counts[0], 1, "0 <= 1 lands in the first bucket");
        assert_eq!(s.counts[NBUCKETS - 1], 1, "overflow lands in +Inf");
        assert_eq!(s.cumulative_le(BUCKET_BOUNDS_US[NBUCKETS - 2]), 1);
        assert_eq!(s.cumulative_le(u64::MAX), 2, "non-boundary reads +Inf");
    }

    #[test]
    fn sum_saturates_instead_of_wrapping() {
        let h = Histogram::default();
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        assert_eq!(h.snapshot().sum_us, u64::MAX);
    }
}
