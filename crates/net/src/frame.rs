//! Socket framing: `[u32 LE length][version][type][from][to][payload]`.
//!
//! The payload of a [`FrameType::Msg`] frame is a `lhrs_core::wire`
//! encoding; [`FrameType::Registry`] carries a [`RegistryUpdate`]
//! allocation-table snapshot; [`FrameType::RegistryPull`] is an empty
//! control frame asking the authoritative host for the current table.

use std::io::{self, Read, Write};

use lhrs_core::wire::{put_varint, Reader, WireError};
use lhrs_sim::NodeId;

/// Frame layout version (independent of the message codec's
/// [`lhrs_core::wire::WIRE_VERSION`], which versions the payload).
pub const FRAME_VERSION: u8 = 1;

/// Hard cap on a frame's payload: even a full-bucket shard transfer stays
/// far below this; anything bigger is a corrupt length field.
pub const MAX_FRAME: u32 = 64 << 20;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameType {
    /// A protocol message (`lhrs_core::wire`-encoded [`lhrs_core::msg::Msg`]).
    Msg,
    /// An allocation-table snapshot ([`RegistryUpdate`]).
    Registry,
    /// A request for the current allocation table (empty payload).
    RegistryPull,
    /// The `STATS` command: ask the receiving process for a metrics
    /// snapshot (empty payload). Answered on the same connection with a
    /// [`FrameType::StatsReply`] — a plain request/response exchange, so
    /// operator tooling needs no listener of its own.
    StatsPull,
    /// A metrics snapshot in Prometheus text exposition format (UTF-8
    /// payload).
    StatsReply,
}

impl FrameType {
    fn to_byte(self) -> u8 {
        match self {
            FrameType::Msg => 0,
            FrameType::Registry => 1,
            FrameType::RegistryPull => 2,
            FrameType::StatsPull => 3,
            FrameType::StatsReply => 4,
        }
    }

    fn from_byte(b: u8) -> Option<FrameType> {
        match b {
            0 => Some(FrameType::Msg),
            1 => Some(FrameType::Registry),
            2 => Some(FrameType::RegistryPull),
            3 => Some(FrameType::StatsPull),
            4 => Some(FrameType::StatsReply),
            _ => None,
        }
    }
}

/// A decoded frame.
#[derive(Debug, Clone)]
pub struct Frame {
    /// What the payload is.
    pub ftype: FrameType,
    /// Sending node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// The payload bytes.
    pub payload: Vec<u8>,
}

/// Serialize a frame into a write-ready byte string.
pub fn encode_frame(ftype: FrameType, from: NodeId, to: NodeId, payload: &[u8]) -> Vec<u8> {
    let body_len = 10 + payload.len(); // version + type + from + to + payload
    let mut out = Vec::with_capacity(4 + body_len);
    // Saturate instead of truncating: an absurd payload produces a frame
    // the receiver's MAX_FRAME check rejects, never a desynced stream.
    let wire_len = u32::try_from(body_len).unwrap_or(u32::MAX);
    out.extend_from_slice(&wire_len.to_le_bytes());
    out.push(FRAME_VERSION);
    out.push(ftype.to_byte());
    out.extend_from_slice(&from.0.to_le_bytes());
    out.extend_from_slice(&to.0.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Read one frame off a stream. `Ok(None)` is a clean EOF (the peer closed
/// between frames); a mid-frame EOF or a malformed header is an error.
pub fn read_frame(stream: &mut impl Read) -> io::Result<Option<Frame>> {
    let mut len_buf = [0u8; 4];
    // Distinguish clean close (0 bytes) from a torn frame.
    let mut got = 0;
    while let Some(rest) = len_buf.get_mut(got..) {
        if rest.is_empty() {
            break;
        }
        let n = stream.read(rest)?;
        if n == 0 {
            if got == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "EOF inside frame header",
            ));
        }
        got += n;
    }
    let len = u32::from_le_bytes(len_buf);
    if !(10..=MAX_FRAME).contains(&len) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} out of range"),
        ));
    }
    let len = usize::try_from(len).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            "frame length exceeds address space",
        )
    })?;
    let body = {
        let mut b = vec![0u8; len];
        stream.read_exact(&mut b)?;
        b
    };
    decode_frame_body(&body).map(Some)
}

/// Incremental frame decoder for nonblocking reads: feed whatever bytes
/// the socket had ([`FrameAccumulator::extend`]), pop complete frames
/// ([`FrameAccumulator::next_frame`]). Performs exactly the validation of
/// [`read_frame`], but never blocks — a partial frame simply stays
/// buffered until more bytes arrive.
#[derive(Debug, Default)]
pub struct FrameAccumulator {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by popped frames; compacted lazily
    /// so a burst of small frames does not memmove per frame.
    consumed: usize,
}

impl FrameAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        FrameAccumulator::default()
    }

    /// Buffer newly read bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        if self.consumed > 0 && self.consumed == self.buf.len() {
            self.buf.clear();
            self.consumed = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a popped frame.
    pub fn pending(&self) -> usize {
        self.buf.len().saturating_sub(self.consumed)
    }

    /// Pop the next complete frame. `Ok(None)` means more bytes are
    /// needed; an error means the stream is corrupt (bad length, version,
    /// or type) and the connection must be dropped — the byte stream has
    /// no recoverable sync point.
    pub fn next_frame(&mut self) -> io::Result<Option<Frame>> {
        let avail = self.buf.get(self.consumed..).unwrap_or(&[]);
        let Some(len_bytes) = avail.get(..4) else {
            return Ok(None);
        };
        let len_buf: [u8; 4] = len_bytes.try_into().map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidData, "frame length slice sized above")
        })?;
        let len = u32::from_le_bytes(len_buf);
        if !(10..=MAX_FRAME).contains(&len) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame length {len} out of range"),
            ));
        }
        let len = usize::try_from(len).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidData, "frame length overflows usize")
        })?;
        let Some(body) = avail.get(4..4 + len) else {
            return Ok(None); // body not fully buffered yet
        };
        let frame = decode_frame_body(body)?;
        self.consumed += 4 + len;
        // Compact once the dead prefix dominates, amortising the memmove.
        if self.consumed > 4096 && self.consumed * 2 >= self.buf.len() {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        Ok(Some(frame))
    }
}

/// Decode a frame body (everything after the length word); shared by
/// [`read_frame`] and [`FrameAccumulator`].
fn decode_frame_body(body: &[u8]) -> io::Result<Frame> {
    let (hdr, payload) = body.split_at_checked(10).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            "frame body shorter than its header",
        )
    })?;
    let hdr: [u8; 10] = hdr.try_into().map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            "frame body shorter than its header",
        )
    })?;
    let [version, tbyte, f0, f1, f2, f3, t0, t1, t2, t3] = hdr;
    if version != FRAME_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame version {version} (supported {FRAME_VERSION})"),
        ));
    }
    let ftype = FrameType::from_byte(tbyte)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, format!("frame type {tbyte}")))?;
    let from = NodeId(u32::from_le_bytes([f0, f1, f2, f3]));
    let to = NodeId(u32::from_le_bytes([t0, t1, t2, t3]));
    Ok(Frame {
        ftype,
        from,
        to,
        payload: payload.to_vec(),
    })
}

/// Write a frame and leave it in the writer's buffer (callers flush in
/// batches).
pub fn write_frame(
    stream: &mut impl Write,
    ftype: FrameType,
    from: NodeId,
    to: NodeId,
    payload: &[u8],
) -> io::Result<()> {
    stream.write_all(&encode_frame(ftype, from, to, payload))
}

/// A versioned full snapshot of the allocation table, broadcast by the
/// process hosting the coordinator whenever the table changes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistryUpdate {
    /// Monotone snapshot version; receivers apply only strictly newer ones.
    pub version: u64,
    /// The coordinator node.
    pub coordinator: NodeId,
    /// Data bucket number → node, dense from bucket 0.
    pub data: Vec<NodeId>,
    /// Per bucket group: parity column index → node.
    pub parity: Vec<Vec<NodeId>>,
}

impl RegistryUpdate {
    /// Encode the snapshot (the [`FrameType::Registry`] payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + 4 * self.data.len());
        put_varint(&mut out, self.version);
        out.extend_from_slice(&self.coordinator.0.to_le_bytes());
        put_varint(&mut out, self.data.len() as u64);
        for n in &self.data {
            out.extend_from_slice(&n.0.to_le_bytes());
        }
        put_varint(&mut out, self.parity.len() as u64);
        for group in &self.parity {
            put_varint(&mut out, group.len() as u64);
            for n in group {
                out.extend_from_slice(&n.0.to_le_bytes());
            }
        }
        out
    }

    /// Decode a snapshot; rejects truncated or trailing-garbage payloads.
    pub fn decode(buf: &[u8]) -> Result<RegistryUpdate, WireError> {
        let mut r = Reader::new(buf);
        let version = r.varint()?;
        let coordinator = NodeId(r.u32le()?);
        let dn = r.len("registry data list")?;
        let mut data = Vec::with_capacity(dn);
        for _ in 0..dn {
            data.push(NodeId(r.u32le()?));
        }
        let gn = r.len("registry group list")?;
        let mut parity = Vec::with_capacity(gn);
        for _ in 0..gn {
            let kn = r.len("registry parity group")?;
            let mut group = Vec::with_capacity(kn);
            for _ in 0..kn {
                group.push(NodeId(r.u32le()?));
            }
            parity.push(group);
        }
        r.finish()?;
        Ok(RegistryUpdate {
            version,
            coordinator,
            data,
            parity,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let buf = encode_frame(FrameType::Msg, NodeId(3), NodeId(9), b"payload");
        let mut cursor = io::Cursor::new(buf);
        let f = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(f.ftype, FrameType::Msg);
        assert_eq!(f.from, NodeId(3));
        assert_eq!(f.to, NodeId(9));
        assert_eq!(f.payload, b"payload");
        // Stream exhausted: clean EOF.
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn torn_frame_is_an_error() {
        let buf = encode_frame(FrameType::Msg, NodeId(1), NodeId(2), b"abc");
        let mut cursor = io::Cursor::new(&buf[..buf.len() - 1]);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = (MAX_FRAME + 1).to_le_bytes().to_vec();
        buf.extend_from_slice(&[0u8; 32]);
        let mut cursor = io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn accumulator_reassembles_byte_by_byte() {
        let f1 = encode_frame(FrameType::Msg, NodeId(1), NodeId(2), b"alpha");
        let f2 = encode_frame(FrameType::StatsReply, NodeId(2), NodeId(1), b"beta");
        let mut acc = FrameAccumulator::new();
        let mut popped = Vec::new();
        for chunk in f1.iter().chain(f2.iter()) {
            acc.extend(&[*chunk]);
            while let Some(f) = acc.next_frame().unwrap() {
                popped.push(f);
            }
        }
        assert_eq!(popped.len(), 2);
        assert_eq!(popped[0].payload, b"alpha");
        assert_eq!(popped[0].ftype, FrameType::Msg);
        assert_eq!(popped[1].payload, b"beta");
        assert_eq!(popped[1].ftype, FrameType::StatsReply);
        assert_eq!(acc.pending(), 0);
    }

    #[test]
    fn accumulator_pops_multiple_frames_from_one_chunk() {
        let mut bytes = Vec::new();
        for i in 0..5u32 {
            bytes.extend(encode_frame(
                FrameType::Msg,
                NodeId(i),
                NodeId(9),
                &i.to_le_bytes(),
            ));
        }
        let mut acc = FrameAccumulator::new();
        acc.extend(&bytes);
        for i in 0..5u32 {
            let f = acc.next_frame().unwrap().expect("frame buffered");
            assert_eq!(f.from, NodeId(i));
        }
        assert!(acc.next_frame().unwrap().is_none());
    }

    #[test]
    fn accumulator_rejects_garbage_header() {
        let mut acc = FrameAccumulator::new();
        // Length far above MAX_FRAME: corrupt stream, no resync possible.
        acc.extend(&u32::MAX.to_le_bytes());
        assert!(acc.next_frame().is_err());
        let mut acc = FrameAccumulator::new();
        let mut frame = encode_frame(FrameType::Msg, NodeId(1), NodeId(2), b"x");
        frame[4] = 99; // bad version byte
        acc.extend(&frame);
        assert!(acc.next_frame().is_err());
    }

    #[test]
    fn registry_update_roundtrip() {
        let up = RegistryUpdate {
            version: 17,
            coordinator: NodeId(0),
            data: vec![NodeId(2), NodeId(5), NodeId(7)],
            parity: vec![vec![NodeId(3)], vec![NodeId(9), NodeId(11)]],
        };
        assert_eq!(RegistryUpdate::decode(&up.encode()).unwrap(), up);
    }
}
