//! Message transports: real TCP and an in-process loopback.
//!
//! A [`Transport`] is the outbound half a [`crate::host::NodeHost`] writes
//! to; the inbound half is a shared mpsc channel of [`HostEvent`]s fed by
//! reader threads (TCP) or directly by peer hosts (loopback). Delivery is
//! deliberately best-effort — a send to an unreachable peer is dropped and
//! counted, because the protocol stack above (client retries, replay
//! caches, Δ retransmission, coordinator timeouts) is already built to
//! heal message loss.

use std::collections::{HashMap, HashSet};
use std::io::{BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use lhrs_core::msg::Msg;
use lhrs_core::wire::{decode_msg, encode_msg};
use lhrs_obs::{Event as ObsEvent, Metrics};
use lhrs_sim::NodeId;

use crate::frame::{encode_frame, write_frame, Frame, FrameAccumulator, FrameType, RegistryUpdate};

/// An inbound event delivered to a node host.
#[derive(Debug)]
pub enum HostEvent {
    /// A protocol message for a locally hosted node.
    Deliver {
        /// Sending node.
        from: NodeId,
        /// Destination node (hosted here).
        to: NodeId,
        /// The message.
        msg: Msg,
    },
    /// An allocation-table snapshot from the authoritative host.
    Registry(RegistryUpdate),
    /// A peer asks for the current allocation table (authoritative hosts
    /// answer, everyone else ignores).
    RegistryPull {
        /// The node to send the table to.
        from: NodeId,
    },
    /// Stop the host loop.
    Shutdown,
}

/// Outbound counters of a transport.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Protocol messages handed to the transport.
    pub sent_msgs: u64,
    /// Frame bytes written (including registry traffic).
    pub sent_bytes: u64,
    /// Sends dropped because the peer was unreachable or unknown.
    pub dropped: u64,
    /// Reconnections performed after a broken outbound connection.
    pub reconnects: u64,
}

/// The outbound interface a node host writes protocol traffic to.
pub trait Transport {
    /// Send one protocol message (best-effort; drops count in stats).
    fn send_msg(&mut self, from: NodeId, to: NodeId, msg: &Msg);
    /// Send an allocation-table snapshot to one peer.
    fn send_registry(&mut self, to: NodeId, update: &RegistryUpdate);
    /// Ask `to` (the authoritative host) for the current table.
    fn send_registry_pull(&mut self, from: NodeId, to: NodeId);
    /// Send an allocation-table snapshot to every known remote peer.
    /// Written before any queued protocol frames are flushed, so FIFO
    /// per-connection delivery orders the table ahead of messages that
    /// presuppose it.
    fn broadcast_registry(&mut self, from: NodeId, update: &RegistryUpdate);
    /// Flush buffered writes to the wire.
    fn flush(&mut self);
    /// Outbound counters.
    fn stats(&self) -> TransportStats;
}

// ----- TCP -----

/// Reader shards per process: accepted connections are spread round-robin
/// over this many event-driven reader threads, each polling its
/// connections with nonblocking reads. Inbound capacity no longer costs a
/// thread per client, so one node sustains thousands of concurrent
/// pipelined connections on a fixed thread budget.
const READER_SHARDS: usize = 4;

/// TCP transport: one lazily connected, write-buffered outbound connection
/// per peer address; inbound via one listener per hosted node feeding a
/// fixed pool of [`READER_SHARDS`] nonblocking reader shards, all feeding
/// the host's event channel.
pub struct TcpTransport {
    /// Peer node → address (includes local nodes; those are skipped).
    peers: HashMap<u32, String>,
    /// Locally hosted nodes (never connected to).
    local: HashSet<u32>,
    /// Open outbound connections by address.
    conns: HashMap<String, BufWriter<TcpStream>>,
    /// Addresses with unflushed writes.
    dirty: HashSet<String>,
    stats: TransportStats,
    /// Observability handle; clones live in every reader thread, which is
    /// also what lets those threads answer `STATS` pulls in place.
    obs: Metrics,
}

/// How long an outbound connect may take before the send is dropped.
const CONNECT_TIMEOUT: Duration = Duration::from_millis(250);

impl TcpTransport {
    /// Bind a listener for every `(node, addr)` in `local`, spawn the
    /// accept/reader threads feeding `tx`, and return the outbound half.
    /// `peers` maps every node of the cluster to its address.
    pub fn start(
        local: &[(u32, String)],
        peers: HashMap<u32, String>,
        tx: Sender<HostEvent>,
    ) -> std::io::Result<TcpTransport> {
        TcpTransport::start_with_metrics(local, peers, tx, Metrics::disabled())
    }

    /// Like [`TcpTransport::start`], with an observability handle. The
    /// transport tallies frame/byte/drop/reconnect counters into it, and
    /// every reader thread answers inbound [`FrameType::StatsPull`] frames
    /// with a Prometheus snapshot of it — the `STATS` command.
    pub fn start_with_metrics(
        local: &[(u32, String)],
        peers: HashMap<u32, String>,
        tx: Sender<HostEvent>,
        obs: Metrics,
    ) -> std::io::Result<TcpTransport> {
        // One shared shard pool per process, however many listeners the
        // process binds; spawned only when there is something to listen on.
        let mut shard_txs: Vec<Sender<TcpStream>> = Vec::new();
        if !local.is_empty() {
            for _ in 0..READER_SHARDS {
                let (stx, srx) = std::sync::mpsc::channel();
                let tx = tx.clone();
                let obs = obs.clone();
                std::thread::spawn(move || shard_loop(srx, tx, obs));
                shard_txs.push(stx);
            }
        }
        for (_, addr) in local {
            let listener = TcpListener::bind(addr)?;
            let shard_txs = shard_txs.clone();
            std::thread::spawn(move || accept_loop(listener, shard_txs));
        }
        Ok(TcpTransport {
            peers,
            local: local.iter().map(|(id, _)| *id).collect(),
            conns: HashMap::new(),
            dirty: HashSet::new(),
            stats: TransportStats::default(),
            obs,
        })
    }

    /// Write `bytes` to the connection for `addr`, connecting lazily and
    /// retrying once through a reconnect. Returns false when the peer is
    /// unreachable (the frame is dropped).
    fn write_to(&mut self, addr: &str, bytes: &[u8]) -> bool {
        let mut was_connected = false;
        for _attempt in 0..2 {
            if let Some(w) = self.conns.get(addr) {
                // Outbound connections are write-only in this protocol —
                // the peer replies over its own connection to our listener
                // — so any readability here is a FIN or RST: the peer
                // process went away (or restarted) since our last write.
                // Writes into such a half-dead socket "succeed" at the OS
                // level and vanish; detect it now and reconnect instead.
                match conn_staleness(w.get_ref()) {
                    Staleness::Healthy => {}
                    Staleness::Closed => {
                        self.conns.remove(addr);
                        was_connected = true;
                    }
                    Staleness::StrayData => {
                        // Bytes arrived on a write-only connection — e.g.
                        // a reply to an *older* request whose reader is
                        // long gone. They die with the closed socket:
                        // drop-and-count, never deliver them to whoever
                        // reads the replacement connection.
                        self.obs.incr("net_stale_replies_dropped");
                        self.conns.remove(addr);
                        was_connected = true;
                    }
                }
            }
            if !self.conns.contains_key(addr) {
                match TcpStream::connect_timeout(
                    &match addr.parse() {
                        Ok(a) => a,
                        Err(_) => return false,
                    },
                    CONNECT_TIMEOUT,
                ) {
                    Ok(stream) => {
                        let _ = stream.set_nodelay(true);
                        if was_connected {
                            self.stats.reconnects += 1;
                            self.obs.incr("net_reconnects");
                        }
                        self.conns.insert(addr.to_string(), BufWriter::new(stream));
                    }
                    Err(_) => return false,
                }
            }
            let ok = self
                .conns
                .get_mut(addr)
                .map(|w| w.write_all(bytes).is_ok())
                .unwrap_or(false);
            if ok {
                self.dirty.insert(addr.to_string());
                self.stats.sent_bytes += bytes.len() as u64;
                self.obs.add("net_sent_bytes", bytes.len() as u64);
                return true;
            }
            // Broken pipe: drop the connection and retry once fresh.
            self.conns.remove(addr);
            was_connected = true;
        }
        false
    }

    fn send_frame(&mut self, ftype: FrameType, from: NodeId, to: NodeId, payload: &[u8]) {
        let Some(addr) = self.peers.get(&to.0).cloned() else {
            self.stats.dropped += 1;
            self.obs.incr("net_send_drops");
            return;
        };
        let bytes = encode_frame(ftype, from, to, payload);
        self.obs.incr("net_frames_sent");
        if !self.write_to(&addr, &bytes) {
            self.stats.dropped += 1;
            self.obs.incr("net_send_drops");
        }
    }
}

/// What a nonblocking 1-byte peek on an idle outbound connection reveals.
enum Staleness {
    /// `WouldBlock`: nothing to read on a write-only connection — healthy.
    Healthy,
    /// EOF or a socket error: the peer closed or reset since our last
    /// write.
    Closed,
    /// Readable bytes: protocol-violating data on a write-only connection
    /// (typically a late reply to an older request). The connection is
    /// dead to us, and the bytes must be dropped and counted — never
    /// delivered.
    StrayData,
}

fn conn_staleness(stream: &TcpStream) -> Staleness {
    if stream.set_nonblocking(true).is_err() {
        return Staleness::Closed;
    }
    let mut probe = [0u8; 1];
    let staleness = match stream.peek(&mut probe) {
        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Staleness::Healthy,
        Ok(0) | Err(_) => Staleness::Closed,
        Ok(_) => Staleness::StrayData,
    };
    let _ = stream.set_nonblocking(false);
    staleness
}

fn accept_loop(listener: TcpListener, shard_txs: Vec<Sender<TcpStream>>) {
    let mut next = 0usize;
    loop {
        let Ok((stream, _)) = listener.accept() else {
            return;
        };
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        let Some(shard) = shard_txs.get(next % shard_txs.len().max(1)) else {
            return;
        };
        if shard.send(stream).is_err() {
            return; // shard pool gone: process shutting down
        }
        next = next.wrapping_add(1);
    }
}

/// One connection owned by a reader shard.
struct ShardConn {
    stream: TcpStream,
    acc: FrameAccumulator,
}

/// Ceiling of a shard's idle backoff between poll sweeps.
const SHARD_IDLE_MAX: Duration = Duration::from_millis(2);

/// One event-driven reader shard: adopt connections from `rx`, sweep them
/// with nonblocking reads, decode frames incrementally, and feed the host
/// channel. An idle shard backs off (up to [`SHARD_IDLE_MAX`]) inside
/// `recv_timeout`, so waiting costs no CPU yet newly accepted connections
/// are adopted immediately.
fn shard_loop(rx: Receiver<TcpStream>, tx: Sender<HostEvent>, obs: Metrics) {
    let mut conns: Vec<ShardConn> = Vec::new();
    let mut scratch = vec![0u8; 64 * 1024];
    let mut accepting = true;
    let mut idle_wait = Duration::from_micros(100);
    loop {
        while accepting {
            match rx.try_recv() {
                Ok(stream) => conns.push(ShardConn {
                    stream,
                    acc: FrameAccumulator::new(),
                }),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => accepting = false,
            }
        }
        let mut progress = false;
        let mut i = 0;
        while i < conns.len() {
            let Some(conn) = conns.get_mut(i) else { break };
            match service_conn(conn, &mut scratch, &tx, &obs) {
                ConnState::Idle => i += 1,
                ConnState::Progressed => {
                    progress = true;
                    i += 1;
                }
                ConnState::Dead => {
                    conns.swap_remove(i);
                }
            }
        }
        if progress {
            idle_wait = Duration::from_micros(100);
            continue;
        }
        if conns.is_empty() && !accepting {
            return;
        }
        // Nothing readable: sleep with exponential backoff, waking early
        // for a newly accepted connection.
        idle_wait = (idle_wait * 2).min(SHARD_IDLE_MAX);
        if accepting {
            match rx.recv_timeout(idle_wait) {
                Ok(stream) => conns.push(ShardConn {
                    stream,
                    acc: FrameAccumulator::new(),
                }),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => accepting = false,
            }
        } else {
            std::thread::sleep(idle_wait);
        }
    }
}

/// Outcome of one nonblocking service pass over a connection.
enum ConnState {
    /// Nothing to read.
    Idle,
    /// At least one byte was consumed.
    Progressed,
    /// EOF, a socket error, a corrupt stream, or the host went away.
    Dead,
}

/// Drain whatever the socket has ready, decoding and dispatching every
/// complete frame.
fn service_conn(
    conn: &mut ShardConn,
    scratch: &mut [u8],
    tx: &Sender<HostEvent>,
    obs: &Metrics,
) -> ConnState {
    let mut progressed = false;
    loop {
        match conn.stream.read(scratch) {
            Ok(0) => return ConnState::Dead, // clean EOF
            Ok(n) => {
                progressed = true;
                conn.acc.extend(scratch.get(..n).unwrap_or(&[]));
                loop {
                    match conn.acc.next_frame() {
                        Ok(Some(frame)) => {
                            if !handle_frame(frame, &mut conn.stream, tx, obs) {
                                return ConnState::Dead;
                            }
                        }
                        Ok(None) => break,
                        Err(_) => {
                            // A desynced stream has no recovery point.
                            obs.incr("net_decode_errors");
                            obs.trace_now(ObsEvent::DecodeError {
                                context: "inbound frame".to_string(),
                            });
                            return ConnState::Dead;
                        }
                    }
                }
                if n < scratch.len() {
                    // Socket drained (short read): yield to the next conn.
                    return ConnState::Progressed;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                return if progressed {
                    ConnState::Progressed
                } else {
                    ConnState::Idle
                };
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return ConnState::Dead,
        }
    }
}

/// Dispatch one decoded frame; returns whether the connection stays up.
fn handle_frame(
    frame: Frame,
    stream: &mut TcpStream,
    tx: &Sender<HostEvent>,
    obs: &Metrics,
) -> bool {
    obs.incr("net_frames_recv");
    let event = match frame.ftype {
        FrameType::Msg => match decode_msg(&frame.payload) {
            Ok(msg) => HostEvent::Deliver {
                from: frame.from,
                to: frame.to,
                msg,
            },
            Err(_) => {
                // Defensive: skip undecodable frames.
                obs.incr("net_decode_errors");
                obs.trace_now(ObsEvent::DecodeError {
                    context: "message payload".to_string(),
                });
                return true;
            }
        },
        FrameType::Registry => match RegistryUpdate::decode(&frame.payload) {
            Ok(up) => HostEvent::Registry(up),
            Err(_) => {
                obs.incr("net_decode_errors");
                obs.trace_now(ObsEvent::DecodeError {
                    context: "registry payload".to_string(),
                });
                return true;
            }
        },
        FrameType::RegistryPull => HostEvent::RegistryPull { from: frame.from },
        FrameType::StatsPull => {
            // The `STATS` command: answered right here on the same
            // connection so operator tooling (`lhrs-netcli stats`) needs
            // no listener and gets a reply even while the host loop is
            // busy. The socket flips to blocking for the write — a reply
            // is small and the puller is actively reading.
            obs.incr("net_stats_pulls");
            let snapshot = obs.render_prometheus();
            if stream.set_nonblocking(false).is_err() {
                return false;
            }
            let ok = write_frame(
                stream,
                FrameType::StatsReply,
                frame.to,
                frame.from,
                snapshot.as_bytes(),
            )
            .and_then(|_| stream.flush())
            .is_ok();
            if stream.set_nonblocking(true).is_err() {
                return false;
            }
            return ok;
        }
        // A reply frame is only meaningful to the puller, which reads its
        // connection directly; a host receiving one ignores it.
        FrameType::StatsReply => return true,
    };
    tx.send(event).is_ok()
}

impl Transport for TcpTransport {
    fn send_msg(&mut self, from: NodeId, to: NodeId, msg: &Msg) {
        self.stats.sent_msgs += 1;
        let payload = encode_msg(msg);
        self.send_frame(FrameType::Msg, from, to, &payload);
    }

    fn send_registry(&mut self, to: NodeId, update: &RegistryUpdate) {
        let payload = update.encode();
        self.send_frame(FrameType::Registry, update.coordinator, to, &payload);
    }

    fn send_registry_pull(&mut self, from: NodeId, to: NodeId) {
        self.send_frame(FrameType::RegistryPull, from, to, &[]);
    }

    fn broadcast_registry(&mut self, from: NodeId, update: &RegistryUpdate) {
        let payload = update.encode();
        // One frame per distinct remote address (a process applies the
        // snapshot once regardless of how many nodes it hosts).
        let mut sent: HashSet<String> = HashSet::new();
        let targets: Vec<(u32, String)> = self
            .peers
            .iter()
            .filter(|(id, _)| !self.local.contains(id))
            .map(|(id, addr)| (*id, addr.clone()))
            .collect();
        for (id, addr) in targets {
            if sent.insert(addr.clone()) {
                let bytes = encode_frame(FrameType::Registry, from, NodeId(id), &payload);
                if !self.write_to(&addr, &bytes) {
                    self.stats.dropped += 1;
                }
            }
        }
    }

    fn flush(&mut self) {
        let dirty: Vec<String> = self.dirty.drain().collect();
        for addr in dirty {
            let ok = self
                .conns
                .get_mut(&addr)
                .map(|w| w.flush().is_ok())
                .unwrap_or(true);
            if !ok {
                self.conns.remove(&addr);
            }
        }
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }
}

// ----- in-process loopback -----

type RouteTable = Arc<Mutex<HashMap<u32, Sender<HostEvent>>>>;

/// The in-process "network": node → host event channel. Clone freely; all
/// clones share the same routing table. Used for multi-threaded
/// benchmarking and tests without the kernel in the way.
#[derive(Clone, Default)]
pub struct LoopbackNet {
    routes: RouteTable,
    /// Bumped (under the routes lock) on every register/unregister, so
    /// transports can cache the table between topology changes instead of
    /// taking the shared lock on every message.
    version: Arc<AtomicU64>,
}

impl LoopbackNet {
    /// An empty network.
    pub fn new() -> Self {
        LoopbackNet::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<u32, Sender<HostEvent>>> {
        // A panicked host thread must not take the whole network down.
        self.routes.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Register a host's event channel as the destination for `ids`.
    pub fn register(&self, ids: &[u32], tx: Sender<HostEvent>) {
        let mut map = self.lock();
        for id in ids {
            map.insert(*id, tx.clone());
        }
        self.version.fetch_add(1, Ordering::SeqCst);
    }

    /// Remove nodes from the routing table (simulates a dead host: sends
    /// to it are dropped from then on).
    pub fn unregister(&self, ids: &[u32]) {
        let mut map = self.lock();
        for id in ids {
            map.remove(id);
        }
        self.version.fetch_add(1, Ordering::SeqCst);
    }

    /// The current topology version (see `version` field).
    fn version(&self) -> u64 {
        self.version.load(Ordering::SeqCst)
    }

    /// A copy of the current routing table.
    fn snapshot_routes(&self) -> HashMap<u32, Sender<HostEvent>> {
        self.lock().clone()
    }

    fn all_ids(&self) -> Vec<u32> {
        self.lock().keys().copied().collect()
    }
}

/// One host's outbound handle onto a [`LoopbackNet`]. Every message still
/// round-trips through the wire codec (encode then decode), so the
/// loopback path exercises exactly the bytes TCP would carry.
pub struct LoopbackTransport {
    net: LoopbackNet,
    local: HashSet<u32>,
    stats: TransportStats,
    obs: Metrics,
    /// Routing-table cache, refreshed when the net's version moves: sends
    /// between topology changes take no shared lock.
    cached_routes: HashMap<u32, Sender<HostEvent>>,
    cached_version: u64,
}

impl LoopbackTransport {
    /// A transport for the host carrying `local` nodes.
    pub fn new(net: LoopbackNet, local: &[u32]) -> Self {
        LoopbackTransport::with_metrics(net, local, Metrics::disabled())
    }

    /// Like [`LoopbackTransport::new`], tallying the same frame counters a
    /// [`TcpTransport`] would into `obs`.
    pub fn with_metrics(net: LoopbackNet, local: &[u32], obs: Metrics) -> Self {
        LoopbackTransport {
            net,
            local: local.iter().copied().collect(),
            stats: TransportStats::default(),
            obs,
            cached_routes: HashMap::new(),
            cached_version: u64::MAX, // miss on first send
        }
    }

    /// Deliver through the cached routing table, refreshing it when the
    /// topology version moved. A victim of a concurrent kill disappears
    /// either via the refresh or via its dropped receiver — both count as
    /// a send drop, like a packet in flight when a host dies.
    fn send_cached(&mut self, to: u32, event: HostEvent) -> bool {
        let version = self.net.version();
        if version != self.cached_version {
            self.cached_routes = self.net.snapshot_routes();
            self.cached_version = version;
        }
        match self.cached_routes.get(&to) {
            Some(tx) => tx.send(event).is_ok(),
            None => false,
        }
    }
}

impl Transport for LoopbackTransport {
    fn send_msg(&mut self, from: NodeId, to: NodeId, msg: &Msg) {
        self.stats.sent_msgs += 1;
        // Codec honesty: ship the decoded re-materialization, not the
        // original value.
        let bytes = encode_msg(msg);
        self.stats.sent_bytes += bytes.len() as u64;
        self.obs.incr("net_frames_sent");
        self.obs.add("net_sent_bytes", bytes.len() as u64);
        // A message our own codec cannot re-decode would also be
        // undeliverable over TCP: count it as a drop (the sender's retry
        // machinery handles it) instead of aborting the host.
        let Ok(msg) = decode_msg(&bytes) else {
            self.stats.dropped += 1;
            self.obs.incr("net_decode_errors");
            return;
        };
        if !self.send_cached(to.0, HostEvent::Deliver { from, to, msg }) {
            self.stats.dropped += 1;
            self.obs.incr("net_send_drops");
        }
    }

    fn send_registry(&mut self, to: NodeId, update: &RegistryUpdate) {
        let bytes = update.encode();
        self.stats.sent_bytes += bytes.len() as u64;
        let Ok(up) = RegistryUpdate::decode(&bytes) else {
            self.stats.dropped += 1;
            return;
        };
        if !self.send_cached(to.0, HostEvent::Registry(up)) {
            self.stats.dropped += 1;
        }
    }

    fn send_registry_pull(&mut self, from: NodeId, to: NodeId) {
        if !self.send_cached(to.0, HostEvent::RegistryPull { from }) {
            self.stats.dropped += 1;
        }
    }

    fn broadcast_registry(&mut self, _from: NodeId, update: &RegistryUpdate) {
        for id in self.net.all_ids() {
            if !self.local.contains(&id) {
                self.send_registry(NodeId(id), update);
            }
        }
    }

    fn flush(&mut self) {}

    fn stats(&self) -> TransportStats {
        self.stats
    }
}
