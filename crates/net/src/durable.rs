//! Durable-boot plumbing shared by `lhrs-netd` and the restart drills:
//! where a node's write-ahead logs live on disk, the [`StoreFactory`] that
//! opens them, and the boot-time resurrection of a data bucket from a
//! surviving store.

use std::path::{Path, PathBuf};
use std::rc::Rc;

use lhrs_core::node::Node;
use lhrs_core::registry::SharedHandle;
use lhrs_core::storage::{self, BucketStore, StoreFactory};
use lhrs_core::FsyncPolicy;
use lhrs_obs::{Event, Metrics};
use lhrs_wal::FileWal;

/// The durable root for one hosted node's shards: `<root>/node-<id>`.
pub fn node_root(root: &Path, id: u32) -> PathBuf {
    root.join(format!("node-{id}"))
}

/// A [`StoreFactory`] giving every (node, shard) pair its own directory
/// under `root`, so one machine can host several nodes without their logs
/// colliding. Declines (modelling a dead disk) when the directory cannot
/// be opened.
pub fn wal_factory(root: PathBuf, fsync: FsyncPolicy) -> StoreFactory {
    Rc::new(move |node, id| {
        let dir = lhrs_wal::store_dir(&node_root(&root, node.0), id);
        FileWal::open(dir, fsync)
            .ok()
            .map(|w| Box::new(w) as Box<dyn BucketStore>)
    })
}

/// What a durable host should boot node `id` as.
// One value per boot decision; the Recovered(Node) payload's size is
// irrelevant at this frequency.
#[allow(clippy::large_enum_variant)]
pub enum DurableBoot {
    /// A usable store was found: host this resurrected node and announce
    /// the restart (`Msg::SelfReport`) so the coordinator tops it up with
    /// the missed Δ-suffix.
    Recovered(Node),
    /// The node's durable root exists but holds no usable data-shard
    /// store — this is a *restart* whose state is gone (wiped disk,
    /// damaged snapshot, or a parity column, which is never resurrected).
    /// The node must boot blank: rebuilding the spec's initial shard here
    /// would fabricate an empty bucket that answers lookups with
    /// authoritative misses for acked records. Blank, it stays silent and
    /// the coordinator's probe timeout routes the shard through the full
    /// RS rebuild.
    Blank,
    /// No durable root at all: a genuine first boot. Build the spec's
    /// initial node and seed a fresh store. (An operator re-pointing a
    /// restarted node at a brand-new empty root is indistinguishable from
    /// this — mount the old disk, even if wiped, so the root exists.)
    Fresh,
}

/// A blank (pool/spare) node over `shared` — the [`DurableBoot::Blank`]
/// outcome.
pub fn blank_node(shared: &SharedHandle) -> Node {
    Node::Blank {
        shared: shared.clone(),
        pending: Vec::new(),
    }
}

/// Decide how to boot node `id` under durable root `root`.
pub fn durable_boot(
    shared: &SharedHandle,
    root: &Path,
    id: u32,
    fsync: FsyncPolicy,
    metrics: &Metrics,
) -> DurableBoot {
    if !node_root(root, id).is_dir() {
        return DurableBoot::Fresh;
    }
    match recover_node(shared, root, id, fsync, metrics) {
        Some(node) => DurableBoot::Recovered(node),
        None => DurableBoot::Blank,
    }
}

/// Try to rebuild node `id` from a surviving data-shard store under its
/// durable root. Returns the recovered node if a usable snapshot was
/// found; any failure (no directory, no snapshot, damaged snapshot) means
/// a blank boot and the classic recovery path. A successful replay is
/// traced as [`Event::WalReplay`]; an unusable store bumps `wal_errors`.
///
/// Only *data* shards are resurrected here: a restarted data bucket is
/// reconciled by the coordinator's Δ-suffix handshake, but there is no
/// such handshake for parity columns, and serving stale parity would
/// silently corrupt later decodes. Stale parity state is erased on the
/// next `InitParity`/`Install` instead.
pub fn recover_node(
    shared: &SharedHandle,
    root: &Path,
    id: u32,
    fsync: FsyncPolicy,
    metrics: &Metrics,
) -> Option<Node> {
    let dir = node_root(root, id);
    let entries = std::fs::read_dir(&dir).ok()?;
    // A node killed before a Retire could wipe a previous tenancy's store
    // may hold several stores with state, and read_dir order is
    // unspecified. The current tenancy is the one written to last, so rank
    // candidates newest-snapshot-first and take the first that recovers
    // (path order breaks mtime ties deterministically).
    let mut candidates: Vec<(std::time::SystemTime, PathBuf)> = entries
        .flatten()
        .filter(|e| e.file_name().to_string_lossy().starts_with("data-"))
        .map(|e| e.path())
        .filter(|p| FileWal::has_state(p))
        .map(|p| {
            let mtime = FileWal::state_mtime(&p).unwrap_or(std::time::SystemTime::UNIX_EPOCH);
            (mtime, p)
        })
        .collect();
    candidates.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    for (_, shard_dir) in candidates {
        let Ok(wal) = FileWal::open(shard_dir.clone(), fsync) else {
            continue;
        };
        match storage::recover(shared, Box::new(wal)) {
            Ok(rec) => {
                if let Node::Data(d) = &rec.node {
                    metrics.trace(
                        0,
                        Event::WalReplay {
                            bucket: d.bucket,
                            ops: rec.ops_replayed,
                            bytes: rec.bytes_replayed,
                        },
                    );
                }
                return Some(rec.node);
            }
            Err(e) => {
                metrics.incr("wal_errors");
                eprintln!(
                    "lhrs-net: node {id}: store {} unusable ({e}); booting blank",
                    shard_dir.display()
                );
            }
        }
    }
    None
}
