//! [`NodeHost`]: runs `lhrs-core` [`Node`] actors over a real transport
//! with the exact `Env` semantics the simulator provides.
//!
//! The actor contract is: handlers see a stable `now()`, effects (sends,
//! timers) are buffered and applied only after the handler returns, and
//! timer ids are unique per host. The host reproduces all three over wall
//! clocks and sockets — `now()` is microseconds since host start, timers
//! live in a min-heap drained by the poll loop, sends route to the local
//! queue (same process) or the transport (remote). Nothing in `lhrs-core`
//! can tell whether it is running here or inside `lhrs_sim::Sim`.

use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

use lhrs_core::msg::{DeltaEntry, Msg};
use lhrs_core::node::Node;
use lhrs_core::registry::SharedHandle;
use lhrs_obs::{Event as ObsEvent, Metrics};
use lhrs_sim::{Actor, Effect, Env, NodeId, Payload, TimerId};

use crate::frame::RegistryUpdate;
use crate::transport::{HostEvent, Transport};

/// How often the authoritative host rebroadcasts the allocation table even
/// without changes, healing peers that missed an update (µs).
const HEARTBEAT_US: u64 = 200_000;

/// A heap entry: fire at `deadline` µs, FIFO within a deadline via `seq`,
/// on node `node`. `std::cmp::Reverse` turns the max-heap into a min-heap.
type TimerEntry = std::cmp::Reverse<(u64, u64, u32, TimerId)>;

/// Entries per coalesced Δ-batch before it is flushed early. Bounds frame
/// size and parity-side admission burstiness; a poll batch rarely reaches
/// it.
const DELTA_COALESCE_CAP: usize = 256;

/// Key of one pending coalesced Δ-batch: destination parity node, emitting
/// data node, group, and ack target — everything [`Msg::ParityBatch`]
/// needs to stay faithful to the individual Δs it replaces.
type DeltaKey = (u32, u32, u64, Option<NodeId>);

/// One process's share of the LH\*RS multicomputer: a set of [`Node`]
/// actors, their timers, and a transport to everyone else.
pub struct NodeHost<T: Transport> {
    transport: T,
    tx: Sender<HostEvent>,
    rx: Receiver<HostEvent>,
    shared: SharedHandle,
    nodes: HashMap<u32, Node>,
    /// Same-process deliveries, drained before blocking on the channel.
    local_queue: VecDeque<(NodeId, NodeId, Msg)>,
    timers: BinaryHeap<TimerEntry>,
    cancelled: HashSet<(u32, TimerId)>,
    next_timer: u64,
    timer_seq: u64,
    epoch: Instant,
    /// Whether this host carries the coordinator (and therefore owns the
    /// authoritative allocation table).
    authoritative: bool,
    /// Last broadcast snapshot + version (authoritative side).
    last_snapshot: Option<RegistryUpdate>,
    reg_version: u64,
    last_broadcast_at: u64,
    /// Version last applied from the authoritative host (receiver side);
    /// `None` until the first snapshot arrives.
    seen_version: Option<u64>,
    shutdown: bool,
    /// Remote-bound Δ-commits buffered within the current poll batch,
    /// coalesced into one [`Msg::ParityBatch`] per (destination, sender,
    /// group, ack target) at the batch boundary. `pending_delta_order`
    /// keeps flush order deterministic (insertion order of first Δ).
    pending_deltas: HashMap<DeltaKey, Vec<DeltaEntry>>,
    pending_delta_order: Vec<DeltaKey>,
    /// Dump every dispatched message to stderr (`LHRS_NET_TRACE=1`).
    trace: bool,
    /// Observability handle shared with every [`Env`] this host builds
    /// (and usually with the transport). Disabled unless installed via
    /// [`NodeHost::set_metrics`].
    metrics: Metrics,
}

impl<T: Transport> NodeHost<T> {
    /// A host over `transport`, reading inbound events from `rx`. Keep the
    /// matching `tx` flowing into the transport's reader threads; the host
    /// also holds a clone (see [`NodeHost::sender`]) so the channel never
    /// disconnects.
    pub fn new(
        shared: SharedHandle,
        transport: T,
        tx: Sender<HostEvent>,
        rx: Receiver<HostEvent>,
    ) -> Self {
        NodeHost {
            transport,
            tx,
            rx,
            shared,
            nodes: HashMap::new(),
            local_queue: VecDeque::new(),
            timers: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_timer: 0,
            timer_seq: 0,
            epoch: Instant::now(),
            authoritative: false,
            last_snapshot: None,
            reg_version: 0,
            last_broadcast_at: 0,
            seen_version: None,
            shutdown: false,
            pending_deltas: HashMap::new(),
            pending_delta_order: Vec::new(),
            trace: std::env::var_os("LHRS_NET_TRACE").is_some(),
            metrics: Metrics::disabled(),
        }
    }

    /// Install an observability handle. Hosted actors see it through
    /// [`Env::obs`] exactly as simulated actors do; the host additionally
    /// tallies `msgs_recv{kind}`, timer fires, and registry traffic into
    /// it. Share the same clone with the transport so one snapshot covers
    /// the whole process.
    pub fn set_metrics(&mut self, metrics: Metrics) {
        self.metrics = metrics;
    }

    /// The installed observability handle (disabled by default).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Host a node. Adding the coordinator makes this host authoritative
    /// for the allocation table.
    pub fn add_node(&mut self, id: u32, node: Node) {
        if matches!(node, Node::Coordinator(_)) {
            self.authoritative = true;
        }
        self.nodes.insert(id, node);
    }

    /// The hosted node `id`, or `None` when this host does not carry it.
    pub fn node(&self, id: u32) -> Option<&Node> {
        self.nodes.get(&id)
    }

    /// Mutable access to hosted node `id`, or `None` when this host does
    /// not carry it.
    pub fn node_mut(&mut self, id: u32) -> Option<&mut Node> {
        self.nodes.get_mut(&id)
    }

    /// This process's shared registry/config handle.
    pub fn shared(&self) -> &SharedHandle {
        &self.shared
    }

    /// A sender feeding this host's event queue (give clones to transport
    /// reader threads or use it to signal [`HostEvent::Shutdown`]).
    pub fn sender(&self) -> Sender<HostEvent> {
        self.tx.clone()
    }

    /// The transport's outbound counters.
    pub fn transport_stats(&self) -> crate::transport::TransportStats {
        self.transport.stats()
    }

    /// The allocation-table version last applied from the authoritative
    /// host (`None` until one arrived). Authoritative hosts report their
    /// own broadcast version.
    pub fn registry_version(&self) -> Option<u64> {
        if self.authoritative {
            Some(self.reg_version)
        } else {
            self.seen_version
        }
    }

    /// Whether [`HostEvent::Shutdown`] has been received.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown
    }

    /// Microseconds since host start — the `Env::now` clock.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Ask the authoritative host (node `to`) for the current allocation
    /// table; the answer arrives as a [`HostEvent::Registry`].
    pub fn request_registry(&mut self, from: u32, to: u32) {
        self.transport.send_registry_pull(NodeId(from), NodeId(to));
        self.transport.flush();
    }

    /// Inject a driver message (e.g. `Msg::Do`) into hosted node `to`, as
    /// if sent by the external world.
    pub fn inject(&mut self, to: u32, msg: Msg) {
        self.local_queue
            .push_back((lhrs_sim::EXTERNAL, NodeId(to), msg));
    }

    /// Dispatch one message into a hosted node and apply its effects.
    fn dispatch(&mut self, from: NodeId, to: NodeId, msg: Msg) {
        let now = self.now_us();
        if self.trace {
            eprintln!("trace: [{now}us] {from:?} -> {to:?}: {msg:?}");
        }
        let mut effects: Vec<Effect<Msg>> = Vec::new();
        match self.nodes.get_mut(&to.0) {
            Some(node) => {
                self.metrics.incr_kind("msgs_recv", msg.kind());
                if self.metrics.msg_trace() {
                    self.metrics.trace(
                        now,
                        ObsEvent::MsgRecv {
                            kind: msg.kind(),
                            from: from.0,
                            to: to.0,
                        },
                    );
                }
                let mut env =
                    Env::external(to, now, &mut self.next_timer, &mut effects, &self.metrics);
                node.on_message(&mut env, from, msg);
            }
            None => return, // late frame for a node we do not host
        }
        self.apply_effects(to, now, effects);
    }

    /// Fire one timer on a hosted node and apply its effects.
    fn dispatch_timer(&mut self, node_id: u32, timer: TimerId) {
        let now = self.now_us();
        let mut effects: Vec<Effect<Msg>> = Vec::new();
        match self.nodes.get_mut(&node_id) {
            Some(node) => {
                self.metrics.incr("host_timer_fires");
                let mut env = Env::external(
                    NodeId(node_id),
                    now,
                    &mut self.next_timer,
                    &mut effects,
                    &self.metrics,
                );
                node.on_timer(&mut env, timer);
            }
            None => return,
        }
        self.apply_effects(NodeId(node_id), now, effects);
    }

    /// Apply a handler's buffered effects. The allocation-table broadcast
    /// goes out FIRST: any peer that then receives this dispatch's messages
    /// has already seen (per-connection FIFO) the table state those
    /// messages presuppose.
    fn apply_effects(&mut self, origin: NodeId, now: u64, effects: Vec<Effect<Msg>>) {
        self.broadcast_registry_if_changed(now);
        for effect in effects {
            match effect {
                Effect::Send { to, msg } => self.route(origin, to, msg),
                Effect::Multicast { to, msg } => {
                    for t in to {
                        self.route(origin, t, msg.clone());
                    }
                }
                Effect::SetTimer { id, delay } => {
                    self.timer_seq += 1;
                    self.timers.push(std::cmp::Reverse((
                        now.saturating_add(delay),
                        self.timer_seq,
                        origin.0,
                        id,
                    )));
                }
                Effect::CancelTimer { id } => {
                    self.cancelled.insert((origin.0, id));
                }
            }
        }
        // No per-dispatch transport flush: writes accumulate in the
        // transport's buffers and Δ-commits in the coalescing buffer until
        // the poll-batch boundary (`flush_outbound`), amortising syscalls
        // and frames across every dispatch of the batch.
    }

    fn route(&mut self, from: NodeId, to: NodeId, msg: Msg) {
        if self.nodes.contains_key(&to.0) {
            self.local_queue.push_back((from, to, msg));
            return;
        }
        // Remote-bound Δ-commits are coalesced per parity destination and
        // shipped as one ParityBatch at the poll-batch boundary. Any other
        // message to the same destination first flushes its pending Δs so
        // per-connection FIFO order is preserved (a Retire or SuffixPull
        // must never overtake the Δs emitted before it).
        if let Msg::ParityDelta {
            group,
            entry,
            ack_to,
        } = msg
        {
            let key = (to.0, from.0, group, ack_to);
            let pending = self.pending_deltas.entry(key).or_insert_with(|| {
                self.pending_delta_order.push(key);
                Vec::new()
            });
            pending.push(entry);
            if pending.len() >= DELTA_COALESCE_CAP {
                self.flush_deltas_to(Some(to.0));
            }
            return;
        }
        self.flush_deltas_to(Some(to.0));
        self.transport.send_msg(from, to, &msg);
    }

    /// Ship buffered Δ-commits as [`Msg::ParityBatch`]es — all of them, or
    /// only those bound for destination `only`. A single buffered Δ is
    /// sent as the plain [`Msg::ParityDelta`] it started as.
    fn flush_deltas_to(&mut self, only: Option<u32>) {
        if self.pending_deltas.is_empty() {
            return;
        }
        let mut kept = Vec::new();
        for key in std::mem::take(&mut self.pending_delta_order) {
            let (to, from, group, ack_to) = key;
            if only.is_some_and(|o| o != to) {
                kept.push(key);
                continue;
            }
            let Some(mut entries) = self.pending_deltas.remove(&key) else {
                continue;
            };
            if entries.len() == 1 {
                let Some(entry) = entries.pop() else {
                    continue;
                };
                let msg = Msg::ParityDelta {
                    group,
                    entry,
                    ack_to,
                };
                self.transport.send_msg(NodeId(from), NodeId(to), &msg);
                continue;
            }
            self.metrics.incr("net_delta_batches");
            self.metrics
                .add("net_deltas_coalesced", entries.len() as u64);
            let msg = Msg::ParityBatch {
                group,
                entries,
                ack_to,
            };
            self.transport.send_msg(NodeId(from), NodeId(to), &msg);
        }
        self.pending_delta_order = kept;
    }

    /// The poll-batch boundary: ship coalesced Δ-batches, then flush the
    /// transport's buffered writes to the wire. Runs before the host
    /// blocks waiting for events and again after the batch's dispatches.
    fn flush_outbound(&mut self) {
        self.flush_deltas_to(None);
        self.transport.flush();
    }

    /// Build the current table snapshot (without a version).
    fn snapshot(&self) -> RegistryUpdate {
        let reg = self.shared.registry.borrow();
        let data: Vec<NodeId> = reg.all_data_nodes();
        let parity: Vec<Vec<NodeId>> = (0..reg.group_count())
            .map(|g| reg.parity_nodes(g as u64).to_vec())
            .collect();
        RegistryUpdate {
            version: 0,
            coordinator: reg.coordinator,
            data,
            parity,
        }
    }

    /// Authoritative side: broadcast a fresh snapshot if the table changed
    /// since the last broadcast.
    fn broadcast_registry_if_changed(&mut self, now: u64) {
        if !self.authoritative {
            return;
        }
        let mut snap = self.snapshot();
        let changed = match &self.last_snapshot {
            None => true,
            Some(last) => {
                last.coordinator != snap.coordinator
                    || last.data != snap.data
                    || last.parity != snap.parity
            }
        };
        if !changed {
            return;
        }
        self.reg_version += 1;
        snap.version = self.reg_version;
        self.metrics.incr("registry_broadcasts");
        self.transport.broadcast_registry(snap.coordinator, &snap);
        self.last_broadcast_at = now;
        self.last_snapshot = Some(snap);
    }

    /// Authoritative side: the current versioned snapshot (allocating
    /// version 1 if nothing was ever broadcast).
    fn current_snapshot(&mut self) -> RegistryUpdate {
        self.broadcast_registry_if_changed(self.now_us());
        match &self.last_snapshot {
            Some(snap) => snap.clone(),
            None => {
                // Table unchanged since construction and never broadcast:
                // stamp and remember version 1 now.
                let mut snap = self.snapshot();
                self.reg_version = self.reg_version.max(1);
                snap.version = self.reg_version;
                self.last_snapshot = Some(snap.clone());
                snap
            }
        }
    }

    /// Receiver side: apply a strictly newer snapshot to the local table.
    fn apply_registry(&mut self, up: RegistryUpdate) {
        if self.authoritative {
            return; // we are the source of truth
        }
        if let Some(seen) = self.seen_version {
            if up.version <= seen {
                return;
            }
        }
        self.seen_version = Some(up.version);
        self.metrics.incr("registry_updates_applied");
        let mut reg = self.shared.registry.borrow_mut();
        reg.coordinator = up.coordinator;
        while reg.data_count() > up.data.len() {
            reg.pop_data();
        }
        for (b, node) in up.data.iter().enumerate() {
            let bucket = b as u64;
            if b < reg.data_count() {
                if reg.data_node(bucket) != *node {
                    reg.move_data(bucket, *node);
                }
            } else {
                reg.push_data(bucket, *node);
            }
        }
        while reg.group_count() > up.parity.len() {
            reg.pop_parity_group();
        }
        for (g, group) in up.parity.iter().enumerate() {
            if reg.parity_nodes(g as u64) != group.as_slice() {
                reg.set_parity(g as u64, group.clone());
            }
        }
    }

    /// Handle one inbound event; returns false on shutdown.
    fn handle_event(&mut self, event: HostEvent) -> bool {
        match event {
            HostEvent::Deliver { from, to, msg } => {
                self.local_queue.push_back((from, to, msg));
            }
            HostEvent::Registry(up) => self.apply_registry(up),
            HostEvent::RegistryPull { from } => {
                if self.authoritative {
                    let snap = self.current_snapshot();
                    self.transport.send_registry(from, &snap);
                    self.transport.flush();
                }
            }
            HostEvent::Shutdown => return false,
        }
        true
    }

    /// Deliver everything in the local queue (dispatches can enqueue more).
    fn drain_local(&mut self) -> bool {
        let mut did = false;
        while let Some((from, to, msg)) = self.local_queue.pop_front() {
            did = true;
            self.dispatch(from, to, msg);
        }
        did
    }

    /// Fire every timer whose deadline has passed.
    fn fire_due_timers(&mut self) -> bool {
        let mut did = false;
        loop {
            let now = self.now_us();
            match self.timers.peek() {
                Some(std::cmp::Reverse((deadline, _, _, _))) if *deadline <= now => {}
                _ => return did,
            }
            let Some(std::cmp::Reverse((_, _, node, id))) = self.timers.pop() else {
                return did; // peeked non-empty just above
            };
            if self.cancelled.remove(&(node, id)) {
                continue; // tombstoned
            }
            did = true;
            self.dispatch_timer(node, id);
        }
    }

    /// Wait for the earlier of the next timer deadline, the heartbeat, or
    /// `max_wait`, handling inbound events as they arrive. Returns whether
    /// any work was done. Call in a loop (or use [`NodeHost::run`]).
    pub fn poll(&mut self, max_wait: Duration) -> bool {
        let mut did = false;
        did |= self.drain_local();
        did |= self.fire_due_timers();
        did |= self.drain_local();
        self.flush_outbound();
        if self.shutdown {
            return did;
        }

        let now = self.now_us();
        let mut wait = max_wait;
        if let Some(std::cmp::Reverse((deadline, _, _, _))) = self.timers.peek() {
            wait = wait.min(Duration::from_micros(deadline.saturating_sub(now)));
        }
        if self.authoritative {
            let next_hb = self.last_broadcast_at + HEARTBEAT_US;
            wait = wait.min(Duration::from_micros(next_hb.saturating_sub(now)));
        }

        match self.rx.recv_timeout(wait) {
            Ok(event) => {
                did = true;
                if !self.handle_event(event) {
                    self.shutdown = true;
                    return did;
                }
                // Batch whatever else is already queued.
                while let Ok(event) = self.rx.try_recv() {
                    if !self.handle_event(event) {
                        self.shutdown = true;
                        return did;
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                // Cannot happen: self.tx keeps the channel alive.
                self.shutdown = true;
                return did;
            }
        }

        did |= self.drain_local();
        did |= self.fire_due_timers();
        did |= self.drain_local();
        self.flush_outbound();
        self.heartbeat();
        if did {
            self.sync_stores();
        }
        did
    }

    /// Flush every hosted node's durable store: the
    /// [`lhrs_core::FsyncPolicy::Batch`] semantic is one fsync per poll
    /// batch, however many appends the batch carried. A no-op for nodes
    /// without a store or with nothing buffered. Each non-empty pass is
    /// one group commit; `wal_group_commit_ops` over `wal_group_commits`
    /// is the mean appends amortised per fsync pass.
    fn sync_stores(&mut self) {
        let mut ops = 0;
        for node in self.nodes.values_mut() {
            ops += node.sync_store();
        }
        if ops > 0 {
            self.metrics.incr("wal_group_commits");
            self.metrics.add("wal_group_commit_ops", ops);
        }
    }

    /// Authoritative side: periodic table rebroadcast, healing peers that
    /// were unreachable when an update went out.
    fn heartbeat(&mut self) {
        if !self.authoritative {
            return;
        }
        let now = self.now_us();
        self.broadcast_registry_if_changed(now);
        if now.saturating_sub(self.last_broadcast_at) >= HEARTBEAT_US {
            let snap = self.current_snapshot();
            self.transport.broadcast_registry(snap.coordinator, &snap);
            self.transport.flush();
            self.last_broadcast_at = now;
        }
    }

    /// Poll until a [`HostEvent::Shutdown`] arrives.
    pub fn run(&mut self) {
        while !self.shutdown {
            self.poll(Duration::from_millis(50));
        }
    }
}
