//! [`NetClient`]: a key-value façade over a hosted client node, with a
//! multiplexed (pipelined) submission path.
//!
//! Wraps a [`NodeHost`] carrying one `lhrs-core` client actor. The
//! synchronous methods inject one `Msg::Do`, poll the host until the
//! client's retry/IAM machinery produces a result, and return it — the
//! networked analogue of `LhrsFile`'s driver API.
//!
//! The pipelined path ([`NetClient::submit`] / [`NetClient::run_window`],
//! surfaced through [`KvClient::run_batch`]) keeps a bounded window of
//! operations in flight at once. Completion is keyed by request id
//! (`OpId`) and arrives in any order; each in-flight operation carries its
//! own deadline, and an operation abandoned by its deadline is tombstoned
//! so a late reply is dropped and counted (`inflight_stale_drops`) instead
//! of surfacing against a reused slot.

use std::collections::{HashMap, HashSet, VecDeque};
use std::time::{Duration, Instant};

use lhrs_core::api::{KvClient, OpOutcome};
use lhrs_core::msg::{ClientOp, FilterSpec, Msg, OpId, OpResult};

use crate::host::NodeHost;
use crate::transport::Transport;

/// Default per-operation deadline for the [`KvClient`] trait methods:
/// generous enough to ride through suspect-escalation, probing, and a full
/// shard recovery. Override with [`NetClient::set_op_timeout`].
pub const DEFAULT_OP_TIMEOUT: Duration = Duration::from_secs(30);

/// Cap on remembered abandoned-op tombstones. The client actor itself
/// gives up on an operation after its retry budget, so a tombstone older
/// than this window can no longer produce a late reply.
const ABANDONED_CAP: usize = 4096;

/// A client over a node host: synchronous one-op methods plus a windowed
/// pipelined driver.
pub struct NetClient<T: Transport> {
    host: NodeHost<T>,
    client: u32,
    next_op: OpId,
    /// Results that arrived and await collection, keyed by request id.
    results: HashMap<OpId, OpResult>,
    op_timeout: Duration,
    /// In-flight window of the pipelined driver ([`KvClient::run_batch`]).
    window: usize,
    /// Tombstones of operations abandoned by their deadline: a reply that
    /// still arrives is dropped and counted, never delivered.
    abandoned: HashSet<OpId>,
    abandoned_order: VecDeque<OpId>,
}

impl<T: Transport> NetClient<T> {
    /// Wrap `host`, whose node `client` must be a `Node::Client`. The
    /// pipelined window starts at the configured
    /// [`lhrs_core::Config::client_window`].
    pub fn new(host: NodeHost<T>, client: u32, first_op: OpId) -> Self {
        let window = host.shared().cfg.client_window.max(1);
        NetClient {
            host,
            client,
            next_op: first_op.max(1),
            results: HashMap::new(),
            op_timeout: DEFAULT_OP_TIMEOUT,
            window,
            abandoned: HashSet::new(),
            abandoned_order: VecDeque::new(),
        }
    }

    /// Set the per-operation deadline used by the [`KvClient`] methods.
    pub fn set_op_timeout(&mut self, timeout: Duration) {
        self.op_timeout = timeout;
    }

    /// Set the pipelined driver's in-flight window (clamped to ≥ 1).
    pub fn set_window(&mut self, window: usize) {
        self.window = window.max(1);
    }

    /// The pipelined driver's in-flight window.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The underlying host (to inspect the registry or stats).
    pub fn host(&self) -> &NodeHost<T> {
        &self.host
    }

    /// Mutable access to the underlying host.
    pub fn host_mut(&mut self) -> &mut NodeHost<T> {
        &mut self.host
    }

    /// Pull the allocation table from the authoritative host at node
    /// `coordinator`, re-asking every ~300 ms until a snapshot arrives or
    /// `timeout` elapses. Returns whether a table was received.
    pub fn sync_registry(&mut self, coordinator: u32, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut last_ask = Instant::now() - Duration::from_secs(1);
        while self.host.registry_version().is_none() {
            if Instant::now() >= deadline {
                return false;
            }
            if last_ask.elapsed() >= Duration::from_millis(300) {
                self.host.request_registry(self.client, coordinator);
                last_ask = Instant::now();
            }
            self.host.poll(Duration::from_millis(20));
        }
        true
    }

    /// Launch one operation without waiting for it; returns its request
    /// id. Completion surfaces through [`NetClient::try_take`] after a
    /// [`NetClient::pump`]. The caller bounds its own window.
    pub fn submit(&mut self, op: ClientOp) -> OpId {
        let op_id = self.next_op;
        self.next_op += 1;
        self.host.metrics().incr("inflight_launched");
        self.host.inject(self.client, Msg::Do { op_id, op });
        op_id
    }

    /// Run the host loop once (waiting up to `wait` for inbound traffic)
    /// and collect every newly completed result. Late replies for
    /// abandoned operations are dropped here and counted.
    pub fn pump(&mut self, wait: Duration) {
        self.host.poll(wait);
        let metrics = self.host.metrics().clone();
        let Some(node) = self.host.node_mut(self.client) else {
            return;
        };
        let client = node.as_client_mut();
        for (id, result) in client.take_results() {
            if self.abandoned.remove(&id) {
                metrics.incr("inflight_stale_drops");
                continue;
            }
            metrics.incr("inflight_completed");
            self.results.insert(id, result);
        }
    }

    /// Collect the result of `op_id`, if it has completed.
    pub fn try_take(&mut self, op_id: OpId) -> Option<OpResult> {
        self.results.remove(&op_id)
    }

    /// Drain every completed result collected so far, in request-id order.
    /// The open-loop driver's completion path: one pass instead of probing
    /// each outstanding id with [`NetClient::try_take`].
    pub fn take_completed(&mut self) -> Vec<(OpId, OpResult)> {
        let mut out: Vec<(OpId, OpResult)> = self.results.drain().collect();
        out.sort_unstable_by_key(|&(id, _)| id);
        out
    }

    /// Abandon an in-flight operation: its reply, should one still
    /// arrive, is dropped and counted instead of delivered.
    pub fn abandon(&mut self, op_id: OpId) {
        if self.results.remove(&op_id).is_some() {
            return; // completed just before the deadline: nothing to drop
        }
        if self.abandoned.insert(op_id) {
            self.abandoned_order.push_back(op_id);
            while self.abandoned_order.len() > ABANDONED_CAP {
                if let Some(old) = self.abandoned_order.pop_front() {
                    self.abandoned.remove(&old);
                }
            }
        }
    }

    /// Execute one operation, blocking up to `timeout` for its result.
    /// `None` means the deadline passed with the operation still
    /// unsettled; the operation is then abandoned — if a reply arrives
    /// later it is dropped and counted, never surfaced against a newer
    /// request.
    pub fn exec(&mut self, op: ClientOp, timeout: Duration) -> Option<OpResult> {
        let op_id = self.submit(op);
        let deadline = Instant::now() + timeout;
        loop {
            self.pump(Duration::from_millis(20));
            if let Some(result) = self.results.remove(&op_id) {
                return Some(result);
            }
            if Instant::now() >= deadline {
                self.host.metrics().incr("inflight_timeouts");
                self.abandon(op_id);
                return None;
            }
        }
    }

    /// Pipelined batch execution: keep up to `window` operations in
    /// flight, submitting the next as each completes (out of order), and
    /// return `(outcome, latency)` per op in submission order. Each op
    /// gets the configured per-operation deadline from its submission;
    /// an op abandoned by its deadline reports `OpOutcome::Failed`.
    pub fn run_window(&mut self, ops: Vec<ClientOp>, window: usize) -> Vec<(OpOutcome, Duration)> {
        let window = window.max(1);
        let n = ops.len();
        let mut outcomes: Vec<(OpOutcome, Duration)> = ops
            .iter()
            .map(|_| (OpOutcome::Failed("not completed".into()), Duration::ZERO))
            .collect();
        let mut ops = ops.into_iter();
        // Request id → (submission index, submitted-at, deadline).
        let mut in_flight: HashMap<OpId, (usize, Instant, Instant)> = HashMap::new();
        let mut submitted = 0usize;
        let mut done = 0usize;
        while done < n {
            while in_flight.len() < window && submitted < n {
                let Some(op) = ops.next() else { break };
                let id = self.submit(op);
                let now = Instant::now();
                in_flight.insert(id, (submitted, now, now + self.op_timeout));
                submitted += 1;
            }
            if in_flight.len() >= window && submitted < n {
                // The window is the throughput limiter for this round.
                self.host.metrics().incr("window_full_stalls");
            }
            self.pump(Duration::from_millis(1));
            let completed: Vec<OpId> = in_flight
                .keys()
                .filter(|id| self.results.contains_key(id))
                .copied()
                .collect();
            for id in completed {
                let Some((idx, started, _)) = in_flight.remove(&id) else {
                    continue;
                };
                let Some(result) = self.results.remove(&id) else {
                    continue;
                };
                if let Some(slot) = outcomes.get_mut(idx) {
                    *slot = (OpOutcome::from_result(result), started.elapsed());
                }
                done += 1;
            }
            let now = Instant::now();
            let expired: Vec<OpId> = in_flight
                .iter()
                .filter(|(_, (_, _, deadline))| now >= *deadline)
                .map(|(id, _)| *id)
                .collect();
            for id in expired {
                let Some((idx, started, _)) = in_flight.remove(&id) else {
                    continue;
                };
                self.host.metrics().incr("inflight_timeouts");
                self.abandon(id);
                if let Some(slot) = outcomes.get_mut(idx) {
                    *slot = (
                        OpOutcome::Failed("operation timed out".into()),
                        started.elapsed(),
                    );
                }
                done += 1;
            }
        }
        outcomes
    }

    /// Insert a record; `Some(true)` inserted, `Some(false)` duplicate key.
    pub fn insert(&mut self, key: u64, payload: Vec<u8>, timeout: Duration) -> Option<bool> {
        match self.exec(ClientOp::Insert { key, payload }, timeout)? {
            OpResult::Inserted => Some(true),
            OpResult::DuplicateKey => Some(false),
            _ => None,
        }
    }

    /// Key search; `Some(None)` is a definitive unsuccessful search.
    pub fn lookup(&mut self, key: u64, timeout: Duration) -> Option<Option<Vec<u8>>> {
        match self.exec(ClientOp::Lookup { key }, timeout)? {
            OpResult::Value(v) => Some(v),
            _ => None,
        }
    }

    /// Delete a record; `Some(true)` deleted, `Some(false)` not found.
    pub fn delete(&mut self, key: u64, timeout: Duration) -> Option<bool> {
        match self.exec(ClientOp::Delete { key }, timeout)? {
            OpResult::Deleted => Some(true),
            OpResult::NotFound => Some(false),
            _ => None,
        }
    }

    /// Replace the payload of an existing record; `Some(true)` updated,
    /// `Some(false)` not found.
    pub fn update(&mut self, key: u64, payload: Vec<u8>, timeout: Duration) -> Option<bool> {
        match self.exec(ClientOp::Update { key, payload }, timeout)? {
            OpResult::Updated => Some(true),
            OpResult::NotFound => Some(false),
            _ => None,
        }
    }

    /// Parallel scan with a server-side filter; hits sorted by key.
    pub fn scan(&mut self, filter: FilterSpec, timeout: Duration) -> Option<Vec<(u64, Vec<u8>)>> {
        match self.exec(ClientOp::Scan { filter }, timeout)? {
            OpResult::ScanHits(hits) => Some(hits),
            _ => None,
        }
    }

    /// Number of data buckets in the local allocation-table snapshot.
    pub fn bucket_count(&self) -> usize {
        self.host.shared().registry.borrow().data_count()
    }

    /// Number of parity groups in the local allocation-table snapshot.
    pub fn group_count(&self) -> usize {
        self.host.shared().registry.borrow().group_count()
    }

    /// Run `op` with the configured deadline, folding a timeout into the
    /// [`OpOutcome`] shape.
    fn outcome_of(&mut self, op: ClientOp) -> OpOutcome {
        match self.exec(op, self.op_timeout) {
            Some(result) => OpOutcome::from_result(result),
            None => OpOutcome::Failed("operation timed out".into()),
        }
    }
}

/// The unified client API over a live cluster: each operation blocks up to
/// the configured per-operation timeout ([`NetClient::set_op_timeout`]);
/// [`KvClient::run_batch`] pipelines through the configured window
/// ([`NetClient::set_window`]).
impl<T: Transport> KvClient for NetClient<T> {
    fn insert(&mut self, key: u64, payload: Vec<u8>) -> OpOutcome {
        self.outcome_of(ClientOp::Insert { key, payload })
    }

    fn lookup(&mut self, key: u64) -> OpOutcome {
        self.outcome_of(ClientOp::Lookup { key })
    }

    fn update(&mut self, key: u64, payload: Vec<u8>) -> OpOutcome {
        self.outcome_of(ClientOp::Update { key, payload })
    }

    fn delete(&mut self, key: u64) -> OpOutcome {
        self.outcome_of(ClientOp::Delete { key })
    }

    fn scan(&mut self, filter: FilterSpec) -> OpOutcome {
        self.outcome_of(ClientOp::Scan { filter })
    }

    fn run_batch(&mut self, ops: Vec<ClientOp>) -> Vec<OpOutcome> {
        let window = self.window;
        self.run_window(ops, window)
            .into_iter()
            .map(|(outcome, _)| outcome)
            .collect()
    }
}
