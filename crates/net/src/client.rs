//! [`NetClient`]: a synchronous key-value façade over a hosted client node.
//!
//! Wraps a [`NodeHost`] carrying one `lhrs-core` client actor: operations
//! are injected as `Msg::Do`, the host is polled until the client's
//! retry/IAM machinery produces a result, and the result is returned — the
//! networked analogue of `LhrsFile`'s driver API.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use lhrs_core::api::{KvClient, OpOutcome};
use lhrs_core::msg::{ClientOp, FilterSpec, Msg, OpId, OpResult};

use crate::host::NodeHost;
use crate::transport::Transport;

/// Default per-operation deadline for the [`KvClient`] trait methods:
/// generous enough to ride through suspect-escalation, probing, and a full
/// shard recovery. Override with [`NetClient::set_op_timeout`].
pub const DEFAULT_OP_TIMEOUT: Duration = Duration::from_secs(30);

/// A synchronous client over a node host.
pub struct NetClient<T: Transport> {
    host: NodeHost<T>,
    client: u32,
    next_op: OpId,
    results: HashMap<OpId, OpResult>,
    op_timeout: Duration,
}

impl<T: Transport> NetClient<T> {
    /// Wrap `host`, whose node `client` must be a `Node::Client`.
    pub fn new(host: NodeHost<T>, client: u32, first_op: OpId) -> Self {
        NetClient {
            host,
            client,
            next_op: first_op.max(1),
            results: HashMap::new(),
            op_timeout: DEFAULT_OP_TIMEOUT,
        }
    }

    /// Set the per-operation deadline used by the [`KvClient`] methods.
    pub fn set_op_timeout(&mut self, timeout: Duration) {
        self.op_timeout = timeout;
    }

    /// The underlying host (to inspect the registry or stats).
    pub fn host(&self) -> &NodeHost<T> {
        &self.host
    }

    /// Mutable access to the underlying host.
    pub fn host_mut(&mut self) -> &mut NodeHost<T> {
        &mut self.host
    }

    /// Pull the allocation table from the authoritative host at node
    /// `coordinator`, re-asking every ~300 ms until a snapshot arrives or
    /// `timeout` elapses. Returns whether a table was received.
    pub fn sync_registry(&mut self, coordinator: u32, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut last_ask = Instant::now() - Duration::from_secs(1);
        while self.host.registry_version().is_none() {
            if Instant::now() >= deadline {
                return false;
            }
            if last_ask.elapsed() >= Duration::from_millis(300) {
                self.host.request_registry(self.client, coordinator);
                last_ask = Instant::now();
            }
            self.host.poll(Duration::from_millis(20));
        }
        true
    }

    /// Execute one operation, blocking up to `timeout` for its result.
    /// `None` means the deadline passed with the operation still unsettled
    /// (the client actor keeps retrying in the background; a later exec may
    /// surface the result).
    pub fn exec(&mut self, op: ClientOp, timeout: Duration) -> Option<OpResult> {
        let op_id = self.next_op;
        self.next_op += 1;
        self.host.inject(self.client, Msg::Do { op_id, op });
        let deadline = Instant::now() + timeout;
        loop {
            self.host.poll(Duration::from_millis(20));
            let client = self.host.node_mut(self.client).as_client_mut();
            for (id, result) in client.take_results() {
                self.results.insert(id, result);
            }
            if let Some(result) = self.results.remove(&op_id) {
                return Some(result);
            }
            if Instant::now() >= deadline {
                return None;
            }
        }
    }

    /// Insert a record; `Some(true)` inserted, `Some(false)` duplicate key.
    pub fn insert(&mut self, key: u64, payload: Vec<u8>, timeout: Duration) -> Option<bool> {
        match self.exec(ClientOp::Insert { key, payload }, timeout)? {
            OpResult::Inserted => Some(true),
            OpResult::DuplicateKey => Some(false),
            _ => None,
        }
    }

    /// Key search; `Some(None)` is a definitive unsuccessful search.
    pub fn lookup(&mut self, key: u64, timeout: Duration) -> Option<Option<Vec<u8>>> {
        match self.exec(ClientOp::Lookup { key }, timeout)? {
            OpResult::Value(v) => Some(v),
            _ => None,
        }
    }

    /// Delete a record; `Some(true)` deleted, `Some(false)` not found.
    pub fn delete(&mut self, key: u64, timeout: Duration) -> Option<bool> {
        match self.exec(ClientOp::Delete { key }, timeout)? {
            OpResult::Deleted => Some(true),
            OpResult::NotFound => Some(false),
            _ => None,
        }
    }

    /// Replace the payload of an existing record; `Some(true)` updated,
    /// `Some(false)` not found.
    pub fn update(&mut self, key: u64, payload: Vec<u8>, timeout: Duration) -> Option<bool> {
        match self.exec(ClientOp::Update { key, payload }, timeout)? {
            OpResult::Updated => Some(true),
            OpResult::NotFound => Some(false),
            _ => None,
        }
    }

    /// Parallel scan with a server-side filter; hits sorted by key.
    pub fn scan(&mut self, filter: FilterSpec, timeout: Duration) -> Option<Vec<(u64, Vec<u8>)>> {
        match self.exec(ClientOp::Scan { filter }, timeout)? {
            OpResult::ScanHits(hits) => Some(hits),
            _ => None,
        }
    }

    /// Number of data buckets in the local allocation-table snapshot.
    pub fn bucket_count(&self) -> usize {
        self.host.shared().registry.borrow().data_count()
    }

    /// Number of parity groups in the local allocation-table snapshot.
    pub fn group_count(&self) -> usize {
        self.host.shared().registry.borrow().group_count()
    }

    /// Run `op` with the configured deadline, folding a timeout into the
    /// [`OpOutcome`] shape.
    fn outcome_of(&mut self, op: ClientOp) -> OpOutcome {
        match self.exec(op, self.op_timeout) {
            Some(result) => OpOutcome::from_result(result),
            None => OpOutcome::Failed("operation timed out".into()),
        }
    }
}

/// The unified client API over a live cluster: each operation blocks up to
/// the configured per-operation timeout ([`NetClient::set_op_timeout`]).
impl<T: Transport> KvClient for NetClient<T> {
    fn insert(&mut self, key: u64, payload: Vec<u8>) -> OpOutcome {
        self.outcome_of(ClientOp::Insert { key, payload })
    }

    fn lookup(&mut self, key: u64) -> OpOutcome {
        self.outcome_of(ClientOp::Lookup { key })
    }

    fn update(&mut self, key: u64, payload: Vec<u8>) -> OpOutcome {
        self.outcome_of(ClientOp::Update { key, payload })
    }

    fn delete(&mut self, key: u64) -> OpOutcome {
        self.outcome_of(ClientOp::Delete { key })
    }

    fn scan(&mut self, filter: FilterSpec) -> OpOutcome {
        self.outcome_of(ClientOp::Scan { filter })
    }
}
