//! The cluster specification every process of a deployment parses: node
//! ids, addresses, roles, and the file [`Config`].
//!
//! A deployment is described by one text file (see [`ClusterSpec::parse`])
//! that every `lhrs-netd` / `lhrs-netcli` invocation reads. Because each
//! process derives the *same* initial registry from the same spec (mirroring
//! `LhrsFile::new`'s layout), the cluster starts coherent without any
//! bootstrap protocol; from then on the coordinator's host broadcasts
//! [`crate::frame::RegistryUpdate`] snapshots as the table evolves.
//!
//! ```text
//! # lines are `config <key> <value>` or `node <id> <addr> [role]`
//! config group_size 2
//! config initial_k 1
//! config ack_writes true
//! node 0 127.0.0.1:7000 coordinator
//! node 1 127.0.0.1:7001 client
//! node 2 127.0.0.1:7002
//! node 3 127.0.0.1:7003
//! ...
//! ```
//!
//! Ids must be dense from 0; node 0 must be the coordinator. Server nodes
//! (no role) are laid out exactly like the simulator's initial file: the
//! lowest server id carries bucket 0, the next `k` carry group 0's parity,
//! and the rest form the spare pool (highest id used first).

use lhrs_core::client::Client;
use lhrs_core::coordinator::Coordinator;
use lhrs_core::data_bucket::DataBucket;
use lhrs_core::node::Node;
use lhrs_core::parity_bucket::ParityBucket;
use lhrs_core::registry::{Shared, SharedHandle};
use lhrs_core::Config;
use lhrs_sim::NodeId;

/// What a node in the spec is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The coordinator (exactly one, id 0).
    Coordinator,
    /// A client host (not part of the server pool).
    Client,
    /// A server: data bucket, parity bucket, or spare, as the file decides.
    Server,
}

/// One node of the deployment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSpec {
    /// The node id (dense from 0 across the spec).
    pub id: u32,
    /// `host:port` the hosting process listens on for this node.
    pub addr: String,
    /// The node's role.
    pub role: Role,
}

/// A full deployment description: file config plus the node list.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// The LH\*RS file configuration (shared verbatim by every process).
    pub cfg: Config,
    /// All nodes, indexed by id.
    pub nodes: Vec<NodeSpec>,
}

impl ClusterSpec {
    /// Parse the text format described in the module docs.
    pub fn parse(text: &str) -> Result<ClusterSpec, String> {
        let mut cfg = Config::default();
        let mut nodes: Vec<NodeSpec> = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let err = |what: &str| format!("line {}: {what}: {line:?}", lineno + 1);
            match parts.next() {
                Some("config") => {
                    let key = parts.next().ok_or_else(|| err("missing config key"))?;
                    let val = parts.next().ok_or_else(|| err("missing config value"))?;
                    apply_config(&mut cfg, key, val).map_err(|e| err(&e))?;
                }
                Some("node") => {
                    let id: u32 = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| err("bad node id"))?;
                    let addr = parts.next().ok_or_else(|| err("missing address"))?;
                    let role = match parts.next() {
                        None => Role::Server,
                        Some("coordinator") => Role::Coordinator,
                        Some("client") => Role::Client,
                        Some(other) => return Err(err(&format!("unknown role {other:?}"))),
                    };
                    nodes.push(NodeSpec {
                        id,
                        addr: addr.to_string(),
                        role,
                    });
                }
                Some(other) => return Err(err(&format!("unknown directive {other:?}"))),
                None => unreachable!("blank lines skipped above"),
            }
        }
        cfg.node_pool = nodes.iter().filter(|n| n.role == Role::Server).count() + 2;
        let spec = ClusterSpec { cfg, nodes };
        spec.validate()?;
        Ok(spec)
    }

    /// Render back to the text format (inverse of [`ClusterSpec::parse`]
    /// for the keys the format covers).
    pub fn render(&self) -> String {
        let c = &self.cfg;
        let mut out = String::new();
        for (key, val) in [
            ("group_size", c.group_size.to_string()),
            ("initial_k", c.initial_k.to_string()),
            ("bucket_capacity", c.bucket_capacity.to_string()),
            ("record_len", c.record_len.to_string()),
            ("ack_writes", c.ack_writes.to_string()),
            ("ack_parity", c.ack_parity.to_string()),
            ("client_timeout_us", c.client_timeout_us.to_string()),
            ("client_retries", c.client_retries.to_string()),
            ("retry_backoff_cap_us", c.retry_backoff_cap_us.to_string()),
            ("delta_retransmit_us", c.delta_retransmit_us.to_string()),
            ("delta_retry_limit", c.delta_retry_limit.to_string()),
            ("probe_timeout_us", c.probe_timeout_us.to_string()),
            ("coord_retransmit_us", c.coord_retransmit_us.to_string()),
            ("coord_retries", c.coord_retries.to_string()),
            ("replay_cache_cap", c.replay_cache_cap.to_string()),
            ("client_window", c.client_window.to_string()),
            ("wal_snapshot_every", c.wal_snapshot_every.to_string()),
            ("delta_history_cap", c.delta_history_cap.to_string()),
            ("wal_fsync", c.wal_fsync.to_string()),
        ] {
            out.push_str(&format!("config {key} {val}\n"));
        }
        for n in &self.nodes {
            let role = match n.role {
                Role::Coordinator => " coordinator",
                Role::Client => " client",
                Role::Server => "",
            };
            out.push_str(&format!("node {} {}{}\n", n.id, n.addr, role));
        }
        out
    }

    /// Check the spec's structural invariants.
    pub fn validate(&self) -> Result<(), String> {
        for (i, n) in self.nodes.iter().enumerate() {
            if n.id as usize != i {
                return Err(format!(
                    "node ids must be dense from 0; got {} at {i}",
                    n.id
                ));
            }
        }
        match self.nodes.first() {
            Some(n) if n.role == Role::Coordinator => {}
            _ => return Err("node 0 must be the coordinator".into()),
        }
        if self
            .nodes
            .iter()
            .skip(1)
            .any(|n| n.role == Role::Coordinator)
        {
            return Err("exactly one coordinator allowed".into());
        }
        let servers = self.server_ids();
        if servers.len() < 1 + self.cfg.initial_k {
            return Err(format!(
                "need at least {} server nodes (bucket 0 + k parity), got {}",
                1 + self.cfg.initial_k,
                servers.len()
            ));
        }
        Ok(())
    }

    /// Server node ids in ascending order.
    pub fn server_ids(&self) -> Vec<u32> {
        self.nodes
            .iter()
            .filter(|n| n.role == Role::Server)
            .map(|n| n.id)
            .collect()
    }

    /// The initial placement, mirroring the simulator's `LhrsFile::new`:
    /// `(bucket0, parity nodes of group 0, spare pool in hand-out order)`.
    pub fn layout(&self) -> (NodeId, Vec<NodeId>, Vec<NodeId>) {
        let servers = self.server_ids();
        let k = self.cfg.initial_k;
        let bucket0 = NodeId(servers[0]);
        let parity: Vec<NodeId> = servers[1..1 + k].iter().map(|&i| NodeId(i)).collect();
        let pool: Vec<NodeId> = servers[1 + k..].iter().rev().map(|&i| NodeId(i)).collect();
        (bucket0, parity, pool)
    }

    /// Build this process's shared handle with the initial allocation
    /// table. Every process derives the identical table from the spec.
    pub fn build_shared(&self) -> SharedHandle {
        let shared = Shared::new(self.cfg.clone());
        let (bucket0, parity, _) = self.layout();
        {
            let mut reg = shared.registry.borrow_mut();
            reg.coordinator = NodeId(0);
            reg.push_data(0, bucket0);
            reg.set_parity(0, parity);
        }
        shared
    }

    /// Build the initial [`Node`] actor for id `id` within this process.
    pub fn build_node(&self, shared: &SharedHandle, id: u32) -> Node {
        let (bucket0, parity, pool) = self.layout();
        let k = self.cfg.initial_k;
        let spec = &self.nodes[id as usize];
        match spec.role {
            Role::Coordinator => {
                Node::Coordinator(Box::new(Coordinator::new(shared.clone(), pool)))
            }
            Role::Client => Node::Client(Client::new(shared.clone())),
            Role::Server => {
                if NodeId(id) == bucket0 {
                    Node::Data(DataBucket::new(shared.clone(), 0, 0))
                } else if let Some(q) = parity.iter().position(|n| *n == NodeId(id)) {
                    Node::Parity(ParityBucket::new(shared.clone(), 0, q, k))
                } else {
                    Node::Blank {
                        shared: shared.clone(),
                        pending: Vec::new(),
                    }
                }
            }
        }
    }

    /// `(id, addr)` pairs for the transport's peer map.
    pub fn addr_map(&self) -> Vec<(u32, String)> {
        self.nodes.iter().map(|n| (n.id, n.addr.clone())).collect()
    }

    /// The address of node `id`.
    pub fn addr_of(&self, id: u32) -> &str {
        &self.nodes[id as usize].addr
    }
}

/// Apply one `config <key> <value>` line.
fn apply_config(cfg: &mut Config, key: &str, val: &str) -> Result<(), String> {
    fn p<T: std::str::FromStr>(key: &str, val: &str) -> Result<T, String> {
        val.parse()
            .map_err(|_| format!("bad value {val:?} for {key}"))
    }
    match key {
        "group_size" => cfg.group_size = p(key, val)?,
        "initial_k" => cfg.initial_k = p(key, val)?,
        "bucket_capacity" => cfg.bucket_capacity = p(key, val)?,
        "record_len" => cfg.record_len = p(key, val)?,
        "ack_writes" => cfg.ack_writes = p(key, val)?,
        "ack_parity" => cfg.ack_parity = p(key, val)?,
        "client_timeout_us" => cfg.client_timeout_us = p(key, val)?,
        "client_retries" => cfg.client_retries = p(key, val)?,
        "retry_backoff_cap_us" => cfg.retry_backoff_cap_us = p(key, val)?,
        "delta_retransmit_us" => cfg.delta_retransmit_us = p(key, val)?,
        "delta_retry_limit" => cfg.delta_retry_limit = p(key, val)?,
        "probe_timeout_us" => cfg.probe_timeout_us = p(key, val)?,
        "coord_retransmit_us" => cfg.coord_retransmit_us = p(key, val)?,
        "coord_retries" => cfg.coord_retries = p(key, val)?,
        "replay_cache_cap" => cfg.replay_cache_cap = p(key, val)?,
        "client_window" => {
            cfg.client_window = p(key, val)?;
            if cfg.client_window == 0 {
                return Err("client_window must be ≥ 1".into());
            }
        }
        "wal_snapshot_every" => cfg.wal_snapshot_every = p(key, val)?,
        "delta_history_cap" => cfg.delta_history_cap = p(key, val)?,
        "wal_fsync" => cfg.wal_fsync = p(key, val)?,
        other => return Err(format!("unknown config key {other:?}")),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = "\
# demo cluster
config group_size 2
config initial_k 1
config ack_writes true
config ack_parity true
node 0 127.0.0.1:7000 coordinator
node 1 127.0.0.1:7001 client
node 2 127.0.0.1:7002
node 3 127.0.0.1:7003
node 4 127.0.0.1:7004
node 5 127.0.0.1:7005
";

    #[test]
    fn parse_and_layout() {
        let spec = ClusterSpec::parse(SPEC).unwrap();
        assert_eq!(spec.cfg.group_size, 2);
        assert!(spec.cfg.ack_writes && spec.cfg.ack_parity);
        assert_eq!(spec.nodes.len(), 6);
        let (b0, parity, pool) = spec.layout();
        assert_eq!(b0, NodeId(2));
        assert_eq!(parity, vec![NodeId(3)]);
        // Spares handed out highest-id first, like the simulator.
        assert_eq!(pool, vec![NodeId(5), NodeId(4)]);
    }

    #[test]
    fn render_roundtrips() {
        let spec = ClusterSpec::parse(SPEC).unwrap();
        let again = ClusterSpec::parse(&spec.render()).unwrap();
        assert_eq!(spec.nodes, again.nodes);
        assert_eq!(spec.cfg.group_size, again.cfg.group_size);
        assert_eq!(spec.cfg.replay_cache_cap, again.cfg.replay_cache_cap);
        assert_eq!(spec.cfg.client_window, again.cfg.client_window);
        assert_eq!(spec.cfg.wal_snapshot_every, again.cfg.wal_snapshot_every);
        assert_eq!(spec.cfg.delta_history_cap, again.cfg.delta_history_cap);
        assert_eq!(spec.cfg.wal_fsync, again.cfg.wal_fsync);
    }

    #[test]
    fn wal_knobs_parse() {
        let text = format!("{SPEC}config wal_snapshot_every 16\nconfig delta_history_cap 64\nconfig wal_fsync always\n");
        let spec = ClusterSpec::parse(&text).unwrap();
        assert_eq!(spec.cfg.wal_snapshot_every, 16);
        assert_eq!(spec.cfg.delta_history_cap, 64);
        assert_eq!(spec.cfg.wal_fsync, lhrs_core::FsyncPolicy::Always);
        assert!(ClusterSpec::parse(&format!("{SPEC}config wal_fsync sometimes\n")).is_err());
    }

    #[test]
    fn client_window_parses() {
        let spec = ClusterSpec::parse(&format!("{SPEC}config client_window 128\n")).unwrap();
        assert_eq!(spec.cfg.client_window, 128);
        // A zero window is rejected at spec-parse time, not at first use.
        assert!(ClusterSpec::parse(&format!("{SPEC}config client_window 0\n")).is_err());
    }

    #[test]
    fn bad_specs_rejected() {
        assert!(ClusterSpec::parse("node 1 x:1 coordinator").is_err());
        assert!(ClusterSpec::parse("flurb 0").is_err());
        assert!(ClusterSpec::parse("config group_size banana").is_err());
        // Coordinator not at id 0.
        assert!(ClusterSpec::parse("node 0 x:1 client\nnode 1 x:2 coordinator").is_err());
    }

    #[test]
    fn shared_table_matches_layout() {
        let spec = ClusterSpec::parse(SPEC).unwrap();
        let shared = spec.build_shared();
        let reg = shared.registry.borrow();
        assert_eq!(reg.coordinator, NodeId(0));
        assert_eq!(reg.data_node(0), NodeId(2));
        assert_eq!(reg.parity_nodes(0), &[NodeId(3)]);
    }
}
