//! **lhrs-net** — the real-network backend for the LH\*RS reproduction.
//!
//! The deterministic simulator (`lhrs-sim`) moves `Msg` values in memory;
//! this crate runs the *unchanged* `lhrs-core` node logic as actual
//! distributed processes over TCP. The seam is the actor abstraction:
//! nodes only ever talk to the world through buffered
//! [`Effect`](lhrs_sim::Effect)s, so a host runtime that drains the same
//! effects into sockets and wall-clock timers executes bit-for-bit the
//! same protocol code the simulator does.
//!
//! | module | role |
//! |--------|------|
//! | [`frame`] | length-prefixed frames over the `lhrs_core::wire` codec, plus allocation-table snapshots |
//! | [`transport`] | the [`Transport`](transport::Transport) trait, [`TcpTransport`](transport::TcpTransport) (lazy connect, reconnect, write buffering, reader-thread inbound), and the in-process [`LoopbackNet`](transport::LoopbackNet) |
//! | [`host`] | [`NodeHost`](host::NodeHost): sim-identical `Env` semantics (send, min-heap timers, `now()`) over a transport |
//! | [`cluster`] | the cluster spec: node ids, addresses, roles, config — shared by every process |
//! | [`client`] | [`NetClient`](client::NetClient): synchronous client ops over a hosted client node |
//! | [`demo`] | the multi-process kill-a-bucket-and-recover demo driver (used by the smoke test and `examples/net_cluster.rs`) |
//!
//! # Allocation-table sync
//!
//! The simulator shares one registry between all nodes; real processes
//! can't. The process hosting the coordinator is **authoritative**: after
//! every dispatch that changed the table it broadcasts a versioned
//! full-snapshot [`frame::RegistryUpdate`] to every peer *before* that
//! dispatch's protocol messages are written, so per-connection TCP FIFO
//! guarantees dependent messages arrive after the table state they
//! presuppose. A periodic heartbeat rebroadcast heals lost updates, a
//! `RegistryPull` frame lets a fresh client sync at startup, and receivers
//! apply only strictly newer versions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod cluster;
pub mod demo;
pub mod durable;
pub mod frame;
pub mod host;
pub mod transport;
