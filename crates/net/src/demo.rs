//! The multi-process demo: a real LH\*RS deployment on localhost TCP —
//! coordinator, data, and parity buckets as separate OS processes — that
//! grows through splits, loses a bucket process to `SIGKILL`, and recovers
//! it over the network with zero acked-data loss.
//!
//! Used by the `multi_process` integration test (driving the compiled
//! `lhrs-netd` / `lhrs-netcli` binaries) and by `examples/net_cluster.rs`.

use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use crate::cluster::{ClusterSpec, NodeSpec, Role};
use lhrs_core::Config;

/// How to launch the two binaries: argv prefixes (program + leading args),
/// so the demo works both from `CARGO_BIN_EXE_*` paths and from
/// `cargo run -p lhrs-net --bin …` wrappers.
pub struct DemoCommands {
    /// Argv prefix for the server daemon (`lhrs-netd`).
    pub netd: Vec<String>,
    /// Argv prefix for the client CLI (`lhrs-netcli`).
    pub netcli: Vec<String>,
}

/// Records in the demo's first load wave.
pub const DEMO_WAVE1: u64 = 80;
/// Records in the second wave (keys continue after the first), keeping
/// overflow reports flowing so the file splits further. Total load is
/// sized so growth stays well inside the 11-server pool with spares left
/// for recovery.
pub const DEMO_WAVE2: u64 = 40;

/// Child processes that must not outlive the demo.
struct Procs(Vec<(u32, Child)>);

impl Procs {
    fn kill_node(&mut self, id: u32) -> bool {
        for (node, child) in &mut self.0 {
            if *node == id {
                let _ = child.kill();
                let _ = child.wait();
                return true;
            }
        }
        false
    }
}

impl Drop for Procs {
    fn drop(&mut self) {
        for (_, child) in &mut self.0 {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Build the demo's 16-node spec on fresh localhost ports: node 0 the
/// coordinator, node 1 the client, nodes 2–15 servers (bucket 0, one
/// parity, twelve spares under `m = 2`, `k = 1`). Growth under the demo
/// load peaks at 7 buckets + 4 parity = 11 servers, leaving spares for
/// the recovery to rebuild onto.
fn demo_spec() -> Result<ClusterSpec, String> {
    // Reserve distinct ephemeral ports by holding all listeners at once.
    let listeners: Vec<TcpListener> = (0..16)
        .map(|_| TcpListener::bind("127.0.0.1:0").map_err(|e| format!("port alloc: {e}")))
        .collect::<Result<_, _>>()?;
    let ports: Vec<u16> = listeners
        .iter()
        .map(|l| l.local_addr().map(|a| a.port()).map_err(|e| e.to_string()))
        .collect::<Result<_, _>>()?;
    drop(listeners);

    let cfg = Config {
        group_size: 2,
        initial_k: 1,
        bucket_capacity: 24,
        record_len: 32,
        ack_writes: true,
        ack_parity: true,
        client_timeout_us: 100_000,
        client_retries: 2,
        retry_backoff_cap_us: 400_000,
        delta_retransmit_us: 100_000,
        probe_timeout_us: 100_000,
        coord_retransmit_us: 150_000,
        coord_retries: 20,
        ..Config::default()
    };
    let nodes = ports
        .iter()
        .enumerate()
        .map(|(id, port)| NodeSpec {
            id: id as u32,
            addr: format!("127.0.0.1:{port}"),
            role: match id {
                0 => Role::Coordinator,
                1 => Role::Client,
                _ => Role::Server,
            },
        })
        .collect();
    let spec = ClusterSpec { cfg, nodes };
    spec.validate()?;
    Ok(spec)
}

fn spawn_netd(cmds: &DemoCommands, config: &Path, id: u32) -> Result<Child, String> {
    let mut cmd = Command::new(&cmds.netd[0]);
    cmd.args(&cmds.netd[1..])
        .arg("--config")
        .arg(config)
        .arg("--nodes")
        .arg(id.to_string())
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    cmd.spawn().map_err(|e| format!("spawn netd {id}: {e}"))
}

fn run_cli(cmds: &DemoCommands, config: &Path, args: &[&str]) -> Result<String, String> {
    let mut cmd = Command::new(&cmds.netcli[0]);
    cmd.args(&cmds.netcli[1..])
        .arg("--config")
        .arg(config)
        .arg("--node")
        .arg("1")
        .args(args);
    let out = cmd
        .output()
        .map_err(|e| format!("run netcli {args:?}: {e}"))?;
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    if !out.status.success() {
        let stderr = String::from_utf8_lossy(&out.stderr);
        return Err(format!(
            "netcli {args:?} failed ({}): {stdout} {stderr}",
            out.status
        ));
    }
    Ok(stdout)
}

/// Wait until every address accepts a TCP connection.
fn await_ready(spec: &ClusterSpec, server_ids: &[u32], timeout: Duration) -> Result<(), String> {
    let deadline = Instant::now() + timeout;
    for &id in server_ids {
        let addr = spec.addr_of(id);
        loop {
            match addr
                .parse()
                .ok()
                .and_then(|a| TcpStream::connect_timeout(&a, Duration::from_millis(200)).ok())
            {
                Some(_) => break,
                None if Instant::now() >= deadline => {
                    return Err(format!("node {id} at {addr} never came up"));
                }
                None => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }
    Ok(())
}

/// Parse `buckets=N groups=G …` from `netcli status` output.
fn parse_status(out: &str) -> Result<(usize, usize), String> {
    let field = |key: &str| {
        out.split_whitespace()
            .find_map(|tok| tok.strip_prefix(key)?.parse::<usize>().ok())
            .ok_or_else(|| format!("no {key}N in status output {out:?}"))
    };
    Ok((field("buckets=")?, field("groups=")?))
}

/// Run the full demo. Steps (each fatal on failure; errors carry the
/// transcript so far):
///
/// 1. spawn one `lhrs-netd` process per server node (coordinator + 11
///    servers) on fresh localhost ports;
/// 2. `netcli load` two waves of inserts through multiple splits, every
///    write acked, the second wave sustaining overflow reports so the
///    file keeps splitting;
/// 3. `netcli verify`: every record readable, file grew to ≥ 2 parity
///    groups;
/// 4. `SIGKILL` the process carrying data bucket 0;
/// 5. `netcli verify` again: lookups stall, the client escalates, the
///    coordinator probes and rebuilds the lost bucket onto a spare over
///    TCP, and every acked record is still readable — zero data loss.
///
/// Returns a human-readable transcript of what happened.
pub fn run(cmds: &DemoCommands, workdir: &Path) -> Result<String, String> {
    let mut log = String::new();
    let mut say = |line: String| {
        log.push_str(&line);
        log.push('\n');
    };
    // Attach the transcript so far to any failure.
    macro_rules! fail {
        ($($arg:tt)*) => {
            return Err(format!("{}\ntranscript so far:\n{log}", format!($($arg)*)))
        };
    }

    let spec = demo_spec()?;
    let config = workdir.join("cluster.conf");
    {
        let mut f = std::fs::File::create(&config).map_err(|e| format!("write {config:?}: {e}"))?;
        f.write_all(spec.render().as_bytes())
            .map_err(|e| e.to_string())?;
    }

    let server_ids: Vec<u32> = std::iter::once(0).chain(spec.server_ids()).collect();
    let mut procs = Procs(Vec::new());
    for &id in &server_ids {
        procs.0.push((id, spawn_netd(cmds, &config, id)?));
    }
    say(format!(
        "spawned {} server processes (coordinator + bucket 0 + parity + spares)",
        procs.0.len()
    ));
    await_ready(&spec, &server_ids, Duration::from_secs(30))?;
    say("all listeners up".into());

    let total = DEMO_WAVE1 + DEMO_WAVE2;
    let (w1, w2, n) = (
        DEMO_WAVE1.to_string(),
        DEMO_WAVE2.to_string(),
        total.to_string(),
    );
    if let Err(e) = run_cli(cmds, &config, &["load", &w1]) {
        fail!("first load wave: {e}");
    }
    say(format!("loaded {DEMO_WAVE1} records (all writes acked)"));
    if let Err(e) = run_cli(cmds, &config, &["load", &w2, &(DEMO_WAVE1 + 1).to_string()]) {
        fail!("second load wave: {e}");
    }
    say(format!("loaded {DEMO_WAVE2} more records"));

    if let Err(e) = run_cli(cmds, &config, &["verify", &n]) {
        fail!("verify after load: {e}");
    }
    let status = match run_cli(cmds, &config, &["status"]) {
        Ok(s) => s,
        Err(e) => fail!("status after load: {e}"),
    };
    let (buckets, groups) = parse_status(&status)?;
    say(format!(
        "verified {total} records; file is {buckets} buckets / {groups} groups"
    ));
    if buckets < 3 || groups < 2 {
        fail!("file did not grow as expected: {buckets} buckets, {groups} groups");
    }

    if !procs.kill_node(2) {
        fail!("no process for node 2");
    }
    say("killed the process carrying data bucket 0".into());

    if let Err(e) = run_cli(cmds, &config, &["verify", &n]) {
        fail!("verify through recovery: {e}");
    }
    let status = match run_cli(cmds, &config, &["status"]) {
        Ok(s) => s,
        Err(e) => fail!("status after recovery: {e}"),
    };
    let (buckets2, groups2) = parse_status(&status)?;
    say(format!(
        "verified {total} records through recovery; file is {buckets2} buckets / {groups2} groups — zero acked-data loss"
    ));
    if buckets2 != buckets {
        fail!("bucket count changed across recovery: {buckets} -> {buckets2}");
    }
    Ok(log)
}
