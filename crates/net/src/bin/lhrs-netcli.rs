//! `lhrs-netcli` — run client operations against a live LH\*RS cluster.
//!
//! ```text
//! lhrs-netcli --config cluster.conf --node 1 insert 42 hello
//! lhrs-netcli --config cluster.conf --node 1 lookup 42
//! lhrs-netcli --config cluster.conf --node 1 delete 42
//! lhrs-netcli --config cluster.conf --node 1 load 100      # keys 1..=100
//! lhrs-netcli --config cluster.conf --node 1 load 100 200  # keys 200..=299
//! lhrs-netcli --config cluster.conf --node 1 verify 100    # re-read them
//! lhrs-netcli --config cluster.conf --node 1 status
//! lhrs-netcli --config cluster.conf --node 1 stats 0       # STATS from node 0
//! ```
//!
//! The process hosts the spec's client node (binding its listener so
//! allocation-table broadcasts reach it), pulls the table from the
//! coordinator, runs the subcommand, and exits — nonzero on any failure.
//! Operation ids are derived from the wall clock so repeated invocations
//! against the same cluster never collide in the servers' replay caches.

use std::collections::HashMap;
use std::process::exit;
use std::sync::mpsc;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use lhrs_core::api::OpOutcome;
use lhrs_core::msg::ClientOp;
use lhrs_net::client::NetClient;
use lhrs_net::cluster::{ClusterSpec, Role};
use lhrs_net::frame::{read_frame, write_frame, FrameType};
use lhrs_net::host::NodeHost;
use lhrs_net::transport::TcpTransport;
use lhrs_sim::NodeId;

/// Generous per-operation deadline: the first operation after a bucket
/// failure rides through suspect-escalation, probing, and a full shard
/// recovery before its retry succeeds.
const OP_TIMEOUT: Duration = Duration::from_secs(30);

/// Deadline for the raw `stats` TCP connect: an unreachable node must fail
/// the command quickly, not leave it blocked in the kernel's connect queue.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

fn usage() -> ! {
    eprintln!(
        "usage: lhrs-netcli --config <cluster.conf> --node <id> [--window <n>] \
         (insert <key> <value> | lookup <key> | delete <key> | \
         load <n> [start] | verify <n> [start] | status | stats [node])"
    );
    exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("lhrs-netcli: {msg}");
    exit(1);
}

/// The demo's deterministic payload for `key` (load writes it, verify
/// checks it).
fn payload_for(key: u64) -> Vec<u8> {
    format!("v{key:08}").into_bytes()
}

fn main() {
    let mut config: Option<String> = None;
    let mut node: Option<u32> = None;
    let mut window: Option<usize> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--config" => config = args.next(),
            "--node" => node = args.next().and_then(|s| s.parse().ok()),
            "--window" => window = args.next().and_then(|s| s.parse().ok()),
            _ => {
                rest.push(arg);
                rest.extend(args.by_ref());
            }
        }
    }
    let Some(config) = config else { usage() };
    let Some(node) = node else { usage() };
    if rest.is_empty() {
        usage();
    }

    let text = std::fs::read_to_string(&config)
        .unwrap_or_else(|e| fail(&format!("cannot read {config}: {e}")));
    let spec =
        ClusterSpec::parse(&text).unwrap_or_else(|e| fail(&format!("bad cluster spec: {e}")));
    match spec.nodes.get(node as usize) {
        Some(n) if n.role == Role::Client => {}
        Some(_) => fail(&format!("node {node} is not a client in the spec")),
        None => fail(&format!("node {node} not in the spec")),
    }

    // `stats` is a raw request/response frame exchange — no hosted client
    // node, no registry sync, works even while the cluster is mid-recovery.
    if rest[0] == "stats" {
        let target: u32 = match rest.get(1) {
            Some(s) => s.parse().unwrap_or_else(|_| usage()),
            None => 0,
        };
        if target as usize >= spec.nodes.len() {
            fail(&format!("node {target} not in the spec"));
        }
        let addr = spec.addr_of(target);
        // A bounded connect: `TcpStream::connect` alone can block for the
        // kernel's SYN-retry budget (minutes) when the node is unreachable.
        let resolved: Vec<std::net::SocketAddr> = std::net::ToSocketAddrs::to_socket_addrs(addr)
            .unwrap_or_else(|e| fail(&format!("cannot resolve {addr}: {e}")))
            .collect();
        let mut stream = resolved
            .iter()
            .find_map(|sa| std::net::TcpStream::connect_timeout(sa, CONNECT_TIMEOUT).ok())
            .unwrap_or_else(|| {
                fail(&format!(
                    "cannot connect to {addr} within {}s (node down?)",
                    CONNECT_TIMEOUT.as_secs()
                ))
            });
        let _ = stream.set_read_timeout(Some(OP_TIMEOUT));
        let _ = stream.set_write_timeout(Some(OP_TIMEOUT));
        write_frame(
            &mut stream,
            FrameType::StatsPull,
            NodeId(node),
            NodeId(target),
            &[],
        )
        .and_then(|()| std::io::Write::flush(&mut stream))
        .unwrap_or_else(|e| fail(&format!("cannot send StatsPull: {e}")));
        // Overall deadline on the reply wait: the per-read timeout alone
        // would never fire against a peer that keeps streaming other
        // frames (registry heartbeats, replies to older request ids) —
        // each read succeeds, the loop spins, and the command wedges.
        let reply_deadline = std::time::Instant::now() + OP_TIMEOUT;
        loop {
            if std::time::Instant::now() >= reply_deadline {
                fail("no StatsReply within the deadline (stale frames skipped)");
            }
            match read_frame(&mut stream) {
                Ok(Some(f)) if f.ftype == FrameType::StatsReply => {
                    print!("{}", String::from_utf8_lossy(&f.payload));
                    return;
                }
                // A registry broadcast (or a reply meant for an older
                // request id on a reused connection) may race ahead of the
                // reply; drop it and keep waiting, bounded by the deadline.
                Ok(Some(_)) => continue,
                Ok(None) => fail("peer closed before replying to StatsPull"),
                Err(e) => fail(&format!("bad frame while waiting for stats: {e}")),
            }
        }
    }

    let local = vec![(node, spec.addr_of(node).to_string())];
    let peers: HashMap<u32, String> = spec.addr_map().into_iter().collect();
    let (tx, rx) = mpsc::channel();
    let transport = TcpTransport::start(&local, peers, tx.clone())
        .unwrap_or_else(|e| fail(&format!("cannot bind {}: {e}", spec.addr_of(node))));

    let shared = spec.build_shared();
    let mut host = NodeHost::new(shared.clone(), transport, tx, rx);
    host.add_node(node, spec.build_node(&shared, node));

    // Wall-clock-derived op-id base: distinct across invocations sharing
    // the client node id, so replay caches never confuse two runs.
    let base = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(1)
        .max(1);
    let mut client = NetClient::new(host, node, base);
    // `--window` overrides the spec's client_window for this invocation:
    // load/verify pipeline that many ops in flight.
    if let Some(w) = window {
        client.set_window(w);
    }

    if !client.sync_registry(0, Duration::from_secs(20)) {
        fail("no allocation table from the coordinator (is node 0 up?)");
    }

    let arg_n = |i: usize| -> u64 {
        rest.get(i)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| usage())
    };
    match rest[0].as_str() {
        "insert" => {
            let key = arg_n(1);
            let value = rest
                .get(2)
                .map(|s| s.as_bytes().to_vec())
                .unwrap_or_default();
            match client.insert(key, value, OP_TIMEOUT) {
                Some(true) => println!("inserted {key}"),
                Some(false) => fail(&format!("duplicate key {key}")),
                None => fail(&format!("insert {key} did not complete")),
            }
        }
        "lookup" => {
            let key = arg_n(1);
            match client.lookup(key, OP_TIMEOUT) {
                Some(Some(v)) => println!("found {key} = {}", String::from_utf8_lossy(&v)),
                Some(None) => fail(&format!("key {key} not found")),
                None => fail(&format!("lookup {key} did not complete")),
            }
        }
        "delete" => {
            let key = arg_n(1);
            match client.delete(key, OP_TIMEOUT) {
                Some(true) => println!("deleted {key}"),
                Some(false) => fail(&format!("key {key} not found")),
                None => fail(&format!("delete {key} did not complete")),
            }
        }
        "load" => {
            // Pipelined bulk load: the whole batch rides through the
            // client's in-flight window instead of one RTT per key.
            let n = arg_n(1);
            let start = if rest.len() > 2 { arg_n(2) } else { 1 };
            let keys: Vec<u64> = (start..start + n).collect();
            let ops: Vec<ClientOp> = keys
                .iter()
                .map(|&key| ClientOp::Insert {
                    key,
                    payload: payload_for(key),
                })
                .collect();
            let window = client.window();
            for (&key, (outcome, _)) in keys.iter().zip(client.run_window(ops, window)) {
                match outcome {
                    OpOutcome::Done => {}
                    OpOutcome::DuplicateKey => fail(&format!("duplicate key {key} during load")),
                    other => fail(&format!("insert {key} failed: {other:?}")),
                }
            }
            println!("loaded {n} records (window {window})");
        }
        "verify" => {
            let n = arg_n(1);
            let start = if rest.len() > 2 { arg_n(2) } else { 1 };
            let keys: Vec<u64> = (start..start + n).collect();
            let ops: Vec<ClientOp> = keys.iter().map(|&key| ClientOp::Lookup { key }).collect();
            let window = client.window();
            for (&key, (outcome, _)) in keys.iter().zip(client.run_window(ops, window)) {
                match outcome {
                    OpOutcome::Value(Some(v)) if v == payload_for(key) => {}
                    OpOutcome::Value(Some(_)) => fail(&format!("key {key} has a corrupt payload")),
                    OpOutcome::Value(None) => fail(&format!("key {key} lost")),
                    other => fail(&format!("lookup {key} failed: {other:?}")),
                }
            }
            println!("verified {n} records (window {window})");
        }
        "status" => {
            let version = client
                .host()
                .registry_version()
                .map(|v| v.to_string())
                .unwrap_or_else(|| "-".into());
            let placement: Vec<String> = client
                .host()
                .shared()
                .registry
                .borrow()
                .all_data_nodes()
                .iter()
                .map(|n| n.0.to_string())
                .collect();
            println!(
                "buckets={} groups={} table_version={version} data_nodes={}",
                client.bucket_count(),
                client.group_count(),
                placement.join(","),
            );
        }
        other => fail(&format!("unknown subcommand {other:?}")),
    }
}
