//! `lhrs-netd` — host one or more LH\*RS nodes of a cluster as a real
//! network server.
//!
//! ```text
//! lhrs-netd --config cluster.conf --nodes 0          # the coordinator
//! lhrs-netd --config cluster.conf --nodes 2          # one bucket
//! lhrs-netd --config cluster.conf --nodes 4,5,6      # several nodes
//! lhrs-netd --config cluster.conf --nodes 0 --trace-dump coord.jsonl
//! ```
//!
//! The process binds one TCP listener per hosted node, builds the node
//! actors from the shared cluster spec, and runs the host loop until
//! killed.
//!
//! Every `lhrs-netd` process records wall-clock metrics and a structured
//! trace ring. The live counters are served over the wire: send the
//! process a `StatsPull` frame (`lhrs-netcli ... stats <node>`) and it
//! answers with a Prometheus text snapshot on the same connection. With
//! `--trace-dump <path>` the trace ring is additionally flushed to `path`
//! as JSONL twice a second (write-to-temp + rename), so the last pre-kill
//! timeline survives even a SIGKILL during a failure drill.

use std::collections::HashMap;
use std::process::exit;
use std::sync::mpsc;
use std::time::Duration;

use lhrs_net::cluster::ClusterSpec;
use lhrs_net::host::NodeHost;
use lhrs_net::transport::TcpTransport;
use lhrs_obs::{Clock, Metrics};

fn usage() -> ! {
    eprintln!(
        "usage: lhrs-netd --config <cluster.conf> --nodes <id[,id...]> \
         [--trace-dump <path>] [--verbose]"
    );
    exit(2);
}

/// Periodically flush the trace ring to `path` as JSONL. Writes go to a
/// sibling temp file first and are renamed into place, so a reader (or a
/// kill) never sees a half-written dump.
fn spawn_trace_dumper(metrics: Metrics, path: String) {
    std::thread::spawn(move || {
        let tmp = format!("{path}.tmp");
        loop {
            std::thread::sleep(Duration::from_millis(500));
            let jsonl = metrics.trace_jsonl();
            if std::fs::write(&tmp, jsonl.as_bytes()).is_ok() {
                let _ = std::fs::rename(&tmp, &path);
            }
        }
    });
}

fn main() {
    let mut config: Option<String> = None;
    let mut nodes: Vec<u32> = Vec::new();
    let mut trace_dump: Option<String> = None;
    let mut verbose = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--config" => config = args.next(),
            "--trace-dump" => trace_dump = args.next(),
            "--verbose" => verbose = true,
            "--nodes" => {
                let list = args.next().unwrap_or_else(|| usage());
                for part in list.split(',') {
                    match part.trim().parse() {
                        Ok(id) => nodes.push(id),
                        Err(_) => usage(),
                    }
                }
            }
            _ => usage(),
        }
    }
    let Some(config) = config else { usage() };
    if nodes.is_empty() {
        usage();
    }

    let text = match std::fs::read_to_string(&config) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("lhrs-netd: cannot read {config}: {e}");
            exit(1);
        }
    };
    let spec = match ClusterSpec::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("lhrs-netd: bad cluster spec: {e}");
            exit(1);
        }
    };
    for &id in &nodes {
        if id as usize >= spec.nodes.len() {
            eprintln!("lhrs-netd: node {id} not in the spec");
            exit(1);
        }
    }

    let metrics = Metrics::new(Clock::wall());
    if let Some(path) = trace_dump {
        spawn_trace_dumper(metrics.clone(), path);
    }

    let local: Vec<(u32, String)> = nodes
        .iter()
        .map(|&id| (id, spec.addr_of(id).to_string()))
        .collect();
    let peers: HashMap<u32, String> = spec.addr_map().into_iter().collect();
    let (tx, rx) = mpsc::channel();
    let transport =
        match TcpTransport::start_with_metrics(&local, peers, tx.clone(), metrics.clone()) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("lhrs-netd: cannot bind: {e}");
                exit(1);
            }
        };

    let shared = spec.build_shared();
    let mut host = NodeHost::new(shared.clone(), transport, tx, rx);
    host.set_metrics(metrics);
    for &id in &nodes {
        host.add_node(id, spec.build_node(&shared, id));
    }
    eprintln!(
        "lhrs-netd: hosting nodes {nodes:?} ({})",
        local
            .iter()
            .map(|(_, a)| a.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );
    if verbose && nodes.contains(&0) {
        // Coordinator host: narrate structural events as they happen.
        let mut seen = 0usize;
        loop {
            host.poll(std::time::Duration::from_millis(50));
            let events = &host.node(0).as_coordinator().events;
            for (t, ev) in &events[seen..] {
                eprintln!("lhrs-netd: [{t}us] {ev:?}");
            }
            seen = events.len();
        }
    }
    host.run();
}
