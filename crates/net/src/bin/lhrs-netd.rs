//! `lhrs-netd` — host one or more LH\*RS nodes of a cluster as a real
//! network server.
//!
//! ```text
//! lhrs-netd --config cluster.conf --nodes 0          # the coordinator
//! lhrs-netd --config cluster.conf --nodes 2          # one bucket
//! lhrs-netd --config cluster.conf --nodes 4,5,6      # several nodes
//! lhrs-netd --config cluster.conf --nodes 0 --trace-dump coord.jsonl
//! lhrs-netd --config cluster.conf --nodes 2 --data-dir /var/lhrs
//! ```
//!
//! The process binds one TCP listener per hosted node, builds the node
//! actors from the shared cluster spec, and runs the host loop until
//! killed.
//!
//! With `--data-dir <root>` every hosted bucket is durable: commits land in
//! a per-shard write-ahead log under `<root>/node-<id>/` (fsync cadence set
//! by the spec's `wal_fsync` knob). On boot, a node whose shard directory
//! holds a usable snapshot is rebuilt from it — snapshot decode plus log
//! replay — and announces itself to the coordinator, which tops it up with
//! the Δ-suffix it missed while down instead of a full Reed–Solomon
//! rebuild. An unreadable store just boots blank and the classic recovery
//! path takes over.
//!
//! Every `lhrs-netd` process records wall-clock metrics and a structured
//! trace ring. The live counters are served over the wire: send the
//! process a `StatsPull` frame (`lhrs-netcli ... stats <node>`) and it
//! answers with a Prometheus text snapshot on the same connection. With
//! `--trace-dump <path>` the trace ring is additionally flushed to `path`
//! as JSONL twice a second (write-to-temp + fsync + rename), so the last
//! pre-kill timeline survives even a SIGKILL during a failure drill; a
//! final dump is written on clean shutdown.

use std::collections::HashMap;
use std::io::Write;
use std::path::PathBuf;
use std::process::exit;
use std::sync::mpsc;
use std::time::Duration;

use lhrs_core::msg::Msg;
use lhrs_net::cluster::ClusterSpec;
use lhrs_net::durable::{blank_node, durable_boot, wal_factory, DurableBoot};
use lhrs_net::host::NodeHost;
use lhrs_net::transport::TcpTransport;
use lhrs_obs::{Clock, Metrics};
use lhrs_sim::NodeId;

fn usage() -> ! {
    eprintln!(
        "usage: lhrs-netd --config <cluster.conf> --nodes <id[,id...]> \
         [--data-dir <root>] [--trace-dump <path>] [--verbose]"
    );
    exit(2);
}

/// One atomic, durable trace dump: write a sibling temp file, fsync it,
/// rename into place. A reader (or a kill at any instant) sees either the
/// previous complete dump or this one — never a torn file, and never an
/// empty rename target whose bytes were still in the page cache.
fn dump_trace(metrics: &Metrics, path: &str) {
    let tmp = format!("{path}.tmp");
    let written = std::fs::File::create(&tmp).and_then(|mut f| {
        f.write_all(metrics.trace_jsonl().as_bytes())?;
        f.sync_all()
    });
    if written.is_ok() {
        let _ = std::fs::rename(&tmp, path);
    }
}

/// Periodically flush the trace ring to `path` as JSONL.
fn spawn_trace_dumper(metrics: Metrics, path: String) {
    std::thread::spawn(move || loop {
        std::thread::sleep(Duration::from_millis(500));
        dump_trace(&metrics, &path);
    });
}

fn main() {
    let mut config: Option<String> = None;
    let mut nodes: Vec<u32> = Vec::new();
    let mut trace_dump: Option<String> = None;
    let mut data_dir: Option<String> = None;
    let mut verbose = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--config" => config = args.next(),
            "--trace-dump" => trace_dump = args.next(),
            "--data-dir" => data_dir = args.next(),
            "--verbose" => verbose = true,
            "--nodes" => {
                let list = args.next().unwrap_or_else(|| usage());
                for part in list.split(',') {
                    match part.trim().parse() {
                        Ok(id) => nodes.push(id),
                        Err(_) => usage(),
                    }
                }
            }
            _ => usage(),
        }
    }
    let Some(config) = config else { usage() };
    if nodes.is_empty() {
        usage();
    }

    let text = match std::fs::read_to_string(&config) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("lhrs-netd: cannot read {config}: {e}");
            exit(1);
        }
    };
    let spec = match ClusterSpec::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("lhrs-netd: bad cluster spec: {e}");
            exit(1);
        }
    };
    for &id in &nodes {
        if id as usize >= spec.nodes.len() {
            eprintln!("lhrs-netd: node {id} not in the spec");
            exit(1);
        }
    }

    let metrics = Metrics::new(Clock::wall());
    if let Some(path) = &trace_dump {
        spawn_trace_dumper(metrics.clone(), path.clone());
    }

    let local: Vec<(u32, String)> = nodes
        .iter()
        .map(|&id| (id, spec.addr_of(id).to_string()))
        .collect();
    let peers: HashMap<u32, String> = spec.addr_map().into_iter().collect();
    let (tx, rx) = mpsc::channel();
    let transport =
        match TcpTransport::start_with_metrics(&local, peers, tx.clone(), metrics.clone()) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("lhrs-netd: cannot bind: {e}");
                exit(1);
            }
        };

    let shared = spec.build_shared();
    let data_root = data_dir.map(PathBuf::from);
    if let Some(root) = &data_root {
        shared.set_store_factory(wal_factory(root.clone(), spec.cfg.wal_fsync));
    }

    let mut host = NodeHost::new(shared.clone(), transport, tx, rx);
    host.set_metrics(metrics.clone());
    let mut recovered: Vec<u32> = Vec::new();
    for &id in &nodes {
        let node = match &data_root {
            Some(root) => match durable_boot(&shared, root, id, spec.cfg.wal_fsync, &metrics) {
                DurableBoot::Recovered(node) => {
                    eprintln!("lhrs-netd: node {id}: resurrected from its WAL");
                    recovered.push(id);
                    node
                }
                DurableBoot::Blank => {
                    eprintln!(
                        "lhrs-netd: node {id}: durable root holds no usable store; \
                         booting blank (coordinator-driven rebuild)"
                    );
                    blank_node(&shared)
                }
                DurableBoot::Fresh => {
                    let mut node = spec.build_node(&shared, id);
                    node.attach_fresh_store(NodeId(id));
                    node
                }
            },
            None => spec.build_node(&shared, id),
        };
        host.add_node(id, node);
    }
    // A resurrected bucket reports in immediately: the boot `SelfReport`
    // carries its replayed Δ-position and the coordinator answers with the
    // missed suffix (or demotes it if the suffix is uncoverable).
    for &id in &recovered {
        host.inject(id, Msg::SelfReport);
    }
    eprintln!(
        "lhrs-netd: hosting nodes {nodes:?} ({})",
        local
            .iter()
            .map(|(_, a)| a.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );
    if verbose && nodes.contains(&0) {
        // Coordinator host: narrate structural events as they happen.
        let mut seen = 0usize;
        while !host.is_shutdown() {
            host.poll(std::time::Duration::from_millis(50));
            let Some(node) = host.node(0) else { continue };
            let events = &node.as_coordinator().events;
            for (t, ev) in events.iter().skip(seen) {
                eprintln!("lhrs-netd: [{t}us] {ev:?}");
            }
            seen = events.len();
        }
    } else {
        host.run();
    }
    // Clean shutdown: one final durable dump so the trace file reflects the
    // whole run, not just the last 500 ms tick.
    if let Some(path) = &trace_dump {
        dump_trace(host.metrics(), path);
    }
}
