//! End-to-end cluster test over the in-process loopback transport: every
//! "process" is a thread with its own shared registry, its own node host,
//! and a [`LoopbackTransport`] whose messages round-trip through the real
//! wire codec. Exercises growth through splits, a bucket-host kill, and
//! coordinator-driven recovery — the same protocol path the TCP demo
//! takes, without the kernel in the way.
//!
//! Every host shares one wall-clock [`Metrics`] registry, so the drill
//! asserts the recovery through the same observability API the simulator
//! drills use, and leaves `bench_out/recovery_report.json` +
//! `bench_out/loopback_stats.prom` behind as machine-readable artifacts
//! (CI scrapes and uploads them).

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::mpsc::{self, Sender};
use std::thread::JoinHandle;
use std::time::Duration;

use lhrs_core::Config;
use lhrs_net::client::NetClient;
use lhrs_net::cluster::{ClusterSpec, NodeSpec, Role};
use lhrs_net::host::NodeHost;
use lhrs_net::transport::{HostEvent, LoopbackNet, LoopbackTransport};
use lhrs_obs::{parse_prometheus, Clock, Metrics, RecoveryReport};

const RECORDS: u64 = 80;
const OP_TIMEOUT: Duration = Duration::from_secs(20);

fn test_spec() -> ClusterSpec {
    let cfg = Config {
        group_size: 2,
        initial_k: 1,
        bucket_capacity: 24,
        record_len: 32,
        ack_writes: true,
        ack_parity: true,
        client_timeout_us: 50_000,
        client_retries: 2,
        retry_backoff_cap_us: 200_000,
        delta_retransmit_us: 50_000,
        probe_timeout_us: 50_000,
        coord_retransmit_us: 80_000,
        coord_retries: 20,
        ..Config::default()
    };
    // 13 nodes: coordinator, client, bucket 0, one parity, nine spares.
    let nodes = (0..13u32)
        .map(|id| NodeSpec {
            id,
            addr: format!("loopback:{id}"),
            role: match id {
                0 => Role::Coordinator,
                1 => Role::Client,
                _ => Role::Server,
            },
        })
        .collect();
    let spec = ClusterSpec { cfg, nodes };
    spec.validate().expect("test spec valid");
    spec
}

/// A server "process": one thread hosting one node over the loopback.
struct ServerHost {
    id: u32,
    tx: Sender<HostEvent>,
    thread: JoinHandle<()>,
}

fn spawn_server(spec: &ClusterSpec, net: &LoopbackNet, id: u32, metrics: &Metrics) -> ServerHost {
    let (tx, rx) = mpsc::channel();
    net.register(&[id], tx.clone());
    let spec = spec.clone();
    let net = net.clone();
    let thread_tx = tx.clone();
    let metrics = metrics.clone();
    let thread = std::thread::spawn(move || {
        // Each process builds its own (non-`Send`) shared state in-thread.
        let shared = spec.build_shared();
        let transport = LoopbackTransport::new(net, &[id]);
        let mut host = NodeHost::new(shared.clone(), transport, thread_tx, rx);
        host.set_metrics(metrics);
        host.add_node(id, spec.build_node(&shared, id));
        host.run();
    });
    ServerHost { id, tx, thread }
}

fn payload_for(key: u64) -> Vec<u8> {
    format!("loop-{key:06}").into_bytes()
}

#[test]
fn cluster_grows_and_recovers_over_loopback() {
    let spec = test_spec();
    let net = LoopbackNet::new();
    // One registry shared by every "process": the aggregate cluster view
    // an operator would assemble by scraping each node's STATS endpoint.
    let metrics = Metrics::new(Clock::wall());

    let mut servers: Vec<ServerHost> = std::iter::once(0)
        .chain(spec.server_ids())
        .map(|id| spawn_server(&spec, &net, id, &metrics))
        .collect();

    // The client runs on the test thread.
    let (tx, rx) = mpsc::channel();
    net.register(&[1], tx.clone());
    let shared = spec.build_shared();
    let transport = LoopbackTransport::new(net.clone(), &[1]);
    let mut host = NodeHost::new(shared.clone(), transport, tx, rx);
    host.set_metrics(metrics.clone());
    host.add_node(1, spec.build_node(&shared, 1));
    let mut client = NetClient::new(host, 1, 1);

    assert!(
        client.sync_registry(0, Duration::from_secs(10)),
        "client never received the allocation table"
    );

    // Load through several splits; every write is acked.
    for key in 1..=RECORDS {
        assert_eq!(
            client.insert(key, payload_for(key), OP_TIMEOUT),
            Some(true),
            "insert {key} failed"
        );
    }
    for key in 1..=RECORDS {
        assert_eq!(
            client.lookup(key, OP_TIMEOUT),
            Some(Some(payload_for(key))),
            "lookup {key} after load"
        );
    }
    // Splits (and the table broadcasts announcing them) can still be in
    // flight when the last acked insert returns; poll until the growth
    // shows up in the client's table.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while (client.bucket_count() < 4 || client.group_count() < 2)
        && std::time::Instant::now() < deadline
    {
        client.host_mut().poll(Duration::from_millis(50));
    }
    let buckets = client.bucket_count();
    let groups = client.group_count();
    assert!(buckets >= 4, "file should have split: {buckets} buckets");
    assert!(groups >= 2, "file should span groups: {groups}");

    // Kill the host carrying bucket 0: drop its routes (sends to it now
    // vanish) and stop its thread.
    let victim = servers
        .iter()
        .position(|s| s.id == 2)
        .expect("node 2 hosted");
    net.unregister(&[2]);
    let _ = servers[victim].tx.send(HostEvent::Shutdown);
    servers.remove(victim).thread.join().expect("victim joins");

    // Every acked record must still be readable: lookups aimed at the dead
    // bucket stall, the client escalates, the coordinator probes and
    // rebuilds bucket 0 from the surviving group members onto a spare.
    for key in 1..=RECORDS {
        assert_eq!(
            client.lookup(key, OP_TIMEOUT),
            Some(Some(payload_for(key))),
            "lookup {key} through recovery"
        );
    }
    assert_eq!(
        client.bucket_count(),
        buckets,
        "recovery must not change the bucket count"
    );

    // Writes still work after recovery.
    assert_eq!(
        client.insert(RECORDS + 1, payload_for(RECORDS + 1), OP_TIMEOUT),
        Some(true)
    );
    assert_eq!(
        client.lookup(RECORDS + 1, OP_TIMEOUT),
        Some(Some(payload_for(RECORDS + 1)))
    );

    // The dead host's address is really gone from the table.
    let reg_nodes: HashMap<u32, ()> = client
        .host()
        .shared()
        .registry
        .borrow()
        .all_data_nodes()
        .iter()
        .map(|n| (n.0, ()))
        .collect();
    assert!(
        !reg_nodes.contains_key(&2),
        "bucket 0 should have moved off the killed node"
    );

    // The recovery is fully visible through the Metrics API: exactly
    // k = 1 node was killed, so exactly one shard was rebuilt.
    let snap = metrics.snapshot();
    assert_eq!(
        snap.counter("recovery_shards_rebuilt", ""),
        1,
        "killing one node of a k = 1 group rebuilds exactly one shard"
    );
    assert!(snap.counter("recoveries_completed", "") >= 1);
    assert_eq!(snap.counter("recoveries_failed", ""), 0);
    assert!(snap.counter("recovery_bytes_moved", "") > 0);
    assert!(snap.counter("splits_completed", "") >= 1, "the file grew");

    // The Prometheus rendering must round-trip and carry a rich counter
    // set (the netd STATS acceptance bar: ≥ 10 distinct series).
    let prom = metrics.render_prometheus();
    let parsed = parse_prometheus(&prom);
    let distinct: std::collections::HashSet<&str> = parsed
        .iter()
        .map(|(series, _)| series.split('{').next().unwrap_or(series))
        .collect();
    assert!(
        distinct.len() >= 10,
        "expected ≥ 10 distinct counter series, got {}: {:?}",
        distinct.len(),
        distinct
    );
    assert!(parsed
        .iter()
        .any(|(s, v)| s == "lhrs_recovery_shards_rebuilt_total" && *v == 1));

    // Leave the machine-readable artifacts behind for CI to scrape.
    let out_dir = std::env::var_os("LHRS_BENCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../bench_out"));
    std::fs::create_dir_all(&out_dir).expect("create bench_out");
    let report = RecoveryReport::from_metrics("loopback_cluster", &metrics);
    assert_eq!(report.shards_rebuilt, 1);
    assert_eq!(report.clock, "wall-us");
    assert!(report.duration_us > 0, "wall-clock recovery takes time");
    std::fs::write(out_dir.join("recovery_report.json"), report.to_json())
        .expect("write recovery_report.json");
    std::fs::write(out_dir.join("loopback_stats.prom"), &prom).expect("write loopback_stats.prom");

    for s in &servers {
        let _ = s.tx.send(HostEvent::Shutdown);
    }
    for s in servers {
        s.thread.join().expect("server joins");
    }
}
