//! The real thing: separate OS processes over localhost TCP. Spawns the
//! compiled `lhrs-netd` binary for the coordinator and every server node,
//! drives the cluster with `lhrs-netcli`, kills the bucket-0 process with
//! SIGKILL, and checks zero acked-data loss through recovery.

use lhrs_net::demo::{self, DemoCommands};

#[test]
fn multi_process_cluster_survives_a_bucket_kill() {
    let cmds = DemoCommands {
        netd: vec![env!("CARGO_BIN_EXE_lhrs-netd").to_string()],
        netcli: vec![env!("CARGO_BIN_EXE_lhrs-netcli").to_string()],
    };
    let workdir = std::env::temp_dir().join(format!("lhrs-net-test-{}", std::process::id()));
    std::fs::create_dir_all(&workdir).expect("create workdir");
    let result = demo::run(&cmds, &workdir);
    let _ = std::fs::remove_dir_all(&workdir);
    let transcript = result.expect("demo failed");
    println!("{transcript}");
    assert!(transcript.contains("zero acked-data loss"));
}
