//! `recover_node` must resurrect the *current* tenancy when a node's
//! durable root holds several data-shard stores with state — a host
//! killed before a `Retire` could wipe a previous tenancy's directory
//! leaves the old store behind, and `read_dir` order is unspecified.
//! Candidates are ranked newest-snapshot-first; an unusable newest store
//! falls through to the next-newest instead of forcing a blank boot.

use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime};

use lhrs_core::data_bucket::DataBucket;
use lhrs_core::node::Node;
use lhrs_core::registry::{Shared, SharedHandle};
use lhrs_core::{Config, FsyncPolicy};
use lhrs_net::durable::{node_root, recover_node, wal_factory};
use lhrs_obs::{Clock, Metrics};
use lhrs_sim::NodeId;

const NODE: u32 = 7;

fn build_shared(root: &Path) -> SharedHandle {
    let cfg = Config {
        group_size: 2,
        initial_k: 1,
        bucket_capacity: 24,
        record_len: 32,
        wal_snapshot_every: 0,
        wal_fsync: FsyncPolicy::Never,
        ..Config::default()
    };
    let shared = Shared::new(cfg);
    shared.set_store_factory(wal_factory(root.to_path_buf(), FsyncPolicy::Never));
    shared
}

/// Seed a snapshot-bearing store for `bucket` under node `NODE`'s root,
/// exactly as a driver-built initial layout would.
fn seed(shared: &SharedHandle, bucket: u64) {
    let mut node = Node::Data(DataBucket::new(shared.clone(), bucket, 1));
    node.attach_fresh_store(NodeId(NODE));
}

fn snapshot_path(root: &Path, bucket: u64) -> PathBuf {
    node_root(root, NODE)
        .join(format!("data-{bucket}"))
        .join("SNAPSHOT")
}

/// Pin the snapshot's mtime so the test controls the ranking order
/// deterministically (no wall-clock races).
fn set_snapshot_age(root: &Path, bucket: u64, age: Duration) {
    let snap = snapshot_path(root, bucket);
    let f = std::fs::File::options()
        .write(true)
        .open(&snap)
        .expect("seeded store must have a snapshot");
    f.set_modified(SystemTime::UNIX_EPOCH + age).unwrap();
}

fn recovered_bucket(shared: &SharedHandle, root: &Path) -> Option<u64> {
    let metrics = Metrics::new(Clock::wall());
    match recover_node(shared, root, NODE, FsyncPolicy::Never, &metrics)? {
        Node::Data(d) => Some(d.bucket),
        _ => None,
    }
}

fn temp_root(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("lhrs-rank-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

#[test]
fn recover_node_prefers_newest_snapshot() {
    let root = temp_root("newest");
    let shared = build_shared(&root);
    seed(&shared, 1);
    seed(&shared, 2);
    // data-1 is the stale tenancy. The path-order tie-break alone would
    // pick data-1, so recovering bucket 2 proves the mtime ranking.
    set_snapshot_age(&root, 1, Duration::from_secs(1_000));
    set_snapshot_age(&root, 2, Duration::from_secs(2_000));
    assert_eq!(recovered_bucket(&shared, &root), Some(2));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn recover_node_mtime_beats_path_order() {
    let root = temp_root("flip");
    let shared = build_shared(&root);
    seed(&shared, 1);
    seed(&shared, 2);
    // Flipped ages: data-2 is the stale tenancy, data-1 the newest.
    set_snapshot_age(&root, 1, Duration::from_secs(2_000));
    set_snapshot_age(&root, 2, Duration::from_secs(1_000));
    assert_eq!(recovered_bucket(&shared, &root), Some(1));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn recover_node_damaged_newest_falls_through() {
    let root = temp_root("damaged");
    let shared = build_shared(&root);
    seed(&shared, 1);
    seed(&shared, 2);
    // Mangle the newest snapshot in place: the store still *has* state
    // (so it is ranked and tried first) but cannot be decoded, and the
    // ranking must fall through to the older usable store rather than
    // boot blank.
    std::fs::write(snapshot_path(&root, 2), b"not a snapshot").unwrap();
    set_snapshot_age(&root, 1, Duration::from_secs(1_000));
    set_snapshot_age(&root, 2, Duration::from_secs(2_000));
    assert_eq!(recovered_bucket(&shared, &root), Some(1));
    let _ = std::fs::remove_dir_all(&root);
}
