//! The three-way kill -9 restart matrix over the loopback network — the
//! same drill `crates/core/tests/restart_drills.rs` runs in the simulator,
//! here with every "process" a thread, every message through the real wire
//! codec, and every durable bucket a real [`lhrs_wal::FileWal`] on disk.
//!
//! * **memory-loss** — the victim host dies and nothing survives: classic
//!   full Reed–Solomon rebuild onto a spare.
//! * **disk-survives** — the victim's WAL directory outlives the process
//!   (with its unsynced tail torn off): the respawned host replays the
//!   snapshot+log, reports in, and the coordinator tops it up with the
//!   missed Δ-suffix — moving strictly fewer bytes than the full rebuild.
//! * **disk-lost** — the directory is destroyed: the respawned host boots
//!   blank and the coordinator falls back to the full rebuild
//!   (`recovery_shards_rebuilt == k`).
//!
//! Zero acked-data loss in every arm, asserted through the
//! `Metrics`/`RestartReport` API; the three reports land in
//! `bench_out/restart_report.json` for CI to upload.

use std::path::{Path, PathBuf};
use std::sync::mpsc::{self, Sender};
use std::thread::JoinHandle;
use std::time::Duration;

use lhrs_core::msg::Msg;
use lhrs_core::{Config, FsyncPolicy};
use lhrs_net::client::NetClient;
use lhrs_net::cluster::{ClusterSpec, NodeSpec, Role};
use lhrs_net::durable::{blank_node, durable_boot, node_root, wal_factory, DurableBoot};
use lhrs_net::host::NodeHost;
use lhrs_net::transport::{HostEvent, LoopbackNet, LoopbackTransport};
use lhrs_obs::{Clock, Metrics, RestartReport};
use lhrs_sim::NodeId;

const RECORDS: u64 = 80;
const OP_TIMEOUT: Duration = Duration::from_secs(20);
const VICTIM: u32 = 2; // the node hosting bucket 0 in the initial layout

fn test_spec() -> ClusterSpec {
    let cfg = Config {
        group_size: 2,
        initial_k: 1,
        bucket_capacity: 24,
        record_len: 32,
        ack_writes: true,
        ack_parity: true,
        client_timeout_us: 50_000,
        client_retries: 2,
        retry_backoff_cap_us: 200_000,
        delta_retransmit_us: 50_000,
        probe_timeout_us: 50_000,
        coord_retransmit_us: 80_000,
        coord_retries: 20,
        // Only structural snapshots (boot seed + splits): the drill
        // controls the snapshot/log split itself.
        wal_snapshot_every: 0,
        // The files live for milliseconds in a temp dir; skip the fsyncs.
        wal_fsync: FsyncPolicy::Never,
        ..Config::default()
    };
    // 13 nodes: coordinator, client, bucket 0, one parity, nine spares.
    let nodes = (0..13u32)
        .map(|id| NodeSpec {
            id,
            addr: format!("loopback:{id}"),
            role: match id {
                0 => Role::Coordinator,
                1 => Role::Client,
                _ => Role::Server,
            },
        })
        .collect();
    let spec = ClusterSpec { cfg, nodes };
    spec.validate().expect("test spec valid");
    spec
}

struct ServerHost {
    id: u32,
    tx: Sender<HostEvent>,
    thread: JoinHandle<()>,
}

/// Spawn one server "process". With a durable `root` it installs the WAL
/// factory and — exactly like `lhrs-netd --data-dir` — first tries to
/// resurrect the node from a surviving store, announcing the restart to
/// the coordinator on success.
fn spawn_server(
    spec: &ClusterSpec,
    net: &LoopbackNet,
    id: u32,
    metrics: &Metrics,
    root: Option<PathBuf>,
) -> ServerHost {
    let (tx, rx) = mpsc::channel();
    net.register(&[id], tx.clone());
    let spec = spec.clone();
    let net = net.clone();
    let thread_tx = tx.clone();
    let metrics = metrics.clone();
    let thread = std::thread::spawn(move || {
        let shared = spec.build_shared();
        let fsync = spec.cfg.wal_fsync;
        if let Some(root) = &root {
            shared.set_store_factory(wal_factory(root.clone(), fsync));
        }
        let transport = LoopbackTransport::new(net, &[id]);
        let mut host = NodeHost::new(shared.clone(), transport, thread_tx, rx);
        host.set_metrics(metrics.clone());
        let boot = match &root {
            Some(root) => durable_boot(&shared, root, id, fsync, &metrics),
            None => DurableBoot::Fresh,
        };
        match boot {
            DurableBoot::Recovered(node) => {
                host.add_node(id, node);
                host.inject(id, Msg::SelfReport);
            }
            DurableBoot::Blank => host.add_node(id, blank_node(&shared)),
            DurableBoot::Fresh => {
                let mut node = spec.build_node(&shared, id);
                node.attach_fresh_store(NodeId(id));
                host.add_node(id, node);
            }
        }
        host.run();
    });
    ServerHost { id, tx, thread }
}

fn payload_for(key: u64) -> Vec<u8> {
    format!("restart-{key:06}").into_bytes()
}

/// The WAL segment files of one shard directory, sorted by sequence.
fn segment_files(shard_dir: &Path) -> Vec<PathBuf> {
    let mut segs: Vec<PathBuf> = std::fs::read_dir(shard_dir)
        .map(|entries| {
            entries
                .flatten()
                .map(|e| e.path())
                .filter(|p| {
                    p.file_name()
                        .map(|f| f.to_string_lossy().starts_with("wal-"))
                        .unwrap_or(false)
                })
                .collect()
        })
        .unwrap_or_default();
    segs.sort();
    segs
}

/// Logged op frames past the last snapshot. Every op this workload writes
/// is well under 128 B, so each frame is a 1-byte length varint, a 4-byte
/// CRC, and the payload.
fn count_frames(shard_dir: &Path) -> u64 {
    let mut frames = 0u64;
    for seg in segment_files(shard_dir) {
        let buf = std::fs::read(&seg).unwrap_or_default();
        let mut pos = 4usize;
        while pos < buf.len() {
            pos += 5 + buf[pos] as usize;
            frames += 1;
        }
    }
    frames
}

/// Poll until the cluster's message flow goes still (no new deliveries
/// across any host for a few consecutive ticks), bounded by a deadline.
fn quiesce(client: &mut NetClient<LoopbackTransport>, metrics: &Metrics) {
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    let mut last_recv = metrics.counter_total("msgs_recv");
    let mut still = 0u32;
    while still < 4 && std::time::Instant::now() < deadline {
        // poll() blocks up to its timeout when the client mailbox is
        // idle, so this loop ticks at ~50 ms without explicit sleeps.
        client.host_mut().poll(Duration::from_millis(50));
        let now_recv = metrics.counter_total("msgs_recv");
        still = if now_recv == last_recv { still + 1 } else { 0 };
        last_recv = now_recv;
    }
}

fn temp_root(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("lhrs-restart-{tag}-{}", std::process::id()))
}

/// One arm of the matrix. Loads the cluster through its splits, kills the
/// victim, lets `mutate_disk` damage what "survived", optionally respawns
/// the victim from disk, verifies zero acked-data loss, and returns the
/// arm's [`RestartReport`].
fn run_arm(
    name: &str,
    root: Option<PathBuf>,
    respawn: bool,
    mutate_disk: impl FnOnce(&Path),
) -> RestartReport {
    let spec = test_spec();
    let net = LoopbackNet::new();
    let metrics = Metrics::new(Clock::wall());

    let mut servers: Vec<ServerHost> = std::iter::once(0)
        .chain(spec.server_ids())
        .map(|id| spawn_server(&spec, &net, id, &metrics, root.clone()))
        .collect();

    // The client runs on the test thread.
    let (tx, rx) = mpsc::channel();
    net.register(&[1], tx.clone());
    let shared = spec.build_shared();
    let transport = LoopbackTransport::new(net.clone(), &[1]);
    let mut host = NodeHost::new(shared.clone(), transport, tx, rx);
    host.set_metrics(metrics.clone());
    host.add_node(1, spec.build_node(&shared, 1));
    let mut client = NetClient::new(host, 1, 1);
    assert!(
        client.sync_registry(0, Duration::from_secs(30)),
        "client never received the allocation table"
    );

    let mut oracle: Vec<u64> = Vec::new();
    for key in 1..=RECORDS {
        assert_eq!(
            client.insert(key, payload_for(key), OP_TIMEOUT),
            Some(true),
            "insert {key} failed"
        );
        oracle.push(key);
    }
    // Splits trigger on insert-time overflow reports, so the settled
    // bucket count after a fixed load legitimately depends on async
    // timing: a split finishing mid-load redistributes records and the
    // file can come to rest one split short. Keep feeding records until
    // the growth shows up, re-pulling the table (the client's copy only
    // refreshes on broadcasts and IAMs) between waves.
    let mut next_key = RECORDS;
    while client.bucket_count() < 4 || client.group_count() < 2 {
        assert!(
            next_key < RECORDS + 400,
            "[{name}] file should have split: {} buckets after {next_key} inserts",
            client.bucket_count()
        );
        next_key += 1;
        assert_eq!(
            client.insert(next_key, payload_for(next_key), OP_TIMEOUT),
            Some(true),
            "growth insert {next_key} failed"
        );
        oracle.push(next_key);
        client.host_mut().poll(Duration::from_millis(20));
        if next_key.is_multiple_of(8) {
            client.host_mut().request_registry(1, 0);
            client.host_mut().poll(Duration::from_millis(20));
        }
    }

    // Quiesce before the kill: the growth loop exits the instant the
    // table update lands, while split transfers and parity Δs from the
    // load can still be in flight — and a kill inside that window tests
    // mid-split crash consistency (the simulator chaos drills' job), not
    // the restart paths this matrix targets. The shared metrics see every
    // host's deliveries, so wait until the message flow goes still. This
    // runs BEFORE the durable trickle below: a late split would snapshot
    // the victim's store and rotate away the logged ops the tear needs.
    quiesce(&mut client, &metrics);

    // Durable arms: keep writing until the victim's bucket-0 store holds
    // at least two logged ops past its last (split-time) snapshot, so the
    // tear below can keep one replayable op and still leave the restart
    // genuinely behind the parity group. These inserts are fully acked
    // (write + parity) before the kill, so tearing them off the log
    // leaves the parity group ahead — exactly the Δ-suffix scenario.
    if let Some(root) = &root {
        let shard = node_root(root, VICTIM).join("data-0");
        let floor = next_key;
        while count_frames(&shard) < 2 {
            next_key += 1;
            assert!(
                next_key < floor + 200,
                "bucket 0 never logged past a snapshot"
            );
            assert_eq!(
                client.insert(next_key, payload_for(next_key), OP_TIMEOUT),
                Some(true),
                "extra insert {next_key} failed"
            );
            oracle.push(next_key);
        }
        quiesce(&mut client, &metrics);
    }

    // Kill -9 the victim: its routes vanish mid-flight, its thread stops.
    let pos = servers
        .iter()
        .position(|s| s.id == VICTIM)
        .expect("victim hosted");
    net.unregister(&[VICTIM]);
    let _ = servers[pos].tx.send(HostEvent::Shutdown);
    servers.remove(pos).thread.join().expect("victim joins");

    if let Some(root) = &root {
        mutate_disk(&node_root(root, VICTIM));
    }
    if respawn {
        servers.push(spawn_server(&spec, &net, VICTIM, &metrics, root.clone()));
    }

    // Every acked record must read back through whatever recovery path
    // this arm forces — Δ-suffix catch-up or full RS rebuild.
    for &key in &oracle {
        assert_eq!(
            client.lookup(key, OP_TIMEOUT),
            Some(Some(payload_for(key))),
            "[{name}] lookup {key} through recovery"
        );
    }

    // The structural recovery is asynchronous to the reads: degraded
    // lookups can satisfy every key while the coordinator's rebuild (or
    // the Δ-suffix handshake) is still in flight. Wait for it to land
    // before sampling the report.
    let rec_deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let r = RestartReport::from_metrics(name, &metrics);
        if r.restart_recoveries + r.restart_fallbacks + r.recovery_shards_rebuilt > 0
            || std::time::Instant::now() >= rec_deadline
        {
            break;
        }
        client.host_mut().poll(Duration::from_millis(50));
    }

    let report = RestartReport::from_metrics(name, &metrics);
    for s in &servers {
        let _ = s.tx.send(HostEvent::Shutdown);
    }
    for s in servers {
        s.thread.join().expect("server joins");
    }
    if let Some(root) = &root {
        let _ = std::fs::remove_dir_all(root);
    }
    report
}

#[test]
fn three_way_restart_matrix_over_loopback() {
    // Arm 1 — memory-loss: no durable store anywhere; the classic rebuild.
    let full = run_arm("net-memory-loss", None, false, |_| {});
    assert_eq!(full.restart_recoveries, 0, "{full:?}");
    assert_eq!(full.recovery_shards_rebuilt, 1, "{full:?}");
    assert!(full.recovery_bytes_moved > 0, "{full:?}");
    assert_eq!(full.wal_appends, 0, "no store, no WAL traffic");

    // Arm 2 — disk-survives: tear off the unsynced log tail, respawn, and
    // catch up via the Δ-suffix.
    let suffix = run_arm(
        "net-disk-survives",
        Some(temp_root("survives")),
        true,
        |victim_root| {
            // The "page cache" died with the process: tear the log mid-
            // frame after the first op, dropping everything behind it
            // (later segments become unreachable and are unlinked by the
            // reopen's repair).
            let shard = victim_root.join("data-0");
            let segs = segment_files(&shard);
            let target = segs
                .iter()
                .find(|seg| std::fs::read(seg).map(|b| b.len() > 5).unwrap_or(false))
                .expect("victim logged at least one op past its snapshot");
            let buf = std::fs::read(target).expect("read victim segment");
            let first_frame_end = 4 + 5 + buf[4] as usize;
            let keep = (first_frame_end + 2).min(buf.len());
            std::fs::write(target, &buf[..keep]).expect("tear victim log");
            for seg in segs.iter().filter(|s| s != &target) {
                let _ = std::fs::remove_file(seg);
            }
        },
    );
    assert_eq!(suffix.restart_recoveries, 1, "{suffix:?}");
    assert_eq!(suffix.restart_fallbacks, 0, "{suffix:?}");
    assert_eq!(
        suffix.recovery_shards_rebuilt, 0,
        "no RS rebuild on the Δ-suffix path: {suffix:?}"
    );
    assert!(suffix.suffix_entries > 0, "{suffix:?}");
    assert!(suffix.recovery_bytes_moved > 0, "{suffix:?}");
    assert!(suffix.wal_appends > 0, "{suffix:?}");
    assert!(suffix.wal_snapshots > 0, "{suffix:?}");
    assert!(suffix.replay_ops > 0, "boot must replay the local log");
    assert!(
        suffix.recovery_bytes_moved < full.recovery_bytes_moved,
        "Δ-suffix catch-up ({} B) must move strictly fewer bytes than the \
         full RS rebuild ({} B)",
        suffix.recovery_bytes_moved,
        full.recovery_bytes_moved
    );

    // Arm 3 — disk-lost: the shard directories are gone (a fresh empty
    // disk mounted at the old root); the respawned host boots blank and
    // the coordinator rebuilds all k shards.
    let lost = run_arm(
        "net-disk-lost",
        Some(temp_root("lost")),
        true,
        |victim_root| {
            let _ = std::fs::remove_dir_all(victim_root);
            let _ = std::fs::create_dir_all(victim_root);
        },
    );
    assert_eq!(lost.restart_recoveries, 0, "{lost:?}");
    assert_eq!(
        lost.recovery_shards_rebuilt, 1,
        "k = 1: the one lost shard is fully rebuilt: {lost:?}"
    );
    assert!(lost.recovery_bytes_moved > 0, "{lost:?}");

    // Leave the machine-readable matrix behind for CI.
    let out_dir = std::env::var_os("LHRS_BENCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../bench_out"));
    std::fs::create_dir_all(&out_dir).expect("create bench_out");
    let json = format!(
        "[\n{},\n{},\n{}\n]\n",
        full.to_json(),
        suffix.to_json(),
        lost.to_json()
    );
    std::fs::write(out_dir.join("restart_report.json"), json).expect("write restart_report.json");
}
