//! Drills for the multiplexed client path over the loopback network:
//!
//! * **Δ-coalescing** — a burst of inserts processed in one host poll
//!   batch ships its parity Δ-commits as one [`Msg::ParityBatch`] frame,
//!   not one frame per op (deterministic: both hosts run on the test
//!   thread, so batch boundaries are exact).
//! * **Late-reply tombstones** — an operation abandoned by its deadline
//!   never surfaces: the reply that eventually arrives is dropped and
//!   counted (`inflight_stale_drops`), the replay-cache/pipelining bugfix
//!   the multiplexed client depends on.
//! * **Group commit** — under `FsyncPolicy::Batch` a poll batch of N
//!   appends costs one fsync pass (`wal_group_commits`), with the batch
//!   size visible as `wal_group_commit_ops`.
//! * **Pipelined kill drill** — a windowed `run_window` load rides
//!   through splits, a bucket-host kill, and recovery with zero
//!   acked-data loss and out-of-order completion.

use std::sync::mpsc::{self, Sender};
use std::thread::JoinHandle;
use std::time::Duration;

use lhrs_core::api::OpOutcome;
use lhrs_core::msg::ClientOp;
use lhrs_core::{Config, FsyncPolicy};
use lhrs_net::client::NetClient;
use lhrs_net::cluster::{ClusterSpec, NodeSpec, Role};
use lhrs_net::durable::wal_factory;
use lhrs_net::host::NodeHost;
use lhrs_net::transport::{HostEvent, LoopbackNet, LoopbackTransport};
use lhrs_obs::{Clock, Metrics};
use lhrs_sim::NodeId;

const OP_TIMEOUT: Duration = Duration::from_secs(20);

fn payload_for(key: u64) -> Vec<u8> {
    format!("pipe-{key:06}").into_bytes()
}

/// A 4-node spec for the single-threaded drills: coordinator (unhosted),
/// client, one data bucket, one parity bucket. `bucket_capacity` is high
/// enough that nothing splits, and `client_timeout_us` long enough that
/// no retransmit fires inside a drill's window — every frame on the wire
/// is one the test put there.
fn tiny_spec() -> ClusterSpec {
    let cfg = Config {
        group_size: 2,
        initial_k: 1,
        bucket_capacity: 1000,
        record_len: 32,
        ack_writes: true,
        ack_parity: false,
        client_timeout_us: 500_000,
        wal_snapshot_every: 0,
        ..Config::default()
    };
    let nodes = (0..4u32)
        .map(|id| NodeSpec {
            id,
            addr: format!("loopback:{id}"),
            role: match id {
                0 => Role::Coordinator,
                1 => Role::Client,
                _ => Role::Server,
            },
        })
        .collect();
    let spec = ClusterSpec { cfg, nodes };
    spec.validate().expect("tiny spec valid");
    spec
}

/// Build a host carrying `ids` on the calling thread.
fn build_host(
    spec: &ClusterSpec,
    net: &LoopbackNet,
    ids: &[u32],
    metrics: &Metrics,
) -> NodeHost<LoopbackTransport> {
    let (tx, rx) = mpsc::channel();
    net.register(ids, tx.clone());
    let shared = spec.build_shared();
    let transport = LoopbackTransport::new(net.clone(), ids);
    let mut host = NodeHost::new(shared.clone(), transport, tx, rx);
    host.set_metrics(metrics.clone());
    for &id in ids {
        host.add_node(id, spec.build_node(&shared, id));
    }
    host
}

/// A burst of inserts handled inside one poll batch ships its Δ-commits
/// to the parity host as a single coalesced `ParityBatch`.
#[test]
fn delta_burst_coalesces_into_one_batch() {
    const BURST: u64 = 8;
    let spec = tiny_spec();
    let net = LoopbackNet::new();
    let metrics = Metrics::new(Clock::wall());

    // Client and data bucket share a host, so the whole insert burst is
    // one local cascade inside a single poll; the parity bucket is the
    // only remote destination.
    let host_a = build_host(&spec, &net, &[1, 2], &metrics);
    let mut host_b = build_host(&spec, &net, &[3], &metrics);
    let mut client = NetClient::new(host_a, 1, 1);

    for key in 1..=BURST {
        client.submit(ClientOp::Insert {
            key,
            payload: payload_for(key),
        });
    }
    // One pump = one poll batch: every insert applies, every Δ is
    // buffered, and the poll-batch boundary flushes them as one frame.
    client.pump(Duration::from_millis(1));
    assert_eq!(
        metrics.counter_total("net_delta_batches"),
        1,
        "one poll batch of {BURST} inserts ships one ParityBatch"
    );
    assert_eq!(
        metrics.counter_total("net_deltas_coalesced"),
        BURST,
        "every buffered Δ rides the coalesced frame"
    );
    assert_eq!(metrics.counter_total("inflight_launched"), BURST);
    assert_eq!(
        metrics.counter_total("inflight_completed"),
        BURST,
        "acks don't wait on parity (ack_parity off): one batch completes all"
    );

    // Let the parity host apply the batch and its acks drain back, so the
    // data bucket retires the Δs instead of queueing retransmits.
    for _ in 0..4 {
        host_b.poll(Duration::from_millis(1));
        client.pump(Duration::from_millis(1));
    }
}

/// An operation abandoned by its deadline is tombstoned: the reply that
/// arrives later is dropped and counted, never surfaced as the result of
/// a newer request reusing the slot.
#[test]
fn late_reply_for_abandoned_op_is_dropped_and_counted() {
    let spec = tiny_spec();
    let net = LoopbackNet::new();
    let metrics = Metrics::new(Clock::wall());

    let host_a = build_host(&spec, &net, &[1], &metrics);
    // The data bucket's host exists and is routable, but the test does
    // not poll it yet — the Req sits in its queue like a frame stuck
    // behind a slow peer.
    let mut host_b = build_host(&spec, &net, &[2], &metrics);
    let mut client = NetClient::new(host_a, 1, 1);

    let result = client.exec(
        ClientOp::Insert {
            key: 7,
            payload: payload_for(7),
        },
        Duration::from_millis(80),
    );
    assert!(result.is_none(), "the unserved op must time out");
    assert_eq!(metrics.counter_total("inflight_timeouts"), 1);

    // Now the slow host catches up and replies to the abandoned request.
    for _ in 0..4 {
        host_b.poll(Duration::from_millis(1));
    }
    client.pump(Duration::from_millis(5));
    assert_eq!(
        metrics.counter_total("inflight_stale_drops"),
        1,
        "the late reply is dropped and counted"
    );
    assert_eq!(
        metrics.counter_total("inflight_completed"),
        0,
        "a dropped late reply never counts as a completion"
    );
    assert_eq!(metrics.counter_total("inflight_launched"), 1);
}

/// Under `FsyncPolicy::Batch`, one poll batch of appends costs one fsync
/// pass: `wal_group_commit_ops / wal_group_commits` is the amortisation
/// the batched host loop buys.
#[test]
fn poll_batch_of_appends_is_one_group_commit() {
    const BURST: u64 = 6;
    let mut spec = tiny_spec();
    spec.cfg.wal_fsync = FsyncPolicy::Batch;
    let net = LoopbackNet::new();
    let metrics = Metrics::new(Clock::wall());
    let root = std::env::temp_dir().join(format!("lhrs-groupcommit-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // One host: client plus a durable data bucket (the parity node stays
    // unhosted; acks don't wait on it).
    let (tx, rx) = mpsc::channel();
    net.register(&[1, 2], tx.clone());
    let shared = spec.build_shared();
    shared.set_store_factory(wal_factory(root.clone(), FsyncPolicy::Batch));
    let transport = LoopbackTransport::new(net.clone(), &[1, 2]);
    let mut host = NodeHost::new(shared.clone(), transport, tx, rx);
    host.set_metrics(metrics.clone());
    host.add_node(1, spec.build_node(&shared, 1));
    let mut bucket = spec.build_node(&shared, 2);
    bucket.attach_fresh_store(NodeId(2));
    host.add_node(2, bucket);
    let mut client = NetClient::new(host, 1, 1);

    for key in 1..=BURST {
        client.submit(ClientOp::Insert {
            key,
            payload: payload_for(key),
        });
    }
    client.pump(Duration::from_millis(1));
    assert_eq!(
        metrics.counter_total("wal_group_commits"),
        1,
        "one poll batch of appends syncs once"
    );
    assert_eq!(
        metrics.counter_total("wal_group_commit_ops"),
        BURST,
        "the one fsync pass covers the whole burst"
    );
    assert_eq!(metrics.counter_total("inflight_completed"), BURST);

    let _ = std::fs::remove_dir_all(&root);
}

// ---------------------------------------------------------------------------
// The pipelined kill drill: threads, splits, recovery.
// ---------------------------------------------------------------------------

/// A 16-node spec: coordinator, client, bucket 0, one parity, twelve
/// spares, with a bucket capacity low enough that the load forces splits.
/// The spare pool is sized so that even the deepest observed split run
/// (eight data buckets + four parity groups) leaves nodes for the
/// post-kill rebuild — with fewer spares the recovery legitimately stalls
/// ("no spare nodes to rebuild onto") and wave-2 writes to the dead bucket
/// fail un-acked, which is graceful degradation, not the drill's subject.
fn cluster_spec() -> ClusterSpec {
    let cfg = Config {
        group_size: 2,
        initial_k: 1,
        bucket_capacity: 24,
        record_len: 32,
        ack_writes: true,
        ack_parity: true,
        client_timeout_us: 50_000,
        client_retries: 2,
        retry_backoff_cap_us: 200_000,
        delta_retransmit_us: 50_000,
        probe_timeout_us: 50_000,
        coord_retransmit_us: 80_000,
        coord_retries: 20,
        ..Config::default()
    };
    let nodes = (0..16u32)
        .map(|id| NodeSpec {
            id,
            addr: format!("loopback:{id}"),
            role: match id {
                0 => Role::Coordinator,
                1 => Role::Client,
                _ => Role::Server,
            },
        })
        .collect();
    let spec = ClusterSpec { cfg, nodes };
    spec.validate().expect("cluster spec valid");
    spec
}

struct ServerHost {
    id: u32,
    tx: Sender<HostEvent>,
    thread: JoinHandle<()>,
}

fn spawn_server(spec: &ClusterSpec, net: &LoopbackNet, id: u32, metrics: &Metrics) -> ServerHost {
    let (tx, rx) = mpsc::channel();
    net.register(&[id], tx.clone());
    let spec = spec.clone();
    let net = net.clone();
    let thread_tx = tx.clone();
    let metrics = metrics.clone();
    let thread = std::thread::spawn(move || {
        let shared = spec.build_shared();
        let transport = LoopbackTransport::new(net, &[id]);
        let mut host = NodeHost::new(shared.clone(), transport, thread_tx, rx);
        host.set_metrics(metrics);
        host.add_node(id, spec.build_node(&shared, id));
        host.run();
    });
    ServerHost { id, tx, thread }
}

/// Run `ops` through the pipelined window and assert every outcome is
/// `Done`, returning nothing — the caller owns the oracle.
fn pipelined_inserts(
    client: &mut NetClient<LoopbackTransport>,
    keys: impl Iterator<Item = u64>,
    window: usize,
    stage: &str,
) {
    let keys: Vec<u64> = keys.collect();
    let ops: Vec<ClientOp> = keys
        .iter()
        .map(|&key| ClientOp::Insert {
            key,
            payload: payload_for(key),
        })
        .collect();
    for (&key, (outcome, _)) in keys.iter().zip(client.run_window(ops, window)) {
        assert_eq!(
            outcome,
            OpOutcome::Done,
            "[{stage}] pipelined insert {key} must be acked"
        );
    }
}

#[test]
fn pipelined_window_survives_kill_with_zero_acked_loss() {
    const WAVE1: u64 = 80;
    const WAVE2: u64 = 40;
    const WINDOW: usize = 16;

    let spec = cluster_spec();
    let net = LoopbackNet::new();
    let metrics = Metrics::new(Clock::wall());

    let mut servers: Vec<ServerHost> = std::iter::once(0)
        .chain(spec.server_ids())
        .map(|id| spawn_server(&spec, &net, id, &metrics))
        .collect();

    let (tx, rx) = mpsc::channel();
    net.register(&[1], tx.clone());
    let shared = spec.build_shared();
    let transport = LoopbackTransport::new(net.clone(), &[1]);
    let mut host = NodeHost::new(shared.clone(), transport, tx, rx);
    host.set_metrics(metrics.clone());
    host.add_node(1, spec.build_node(&shared, 1));
    let mut client = NetClient::new(host, 1, 1);
    client.set_op_timeout(OP_TIMEOUT);
    assert!(
        client.sync_registry(0, Duration::from_secs(10)),
        "client never received the allocation table"
    );

    // Wave 1: a windowed pipelined load that rides through several splits
    // — IAM redirects and registry broadcasts land between pumps while
    // other ops are still in flight.
    pipelined_inserts(&mut client, 1..=WAVE1, WINDOW, "wave1");

    // Kill the host carrying bucket 0 with acked records on it.
    let victim = servers
        .iter()
        .position(|s| s.id == 2)
        .expect("node 2 hosted");
    net.unregister(&[2]);
    let _ = servers[victim].tx.send(HostEvent::Shutdown);
    servers.remove(victim).thread.join().expect("victim joins");

    // Wave 2 starts immediately: ops aimed at the dead bucket stall and
    // escalate (suspect → probe → rebuild) while ops for other buckets
    // complete around them, out of submission order.
    pipelined_inserts(&mut client, WAVE1 + 1..=WAVE1 + WAVE2, WINDOW, "wave2");

    // Zero acked-data loss: every acked key reads back, pipelined too.
    let keys: Vec<u64> = (1..=WAVE1 + WAVE2).collect();
    let lookups: Vec<ClientOp> = keys.iter().map(|&key| ClientOp::Lookup { key }).collect();
    for (&key, (outcome, _)) in keys.iter().zip(client.run_window(lookups, WINDOW)) {
        assert_eq!(
            outcome,
            OpOutcome::Value(Some(payload_for(key))),
            "acked key {key} must survive the kill"
        );
    }

    // The drill's accounting: every launch completed, no op hit its
    // deadline, and the window (not the cluster) was the limiter at least
    // once per wave.
    let launched = metrics.counter_total("inflight_launched");
    let completed = metrics.counter_total("inflight_completed");
    assert_eq!(launched, 2 * (WAVE1 + WAVE2), "two waves plus the verify");
    assert_eq!(completed, launched, "every pipelined op completed");
    assert_eq!(metrics.counter_total("inflight_timeouts"), 0);
    assert_eq!(metrics.counter_total("inflight_stale_drops"), 0);
    assert!(
        metrics.counter_total("window_full_stalls") > 0,
        "a {WINDOW}-wide window over {} ops must stall on window-full",
        2 * (WAVE1 + WAVE2)
    );
    assert_eq!(
        metrics.counter_total("recovery_shards_rebuilt"),
        1,
        "killing one node of a k = 1 group rebuilds exactly one shard"
    );

    for s in &servers {
        let _ = s.tx.send(HostEvent::Shutdown);
    }
    for s in servers {
        s.thread.join().expect("server joins");
    }
}
