//! Regenerates experiment `t4_coding_throughput` (see DESIGN.md §3); writes
//! `bench_out/t4_coding_throughput.txt`.

fn main() {
    lhrs_bench::emit(
        "t4_coding_throughput",
        &lhrs_bench::experiments::t4_coding_throughput::run(),
    );
}
