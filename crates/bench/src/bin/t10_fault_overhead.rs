//! Regenerates experiment `t10_fault_overhead` (see DESIGN.md §3); writes
//! `bench_out/t10_fault_overhead.txt`.

fn main() {
    lhrs_bench::emit(
        "t10_fault_overhead",
        &lhrs_bench::experiments::t10_fault_overhead::run(),
    );
}
