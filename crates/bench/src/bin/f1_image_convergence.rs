//! Regenerates experiment `f1_image_convergence` (see DESIGN.md §3); writes
//! `bench_out/f1_image_convergence.txt`.

fn main() {
    lhrs_bench::emit(
        "f1_image_convergence",
        &lhrs_bench::experiments::f1_image_convergence::run(),
    );
}
