//! Runs the full evaluation suite — every table and figure — writing each
//! to `bench_out/<id>.txt` and an index to `bench_out/ALL.txt`.

use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    for (id, run) in lhrs_bench::experiments::all() {
        eprintln!("== running {id} ==");
        let t = Instant::now();
        lhrs_bench::emit(id, &run());
        eprintln!("[{id} done in {:.1}s]\n", t.elapsed().as_secs_f64());
    }
    eprintln!("full suite done in {:.1}s", t0.elapsed().as_secs_f64());
}
