//! Regenerates experiment `t7_baseline_comparison` (see DESIGN.md §3); writes
//! `bench_out/t7_baseline_comparison.txt`.

fn main() {
    lhrs_bench::emit(
        "t7_baseline_comparison",
        &lhrs_bench::experiments::t7_baseline_comparison::run(),
    );
}
