//! Regenerates experiment `f3_scalable_availability` (see DESIGN.md §3); writes
//! `bench_out/f3_scalable_availability.txt`.

fn main() {
    lhrs_bench::emit(
        "f3_scalable_availability",
        &lhrs_bench::experiments::f3_scalable_availability::run(),
    );
}
