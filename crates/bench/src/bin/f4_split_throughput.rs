//! Regenerates experiment `f4_split_throughput` (see DESIGN.md §3); writes
//! `bench_out/f4_split_throughput.txt`.

fn main() {
    lhrs_bench::emit(
        "f4_split_throughput",
        &lhrs_bench::experiments::f4_split_throughput::run(),
    );
}
