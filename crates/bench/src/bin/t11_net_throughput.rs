//! Regenerates experiment `t11_net_throughput` (see DESIGN.md §3); writes
//! `bench_out/t11_net_throughput.txt`.

fn main() {
    lhrs_bench::emit(
        "t11_net_throughput",
        &lhrs_bench::experiments::t11_net_throughput::run(),
    );
}
