//! Regenerates experiment `t9_grouping_ablation` (see DESIGN.md §3); writes
//! `bench_out/t9_grouping_ablation.txt`.

fn main() {
    lhrs_bench::emit(
        "t9_grouping_ablation",
        &lhrs_bench::experiments::t9_grouping_ablation::run(),
    );
}
