fn main() {
    lhrs_bench::emit(
        "t12_restart_cost",
        &lhrs_bench::experiments::t12_restart_cost::run(),
    );
}
