//! Regenerates experiment `f2_availability_curves` (see DESIGN.md §3); writes
//! `bench_out/f2_availability_curves.txt`.

fn main() {
    lhrs_bench::emit(
        "f2_availability_curves",
        &lhrs_bench::experiments::f2_availability_curves::run(),
    );
}
