//! Regenerates experiment `t8_update_cost` (see DESIGN.md §3); writes
//! `bench_out/t8_update_cost.txt`.

fn main() {
    lhrs_bench::emit(
        "t8_update_cost",
        &lhrs_bench::experiments::t8_update_cost::run(),
    );
}
