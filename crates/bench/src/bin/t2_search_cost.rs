//! Regenerates experiment `t2_search_cost` (see DESIGN.md §3); writes
//! `bench_out/t2_search_cost.txt`.

fn main() {
    lhrs_bench::emit(
        "t2_search_cost",
        &lhrs_bench::experiments::t2_search_cost::run(),
    );
}
