//! Regenerates experiment `t3_insert_cost` (see DESIGN.md §3); writes
//! `bench_out/t3_insert_cost.txt`.

fn main() {
    lhrs_bench::emit(
        "t3_insert_cost",
        &lhrs_bench::experiments::t3_insert_cost::run(),
    );
}
