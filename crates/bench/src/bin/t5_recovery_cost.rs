//! Regenerates experiment `t5_recovery_cost` (see DESIGN.md §3); writes
//! `bench_out/t5_recovery_cost.txt`.

fn main() {
    lhrs_bench::emit(
        "t5_recovery_cost",
        &lhrs_bench::experiments::t5_recovery_cost::run(),
    );
}
