//! Regenerates experiment `t1_storage_overhead` (see DESIGN.md §3); writes
//! `bench_out/t1_storage_overhead.txt`.

fn main() {
    lhrs_bench::emit(
        "t1_storage_overhead",
        &lhrs_bench::experiments::t1_storage_overhead::run(),
    );
}
