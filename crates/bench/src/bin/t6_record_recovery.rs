//! Regenerates experiment `t6_record_recovery` (see DESIGN.md §3); writes
//! `bench_out/t6_record_recovery.txt`.

fn main() {
    lhrs_bench::emit(
        "t6_record_recovery",
        &lhrs_bench::experiments::t6_record_recovery::run(),
    );
}
