//! A minimal micro-benchmark runner for the `benches/` binaries.
//!
//! The workspace builds without a crates registry, so Criterion is not
//! available; this module provides the small subset the kernels need —
//! warmup, automatic iteration-count calibration, median-of-samples timing,
//! and optional throughput reporting — with plain-text output.

use std::time::{Duration, Instant};

/// Samples collected per benchmark; the median is reported.
const SAMPLES: usize = 7;
/// Target wall time per sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(60);

/// One benchmark harness, printing results as `name  ...  time [throughput]`.
pub struct Bench {
    group: String,
}

impl Bench {
    /// A named benchmark group (purely cosmetic, mirrors Criterion groups).
    pub fn group(name: &str) -> Self {
        println!("\n== {name} ==");
        Bench {
            group: name.to_string(),
        }
    }

    /// Time `f`, reporting ns/iter; `bytes` (if non-zero) adds MiB/s.
    pub fn run<T>(&self, name: &str, bytes: u64, mut f: impl FnMut() -> T) {
        // Warm up and calibrate the per-sample iteration count.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let el = t.elapsed();
            if el >= TARGET_SAMPLE / 4 || iters >= 1 << 30 {
                let scale = TARGET_SAMPLE.as_nanos() as f64 / el.as_nanos().max(1) as f64;
                iters = ((iters as f64 * scale).max(1.0)) as u64;
                break;
            }
            iters *= 8;
        }
        let mut samples: Vec<f64> = (0..SAMPLES)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f());
                }
                t.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let ns = samples[SAMPLES / 2];
        let mut line = format!(
            "{:<40} {:>12}/iter",
            format!("{}/{name}", self.group),
            fmt_ns(ns)
        );
        if bytes > 0 {
            let mibs = bytes as f64 / (ns / 1e9) / (1024.0 * 1024.0);
            line.push_str(&format!("  {mibs:>10.1} MiB/s"));
        }
        println!("{line}");
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{:.2} ms", ns / 1_000_000.0)
    }
}
