//! **F1 — Client image convergence.**
//!
//! A brand-new client starts with the worst-case image (one bucket). Every
//! addressing error costs at most two extra hops and returns an IAM; after
//! O(log M) IAMs the image is exact. This series is the data behind the
//! papers' "usually O(log M) IAMs suffice" claim.

use lhrs_core::{Config, LhrsFile};
use lhrs_sim::LatencyModel;

use crate::{payload_of, uniform_keys, Table};

/// Run the experiment.
pub fn run() -> Vec<Table> {
    let cfg = Config {
        group_size: 4,
        initial_k: 1,
        bucket_capacity: 32,
        record_len: 64,
        latency: LatencyModel::instant(),
        node_pool: 2048,
        ..Config::default()
    };
    let mut file = LhrsFile::new(cfg).expect("config");
    let keys = uniform_keys(12_000, 0xF1);
    file.insert_batch(keys[..10_000].iter().map(|&key| (key, payload_of(key, 64))))
        .expect("bulk");
    let m = file.bucket_count();

    let mut table = Table::new(
        format!("F1: fresh-client image convergence on an M = {m} bucket file"),
        &["ops", "IAMs", "image M'", "image/M"],
    );
    let fresh = file.add_client();
    let checkpoints = [1usize, 2, 5, 10, 20, 50, 100, 200, 500, 1000];
    let mut done = 0usize;
    for &cp in &checkpoints {
        while done < cp {
            let key = keys[10_000 + done];
            // Lookups of never-inserted keys still exercise addressing.
            file.lookup_via(fresh, key).expect("lookup");
            done += 1;
        }
        let (n_img, i_img) = file.client_image(fresh);
        let image_m = n_img + (1u64 << i_img);
        table.row(vec![
            cp.to_string(),
            file.client_iams(fresh).to_string(),
            image_m.to_string(),
            format!("{:.3}", image_m as f64 / m as f64),
        ]);
    }
    table.note("expected: IAMs plateau at O(log M) ≪ ops; image/M → 1.0");
    vec![table]
}
