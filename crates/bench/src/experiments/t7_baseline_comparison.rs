//! **T7 — Scheme comparison: LH\*, LH\*m, LH\*s, LH\*g, LH\*RS.**
//!
//! The positioning table: for the same workload on the same simulator,
//! what does each high-availability approach pay in servers, storage,
//! insert messages, and search messages — and what does it buy in
//! availability? LH\*RS's claim is the best overhead/availability frontier
//! with LH\*-grade search cost.

use lhrs_baselines::{GroupedLh, LhrsScheme, MirrorLh, PlainLh, Scheme, StripeLh};
use lhrs_core::Config;
use lhrs_sim::LatencyModel;

use crate::table::{f2, f4};
use crate::{payload_of, uniform_keys, Table};

const N_LOAD: usize = 2000;
const N_MEASURE: usize = 200;
const PAYLOAD: usize = 64;

struct Row {
    name: &'static str,
    servers: u64,
    data_buckets: u64,
    byte_overhead: f64,
    insert_msgs: f64,
    search_msgs: f64,
    tolerates: usize,
    availability: f64,
}

fn measure(scheme: &mut dyn Scheme, seed: u64) -> Row {
    let keys = uniform_keys(N_LOAD + 2 * N_MEASURE, seed);
    for &key in &keys[..N_LOAD] {
        scheme.insert(key, payload_of(key, PAYLOAD));
    }
    // Warm the client image.
    for &key in &keys[..100] {
        scheme.lookup(key);
    }
    // Steady-state inserts (strip structural kinds).
    let before = scheme.stats();
    for &key in &keys[N_LOAD..N_LOAD + N_MEASURE] {
        scheme.insert(key, payload_of(key, PAYLOAD));
    }
    let cost = scheme.stats().since(&before);
    let structural: u64 = [
        "overflow",
        "split",
        "split-load",
        "split-done",
        "init-data",
        "init-parity",
        "parity-batch",
    ]
    .iter()
    .map(|k| cost.count(k))
    .sum();
    let insert_msgs = (cost.total_messages() - structural) as f64 / N_MEASURE as f64;

    let before = scheme.stats();
    for &key in &keys[..N_MEASURE] {
        assert!(scheme.lookup(key).is_some());
    }
    let cost = scheme.stats().since(&before);
    let search_msgs = cost.total_messages() as f64 / N_MEASURE as f64;

    let (primary, redundant) = scheme.storage_bytes();
    Row {
        name: scheme.name(),
        servers: scheme.total_servers(),
        data_buckets: scheme.data_buckets(),
        byte_overhead: redundant as f64 / primary as f64,
        insert_msgs,
        search_msgs,
        tolerates: scheme.tolerates(),
        availability: scheme.availability(0.99),
    }
}

/// Run the experiment.
pub fn run() -> Vec<Table> {
    let latency = LatencyModel::instant();
    let cap = 32usize;
    let pool = 4096usize;
    let lhrs_cfg = |k: usize| Config {
        group_size: 4,
        initial_k: k,
        bucket_capacity: cap,
        record_len: PAYLOAD,
        latency,
        node_pool: pool,
        ..Config::default()
    };

    let rows = vec![
        measure(&mut PlainLh::new(cap, pool, latency), 0x77),
        measure(&mut MirrorLh::new(cap, pool, latency), 0x77),
        measure(&mut StripeLh::new(4, cap, pool, latency), 0x77),
        measure(&mut GroupedLh::new(4, cap, PAYLOAD, pool, latency), 0x77),
        measure(&mut LhrsScheme::new("LH*g (RS k=1)", lhrs_cfg(1)), 0x77),
        measure(&mut LhrsScheme::new("LH*RS k=2", lhrs_cfg(2)), 0x77),
        measure(&mut LhrsScheme::new("LH*RS k=3", lhrs_cfg(3)), 0x77),
    ];

    let mut table = Table::new(
        format!(
            "T7: scheme comparison — {N_LOAD} loads + {N_MEASURE} measured ops, {PAYLOAD} B payloads, b = {cap}, m = 4, p = 0.99"
        ),
        &[
            "scheme",
            "servers",
            "M",
            "byte-ovh",
            "ins msg",
            "srch msg",
            "tolerates",
            "P(file up)",
        ],
    );
    for r in rows {
        table.row(vec![
            r.name.to_string(),
            r.servers.to_string(),
            r.data_buckets.to_string(),
            f2(r.byte_overhead),
            f2(r.insert_msgs),
            f2(r.search_msgs),
            r.tolerates.to_string(),
            f4(r.availability),
        ]);
    }
    table.note("expected shape: LH* cheapest but P→0; LH*m pays 100% storage + 2-msg inserts; LH*s pays 2m-msg searches; LH*RS holds 2-msg searches at k/m overhead with tunable k");
    vec![table]
}
