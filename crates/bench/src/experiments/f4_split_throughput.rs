//! **F4 — File creation / split throughput vs k.**
//!
//! Parity maintenance taxes growth: each split retracts movers from the
//! source group's parity and enrols them in the target group's (2k batch
//! messages per split), and each insert carries k Δ-commits. Bulk-loading
//! the same data at increasing k shows the drag.

use lhrs_core::{Config, LhrsFile};
use lhrs_sim::LatencyModel;

use crate::table::f2;
use crate::{payload_of, uniform_keys, Table};

/// Run the experiment.
pub fn run() -> Vec<Table> {
    let n = 5000usize;
    let mut table = Table::new(
        format!("F4: bulk-loading {n} records (64 B) vs availability level k (m = 4)"),
        &[
            "k",
            "splits",
            "msgs/insert",
            "base/op",
            "fwd+iam/op",
            "struct/op",
            "sim s",
            "rec/s (sim)",
        ],
    );
    for &k in &[1usize, 2, 3] {
        let cfg = Config {
            group_size: 4,
            initial_k: k,
            bucket_capacity: 32,
            record_len: 64,
            latency: LatencyModel::default(),
            node_pool: 4096,
            ..Config::default()
        };
        let mut file = LhrsFile::new(cfg).expect("config");
        let keys = uniform_keys(n, 0xF4 + k as u64);
        // Bounded submission window (100 ops in flight): an application
        // that floods every request up front would have its whole batch
        // addressed with the initial one-bucket image (the client cannot
        // process replies queued behind 5000 submissions), maximising the
        // forwarding tax; an app that waits per-op pays none. 100-op
        // windows model the realistic middle.
        for chunk in keys.chunks(100) {
            file.insert_batch(chunk.iter().map(|&key| (key, payload_of(key, 64))))
                .expect("bulk");
        }
        let stats = file.stats();
        let splits = stats.count("split");
        let secs = file.now_us() as f64 / 1e6;
        let nf = n as f64;
        // Cost composition: base = request + k parity deltas; fwd+iam =
        // image-lag tax of a client racing the growing file; struct =
        // split machinery (incl. the 2k parity batches per split).
        let base = (nf + stats.count("parity-delta") as f64) / nf;
        let fwd_iam = (stats.count("insert") as f64 - nf + stats.count("reply") as f64) / nf;
        let structural: u64 = [
            "overflow",
            "split",
            "split-load",
            "split-done",
            "init-data",
            "init-parity",
            "parity-batch",
        ]
        .iter()
        .map(|kind| stats.count(kind))
        .sum();
        table.row(vec![
            k.to_string(),
            splits.to_string(),
            f2(stats.total_messages() as f64 / nf),
            f2(base),
            f2(fwd_iam),
            f2(structural as f64 / nf),
            f2(secs),
            f2(nf / secs),
        ]);
    }
    table.note("base/op = request + k parity Δs (the steady-state 1 + k); fwd+iam/op = forwarding tax of a pipelined client whose image chases the growing file; struct/op = splits incl. 2k parity batches each");
    table.note("wall-clock is bound by the single client's serial service time (~30 µs/op), so rec/s is ≈ flat in k — as on the real testbed, one client cannot saturate the servers; the parity drag appears in msgs/insert, the papers' network-invariant metric");

    // F4b: multi-client scaling — parallel writers lift the client-side
    // bottleneck until server-side service dominates.
    let mut scaling = Table::new(
        format!("F4b: loading {n} records with C concurrent clients (k = 2, m = 4)"),
        &["clients", "sim s", "rec/s (sim)", "speedup"],
    );
    let mut base_secs = None;
    for &clients in &[1usize, 2, 4, 8] {
        let cfg = Config {
            group_size: 4,
            initial_k: 2,
            bucket_capacity: 32,
            record_len: 64,
            latency: LatencyModel::default(),
            node_pool: 4096,
            ..Config::default()
        };
        let mut file = LhrsFile::new(cfg).expect("config");
        let keys = uniform_keys(n, 0xF4B);
        for chunk in keys.chunks(100 * clients) {
            file.parallel_load(clients, chunk.iter().map(|&key| (key, payload_of(key, 64))))
                .expect("load");
        }
        let secs = file.now_us() as f64 / 1e6;
        let base = *base_secs.get_or_insert(secs);
        scaling.row(vec![
            clients.to_string(),
            f2(secs),
            f2(n as f64 / secs),
            f2(base / secs),
        ]);
    }
    scaling.note("expected shape: near-linear speedup while the clients are the bottleneck, flattening as server-side service and splits take over");
    vec![table, scaling]
}
