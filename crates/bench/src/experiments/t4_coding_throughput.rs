//! **T4 — Reed–Solomon encode/decode throughput by field and (m, k).**
//!
//! The paper evaluates small Galois fields because parity arithmetic sits
//! on every insert's critical path. This reproduces the classic shape:
//! the XOR fast path (first parity column) is fastest; GF(2^8) is the
//! practical workhorse; GF(2^4) trades table size for a tiny symbol space;
//! GF(2^16) pays per-symbol overhead for its huge code support. Encode
//! throughput scales ≈ 1/k, decode cost grows with the erasure count.

use std::time::Instant;

use lhrs_gf::{GaloisField, Gf16, Gf4, Gf8};
use lhrs_rs::RsCode;

use crate::table::f2;
use crate::Table;

const SHARD: usize = 64 * 1024;

fn encode_mbps<F: GaloisField>(m: usize, k: usize) -> f64 {
    let code: RsCode<F> = RsCode::new(m, k).expect("params fit field");
    let data: Vec<Vec<u8>> = (0..m)
        .map(|i| {
            (0..SHARD)
                .map(|b| ((i * 131 + b * 7 + 3) % 251) as u8)
                .collect()
        })
        .collect();
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    // Warm up, then time.
    let _ = code.encode(&refs).expect("encode");
    let iters = 8;
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(code.encode(&refs).expect("encode"));
    }
    let secs = t0.elapsed().as_secs_f64();
    (m * SHARD * iters) as f64 / secs / 1e6
}

fn decode_mbps<F: GaloisField>(m: usize, k: usize, erasures: usize) -> f64 {
    let code: RsCode<F> = RsCode::new(m, k).expect("params fit field");
    let data: Vec<Vec<u8>> = (0..m)
        .map(|i| {
            (0..SHARD)
                .map(|b| ((i * 37 + b * 11 + 5) % 251) as u8)
                .collect()
        })
        .collect();
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    let parity = code.encode(&refs).expect("encode");
    let full: Vec<Vec<u8>> = data.iter().chain(parity.iter()).cloned().collect();
    let iters = 8;
    let t0 = Instant::now();
    for _ in 0..iters {
        let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
        for slot in shards.iter_mut().take(erasures) {
            *slot = None; // data erasures: the expensive case
        }
        code.reconstruct(&mut shards).expect("decode");
        std::hint::black_box(&shards);
    }
    let secs = t0.elapsed().as_secs_f64();
    (m * SHARD * iters) as f64 / secs / 1e6
}

/// Run the experiment.
pub fn run() -> Vec<Table> {
    let mut enc = Table::new(
        "T4a: RS encode throughput, MB/s of data encoded (64 KiB shards)",
        &["field", "m", "k", "MB/s", "per-parity MB/s"],
    );
    for &(m, k) in &[(4usize, 1usize), (4, 2), (4, 3), (8, 2), (16, 2), (8, 3)] {
        let g8 = encode_mbps::<Gf8>(m, k);
        enc.row(vec![
            "GF(2^8)".into(),
            m.to_string(),
            k.to_string(),
            f2(g8),
            f2(g8 * k as f64),
        ]);
    }
    for &(m, k) in &[(4usize, 1usize), (4, 2), (8, 2)] {
        let g4 = encode_mbps::<Gf4>(m, k);
        enc.row(vec![
            "GF(2^4)".into(),
            m.to_string(),
            k.to_string(),
            f2(g4),
            f2(g4 * k as f64),
        ]);
        let g16 = encode_mbps::<Gf16>(m, k);
        enc.row(vec![
            "GF(2^16)".into(),
            m.to_string(),
            k.to_string(),
            f2(g16),
            f2(g16 * k as f64),
        ]);
    }
    enc.note(
        "k = 1 rows exercise the all-ones (pure XOR) parity column — the LH*g-compatible fast path",
    );
    enc.note("expected shape: throughput ≈ c/k; XOR k=1 well above multiply-based rows");

    let mut dec = Table::new(
        "T4b: RS decode throughput vs erasure count (GF(2^8), 64 KiB shards)",
        &["m", "k", "erasures", "MB/s"],
    );
    for &(m, k) in &[(4usize, 2usize), (4, 3), (8, 3)] {
        for e in 1..=k {
            dec.row(vec![
                m.to_string(),
                k.to_string(),
                e.to_string(),
                f2(decode_mbps::<Gf8>(m, k, e)),
            ]);
        }
    }
    dec.note(
        "expected shape: decode slows as the erasure count grows (more non-trivial matrix rows)",
    );
    vec![enc, dec]
}
