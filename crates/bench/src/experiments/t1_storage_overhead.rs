//! **T1 — Storage overhead vs (m, k).**
//!
//! The paper's core storage claim: parity costs ≈ k/m extra buckets and
//! ≈ k/m extra bytes, independent of file size, while the data file keeps
//! the classic ≈ 0.7 uncontrolled-split load factor.

use lhrs_core::{Config, LhrsFile};
use lhrs_sim::LatencyModel;

use crate::table::f2;
use crate::{payload_of, uniform_keys, Table};

/// Run the experiment.
pub fn run() -> Vec<Table> {
    let n_records = 3000usize;
    let mut table = Table::new(
        format!("T1: storage overhead after {n_records} inserts (payload 64 B, b = 32)"),
        &[
            "m", "k", "M", "parity", "servers", "overhead", "byte-ovh", "k/m", "load",
        ],
    );
    for &m in &[2usize, 4, 8, 16] {
        for &k in &[1usize, 2, 3] {
            let cfg = Config {
                group_size: m,
                initial_k: k,
                bucket_capacity: 32,
                record_len: 64,
                latency: LatencyModel::instant(),
                node_pool: 4096,
                ..Config::default()
            };
            let mut file = LhrsFile::new(cfg).expect("config");
            let keys = uniform_keys(n_records, 0x71 + m as u64 * 31 + k as u64);
            file.insert_batch(keys.iter().map(|&key| (key, payload_of(key, 64))))
                .expect("bulk load");
            let r = file.storage_report();
            table.row(vec![
                m.to_string(),
                k.to_string(),
                r.data_buckets.to_string(),
                r.parity_buckets.to_string(),
                (r.data_buckets + r.parity_buckets).to_string(),
                f2(r.storage_overhead),
                f2(r.parity_bytes as f64 / r.data_bytes as f64),
                f2(k as f64 / m as f64),
                f2(r.load_factor),
            ]);
        }
    }
    table.note("overhead = parity buckets / data buckets; expected ≈ k/m (bucket-granular, so it exceeds k/m while the last groups are partial)");
    table.note("byte-ovh = parity bytes / data bytes; slightly above k/m because parity cells are padded to record_len");
    vec![table]
}
