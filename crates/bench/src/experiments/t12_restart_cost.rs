//! **T12 — Restart cost vs snapshot cadence: Δ-suffix catch-up vs full
//! RS rebuild.**
//!
//! A durable bucket restarts by replaying its local snapshot + WAL, then
//! pulling only the Δ-suffix it missed from the parity group. The suffix
//! length — and therefore the bytes moved over the network — tracks how
//! far the surviving log lags the parity watermark, which the
//! `wal_snapshot_every` knob bounds. The full Reed–Solomon rebuild is the
//! fallback and the baseline every durable restart must beat.

use lhrs_core::storage::{MemHub, StoreId};
use lhrs_core::{Config, LhrsFile};
use lhrs_obs::RestartReport;
use lhrs_sim::LatencyModel;

use crate::table::f2;
use crate::{payload_of, uniform_keys, Table};

const LOAD: usize = 200;

fn cfg(snap_every: u64) -> Config {
    Config {
        group_size: 4,
        initial_k: 2,
        bucket_capacity: 8,
        record_len: 32,
        ack_writes: true,
        ack_parity: true,
        latency: LatencyModel::instant(),
        node_pool: 256,
        wal_snapshot_every: snap_every,
        ..Config::default()
    }
}

/// Updates applied to bucket 0 *after* the bulk load. Updates commit Δs
/// (so they hit the WAL and the parity watermark) without growing the
/// bucket, so no structural split snapshots the log away underneath the
/// sweep — the log length at crash is governed by `wal_snapshot_every`
/// alone.
const TRICKLE: usize = 45;

fn loaded_file(snap_every: u64, hub: &MemHub) -> LhrsFile {
    let mut file = LhrsFile::new(cfg(snap_every)).expect("config");
    file.install_store_factory(hub.factory());
    let keys = uniform_keys(LOAD, 0x712);
    file.insert_batch(keys.iter().map(|&key| (key, payload_of(key, 24))))
        .expect("bulk");
    let residents: Vec<u64> = keys
        .iter()
        .copied()
        .filter(|&key| file.address_of(key) == 0)
        .collect();
    assert!(!residents.is_empty(), "bucket 0 must hold some records");
    for i in 0..TRICKLE {
        let key = residents[i % residents.len()];
        file.update(key, payload_of(key.wrapping_add(i as u64 + 1), 24))
            .expect("trickle update");
    }
    file
}

/// Run the experiment.
pub fn run() -> Vec<Table> {
    let mut table = Table::new(
        "T12: restart cost vs snapshot interval (m = 4, k = 2, b = 8, 200 records)",
        &[
            "snap every",
            "tail",
            "log ops @ crash",
            "replay ops",
            "suffix Δs",
            "catch-up msgs",
            "catch-up KB",
        ],
    );
    for &snap_every in &[4u64, 16, 64, 0] {
        // `tail` = what the crash left of the un-snapshotted log: `intact`
        // keeps every logged op (clean kill -9 under fsync=always), `lost`
        // drops all of it (the unsynced page cache died with the process).
        for &(tail, keep_ops) in &[("intact", true), ("lost", false)] {
            let hub = MemHub::new();
            let mut file = loaded_file(snap_every, &hub);
            let disk = hub
                .disk(&StoreId::Data { bucket: 0 })
                .expect("bucket 0 has a disk");
            let log_ops = disk.ops_len();
            file.crash_data_bucket(0);
            if !keep_ops {
                disk.truncate_ops(0);
            }
            let cost = file.cost_of(|fl| {
                let resumed = fl
                    .restart_data_bucket_from_store(0)
                    .expect("store must seed the restart");
                assert!(resumed, "bucket 0 must resume as owner");
            });
            let report = RestartReport::from_metrics("t12", file.metrics());
            assert_eq!(report.restart_recoveries, 1);
            assert_eq!(report.recovery_shards_rebuilt, 0, "no RS rebuild here");
            table.row(vec![
                if snap_every == 0 {
                    "never".into()
                } else {
                    snap_every.to_string()
                },
                tail.to_string(),
                log_ops.to_string(),
                report.replay_ops.to_string(),
                report.suffix_entries.to_string(),
                cost.total_messages().to_string(),
                f2(cost.total_bytes() as f64 / 1024.0),
            ]);
        }
    }
    table.note(
        "snap every = wal_snapshot_every (appends between auto-snapshots; 'never' leaves only \
         the structural snapshots taken at splits)",
    );
    table.note(
        "expected shape: local replay absorbs the intact tail (suffix Δs ≈ 0); with the tail \
         lost, the Δ-suffix pulled from parity tracks the log length since the last snapshot — \
         tighter snapshot cadence buys a shorter catch-up",
    );
    table.note(
        "crossover: a far-lagging suffix ('never' + lost tail) can out-cost the full rebuild \
         of these small buckets — the cadence knob, not the Δ-suffix alone, keeps restart cheap",
    );

    // The fallback baseline: the same crash with no usable store pays the
    // full k-out-of-(m+k) Reed–Solomon rebuild.
    let mut versus = Table::new(
        "T12b: Δ-suffix catch-up vs full RS rebuild (same load, bucket 0 killed)",
        &["path", "msgs", "KB moved", "bytes ratio"],
    );
    let (full_msgs, full_bytes) = {
        // Same load as the Δ-suffix arm, but the disk dies with the
        // process: the coordinator pays the classic RS rebuild.
        let hub = MemHub::new();
        let mut file = loaded_file(4, &hub);
        file.crash_data_bucket(0);
        hub.destroy(&StoreId::Data { bucket: 0 });
        let cost = file.cost_of(|fl| {
            let rep = fl.check_group(0);
            assert!(rep.recovered, "rebuild must succeed: {rep:?}");
        });
        (cost.total_messages(), cost.total_bytes())
    };
    let (suffix_msgs, suffix_bytes) = {
        let hub = MemHub::new();
        let mut file = loaded_file(4, &hub);
        let disk = hub
            .disk(&StoreId::Data { bucket: 0 })
            .expect("bucket 0 has a disk");
        file.crash_data_bucket(0);
        disk.truncate_ops(0);
        let cost = file.cost_of(|fl| {
            assert!(fl.restart_data_bucket_from_store(0).expect("seed"));
        });
        (cost.total_messages(), cost.total_bytes())
    };
    assert!(
        suffix_bytes < full_bytes,
        "Δ-suffix ({suffix_bytes} B) must beat the full rebuild ({full_bytes} B)"
    );
    versus.row(vec![
        "Δ-suffix (snap every 4, tail lost)".into(),
        suffix_msgs.to_string(),
        f2(suffix_bytes as f64 / 1024.0),
        f2(suffix_bytes as f64 / full_bytes as f64),
    ]);
    versus.row(vec![
        "full RS rebuild (no durable store)".into(),
        full_msgs.to_string(),
        f2(full_bytes as f64 / 1024.0),
        "1.00".into(),
    ]);
    versus.note(
        "the rebuild ships every surviving shard of the group through the decode; the \
         Δ-suffix ships only the commits logged after the last snapshot — the gap the \
         crash-restart CI gate (`restart_report.json`) holds the loopback cluster to",
    );
    vec![table, versus]
}
