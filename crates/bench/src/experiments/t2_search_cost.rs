//! **T2 — Key-search messaging cost vs file size.**
//!
//! The headline LH\* access guarantee carried over to LH\*RS: a key search
//! costs ~2 messages on average and never more than 4 (request + ≤ 2
//! forwards + reply), *independent of file size and of k* — availability is
//! free on the read path.

use lhrs_core::{Config, FilterSpec, LhrsFile, ScanTermination};
use lhrs_sim::LatencyModel;

use crate::table::f2;
use crate::{payload_of, uniform_keys, Table};

/// Run the experiment.
pub fn run() -> Vec<Table> {
    let mut table = Table::new(
        "T2: key-search messages vs file size M (m = 4, k = 2)",
        &["M", "fresh avg", "fresh max", "warm avg", "warm max"],
    );
    for &target_m in &[16u64, 64, 256] {
        let cfg = Config {
            group_size: 4,
            initial_k: 2,
            bucket_capacity: 32,
            record_len: 64,
            latency: LatencyModel::instant(),
            node_pool: 2048,
            ..Config::default()
        };
        let mut file = LhrsFile::new(cfg).expect("config");
        let keys = uniform_keys(40 * target_m as usize, 0x72 + target_m);
        let mut fed = 0;
        while file.bucket_count() < target_m {
            let key = keys[fed];
            file.insert(key, payload_of(key, 64)).expect("insert");
            fed += 1;
        }

        // Fresh client: worst-case image, first 100 lookups.
        let fresh = file.add_client();
        let (fresh_avg, fresh_max) = lookup_costs(&mut file, fresh, &keys[..100]);
        // Warm client: same client after convergence.
        let (warm_avg, warm_max) = lookup_costs(&mut file, fresh, &keys[100..200]);

        table.row(vec![
            file.bucket_count().to_string(),
            f2(fresh_avg),
            fresh_max.to_string(),
            f2(warm_avg),
            warm_max.to_string(),
        ]);
    }
    table.note("fresh = brand-new client (image of 1 bucket); warm = same client after 100 ops");
    table.note("expected: warm avg ≈ 2.0 flat in M; max ≤ 4 always (A2 two-hop bound)");

    // T2b: parallel scans — deterministic vs probabilistic termination,
    // full vs selective filters.
    let mut scans = Table::new(
        "T2b: scan messages vs termination protocol (m = 4, k = 2, M ≈ 128)",
        &["termination", "filter", "M", "hits", "scan msgs", "replies"],
    );
    for &(term, label) in &[
        (ScanTermination::Deterministic, "deterministic"),
        (
            ScanTermination::Probabilistic { silence_us: 5_000 },
            "probabilistic",
        ),
    ] {
        let cfg = Config {
            group_size: 4,
            initial_k: 2,
            bucket_capacity: 32,
            record_len: 64,
            scan_termination: term,
            latency: LatencyModel::default(),
            node_pool: 2048,
            ..Config::default()
        };
        let mut file = LhrsFile::new(cfg).expect("config");
        let keys = uniform_keys(3000, 0x72B);
        for &key in &keys {
            file.insert(key, payload_of(key, 64)).expect("insert");
        }
        let m_now = file.bucket_count();
        let needle = keys[42];
        for (filter, fname, expect_hits) in [
            (FilterSpec::All, "all", 3000usize),
            (FilterSpec::KeyRange(needle, needle + 1), "1-in-3000", 1),
        ] {
            let mut hits = 0usize;
            let cost = file.cost_of(|f| {
                hits = f.scan(filter.clone()).expect("scan").len();
            });
            assert_eq!(hits, expect_hits);
            scans.row(vec![
                label.to_string(),
                fname.to_string(),
                m_now.to_string(),
                hits.to_string(),
                cost.total_messages().to_string(),
                cost.count("scan-reply").to_string(),
            ]);
        }
    }
    scans.note("deterministic: M requests + M replies always; probabilistic: M requests + (hit buckets) replies — the §2.1 trade-off, exact coverage vs fewer messages");
    vec![table, scans]
}

fn lookup_costs(file: &mut LhrsFile, client: usize, keys: &[u64]) -> (f64, u64) {
    let mut total = 0u64;
    let mut max = 0u64;
    for &key in keys {
        let cost = file.cost_of(|f| {
            f.lookup_via(client, key).expect("lookup");
        });
        let msgs = cost.total_messages();
        total += msgs;
        max = max.max(msgs);
    }
    (total as f64 / keys.len() as f64, max)
}
