//! **T5 — Bucket recovery cost vs failure count.**
//!
//! Rebuilding f ≤ k failed buckets of one group costs: a probe round over
//! the group, one shard transfer per surviving column consulted, the
//! decode, and one install per spare — messages ∝ group size, bytes ∝
//! bucket contents, with simulated wall-clock dominated by the transfers.

use lhrs_baselines::{MirrorLh, Scheme, StripeLh};
use lhrs_core::{Config, LhrsFile};
use lhrs_sim::LatencyModel;

use crate::table::f2;
use crate::{payload_of, uniform_keys, Table};

/// Run the experiment.
pub fn run() -> Vec<Table> {
    let mut table = Table::new(
        "T5: group recovery cost vs failures f (m = 4, b = 32, 64 B payloads)",
        &[
            "k", "f", "mix", "msgs", "probe", "xfer", "install", "KB moved", "sim ms",
        ],
    );
    for &k in &[1usize, 2, 3] {
        for f in 1..=k {
            for &(mix, parity_in_mix) in &[("data", 0usize), ("mixed", 1usize)] {
                if parity_in_mix >= f && mix == "mixed" {
                    continue; // mixed needs at least one data + one parity
                }
                let cfg = Config {
                    group_size: 4,
                    initial_k: k,
                    bucket_capacity: 32,
                    record_len: 64,
                    latency: LatencyModel::default(),
                    node_pool: 2048,
                    ..Config::default()
                };
                let mut file = LhrsFile::new(cfg).expect("config");
                let keys = uniform_keys(2000, 0x75 + (k * 10 + f) as u64);
                file.insert_batch(keys.iter().map(|&key| (key, payload_of(key, 64))))
                    .expect("bulk");

                let group = 1u64;
                let data_kills = f - parity_in_mix;
                for d in 0..data_kills {
                    file.crash_data_bucket(group * 4 + d as u64);
                }
                for q in 0..parity_in_mix {
                    file.crash_parity_bucket(group, q);
                }
                let mut duration = 0;
                let cost = file.cost_of(|fl| {
                    let report = fl.check_group(group);
                    assert!(report.recovered, "recovery must succeed: {report:?}");
                    duration = report.duration_us;
                });
                table.row(vec![
                    k.to_string(),
                    f.to_string(),
                    mix.to_string(),
                    cost.total_messages().to_string(),
                    (cost.count("probe") + cost.count("probe-ack")).to_string(),
                    (cost.count("transfer-req") + cost.count("transfer-data")).to_string(),
                    (cost.count("install") + cost.count("install-ack")).to_string(),
                    f2(cost.total_bytes() as f64 / 1024.0),
                    f2(duration as f64 / 1000.0),
                ]);
            }
        }
    }
    table.note(
        "mix = which shards were killed: 'data' = data buckets only, 'mixed' = data + parity",
    );
    table.note("expected shape: transfers flat in f (always m shards consulted); installs and bytes grow with f; k only gates how large f may get");

    // Bucket-size sweep: messages stay flat, bytes and time scale with b.
    let mut sweep = Table::new(
        "T5b: recovery cost vs bucket size b (m = 4, k = 2, f = 1, 64 B payloads)",
        &["b", "records lost", "msgs", "KB moved", "sim ms"],
    );
    for &b in &[8usize, 32, 128] {
        let cfg = Config {
            group_size: 4,
            initial_k: 2,
            bucket_capacity: b,
            record_len: 64,
            latency: LatencyModel::default(),
            node_pool: 2048,
            ..Config::default()
        };
        let mut file = LhrsFile::new(cfg).expect("config");
        let keys = uniform_keys(40 * b, 0x75B + b as u64);
        file.insert_batch(keys.iter().map(|&key| (key, payload_of(key, 64))))
            .expect("bulk");
        let group = 1u64;
        let victim = group * 4;
        let lost = (0..40 * b as u64)
            .filter(|i| file.address_of(keys[*i as usize]) == victim)
            .count();
        file.crash_data_bucket(victim);
        let mut duration = 0;
        let cost = file.cost_of(|fl| {
            let report = fl.check_group(group);
            assert!(report.recovered);
            duration = report.duration_us;
        });
        sweep.row(vec![
            b.to_string(),
            lost.to_string(),
            cost.total_messages().to_string(),
            f2(cost.total_bytes() as f64 / 1024.0),
            f2(duration as f64 / 1000.0),
        ]);
    }
    sweep.note("expected shape: message count flat in b (bulk shard transfers), bytes ∝ records per bucket, time follows bytes through the bandwidth term");

    // Cross-scheme comparison: rebuilding ONE lost server.
    let mut schemes = Table::new(
        "T5c: one-server rebuild across schemes (b = 32, 64 B payloads, ~2000 records)",
        &[
            "scheme",
            "partners read",
            "msgs",
            "KB moved",
            "needs decode",
        ],
    );
    {
        let mut f = MirrorLh::new(32, 2048, LatencyModel::default());
        for &key in uniform_keys(2000, 0x75C).iter() {
            f.insert(key, payload_of(key, 64));
        }
        f.crash_replica(3, 0);
        let before = f.stats();
        assert!(f.recover_replica(3, 0));
        let cost = f.stats().since(&before);
        schemes.row(vec![
            "LH*m (copy)".into(),
            "1 (the mirror)".into(),
            cost.total_messages().to_string(),
            f2(cost.total_bytes() as f64 / 1024.0),
            "no".into(),
        ]);
    }
    {
        let mut f = StripeLh::new(4, 32, 4096, LatencyModel::default());
        for &key in uniform_keys(2000, 0x75C).iter() {
            f.insert(key, payload_of(key, 64));
        }
        f.crash_replica(3, 1);
        let before = f.stats();
        assert!(f.recover_replica(3, 1));
        let cost = f.stats().since(&before);
        schemes.row(vec![
            "LH*s (XOR)".into(),
            "m = 4 stripe peers".into(),
            cost.total_messages().to_string(),
            f2(cost.total_bytes() as f64 / 1024.0),
            "XOR only".into(),
        ]);
    }
    for k in [1usize, 2] {
        let cfg = Config {
            group_size: 4,
            initial_k: k,
            bucket_capacity: 32,
            record_len: 64,
            latency: LatencyModel::default(),
            node_pool: 2048,
            ..Config::default()
        };
        let mut file = LhrsFile::new(cfg).expect("config");
        for &key in uniform_keys(2000, 0x75C).iter() {
            file.insert(key, payload_of(key, 64)).expect("insert");
        }
        file.crash_data_bucket(4);
        let cost = file.cost_of(|fl| {
            let rep = fl.check_group(1);
            assert!(rep.recovered);
        });
        schemes.row(vec![
            format!("LH*RS k={k} (RS decode)"),
            "m = 4 group shards".into(),
            cost.total_messages().to_string(),
            f2(cost.total_bytes() as f64 / 1024.0),
            if k == 1 {
                "XOR only".into()
            } else {
                "GF(2^8) decode".into()
            },
        ]);
    }
    schemes.row(vec![
        "LH*g ins-bound (analytic)".into(),
        "entire file".into(),
        "≈ 0.7·b·(2m−1) + M_parity".into(),
        "-".into(),
        "XOR only".into(),
    ]);
    schemes.note("LH*m recovers with one bulk copy but pays 100% storage; LH*s and LH*RS read m partners; insertion-bound LH*g (predecessor §3.3 formula) must scan the parity file and chase scattered members — the locality LH*RS's bucket-bound groups restore");
    vec![table, sweep, schemes]
}
