//! **T8 — Update cost: Δ-propagation vs hypothetical re-encode.**
//!
//! Updating a record sends `Δ = new ⊕ old` to each of the k parity
//! buckets: `1 + k` messages and `(1 + k)·cell` bytes, no reads. A naive
//! re-encode design would instead read the whole record group (m cells)
//! and write k parities: `1 + 2m + k` messages. The Δ protocol is what
//! makes LH\*RS updates LH\*-grade.

use lhrs_core::{Config, LhrsFile};
use lhrs_sim::LatencyModel;

use crate::table::f2;
use crate::{payload_of, uniform_keys, Table};

/// Run the experiment.
pub fn run() -> Vec<Table> {
    let mut table = Table::new(
        "T8: update cost (m = 4), measured Δ-commit vs analytic re-encode",
        &[
            "k",
            "payload B",
            "msgs",
            "expect",
            "KB moved",
            "re-encode msgs",
        ],
    );
    for &k in &[1usize, 2, 3] {
        for &plen in &[16usize, 64, 256] {
            let cfg = Config {
                group_size: 4,
                initial_k: k,
                bucket_capacity: 32,
                record_len: 256,
                latency: LatencyModel::instant(),
                node_pool: 2048,
                ..Config::default()
            };
            let mut file = LhrsFile::new(cfg).expect("config");
            let keys = uniform_keys(800, 0x78 + (k * 7 + plen) as u64);
            file.insert_batch(keys.iter().map(|&key| (key, payload_of(key, plen))))
                .expect("bulk");
            // Warm image.
            for &key in &keys[..30] {
                file.lookup(key).expect("warm");
            }
            let n = 100usize;
            let cost = file.cost_of(|f| {
                for &key in &keys[..n] {
                    f.update(key, payload_of(key ^ 0xFF, plen)).expect("update");
                }
            });
            table.row(vec![
                k.to_string(),
                plen.to_string(),
                f2(cost.total_messages() as f64 / n as f64),
                (1 + k).to_string(),
                f2(cost.total_bytes() as f64 / n as f64 / 1024.0),
                (1 + 2 * 4 + k).to_string(),
            ]);
        }
    }
    table.note("re-encode msgs = 1 + 2m + k: what a design without Δ-commits would pay (m reads with replies + k parity writes)");
    table.note("expected shape: msgs = 1 + k flat in payload size; bytes grow with the coding cell (record_len), not the group");
    vec![table]
}
