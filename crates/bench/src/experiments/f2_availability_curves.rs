//! **F2 — File availability vs size: why availability must scale.**
//!
//! The motivating analysis: with per-bucket availability p, a plain LH\*
//! file of M buckets is up with probability p^M → 0; fixed k only delays
//! the decay; growing k with M holds availability roughly constant. These
//! are the curves (here: their table form) behind the scalable-availability
//! design.

use lhrs_core::availability::{file_availability, k_needed, lh_star_availability};

use crate::table::{f4, sci};
use crate::Table;

/// Run the experiment.
pub fn run() -> Vec<Table> {
    let m = 4usize;
    let mut tables = Vec::new();
    for &p in &[0.99f64, 0.999] {
        let mut t = Table::new(
            format!("F2 (p = {p}): file availability P(M), group size m = {m}"),
            &["M", "LH* (k=0)", "k=1", "k=2", "k=3", "k for P≥0.999"],
        );
        for exp in [3u32, 5, 7, 9, 11, 13, 16] {
            let m_buckets = 1u64 << exp;
            let k_req = k_needed(m_buckets, m, p, 0.999, 10)
                .map(|k| k.to_string())
                .unwrap_or_else(|| ">10".into());
            t.row(vec![
                m_buckets.to_string(),
                sci(lh_star_availability(m_buckets, p)),
                f4(file_availability(m_buckets, m, 1, p)),
                f4(file_availability(m_buckets, m, 2, p)),
                f4(file_availability(m_buckets, m, 3, p)),
                k_req,
            ]);
        }
        t.note("expected shape: every fixed-k column decays with M; the k needed for a fixed target grows ≈ logarithmically — the scalable-availability rule");
        tables.push(t);
    }
    tables
}
