//! **T6 — Degraded-mode record recovery cost.**
//!
//! While a bucket rebuild runs, a key search for a lost record is served by
//! reconstructing just that record: find its rank via a parity bucket's key
//! list, read the cell at that rank from m surviving shards, decode one
//! cell. Cost ≈ 2 (find) + 2m (cell reads) messages on top of the failed
//! 2-message fast path — constant in file size, linear in m.

use lhrs_core::{Config, LhrsFile};
use lhrs_sim::LatencyModel;

use crate::{payload_of, uniform_keys, Table};

/// Run the experiment.
pub fn run() -> Vec<Table> {
    let mut table = Table::new(
        "T6: degraded-mode record read vs normal read (k = 2)",
        &[
            "m",
            "normal msgs",
            "degraded msgs",
            "find",
            "cell reads",
            "expect",
        ],
    );
    for &m in &[2usize, 4, 8] {
        let cfg = Config {
            group_size: m,
            initial_k: 2,
            bucket_capacity: 32,
            record_len: 64,
            latency: LatencyModel::default(),
            node_pool: 2048,
            ..Config::default()
        };
        let mut file = LhrsFile::new(cfg).expect("config");
        let keys = uniform_keys(1500, 0x76 + m as u64);
        file.insert_batch(keys.iter().map(|&key| (key, payload_of(key, 64))))
            .expect("bulk");

        // Normal cost for a warmed client.
        for &key in &keys[..30] {
            file.lookup(key).expect("warm");
        }
        let normal = file.cost_of(|f| {
            f.lookup(keys[100]).expect("lookup");
        });

        // Crash the bucket holding a victim key and read it degraded. The
        // first degraded lookup includes detection (suspect + probe) and
        // triggers the background rebuild; isolate the record-recovery
        // messages by kind.
        let victim = keys[200];
        let bucket = file.address_of(victim);
        file.crash_data_bucket(bucket);
        let mut got = None;
        let degraded = file.cost_of(|f| {
            got = f.lookup(victim).expect("degraded lookup");
        });
        assert_eq!(got.unwrap(), payload_of(victim, 64));

        let find = degraded.count("find-record") + degraded.count("find-record-reply");
        let cells = degraded.count("read-cell") + degraded.count("cell-data");
        table.row(vec![
            m.to_string(),
            normal.total_messages().to_string(),
            (find + cells + 2).to_string(), // + suspect + reply
            find.to_string(),
            cells.to_string(),
            format!("2+2+{}", 2 * m),
        ]);
    }
    table.note("degraded msgs = suspect/reply + find-record pair + cell reads; the concurrent bucket rebuild (probes, transfers, installs) is accounted separately in T5");
    table.note("expected shape: constant in file size, 2m cell-read messages");
    vec![table]
}
