//! **T9 — Grouping-binding ablation: insertion-bound (LH\*g) vs
//! bucket-bound (LH\*RS) record groups.**
//!
//! The design decision LH\*RS flipped relative to its predecessor:
//!
//! * *Insertion-bound* groups (LH\*g): a record keeps its `(g, r)` stamp
//!   forever, so **splits cost zero parity messages** — but group members
//!   scatter across the file, so reconstructing one record costs a **scan
//!   of the whole parity file** plus key searches that may land anywhere,
//!   and bucket recovery cannot bulk-read from a fixed partner set.
//! * *Bucket-bound* groups (LH\*RS): every split retracts movers from the
//!   old group's parity and enrols them in the new one (**2k batch
//!   messages per split**) — but all recovery partners sit in one known
//!   group of `m + k` servers, enabling one-lookup record location and
//!   bulk bucket rebuild, and generalising beyond k = 1.
//!
//! Both sides run the same workload at 1-availability (XOR parity).

use lhrs_baselines::GroupedLh;
use lhrs_core::{Config, LhrsFile};
use lhrs_sim::LatencyModel;

use crate::table::f2;
use crate::{payload_of, uniform_keys, Table};

/// Run the experiment.
pub fn run() -> Vec<Table> {
    let n = 2000usize;
    let m = 4usize;
    let keys = uniform_keys(n, 0x79);

    // --- insertion-bound (LH*g) ---
    let mut g = GroupedLh::new(m, 32, 64, 4096, LatencyModel::default());
    for &key in &keys {
        g.insert(key, payload_of(key, 64));
    }
    let g_load = g.stats();
    let g_splits = g_load.count("split");
    // Record recovery cost.
    let before = g.stats();
    let got = g.recover_record(keys[123]);
    assert_eq!(got.unwrap(), payload_of(keys[123], 64));
    let g_rec = g.stats().since(&before);

    // --- bucket-bound (LH*RS, k = 1) ---
    let cfg = Config {
        group_size: m,
        initial_k: 1,
        bucket_capacity: 32,
        record_len: 64,
        latency: LatencyModel::default(),
        node_pool: 4096,
        ..Config::default()
    };
    let mut rs = LhrsFile::new(cfg).expect("config");
    for &key in &keys {
        rs.insert(key, payload_of(key, 64)).expect("insert");
    }
    let rs_load = rs.stats().clone();
    let rs_splits = rs_load.count("split");
    // Record recovery (degraded read) cost: crash the bucket, read the key.
    let victim = keys[123];
    let bucket = rs.address_of(victim);
    rs.crash_data_bucket(bucket);
    let before = rs.stats().clone();
    let got = rs.lookup(victim).expect("degraded lookup");
    assert_eq!(got.unwrap(), payload_of(victim, 64));
    let rs_rec = rs.stats().since(&before);
    let rs_rec_record_only = rs_rec.count("find-record")
        + rs_rec.count("find-record-reply")
        + rs_rec.count("read-cell")
        + rs_rec.count("cell-data")
        + 2; // suspect + reply

    let mut table = Table::new(
        format!("T9: grouping-binding ablation, m = {m}, XOR parity (k = 1), {n} loads"),
        &["metric", "insertion-bound (LH*g)", "bucket-bound (LH*RS)"],
    );
    table.row(vec![
        "splits during load".into(),
        g_splits.to_string(),
        rs_splits.to_string(),
    ]);
    table.row(vec![
        "parity msgs from splits".into(),
        "0 (by construction)".into(),
        format!("{} (2k per split)", rs_load.count("parity-batch")),
    ]);
    table.row(vec![
        "total load msgs/insert".into(),
        f2(g_load.total_messages() as f64 / n as f64),
        f2(rs_load.total_messages() as f64 / n as f64),
    ]);
    table.row(vec![
        "record-recovery msgs".into(),
        format!(
            "{} (scan {} parity buckets + {} member fetches)",
            g_rec.total_messages(),
            g.parity_buckets(),
            g_rec.count("fetch-cell"),
        ),
        format!("{rs_rec_record_only} (1 parity probe + m cell reads)"),
    ]);
    table.row(vec![
        "recovery partner set".into(),
        "entire file (members scatter)".into(),
        format!("one group of {} servers", m + 1),
    ]);
    table.row(vec![
        "max availability".into(),
        "1 (single XOR parity)".into(),
        "k (Reed-Solomon, any k)".into(),
    ]);
    table.note("record recovery for insertion-bound grouping grows with the parity file (≈ M/m scan messages); bucket-bound is O(m), flat in file size — why LH*RS re-bound groups to buckets");
    table.note("the split-cost column is the price LH*RS pays for that: 2k parity batches per split (bulk, one message per parity bucket)");
    vec![table]
}
