//! One module per table/figure of the evaluation. Each `run()` returns the
//! tables it regenerates; binaries and `all_experiments` call these.

pub mod f1_image_convergence;
pub mod f2_availability_curves;
pub mod f3_scalable_availability;
pub mod f4_split_throughput;
pub mod t10_fault_overhead;
pub mod t11_net_throughput;
pub mod t12_restart_cost;
pub mod t1_storage_overhead;
pub mod t2_search_cost;
pub mod t3_insert_cost;
pub mod t4_coding_throughput;
pub mod t5_recovery_cost;
pub mod t6_record_recovery;
pub mod t7_baseline_comparison;
pub mod t8_update_cost;
pub mod t9_grouping_ablation;

/// An experiment entry point: returns the tables it regenerates.
pub type Runner = fn() -> Vec<crate::Table>;

/// `(experiment id, runner)` for every experiment, in report order.
pub fn all() -> Vec<(&'static str, Runner)> {
    vec![
        ("t1_storage_overhead", t1_storage_overhead::run),
        ("t2_search_cost", t2_search_cost::run),
        ("t3_insert_cost", t3_insert_cost::run),
        ("f1_image_convergence", f1_image_convergence::run),
        ("t4_coding_throughput", t4_coding_throughput::run),
        ("t5_recovery_cost", t5_recovery_cost::run),
        ("f2_availability_curves", f2_availability_curves::run),
        ("t6_record_recovery", t6_record_recovery::run),
        ("f3_scalable_availability", f3_scalable_availability::run),
        ("t7_baseline_comparison", t7_baseline_comparison::run),
        ("f4_split_throughput", f4_split_throughput::run),
        ("t8_update_cost", t8_update_cost::run),
        ("t9_grouping_ablation", t9_grouping_ablation::run),
        ("t10_fault_overhead", t10_fault_overhead::run),
        ("t11_net_throughput", t11_net_throughput::run),
        ("t12_restart_cost", t12_restart_cost::run),
    ]
}
