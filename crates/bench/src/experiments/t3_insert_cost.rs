//! **T3 — Insert messaging cost vs availability level k.**
//!
//! An LH\*RS insert costs 1 message to the data bucket plus one Δ-commit
//! per parity bucket: `1 + k` unacknowledged, `1 + 2k` with parity acks.
//! Split maintenance adds an amortised surcharge that also grows with k.

use lhrs_core::{Config, LhrsFile};
use lhrs_sim::LatencyModel;

use crate::table::f2;
use crate::{payload_of, uniform_keys, Table};

/// Run the experiment.
pub fn run() -> Vec<Table> {
    let mut table = Table::new(
        "T3: insert messages vs k (m = 4, steady state, 64 B payloads)",
        &[
            "k",
            "acks",
            "op msgs",
            "expect",
            "with splits",
            "split share",
        ],
    );
    for &k in &[1usize, 2, 3] {
        for &ack in &[false, true] {
            let cfg = Config {
                group_size: 4,
                initial_k: k,
                bucket_capacity: 32,
                record_len: 64,
                ack_parity: ack,
                latency: LatencyModel::instant(),
                node_pool: 2048,
                ..Config::default()
            };
            let mut file = LhrsFile::new(cfg).expect("config");
            let keys = uniform_keys(4000, 0x73 + k as u64 * 7 + ack as u64);
            // Grow phase (amortised cost including splits measured here).
            let grow = file.cost_of(|f| {
                f.insert_batch(keys[..3000].iter().map(|&key| (key, payload_of(key, 64))))
                    .expect("bulk");
            });
            let with_splits = grow.total_messages() as f64 / 3000.0;

            // Steady state: inserts that trigger no split.
            let mut measured = 0usize;
            let mut op_msgs = 0u64;
            for &key in &keys[3000..3200] {
                let cost = file.cost_of(|f| {
                    f.insert(key, payload_of(key, 64)).expect("insert");
                });
                let structural: u64 = [
                    "overflow",
                    "split",
                    "split-load",
                    "split-done",
                    "init-data",
                    "init-parity",
                    "parity-batch",
                ]
                .iter()
                .map(|kind| cost.count(kind))
                .sum();
                if structural == 0 {
                    op_msgs += cost.total_messages();
                    measured += 1;
                }
            }
            let per_op = op_msgs as f64 / measured as f64;
            let expect = if ack { 1 + 2 * k } else { 1 + k };
            table.row(vec![
                k.to_string(),
                if ack { "yes" } else { "no" }.to_string(),
                f2(per_op),
                expect.to_string(),
                f2(with_splits),
                f2((with_splits - per_op).max(0.0)),
            ]);
        }
    }
    table.note("op msgs = steady-state inserts with no split triggered; expect = 1 + k (unacked) or 1 + 2k (parity-acked)");
    table.note(
        "with splits = amortised growth-phase cost; split share = structural surcharge per insert",
    );
    vec![table]
}
