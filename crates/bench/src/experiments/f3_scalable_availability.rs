//! **F3 — Scalable availability: k growing with the file.**
//!
//! The file starts at k = 1 and raises k when M crosses thresholds, keeping
//! availability roughly flat while fixed-k files decay. Also ablates the
//! upgrade policy: eager (every group immediately) vs lazy (on next touch).

use lhrs_core::availability::file_availability;
use lhrs_core::{Config, CoordEvent, LhrsFile, UpgradeMode};
use lhrs_sim::LatencyModel;

use crate::table::{f2, f4};
use crate::{payload_of, uniform_keys, Table};

/// Run the experiment.
pub fn run() -> Vec<Table> {
    let p = 0.99f64;
    let thresholds = vec![8u64, 48];
    let mut series = Table::new(
        "F3a: growth under the scaling rule k: 1→2 (M>8) →3 (M>48), eager upgrades (m=4, p=0.99)",
        &["M", "k_file", "parity", "overhead", "P(scaled)", "P(k=1)"],
    );
    let cfg = Config {
        group_size: 4,
        initial_k: 1,
        bucket_capacity: 32,
        record_len: 64,
        scale_thresholds: thresholds.clone(),
        upgrade_mode: UpgradeMode::Eager,
        latency: LatencyModel::instant(),
        node_pool: 4096,
        ..Config::default()
    };
    let mut file = LhrsFile::new(cfg).expect("config");
    let keys = uniform_keys(6000, 0xF3);
    let checkpoints = [4u64, 8, 16, 32, 64, 128];
    let mut fed = 0usize;
    for &target in &checkpoints {
        while file.bucket_count() < target && fed < keys.len() {
            let key = keys[fed];
            file.insert(key, payload_of(key, 64)).expect("insert");
            fed += 1;
        }
        let r = file.storage_report();
        let m_now = file.bucket_count();
        // Availability of the actual mixed-k file: product over groups.
        let mut p_scaled = 1.0;
        for g in 0..file.group_count() as u64 {
            let cols = (m_now.saturating_sub(g * 4)).min(4) as usize;
            if cols == 0 {
                continue;
            }
            p_scaled *= lhrs_core::availability::group_availability(cols, file.group_k(g), p);
        }
        series.row(vec![
            m_now.to_string(),
            file.k_file().to_string(),
            r.parity_buckets.to_string(),
            f2(r.storage_overhead),
            f4(p_scaled),
            f4(file_availability(m_now, 4, 1, p)),
        ]);
    }
    series.note(
        "expected shape: P(scaled) stays ≈ flat across threshold crossings while P(k=1) decays",
    );

    // Ablation: eager vs lazy upgrade cost and lag.
    let mut ablation = Table::new(
        "F3b: upgrade-policy ablation (grow to M ≈ 64 under the same rule)",
        &[
            "policy",
            "upgrades",
            "xfer msgs",
            "lagging groups",
            "min k",
            "total msgs",
        ],
    );
    for &(mode, label) in &[(UpgradeMode::Eager, "eager"), (UpgradeMode::Lazy, "lazy")] {
        let cfg = Config {
            group_size: 4,
            initial_k: 1,
            bucket_capacity: 32,
            record_len: 64,
            scale_thresholds: thresholds.clone(),
            upgrade_mode: mode,
            latency: LatencyModel::instant(),
            node_pool: 4096,
            ..Config::default()
        };
        let mut file = LhrsFile::new(cfg).expect("config");
        let keys = uniform_keys(3000, 0xF3B);
        file.insert_batch(keys.iter().map(|&key| (key, payload_of(key, 64))))
            .expect("bulk");
        let stats = file.stats().clone();
        let upgrades = file
            .events()
            .iter()
            .filter(|(_, e)| matches!(e, CoordEvent::GroupUpgraded { .. }))
            .count();
        let k_file = file.k_file();
        let lagging = (0..file.group_count() as u64)
            .filter(|&g| file.group_k(g) < k_file)
            .count();
        let min_k = (0..file.group_count() as u64)
            .map(|g| file.group_k(g))
            .min()
            .unwrap_or(0);
        ablation.row(vec![
            label.to_string(),
            upgrades.to_string(),
            (stats.count("transfer-req") + stats.count("transfer-data")).to_string(),
            lagging.to_string(),
            min_k.to_string(),
            stats.total_messages().to_string(),
        ]);
    }
    ablation.note("expected: eager upgrades immediately; lazy defers until a split touches the group — under sustained growth every group is touched soon, so the totals converge and only the upgrade *timing* differs");
    vec![series, ablation]
}
