//! **T10 — Retry overhead vs message loss rate.**
//!
//! The paper's cost model assumes a reliable network; the hardened stack
//! keeps that cost *exactly* on a clean network (timers are armed and
//! cancelled, never sent) and pays for reliability only when faults fire.
//! This experiment measures the per-operation message surcharge of the
//! retransmission machinery (client retry, Go-Back-N Δ resend, parity
//! acks, coordinator re-probes) as the random loss rate rises, against the
//! acked-mode baseline of `1 + 2k` messages per insert.

use lhrs_core::{Config, FaultPlan, LhrsFile};
use lhrs_sim::LatencyModel;

use crate::table::f2;
use crate::{payload_of, uniform_keys, Table};

/// Run the experiment.
pub fn run() -> Vec<Table> {
    let mut table = Table::new(
        "T10: retry overhead vs loss rate (m = 4, k = 2, acked writes + parity)",
        &[
            "loss %",
            "msgs/op",
            "overhead %",
            "lost",
            "suspects",
            "ops failed",
        ],
    );
    let n = 400usize;
    let mut baseline = None;
    for &permille in &[0u64, 5, 10, 30, 50] {
        let cfg = Config {
            group_size: 4,
            initial_k: 2,
            bucket_capacity: 32,
            record_len: 64,
            ack_writes: true,
            ack_parity: true,
            latency: LatencyModel::instant(),
            node_pool: 2048,
            ..Config::default()
        };
        let mut file = LhrsFile::new(cfg).expect("config");
        // Warm past the first splits so steady-state costs dominate.
        let warm = uniform_keys(200, 0xA0);
        file.insert_batch(warm.iter().map(|&k| (k, payload_of(k, 32))))
            .expect("warm");
        if permille > 0 {
            file.set_fault_plan(FaultPlan::new(permille).drop_permille(permille));
        }
        let keys = uniform_keys(n, 0xB7 + permille);
        let mut failed = 0usize;
        let cost = file.cost_of(|f| {
            for &key in &keys {
                if f.insert(key, payload_of(key, 32)).is_err() {
                    failed += 1;
                }
            }
        });
        file.clear_fault_plan();
        file.verify_integrity().expect("parity exact after loss");
        let per_op = cost.total_messages() as f64 / n as f64;
        let base = *baseline.get_or_insert(per_op);
        table.row(vec![
            f2(permille as f64 / 10.0),
            f2(per_op),
            f2((per_op / base - 1.0) * 100.0),
            cost.fault_dropped.to_string(),
            cost.count("suspect").to_string(),
            failed.to_string(),
        ]);
    }
    table.note("baseline (0 % loss) is the paper's acked insert cost: 1 + 2k messages plus split surcharge — the fault machinery is free when the network is clean");
    table.note("parity verified exact after every run: retransmission never double-applies a Δ");
    vec![table]
}
