//! **T11 — Networked throughput vs the simulator's message model.**
//!
//! The `lhrs-net` subsystem runs the *same* node actors as the simulator,
//! over a real transport. This experiment drives a multi-threaded loopback
//! cluster (one thread per server "process", every message round-tripping
//! through the wire codec) with a synchronous client, and reports
//! wall-clock throughput and latency percentiles next to the simulator's
//! exact per-operation message counts for an identical workload — the cost
//! model the paper argues in messages, measured in microseconds.

use std::sync::mpsc::{self, Sender};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lhrs_core::{Config, LhrsFile};
use lhrs_net::client::NetClient;
use lhrs_net::cluster::{ClusterSpec, NodeSpec, Role};
use lhrs_net::host::NodeHost;
use lhrs_net::transport::{HostEvent, LoopbackNet, LoopbackTransport};
use lhrs_sim::LatencyModel;

use crate::table::f2;
use crate::Table;

/// Operations per phase (inserts, then lookups over the same keys).
const OPS: u64 = 1500;
/// Per-operation deadline: far above any observed loopback latency.
const OP_TIMEOUT: Duration = Duration::from_secs(30);

fn bench_config() -> Config {
    Config {
        group_size: 2,
        initial_k: 1,
        bucket_capacity: 256,
        record_len: 32,
        ack_writes: true,
        ack_parity: true,
        node_pool: 64,
        ..Config::default()
    }
}

fn payload_for(key: u64) -> Vec<u8> {
    format!("t11-{key:08}").into_bytes()
}

struct Server {
    tx: Sender<HostEvent>,
    thread: JoinHandle<()>,
}

fn spawn_server(spec: &ClusterSpec, net: &LoopbackNet, id: u32) -> Server {
    let (tx, rx) = mpsc::channel();
    net.register(&[id], tx.clone());
    let spec = spec.clone();
    let net = net.clone();
    let thread_tx = tx.clone();
    let thread = std::thread::spawn(move || {
        let shared = spec.build_shared();
        let transport = LoopbackTransport::new(net, &[id]);
        let mut host = NodeHost::new(shared.clone(), transport, thread_tx, rx);
        host.add_node(id, spec.build_node(&shared, id));
        host.run();
    });
    Server { tx, thread }
}

/// `(ops/sec, p50 µs, p99 µs)` over per-op latencies.
fn stats(latencies: &mut [u64], wall: Duration) -> (f64, u64, u64) {
    latencies.sort_unstable();
    let n = latencies.len();
    let pct = |p: usize| latencies[(n * p / 100).min(n - 1)];
    (n as f64 / wall.as_secs_f64(), pct(50), pct(99))
}

/// Run the experiment.
pub fn run() -> Vec<Table> {
    // --- simulator side: exact message counts for the same workload ---
    let sim_cfg = Config {
        latency: LatencyModel::instant(),
        ..bench_config()
    };
    let mut file = LhrsFile::new(sim_cfg).expect("config");
    let insert_cost = file.cost_of(|f| {
        for key in 1..=OPS {
            f.insert(key, payload_for(key)).expect("sim insert");
        }
    });
    let lookup_cost = file.cost_of(|f| {
        for key in 1..=OPS {
            f.lookup(key).expect("sim lookup");
        }
    });
    let sim_insert = insert_cost.total_messages() as f64 / OPS as f64;
    let sim_lookup = lookup_cost.total_messages() as f64 / OPS as f64;

    // --- loopback cluster: same actors, real threads and codec ---
    let nodes = (0..40u32)
        .map(|id| NodeSpec {
            id,
            addr: format!("loopback:{id}"),
            role: match id {
                0 => Role::Coordinator,
                1 => Role::Client,
                _ => Role::Server,
            },
        })
        .collect();
    let spec = ClusterSpec {
        cfg: bench_config(),
        nodes,
    };
    spec.validate().expect("bench spec valid");

    let net = LoopbackNet::new();
    let servers: Vec<Server> = std::iter::once(0)
        .chain(spec.server_ids())
        .map(|id| spawn_server(&spec, &net, id))
        .collect();

    let (tx, rx) = mpsc::channel();
    net.register(&[1], tx.clone());
    let shared = spec.build_shared();
    let transport = LoopbackTransport::new(net.clone(), &[1]);
    let mut host = NodeHost::new(shared.clone(), transport, tx, rx);
    host.add_node(1, spec.build_node(&shared, 1));
    let mut client = NetClient::new(host, 1, 1);
    assert!(
        client.sync_registry(0, Duration::from_secs(10)),
        "no allocation table"
    );

    let mut insert_lat = Vec::with_capacity(OPS as usize);
    let t0 = Instant::now();
    for key in 1..=OPS {
        let t = Instant::now();
        assert_eq!(
            client.insert(key, payload_for(key), OP_TIMEOUT),
            Some(true),
            "net insert {key}"
        );
        insert_lat.push(t.elapsed().as_micros() as u64);
    }
    let insert_wall = t0.elapsed();

    let mut lookup_lat = Vec::with_capacity(OPS as usize);
    let t0 = Instant::now();
    for key in 1..=OPS {
        let t = Instant::now();
        assert_eq!(
            client.lookup(key, OP_TIMEOUT),
            Some(Some(payload_for(key))),
            "net lookup {key}"
        );
        lookup_lat.push(t.elapsed().as_micros() as u64);
    }
    let lookup_wall = t0.elapsed();

    let net_stats = client.host().transport_stats();
    for s in &servers {
        let _ = s.tx.send(HostEvent::Shutdown);
    }
    for s in servers {
        s.thread.join().expect("server joins");
    }

    let (ins_rate, ins_p50, ins_p99) = stats(&mut insert_lat, insert_wall);
    let (look_rate, look_p50, look_p99) = stats(&mut lookup_lat, lookup_wall);

    let mut table = Table::new(
        "T11: loopback-cluster throughput vs simulator message model (m = 2, k = 1, acked writes + parity)",
        &["phase", "ops", "ops/sec", "p50 us", "p99 us", "sim msgs/op"],
    );
    table.row(vec![
        "insert".into(),
        OPS.to_string(),
        f2(ins_rate),
        ins_p50.to_string(),
        ins_p99.to_string(),
        f2(sim_insert),
    ]);
    table.row(vec![
        "lookup".into(),
        OPS.to_string(),
        f2(look_rate),
        look_p50.to_string(),
        look_p99.to_string(),
        f2(sim_lookup),
    ]);
    table.note(format!(
        "cluster: 38 single-node server threads + 1 client thread over the in-process \
         loopback; every message crosses the real wire codec (client transport: {} msgs, \
         {} bytes, {} dropped)",
        net_stats.sent_msgs, net_stats.sent_bytes, net_stats.dropped
    ));
    table.note(
        "the synchronous client pipelines nothing: one op in flight, so ops/sec ≈ \
         1e6 / p50; the sim column is the paper's cost model (messages/op) for the \
         identical workload",
    );
    vec![table]
}
