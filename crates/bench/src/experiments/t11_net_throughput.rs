//! **T11 — Networked throughput vs the simulator's message model.**
//!
//! The `lhrs-net` subsystem runs the *same* node actors as the simulator,
//! over a real transport. This experiment drives an in-process loopback
//! cluster (every client↔server message round-tripping through the wire
//! codec) and reports wall-clock throughput and latency percentiles next
//! to the simulator's exact per-operation message counts for an identical
//! workload — the cost model the paper argues in messages, measured in
//! microseconds.
//!
//! Four sections:
//!
//! * **T11a, closed loop, seed-identical config** — the multiplexed
//!   client keeps a bounded window of operations in flight, submitting
//!   the next as each completes. The window sweep (1/8/64/256) shows the
//!   one-op-in-flight wall falling: window 1 is the old synchronous
//!   client (ops/sec ≈ 1e6/p50); wider windows overlap requests, as the
//!   paper's LH\* performance claims assume. Small (256-record) buckets
//!   mean the run splits repeatedly, so LH\* split churn is in the
//!   measured window, exactly as in the seed number.
//! * **T11b, closed loop, bucket-resident** — the same sweep with
//!   buckets sized so the key range stays resident (no splits): the
//!   pipeline's own ceiling, separated from split cost.
//! * **T11c, multi-client sustained** — independent client threads with
//!   disjoint key ranges against one shared cluster, 30k ops each.
//! * **T11d, open loop** — operations arrive on a fixed schedule whether
//!   or not earlier ones completed, the honest model of independent
//!   clients. Reported latency is against the *scheduled* arrival, so
//!   queueing delay at saturation is visible instead of being absorbed
//!   into a slower submission rate (closed-loop coordinated omission).
//!
//! Server processes use the consolidated hosting shape: one event-driven
//! `NodeHost` thread carries the coordinator and every server node, the
//! way an LH\*RS server process hosts many buckets. Co-hosted hops
//! deliver decoded messages through the host's own queue; client-boundary
//! messages cross the codec and an mpsc channel. On the single-core bench
//! host, client and servers timeshare one CPU, so wide-window rates here
//! are bounded by total per-op CPU, not by the protocol's round trips.

use std::collections::HashMap;
use std::sync::mpsc::{self, Sender};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lhrs_core::api::OpOutcome;
use lhrs_core::msg::ClientOp;
use lhrs_core::{Config, LhrsFile};
use lhrs_net::client::NetClient;
use lhrs_net::cluster::{ClusterSpec, NodeSpec, Role};
use lhrs_net::host::NodeHost;
use lhrs_net::transport::{HostEvent, LoopbackNet, LoopbackTransport};
use lhrs_sim::LatencyModel;

use crate::table::f2;
use crate::Table;

/// Operations per closed-loop phase (inserts, then lookups, same keys).
const OPS: u64 = 3000;
/// In-flight window sweep for the closed-loop sections.
const WINDOWS: [usize; 4] = [1, 8, 64, 256];
/// `(clients, window per client)` sweep for the multi-client section.
const MC_SWEEP: [(usize, usize); 3] = [(1, 64), (1, 256), (2, 64)];
/// Operations per client in the multi-client section.
const MC_OPS: u64 = 30_000;
/// Operations per open-loop run.
const OPEN_OPS: u64 = 12_000;
/// Offered arrival rates (ops/s) for the open-loop section.
const RATES: [u64; 3] = [50_000, 200_000, 800_000];
/// Per-operation deadline: far above any observed loopback latency.
const OP_TIMEOUT: Duration = Duration::from_secs(30);
/// Overall drain deadline for one open-loop run.
const DRAIN_DEADLINE: Duration = Duration::from_secs(60);

/// The seed benchmark's config, verbatim: small buckets, so the insert
/// phase splits its way up to ~12 buckets and split churn is measured.
fn bench_config() -> Config {
    Config {
        group_size: 2,
        initial_k: 1,
        bucket_capacity: 256,
        record_len: 32,
        ack_writes: true,
        ack_parity: true,
        node_pool: 64,
        ..Config::default()
    }
}

/// Bucket-resident config: buckets sized so the key range never splits.
/// Used for the pipeline-ceiling sweep, the multi-client section, and the
/// open-loop section (an arrival schedule should measure the pipeline,
/// not split churn).
fn resident_config() -> Config {
    Config {
        bucket_capacity: 16_384,
        ..bench_config()
    }
}

fn payload_for(key: u64) -> Vec<u8> {
    format!("t11-{key:08}").into_bytes()
}

struct Server {
    tx: Sender<HostEvent>,
    thread: JoinHandle<()>,
}

/// One host thread carrying *all* of `ids` — the consolidated-hosting
/// shape: co-hosted nodes deliver to each other through their own event
/// queue, so a hop between them costs a queue push, not a context switch.
fn spawn_host_group(spec: &ClusterSpec, net: &LoopbackNet, ids: Vec<u32>) -> Server {
    let (tx, rx) = mpsc::channel();
    net.register(&ids, tx.clone());
    let spec = spec.clone();
    let net = net.clone();
    let thread_tx = tx.clone();
    let thread = std::thread::spawn(move || {
        let shared = spec.build_shared();
        let transport = LoopbackTransport::new(net, &ids);
        let mut host = NodeHost::new(shared.clone(), transport, thread_tx, rx);
        for &id in &ids {
            host.add_node(id, spec.build_node(&shared, id));
        }
        host.run();
    });
    Server { tx, thread }
}

/// A fresh loopback cluster — one consolidated server-host thread
/// (coordinator + 38 server nodes) — and a synced multiplexed client on
/// its own thread. Each phase gets its own cluster so sweep points are
/// independent.
fn build_cluster(cfg: Config) -> (Vec<Server>, NetClient<LoopbackTransport>) {
    let nodes = (0..40u32)
        .map(|id| NodeSpec {
            id,
            addr: format!("loopback:{id}"),
            role: match id {
                0 => Role::Coordinator,
                1 => Role::Client,
                _ => Role::Server,
            },
        })
        .collect();
    let spec = ClusterSpec { cfg, nodes };
    spec.validate().expect("bench spec valid");

    let net = LoopbackNet::new();
    let group: Vec<u32> = std::iter::once(0).chain(spec.server_ids()).collect();
    let servers: Vec<Server> = vec![spawn_host_group(&spec, &net, group)];

    let (tx, rx) = mpsc::channel();
    net.register(&[1], tx.clone());
    let shared = spec.build_shared();
    let transport = LoopbackTransport::new(net.clone(), &[1]);
    let mut host = NodeHost::new(shared.clone(), transport, tx, rx);
    host.add_node(1, spec.build_node(&shared, 1));
    let mut client = NetClient::new(host, 1, 1);
    client.set_op_timeout(OP_TIMEOUT);
    assert!(
        client.sync_registry(0, Duration::from_secs(10)),
        "no allocation table"
    );
    (servers, client)
}

fn teardown(servers: Vec<Server>) {
    for s in &servers {
        let _ = s.tx.send(HostEvent::Shutdown);
    }
    for s in servers {
        s.thread.join().expect("server joins");
    }
}

/// `(ops/sec, p50 µs, p99 µs)` over per-op latencies.
fn stats(latencies: &mut [u64], wall: Duration) -> (f64, u64, u64) {
    latencies.sort_unstable();
    let n = latencies.len();
    let pct = |p: usize| latencies[(n * p / 100).min(n - 1)];
    (n as f64 / wall.as_secs_f64(), pct(50), pct(99))
}

/// One closed-loop sweep point: insert then look up `OPS` keys through a
/// `window`-wide pipeline on a fresh cluster. Returns
/// `((rate, p50, p99), (rate, p50, p99))` for insert and lookup.
#[allow(clippy::type_complexity)]
fn closed_loop_phase(cfg: Config, window: usize) -> ((f64, u64, u64), (f64, u64, u64)) {
    let (servers, mut client) = build_cluster(cfg);

    let inserts: Vec<ClientOp> = (1..=OPS)
        .map(|key| ClientOp::Insert {
            key,
            payload: payload_for(key),
        })
        .collect();
    let t0 = Instant::now();
    let results = client.run_window(inserts, window);
    let insert_wall = t0.elapsed();
    let mut insert_lat: Vec<u64> = results
        .iter()
        .enumerate()
        .map(|(i, (outcome, lat))| {
            assert_eq!(
                *outcome,
                OpOutcome::Done,
                "insert {} failed at window {window}",
                i + 1
            );
            lat.as_micros() as u64
        })
        .collect();

    let lookups: Vec<ClientOp> = (1..=OPS).map(|key| ClientOp::Lookup { key }).collect();
    let t0 = Instant::now();
    let results = client.run_window(lookups, window);
    let lookup_wall = t0.elapsed();
    let mut lookup_lat: Vec<u64> = results
        .iter()
        .enumerate()
        .map(|(i, (outcome, lat))| {
            let key = i as u64 + 1;
            assert_eq!(
                *outcome,
                OpOutcome::Value(Some(payload_for(key))),
                "lookup {key} failed at window {window}"
            );
            lat.as_micros() as u64
        })
        .collect();

    teardown(servers);
    (
        stats(&mut insert_lat, insert_wall),
        stats(&mut lookup_lat, lookup_wall),
    )
}

/// The multi-client aggregate: `clients` independent client threads, each
/// with its own connection, request-id space, and windowed
/// pipeline, inserting disjoint key ranges into one shared cluster.
/// Returns `(aggregate ops/s, pooled p50, pooled p99)` — the aggregate is
/// total ops over the *slowest* client's wall, the honest cluster rate.
fn multi_client_phase(clients: usize, window: usize) -> (f64, u64, u64) {
    let client_ids: Vec<u32> = (1..=clients as u32).collect();
    let nodes = (0..12u32)
        .map(|id| NodeSpec {
            id,
            addr: format!("loopback:{id}"),
            role: if id == 0 {
                Role::Coordinator
            } else if client_ids.contains(&id) {
                Role::Client
            } else {
                Role::Server
            },
        })
        .collect();
    let spec = ClusterSpec {
        cfg: resident_config(),
        nodes,
    };
    spec.validate().expect("bench spec valid");

    let net = LoopbackNet::new();
    let group: Vec<u32> = std::iter::once(0).chain(spec.server_ids()).collect();
    let servers: Vec<Server> = vec![spawn_host_group(&spec, &net, group)];

    let barrier = std::sync::Arc::new(std::sync::Barrier::new(clients));
    let workers: Vec<JoinHandle<(Vec<u64>, Duration)>> = client_ids
        .iter()
        .map(|&id| {
            let spec = spec.clone();
            let net = net.clone();
            let barrier = barrier.clone();
            let base = (id as u64 - 1) * MC_OPS;
            std::thread::spawn(move || {
                let (tx, rx) = mpsc::channel();
                net.register(&[id], tx.clone());
                let shared = spec.build_shared();
                let transport = LoopbackTransport::new(net, &[id]);
                let mut host = NodeHost::new(shared.clone(), transport, tx, rx);
                host.add_node(id, spec.build_node(&shared, id));
                let mut client = NetClient::new(host, id, 1);
                client.set_op_timeout(OP_TIMEOUT);
                assert!(
                    client.sync_registry(0, Duration::from_secs(10)),
                    "client {id}: no allocation table"
                );
                let ops: Vec<ClientOp> = (base + 1..=base + MC_OPS)
                    .map(|key| ClientOp::Insert {
                        key,
                        payload: payload_for(key),
                    })
                    .collect();
                barrier.wait();
                let t0 = Instant::now();
                let results = client.run_window(ops, window);
                let wall = t0.elapsed();
                let lat: Vec<u64> = results
                    .iter()
                    .enumerate()
                    .map(|(i, (outcome, lat))| {
                        assert_eq!(
                            *outcome,
                            OpOutcome::Done,
                            "client {id} insert {} failed",
                            base + i as u64 + 1
                        );
                        lat.as_micros() as u64
                    })
                    .collect();
                (lat, wall)
            })
        })
        .collect();

    let mut pooled: Vec<u64> = Vec::with_capacity(clients * MC_OPS as usize);
    let mut slowest = Duration::ZERO;
    for w in workers {
        let (lat, wall) = w.join().expect("client thread joins");
        pooled.extend(lat);
        slowest = slowest.max(wall);
    }
    teardown(servers);

    let total = pooled.len() as f64;
    let (_, p50, p99) = stats(&mut pooled, slowest);
    (total / slowest.as_secs_f64(), p50, p99)
}

/// One open-loop run: submit `OPEN_OPS` inserts on a fixed `rate` (ops/s)
/// schedule, never waiting for completions, and measure each op against
/// its *scheduled* arrival. Returns `(achieved ops/s, p50, p99)`.
fn open_loop_phase(rate: u64) -> (f64, u64, u64) {
    let (servers, mut client) = build_cluster(resident_config());

    let interval = Duration::from_nanos(1_000_000_000 / rate.max(1));
    let mut arrivals: HashMap<u64, Instant> = HashMap::with_capacity(OPEN_OPS as usize);
    let mut latencies: Vec<u64> = Vec::with_capacity(OPEN_OPS as usize);
    let drain = |client: &mut NetClient<LoopbackTransport>,
                 arrivals: &mut HashMap<u64, Instant>,
                 latencies: &mut Vec<u64>| {
        let now = Instant::now();
        for (id, result) in client.take_completed() {
            let outcome = OpOutcome::from_result(result);
            assert!(
                matches!(outcome, OpOutcome::Done),
                "open-loop insert {id} failed: {outcome:?}"
            );
            if let Some(due) = arrivals.remove(&id) {
                latencies.push(now.saturating_duration_since(due).as_micros() as u64);
            }
        }
    };

    let t0 = Instant::now();
    for i in 0..OPEN_OPS {
        let due = t0 + interval.saturating_mul(i as u32);
        // Pace the arrival: pump (nonblocking) until the schedule says go.
        while Instant::now() < due {
            client.pump(Duration::ZERO);
            drain(&mut client, &mut arrivals, &mut latencies);
        }
        let key = i + 1;
        let id = client.submit(ClientOp::Insert {
            key,
            payload: payload_for(key),
        });
        arrivals.insert(id, due);
    }
    // Drain the tail.
    let deadline = Instant::now() + DRAIN_DEADLINE;
    while !arrivals.is_empty() {
        assert!(
            Instant::now() < deadline,
            "open-loop run at {rate} ops/s never drained: {} ops outstanding",
            arrivals.len()
        );
        client.pump(Duration::from_millis(1));
        drain(&mut client, &mut arrivals, &mut latencies);
    }
    let wall = t0.elapsed();

    teardown(servers);
    let (achieved, p50, p99) = stats(&mut latencies, wall);
    (achieved, p50, p99)
}

/// One closed-loop sweep table over `WINDOWS`. Returns the table plus the
/// window-1 and best insert rates for the ratio notes.
fn closed_sweep(title: &str, cfg: Config, sim_insert: f64, sim_lookup: f64) -> (Table, f64, f64) {
    let mut table = Table::new(
        title,
        &[
            "window",
            "phase",
            "ops",
            "ops/sec",
            "p50 us",
            "p99 us",
            "sim msgs/op",
        ],
    );
    let mut w1_insert = 0.0f64;
    let mut best_insert = 0.0f64;
    for window in WINDOWS {
        let (ins, look) = closed_loop_phase(cfg.clone(), window);
        if window == 1 {
            w1_insert = ins.0;
        }
        best_insert = best_insert.max(ins.0);
        table.row(vec![
            window.to_string(),
            "insert".into(),
            OPS.to_string(),
            f2(ins.0),
            ins.1.to_string(),
            ins.2.to_string(),
            f2(sim_insert),
        ]);
        table.row(vec![
            window.to_string(),
            "lookup".into(),
            OPS.to_string(),
            f2(look.0),
            look.1.to_string(),
            look.2.to_string(),
            f2(sim_lookup),
        ]);
    }
    (table, w1_insert, best_insert)
}

/// Exact simulator message counts per op for `cfg`'s workload.
fn sim_costs(cfg: Config) -> (f64, f64) {
    let sim_cfg = Config {
        latency: LatencyModel::instant(),
        ..cfg
    };
    let mut file = LhrsFile::new(sim_cfg).expect("config");
    let insert_cost = file.cost_of(|f| {
        for key in 1..=OPS {
            f.insert(key, payload_for(key)).expect("sim insert");
        }
    });
    let lookup_cost = file.cost_of(|f| {
        for key in 1..=OPS {
            f.lookup(key).expect("sim lookup");
        }
    });
    (
        insert_cost.total_messages() as f64 / OPS as f64,
        lookup_cost.total_messages() as f64 / OPS as f64,
    )
}

/// Run the experiment.
pub fn run() -> Vec<Table> {
    let (seed_sim_insert, seed_sim_lookup) = sim_costs(bench_config());
    let (res_sim_insert, res_sim_lookup) = sim_costs(resident_config());

    // --- T11a: closed loop, seed-identical config (splits included) ---
    let (mut seeded, seeded_w1, seeded_best) = closed_sweep(
        "T11a: closed-loop window sweep, seed-identical config (m = 2, k = 1, acked writes + parity, 256-record buckets, splits included)",
        bench_config(),
        seed_sim_insert,
        seed_sim_lookup,
    );
    seeded.note(
        "fresh cluster per sweep point: one consolidated server-host thread (coordinator + \
         38 server nodes — an LH*RS server process hosts many buckets) plus 1 client \
         thread; every client↔server message crosses the real wire codec. Window 1 is the \
         old synchronous client: one op in flight, ops/sec ≈ 1e6/p50. The seed measured \
         ~39.0k inserts/s, p99 127µs in this config; the window-1 path itself tightened \
         (event-driven host, batched dispatch), and wider windows overlap independent \
         requests. Per-op latency at wide windows includes time queued in the window.",
    );
    seeded.note(format!(
        "best insert throughput is {:.1}× this run's window-1 (synchronous) rate with \
         split churn in the measured window: capacity-256 buckets split ~12 times during \
         the run, and a splitting bucket freezes writes while it partitions — part of the \
         remaining wall is LH* split cost, not the pipeline (see T11b)",
        seeded_best / seeded_w1.max(1.0)
    ));

    // --- T11b: closed loop, bucket-resident (the pipeline's ceiling) ---
    let (mut resident, resident_w1, resident_best) = closed_sweep(
        "T11b: closed-loop window sweep, bucket-resident regime (same config, 16384-record buckets, no splits)",
        resident_config(),
        res_sim_insert,
        res_sim_lookup,
    );
    resident.note(format!(
        "the pipeline's own ceiling, split cost excluded: best insert throughput is \
         {:.1}× this run's window-1 rate and {:.1}× the seed's ~39.0k synchronous rate. \
         On this single-core bench host every thread timeshares one CPU, so the widest \
         windows are bound by total per-op processing (~{:.1}µs/insert across client, \
         data, and parity work; an insert costs {} messages to a lookup's {}), not by \
         round-trip latency — the one-op-in-flight wall (ops/sec ≈ 1e6/p50) is gone",
        resident_best / resident_w1.max(1.0),
        resident_best / 39_000.0,
        1e6 / resident_best.max(1.0),
        res_sim_insert.round() as u64,
        res_sim_lookup.round() as u64,
    ));

    // --- T11c: multi-client sustained aggregate ---
    let mut multi = Table::new(
        "T11c: multi-client sustained aggregate inserts (30k ops/client, 16384-record buckets)",
        &[
            "clients",
            "window",
            "ops",
            "agg ops/sec",
            "p50 us",
            "p99 us",
            "vs 1-op-in-flight",
        ],
    );
    for (clients, window) in MC_SWEEP {
        let (agg, p50, p99) = multi_client_phase(clients, window);
        multi.row(vec![
            clients.to_string(),
            window.to_string(),
            (clients as u64 * MC_OPS).to_string(),
            f2(agg),
            p50.to_string(),
            p99.to_string(),
            format!("{:.1}x", agg / resident_w1.max(1.0)),
        ]);
    }
    multi.note(
        "independent client threads, each with its own connection, request-id space, and \
         pipelined window, inserting disjoint key ranges into one shared cluster; the \
         aggregate rate is total ops over the slowest client's wall. This is the regime \
         the paper's performance claims assume — many clients overlapping requests \
         against many buckets. On one core, extra client threads add scheduling overhead \
         rather than parallelism, so the single-client wide-window rows are the honest \
         sustained ceiling here.",
    );

    // --- T11d: open loop, fixed arrival schedules ---
    let mut open = Table::new(
        "T11d: open-loop arrival schedules, inserts (same cluster shape, 16384-record buckets)",
        &["offered ops/s", "ops", "achieved ops/s", "p50 us", "p99 us"],
    );
    for rate in RATES {
        let (achieved, p50, p99) = open_loop_phase(rate);
        open.row(vec![
            rate.to_string(),
            OPEN_OPS.to_string(),
            f2(achieved),
            p50.to_string(),
            p99.to_string(),
        ]);
    }
    open.note(
        "arrivals are scheduled up front and submitted on time whether or not earlier ops \
         completed; latency is measured from the scheduled arrival, so queueing delay at \
         saturation shows up here instead of vanishing into a slower submission rate \
         (coordinated omission). Achieved < offered means the cluster saturated.",
    );
    vec![seeded, resident, multi, open]
}
