//! Plain-text result tables, aligned like the tables in the paper.

/// A titled table with aligned columns.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table / figure identifier and caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows (already formatted cells).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Start a table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Append a note line.
    pub fn note(&mut self, s: impl Into<String>) -> &mut Self {
        self.notes.push(s.into());
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a float with 4 decimals.
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Format in scientific notation.
pub fn sci(x: f64) -> String {
    format!("{x:.2e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("T0: demo", &["k", "value"]);
        t.row(vec!["1".into(), "10".into()]);
        t.row(vec!["22".into(), "3".into()]);
        t.note("hello");
        let s = t.render();
        assert!(s.contains("== T0: demo =="));
        assert!(s.contains("note: hello"));
        let lines: Vec<&str> = s.lines().collect();
        // title + header + separator + 2 rows + note
        assert_eq!(lines.len(), 6);
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        Table::new("x", &["a", "b"]).row(vec!["1".into()]);
    }
}
