//! Workload generators shared by all experiments: uniform keys (what the
//! papers assume for the LH hash family) and deterministic payloads.

use lhrs_testkit::Rng;

/// `n` distinct pseudo-random uniform keys, reproducible from `seed`.
pub fn uniform_keys(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = Rng::new(seed);
    let mut keys = std::collections::HashSet::with_capacity(n);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let k: u64 = rng.next_u64();
        if keys.insert(k) {
            out.push(k);
        }
    }
    out
}

/// A deterministic payload of `len` bytes derived from the key.
pub fn payload_of(key: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (key.wrapping_mul(0x9E37_79B9).wrapping_add(i as u64) >> 7) as u8)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_distinct_and_reproducible() {
        let a = uniform_keys(1000, 42);
        let b = uniform_keys(1000, 42);
        assert_eq!(a, b);
        let set: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), 1000);
        assert_ne!(uniform_keys(10, 1), uniform_keys(10, 2));
    }

    #[test]
    fn payloads_deterministic() {
        assert_eq!(payload_of(5, 32), payload_of(5, 32));
        assert_ne!(payload_of(5, 32), payload_of(6, 32));
        assert_eq!(payload_of(9, 0).len(), 0);
    }
}
