//! Experiment harness regenerating every table and figure of the LH\*RS
//! evaluation (see `DESIGN.md` §3 for the experiment index and
//! `EXPERIMENTS.md` for recorded results).
//!
//! Each experiment lives in [`experiments`] as a function returning
//! [`Table`]s; the `src/bin/*` binaries are thin wrappers, and
//! `all_experiments` runs the whole suite and writes `bench_out/*.txt`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod microbench;
mod table;
mod workload;

pub use table::Table;
pub use workload::{payload_of, uniform_keys};

use std::io::Write as _;
use std::path::PathBuf;

/// Where experiment outputs are written (`bench_out/` under the workspace
/// root or the current directory).
pub fn out_dir() -> PathBuf {
    let dir = std::env::var_os("LHRS_BENCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("bench_out"));
    std::fs::create_dir_all(&dir).expect("create bench_out");
    dir
}

/// Print tables to stdout and persist them under `bench_out/<id>.txt`.
pub fn emit(id: &str, tables: &[Table]) {
    let mut text = String::new();
    for t in tables {
        text.push_str(&t.render());
        text.push('\n');
    }
    print!("{text}");
    let path = out_dir().join(format!("{id}.txt"));
    let mut f = std::fs::File::create(&path).expect("create output file");
    f.write_all(text.as_bytes()).expect("write output file");
    eprintln!("[saved {}]", path.display());
}
