//! Micro-benchmarks of the linear-hashing address math (A1/A2/A3) and the
//! single-node LH table — all on the client/server fast path.

use lhrs_bench::microbench::Bench;
use lhrs_lh::{a2_route, ClientImage, FileState, LhTable};

fn bench_addressing() {
    let mut state = FileState::new(1);
    for _ in 0..1000 {
        state.split();
    }
    let g = Bench::group("lh_addressing");
    {
        let mut key = 0u64;
        g.run("a1_address", 0, || {
            key = key.wrapping_add(0x9E3779B97F4A7C15);
            std::hint::black_box(state.address(key))
        });
    }
    {
        let mut key = 0u64;
        g.run("a2_route", 0, || {
            key = key.wrapping_add(0x9E3779B97F4A7C15);
            let a = state.address(key);
            std::hint::black_box(a2_route(a, state.level_of(a), key, 1))
        });
    }
    {
        let mut img = ClientImage::new(1);
        let mut key = 0u64;
        g.run("a3_adjust", 0, || {
            key = key.wrapping_add(0x9E3779B97F4A7C15);
            let a = state.address(key);
            img.adjust(state.level_of(a), a);
            std::hint::black_box(img.bucket_count())
        });
    }
}

fn bench_table() {
    let g = Bench::group("lh_table");
    g.run("lh_table_insert_10k", 0, || {
        let mut t = LhTable::new(16);
        for k in 0..10_000u64 {
            t.insert(lhrs_lh::scramble(k), k);
        }
        t
    });
    let mut t = LhTable::new(16);
    for k in 0..100_000u64 {
        t.insert(lhrs_lh::scramble(k), k);
    }
    let mut k = 0u64;
    g.run("lh_table_get", 0, || {
        k = (k + 1) % 100_000;
        std::hint::black_box(t.get(lhrs_lh::scramble(k)))
    });
}

fn main() {
    bench_addressing();
    bench_table();
}
