//! Criterion micro-benchmarks of the linear-hashing address math (A1/A2/A3)
//! and the single-node LH table — all on the client/server fast path.

use criterion::{criterion_group, criterion_main, Criterion};
use lhrs_lh::{a2_route, ClientImage, FileState, LhTable};

fn bench_addressing(c: &mut Criterion) {
    let mut state = FileState::new(1);
    for _ in 0..1000 {
        state.split();
    }
    c.bench_function("a1_address", |b| {
        let mut key = 0u64;
        b.iter(|| {
            key = key.wrapping_add(0x9E3779B97F4A7C15);
            std::hint::black_box(state.address(key))
        });
    });
    c.bench_function("a2_route", |b| {
        let mut key = 0u64;
        b.iter(|| {
            key = key.wrapping_add(0x9E3779B97F4A7C15);
            let a = state.address(key);
            std::hint::black_box(a2_route(a, state.level_of(a), key, 1))
        });
    });
    c.bench_function("a3_adjust", |b| {
        let mut img = ClientImage::new(1);
        let mut key = 0u64;
        b.iter(|| {
            key = key.wrapping_add(0x9E3779B97F4A7C15);
            let a = state.address(key);
            img.adjust(state.level_of(a), a);
            std::hint::black_box(img.bucket_count())
        });
    });
}

fn bench_table(c: &mut Criterion) {
    c.bench_function("lh_table_insert_10k", |b| {
        b.iter(|| {
            let mut t = LhTable::new(16);
            for k in 0..10_000u64 {
                t.insert(lhrs_lh::scramble(k), k);
            }
            t
        });
    });
    let mut t = LhTable::new(16);
    for k in 0..100_000u64 {
        t.insert(lhrs_lh::scramble(k), k);
    }
    c.bench_function("lh_table_get", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 1) % 100_000;
            std::hint::black_box(t.get(lhrs_lh::scramble(k)))
        });
    });
}

criterion_group!(benches, bench_addressing, bench_table);
criterion_main!(benches);
