//! Micro-benchmarks of the coding kernels on LH*RS's critical path: GF
//! multiply-accumulate, full encode, Δ-commit, and erasure decode.

use lhrs_bench::microbench::Bench;
use lhrs_gf::{GaloisField, Gf16, Gf4, Gf8};
use lhrs_rs::RsCode;

const LEN: usize = 64 * 1024;

fn bench_mul_add() {
    let src: Vec<u8> = (0..LEN).map(|i| (i * 7 + 1) as u8).collect();
    let g = Bench::group("gf_mul_add_slice");
    {
        let mut dst = vec![0u8; LEN];
        g.run("gf8_xor_path(c=1)", LEN as u64, || {
            Gf8::mul_add_slice(1, &src, &mut dst)
        });
    }
    {
        let mut dst = vec![0u8; LEN];
        g.run("gf8_general(c=0x1d)", LEN as u64, || {
            Gf8::mul_add_slice(0x1D, &src, &mut dst)
        });
    }
    {
        let mut dst = vec![0u8; LEN];
        g.run("gf4_general(c=7)", LEN as u64, || {
            Gf4::mul_add_slice(7, &src, &mut dst)
        });
    }
    {
        let mut dst = vec![0u8; LEN];
        g.run("gf16_general(c=0x100b)", LEN as u64, || {
            Gf16::mul_add_slice(0x100B, &src, &mut dst)
        });
    }
}

fn bench_encode() {
    let g = Bench::group("rs_encode");
    for &(m, k) in &[(4usize, 1usize), (4, 2), (8, 2), (16, 4)] {
        let code: RsCode<Gf8> = RsCode::new(m, k).unwrap();
        let data: Vec<Vec<u8>> = (0..m)
            .map(|i| (0..LEN).map(|b| ((i * 131 + b) % 251) as u8).collect())
            .collect();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        g.run(&format!("gf8/m{m}_k{k}"), (m * LEN) as u64, || {
            code.encode(&refs).unwrap()
        });
    }
}

fn bench_delta() {
    let code: RsCode<Gf8> = RsCode::new(4, 3).unwrap();
    let delta: Vec<u8> = (0..LEN).map(|i| (i * 3) as u8).collect();
    let g = Bench::group("rs_apply_delta");
    {
        let mut parity = vec![0u8; LEN];
        g.run("col0_parity0(xor)", LEN as u64, || {
            code.apply_delta(0, 0, &delta, &mut parity)
        });
    }
    {
        let mut parity = vec![0u8; LEN];
        g.run("col2_parity2(mul)", LEN as u64, || {
            code.apply_delta(2, 2, &delta, &mut parity)
        });
    }
}

fn bench_decode() {
    let g = Bench::group("rs_reconstruct");
    for &(m, k, e) in &[(4usize, 2usize, 1usize), (4, 2, 2), (8, 3, 3)] {
        let code: RsCode<Gf8> = RsCode::new(m, k).unwrap();
        let data: Vec<Vec<u8>> = (0..m)
            .map(|i| (0..LEN).map(|b| ((i * 37 + b) % 251) as u8).collect())
            .collect();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs).unwrap();
        let full: Vec<Vec<u8>> = data.iter().chain(parity.iter()).cloned().collect();
        g.run(&format!("gf8/m{m}_k{k}_e{e}"), (m * LEN) as u64, || {
            let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
            for slot in shards.iter_mut().take(e) {
                *slot = None;
            }
            code.reconstruct(&mut shards).unwrap();
            shards
        });
    }
}

fn main() {
    bench_mul_add();
    bench_encode();
    bench_delta();
    bench_decode();
}
