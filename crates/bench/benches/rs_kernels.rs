//! Criterion micro-benchmarks of the coding kernels on LH*RS's critical
//! path: GF multiply-accumulate, full encode, Δ-commit, and erasure decode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lhrs_gf::{GaloisField, Gf16, Gf4, Gf8};
use lhrs_rs::RsCode;

const LEN: usize = 64 * 1024;

fn bench_mul_add(c: &mut Criterion) {
    let src: Vec<u8> = (0..LEN).map(|i| (i * 7 + 1) as u8).collect();
    let mut g = c.benchmark_group("gf_mul_add_slice");
    g.throughput(Throughput::Bytes(LEN as u64));
    g.bench_function("gf8_xor_path(c=1)", |b| {
        let mut dst = vec![0u8; LEN];
        b.iter(|| Gf8::mul_add_slice(1, &src, &mut dst));
    });
    g.bench_function("gf8_general(c=0x1d)", |b| {
        let mut dst = vec![0u8; LEN];
        b.iter(|| Gf8::mul_add_slice(0x1D, &src, &mut dst));
    });
    g.bench_function("gf4_general(c=7)", |b| {
        let mut dst = vec![0u8; LEN];
        b.iter(|| Gf4::mul_add_slice(7, &src, &mut dst));
    });
    g.bench_function("gf16_general(c=0x100b)", |b| {
        let mut dst = vec![0u8; LEN];
        b.iter(|| Gf16::mul_add_slice(0x100B, &src, &mut dst));
    });
    g.finish();
}

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("rs_encode");
    for &(m, k) in &[(4usize, 1usize), (4, 2), (8, 2), (16, 4)] {
        let code: RsCode<Gf8> = RsCode::new(m, k).unwrap();
        let data: Vec<Vec<u8>> = (0..m)
            .map(|i| (0..LEN).map(|b| ((i * 131 + b) % 251) as u8).collect())
            .collect();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        g.throughput(Throughput::Bytes((m * LEN) as u64));
        g.bench_with_input(BenchmarkId::new("gf8", format!("m{m}_k{k}")), &refs, |b, refs| {
            b.iter(|| code.encode(refs).unwrap());
        });
    }
    g.finish();
}

fn bench_delta(c: &mut Criterion) {
    let code: RsCode<Gf8> = RsCode::new(4, 3).unwrap();
    let delta: Vec<u8> = (0..LEN).map(|i| (i * 3) as u8).collect();
    let mut g = c.benchmark_group("rs_apply_delta");
    g.throughput(Throughput::Bytes(LEN as u64));
    g.bench_function("col0_parity0(xor)", |b| {
        let mut parity = vec![0u8; LEN];
        b.iter(|| code.apply_delta(0, 0, &delta, &mut parity));
    });
    g.bench_function("col2_parity2(mul)", |b| {
        let mut parity = vec![0u8; LEN];
        b.iter(|| code.apply_delta(2, 2, &delta, &mut parity));
    });
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("rs_reconstruct");
    for &(m, k, e) in &[(4usize, 2usize, 1usize), (4, 2, 2), (8, 3, 3)] {
        let code: RsCode<Gf8> = RsCode::new(m, k).unwrap();
        let data: Vec<Vec<u8>> = (0..m)
            .map(|i| (0..LEN).map(|b| ((i * 37 + b) % 251) as u8).collect())
            .collect();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs).unwrap();
        let full: Vec<Vec<u8>> = data.iter().chain(parity.iter()).cloned().collect();
        g.throughput(Throughput::Bytes((m * LEN) as u64));
        g.bench_with_input(
            BenchmarkId::new("gf8", format!("m{m}_k{k}_e{e}")),
            &full,
            |b, full| {
                b.iter(|| {
                    let mut shards: Vec<Option<Vec<u8>>> =
                        full.iter().cloned().map(Some).collect();
                    for slot in shards.iter_mut().take(e) {
                        *slot = None;
                    }
                    code.reconstruct(&mut shards).unwrap();
                    shards
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_mul_add, bench_encode, bench_delta, bench_decode);
criterion_main!(benches);
