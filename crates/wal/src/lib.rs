//! lhrs-wal: the file-backed [`BucketStore`] for durable LH\*RS buckets.
//!
//! Layout of one store directory (one per logical shard):
//!
//! ```text
//! <dir>/SNAPSHOT        magic "LHS1" + one CRC frame (latest bucket state)
//! <dir>/wal-<seq>.log   magic "LHW1" + CRC frames (ops since the snapshot)
//! ```
//!
//! Every record is framed as `[LEB128 length][CRC-32 LE][payload]`, the
//! CRC covering the payload only. Appends go to the highest-numbered
//! segment; segments rotate at a size cap so truncation after a snapshot
//! is a directory scan + unlink, never an in-place rewrite. Snapshots are
//! atomic: write `SNAPSHOT.tmp`, fsync, rename, fsync the directory —
//! a crash leaves either the old snapshot or the new one, never a hybrid.
//!
//! Replay is defensive, per the crash model of the paper's high-availability
//! claim: a torn final record (power loss mid-append) is treated as clean
//! EOF, a CRC mismatch truncates to the clean prefix and is surfaced as
//! [`TailState::Corrupt`], and no input — hostile or otherwise — panics.
//! What the local log cannot provide, the Δ-suffix handshake with the
//! parity group reconciles (see `lhrs-core::storage`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::rc::Rc;

use lhrs_core::storage::{BucketStore, Replay, StoreError, StoreFactory, StoreId, TailState};
use lhrs_core::FsyncPolicy;

/// Magic prefix of a snapshot file.
const SNAP_MAGIC: &[u8; 4] = b"LHS1";
/// Magic prefix of a log segment.
const SEG_MAGIC: &[u8; 4] = b"LHW1";
/// Default segment-rotation threshold.
const DEFAULT_SEGMENT_CAP: u64 = 1 << 20;
/// A length claim above this is corruption, not a large record.
const MAX_FRAME_LEN: u64 = 1 << 30;

// ----- integrity primitives -----

/// CRC-32 (IEEE 802.3, reflected), computed bitwise: the log is not the
/// bottleneck of a simulated SDDS, and the bitwise form needs no table —
/// no lookups, no casts, nothing for the panic-freedom audit to flag.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Append a LEB128 varint.
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let low = 0x7F & v;
        let byte = u8::try_from(low).unwrap_or(0x7F); // masked to 7 bits; cannot fail
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Outcome of pulling one varint off a byte stream.
enum VarintEnd {
    /// Decoded value + bytes consumed.
    Value(u64, usize),
    /// The stream ended mid-varint (torn write).
    Short,
    /// More than 10 continuation bytes: not a varint at all.
    Malformed,
}

fn get_varint(buf: &[u8]) -> VarintEnd {
    let mut v = 0u64;
    let mut shift = 0u32;
    for (i, &byte) in buf.iter().enumerate() {
        if shift >= 64 {
            return VarintEnd::Malformed;
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return VarintEnd::Value(v, i + 1);
        }
        shift += 7;
    }
    VarintEnd::Short
}

fn get_u32_le(buf: &[u8]) -> Option<u32> {
    let mut it = buf.iter();
    let mut v = 0u32;
    for shift in [0u32, 8, 16, 24] {
        v |= u32::from(*it.next()?) << shift;
    }
    Some(v)
}

/// Encode one framed record.
fn put_frame(out: &mut Vec<u8>, payload: &[u8]) {
    put_varint(out, payload.len() as u64);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// What scanning the frames of one buffer found.
struct Scan {
    /// Intact payloads, in order.
    frames: Vec<Vec<u8>>,
    /// Byte offset of the end of the last intact frame.
    clean_len: usize,
    /// `Clean`, or why the scan stopped early.
    tail: TailState,
}

/// Walk `buf` frame by frame from `start`, stopping at the first torn or
/// corrupt record. Never panics; never reads past the buffer.
fn scan_frames(buf: &[u8], start: usize) -> Scan {
    let mut frames = Vec::new();
    let mut pos = start;
    while let Some(rest) = buf.get(pos..) {
        if rest.is_empty() {
            break;
        }
        let dropped = (buf.len() - pos) as u64;
        let (len, len_bytes) = match get_varint(rest) {
            VarintEnd::Value(len, n) => (len, n),
            VarintEnd::Short => {
                return Scan {
                    frames,
                    clean_len: pos,
                    tail: TailState::Torn {
                        bytes_dropped: dropped,
                    },
                };
            }
            VarintEnd::Malformed => {
                return Scan {
                    frames,
                    clean_len: pos,
                    tail: TailState::Corrupt {
                        context: "malformed frame length".into(),
                        bytes_dropped: dropped,
                    },
                };
            }
        };
        if len > MAX_FRAME_LEN {
            return Scan {
                frames,
                clean_len: pos,
                tail: TailState::Corrupt {
                    context: format!("frame claims {len} bytes"),
                    bytes_dropped: dropped,
                },
            };
        }
        let Ok(len) = usize::try_from(len) else {
            return Scan {
                frames,
                clean_len: pos,
                tail: TailState::Corrupt {
                    context: format!("frame length {len} overflows"),
                    bytes_dropped: dropped,
                },
            };
        };
        let body_at = pos + len_bytes;
        let Some(crc_bytes) = buf.get(body_at..body_at + 4) else {
            return Scan {
                frames,
                clean_len: pos,
                tail: TailState::Torn {
                    bytes_dropped: dropped,
                },
            };
        };
        let Some(want) = get_u32_le(crc_bytes) else {
            return Scan {
                frames,
                clean_len: pos,
                tail: TailState::Torn {
                    bytes_dropped: dropped,
                },
            };
        };
        let Some(payload) = buf.get(body_at + 4..body_at + 4 + len) else {
            return Scan {
                frames,
                clean_len: pos,
                tail: TailState::Torn {
                    bytes_dropped: dropped,
                },
            };
        };
        if crc32(payload) != want {
            return Scan {
                frames,
                clean_len: pos,
                tail: TailState::Corrupt {
                    context: "frame CRC mismatch".into(),
                    bytes_dropped: dropped,
                },
            };
        }
        frames.push(payload.to_vec());
        pos = body_at + 4 + len;
    }
    Scan {
        frames,
        clean_len: pos,
        tail: TailState::Clean,
    }
}

// ----- the file-backed store -----

fn io_err(what: &str, e: &std::io::Error) -> StoreError {
    StoreError::Io(format!("{what}: {e}"))
}

/// A file-backed write-ahead log + snapshot store for one bucket.
///
/// See the crate docs for the on-disk format. One `FileWal` owns its
/// directory exclusively; opening repairs any torn tail left by a crash
/// (the partial record is truncated away and later segments — unreachable
/// past the tear — are unlinked).
pub struct FileWal {
    dir: PathBuf,
    seg: File,
    seg_seq: u64,
    seg_len: u64,
    segment_cap: u64,
    fsync: FsyncPolicy,
    appended: u64,
    op_bytes: u64,
    tail: TailState,
    dirty: bool,
    /// Appends buffered since the last durability point (fsync, snapshot,
    /// or reset) — the group-commit batch the next `sync` covers.
    unsynced: u64,
}

/// The log segments of `dir`, sorted by sequence number.
fn segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    let mut segs = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| io_err("read_dir", &e))?;
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let Some(name) = name.to_str() else {
            continue;
        };
        let seq = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".log"))
            .and_then(|s| s.parse::<u64>().ok());
        if let Some(seq) = seq {
            segs.push((seq, path));
        }
    }
    segs.sort();
    Ok(segs)
}

/// Ordered IO-event probe, test builds only. `MemDisk` (the simulated
/// store the kill drills run against) has no directory model, so the
/// "rename/create is durable-ordered" property of `FileWal` cannot be
/// crash-injected there; instead every durability-relevant IO step records
/// an event here and the tests assert the order directly. This checks the
/// sequence of calls, not the kernel's behaviour — an honest but weaker
/// guarantee than a crash test.
#[cfg(test)]
mod probe {
    use std::cell::RefCell;
    thread_local! {
        static EVENTS: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    }
    pub fn record(ev: &'static str) {
        EVENTS.with(|e| e.borrow_mut().push(ev));
    }
    pub fn take() -> Vec<&'static str> {
        EVENTS.with(|e| e.borrow_mut().drain(..).collect())
    }
}

#[cfg(not(test))]
mod probe {
    pub fn record(_ev: &'static str) {}
}

fn create_segment(dir: &Path, seq: u64) -> Result<File, StoreError> {
    let path = dir.join(format!("wal-{seq}.log"));
    let mut f = OpenOptions::new()
        .create(true)
        .truncate(true)
        .write(true)
        .open(&path)
        .map_err(|e| io_err("create segment", &e))?;
    f.write_all(SEG_MAGIC)
        .map_err(|e| io_err("write segment magic", &e))?;
    probe::record("segment_create");
    Ok(f)
}

/// Fsync a directory so a rename/unlink inside it is durable (best-effort
/// on platforms where directories cannot be opened).
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    probe::record("sync_dir");
}

impl FileWal {
    /// Open (or create) the store in `dir`, repairing any torn tail.
    pub fn open(dir: impl Into<PathBuf>, fsync: FsyncPolicy) -> Result<FileWal, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err("create store dir", &e))?;
        let segs = segments(&dir)?;

        let mut appended = 0u64;
        let mut op_bytes = 0u64;
        let mut tail = TailState::Clean;
        let mut keep_upto = segs.len(); // segments after a tear are unreachable
        for (i, (_, path)) in segs.iter().enumerate() {
            let buf = fs::read(path).map_err(|e| io_err("read segment", &e))?;
            if buf.get(..SEG_MAGIC.len()) != Some(SEG_MAGIC.as_slice()) {
                tail = TailState::Corrupt {
                    context: format!("segment {} has no magic", path.display()),
                    bytes_dropped: buf.len() as u64,
                };
                // The whole segment is unusable: truncate it to just the
                // magic so appends can continue cleanly.
                let _ = fs::write(path, SEG_MAGIC);
                keep_upto = i + 1;
                break;
            }
            let scan = scan_frames(&buf, SEG_MAGIC.len());
            appended += scan.frames.len() as u64;
            op_bytes += scan.frames.iter().map(|f| f.len() as u64).sum::<u64>();
            if !matches!(scan.tail, TailState::Clean) {
                tail = scan.tail;
                let f = OpenOptions::new()
                    .write(true)
                    .open(path)
                    .map_err(|e| io_err("open segment for repair", &e))?;
                f.set_len(scan.clean_len as u64)
                    .map_err(|e| io_err("truncate torn tail", &e))?;
                let _ = f.sync_all();
                keep_upto = i + 1;
                break;
            }
        }
        // Unlink segments past a tear: their contents follow a hole in the
        // op sequence and can never be replayed.
        for (_, path) in segs.iter().skip(keep_upto) {
            if let TailState::Torn { bytes_dropped } | TailState::Corrupt { bytes_dropped, .. } =
                &mut tail
            {
                if let Ok(meta) = fs::metadata(path) {
                    *bytes_dropped += meta.len();
                }
            }
            let _ = fs::remove_file(path);
        }

        let (seg_seq, seg) = match segs.get(..keep_upto).and_then(|s| s.last()) {
            Some((seq, path)) => {
                let f = OpenOptions::new()
                    .append(true)
                    .open(path)
                    .map_err(|e| io_err("open segment", &e))?;
                (*seq, f)
            }
            None => (0, create_segment(&dir, 0)?),
        };
        let seg_len = seg
            .metadata()
            .map_err(|e| io_err("segment metadata", &e))?
            .len();
        Ok(FileWal {
            dir,
            seg,
            seg_seq,
            seg_len,
            segment_cap: DEFAULT_SEGMENT_CAP,
            fsync,
            appended,
            op_bytes,
            tail,
            dirty: false,
            unsynced: 0,
        })
    }

    /// Set the segment-rotation threshold (bytes); returns `self` for
    /// builder-style use.
    pub fn with_segment_cap(mut self, bytes: u64) -> FileWal {
        self.segment_cap = bytes.max(64);
        self
    }

    /// Whether `dir` holds a seedable store (a snapshot was ever written).
    pub fn has_state(dir: &Path) -> bool {
        dir.join("SNAPSHOT").is_file()
    }

    /// Modification time of `dir`'s snapshot, if one exists — lets a host
    /// with several surviving stores rank them newest-first.
    pub fn state_mtime(dir: &Path) -> Option<std::time::SystemTime> {
        fs::metadata(dir.join("SNAPSHOT")).ok()?.modified().ok()
    }

    fn rotate(&mut self) -> Result<(), StoreError> {
        if !matches!(self.fsync, FsyncPolicy::Never) {
            self.seg
                .sync_data()
                .map_err(|e| io_err("sync on rotation", &e))?;
            probe::record("segment_sync");
        }
        self.seg_seq += 1;
        self.seg = create_segment(&self.dir, self.seg_seq)?;
        self.seg_len = SEG_MAGIC.len() as u64;
        // The new segment's directory entry must survive a crash before
        // anything is appended to it: ops written to a file the directory
        // has forgotten are lost without any torn-tail evidence.
        if !matches!(self.fsync, FsyncPolicy::Never) {
            sync_dir(&self.dir);
        }
        Ok(())
    }
}

impl BucketStore for FileWal {
    fn append(&mut self, op: &[u8]) -> Result<(), StoreError> {
        let mut frame = Vec::with_capacity(op.len() + 12);
        put_frame(&mut frame, op);
        self.seg
            .write_all(&frame)
            .map_err(|e| io_err("append", &e))?;
        self.seg_len += frame.len() as u64;
        self.appended += 1;
        self.op_bytes += op.len() as u64;
        match self.fsync {
            FsyncPolicy::Always => {
                self.seg.sync_data().map_err(|e| io_err("fsync", &e))?;
            }
            FsyncPolicy::Batch | FsyncPolicy::Never => {
                self.dirty = true;
                self.unsynced += 1;
            }
        }
        if self.seg_len >= self.segment_cap {
            self.rotate()?;
        }
        Ok(())
    }

    fn snapshot(&mut self, state: &[u8]) -> Result<(), StoreError> {
        let tmp = self.dir.join("SNAPSHOT.tmp");
        let mut buf = Vec::with_capacity(state.len() + 16);
        buf.extend_from_slice(SNAP_MAGIC);
        put_frame(&mut buf, state);
        {
            let mut f = File::create(&tmp).map_err(|e| io_err("create snapshot tmp", &e))?;
            f.write_all(&buf)
                .map_err(|e| io_err("write snapshot", &e))?;
            f.sync_all().map_err(|e| io_err("sync snapshot", &e))?;
            probe::record("snapshot_tmp_fsync");
        }
        fs::rename(&tmp, self.dir.join("SNAPSHOT")).map_err(|e| io_err("rename snapshot", &e))?;
        probe::record("snapshot_rename");
        sync_dir(&self.dir);
        // The log is now redundant: unlink every segment and start fresh.
        for (_, path) in segments(&self.dir)? {
            let _ = fs::remove_file(path);
        }
        sync_dir(&self.dir);
        self.seg_seq += 1;
        self.seg = create_segment(&self.dir, self.seg_seq)?;
        self.seg_len = SEG_MAGIC.len() as u64;
        sync_dir(&self.dir);
        self.appended = 0;
        self.op_bytes = 0;
        self.tail = TailState::Clean;
        self.dirty = false;
        self.unsynced = 0;
        Ok(())
    }

    fn replay(&mut self) -> Result<Replay, StoreError> {
        let snap_path = self.dir.join("SNAPSHOT");
        let snapshot = match fs::read(&snap_path) {
            Ok(buf) => {
                if buf.get(..SNAP_MAGIC.len()) != Some(SNAP_MAGIC.as_slice()) {
                    return Err(StoreError::Corrupt("snapshot has no magic".into()));
                }
                let scan = scan_frames(&buf, SNAP_MAGIC.len());
                match (scan.frames.into_iter().next(), scan.tail) {
                    (Some(state), TailState::Clean) => Some(state),
                    _ => {
                        // The snapshot is the base of the fold: a damaged
                        // one cannot seed a bucket (unlike a damaged log
                        // tail, which only costs the suffix).
                        return Err(StoreError::Corrupt("snapshot frame damaged".into()));
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(io_err("read snapshot", &e)),
        };
        let mut ops = Vec::new();
        for (_, path) in segments(&self.dir)? {
            let buf = fs::read(&path).map_err(|e| io_err("read segment", &e))?;
            if buf.get(..SEG_MAGIC.len()) != Some(SEG_MAGIC.as_slice()) {
                break;
            }
            let scan = scan_frames(&buf, SEG_MAGIC.len());
            ops.extend(scan.frames);
            if !matches!(scan.tail, TailState::Clean) {
                break;
            }
        }
        Ok(Replay {
            snapshot,
            ops,
            tail: self.tail.clone(),
        })
    }

    fn reset(&mut self) -> Result<(), StoreError> {
        let _ = fs::remove_file(self.dir.join("SNAPSHOT"));
        let _ = fs::remove_file(self.dir.join("SNAPSHOT.tmp"));
        for (_, path) in segments(&self.dir)? {
            let _ = fs::remove_file(path);
        }
        sync_dir(&self.dir);
        self.seg_seq = 0;
        self.seg = create_segment(&self.dir, 0)?;
        self.seg_len = SEG_MAGIC.len() as u64;
        sync_dir(&self.dir);
        self.appended = 0;
        self.op_bytes = 0;
        self.tail = TailState::Clean;
        self.dirty = false;
        self.unsynced = 0;
        Ok(())
    }

    fn appended_since_snapshot(&self) -> u64 {
        self.appended
    }

    fn wal_bytes(&self) -> u64 {
        self.op_bytes
    }

    fn sync(&mut self) -> Result<(), StoreError> {
        if self.dirty {
            self.seg.sync_data().map_err(|e| io_err("sync", &e))?;
            self.dirty = false;
            self.unsynced = 0;
        }
        Ok(())
    }

    fn unsynced_ops(&self) -> u64 {
        self.unsynced
    }
}

// ----- factory -----

/// Directory for one shard's store under `root`.
pub fn store_dir(root: &Path, id: &StoreId) -> PathBuf {
    match id {
        StoreId::Data { bucket } => root.join(format!("data-{bucket}")),
        StoreId::Parity { group, index } => root.join(format!("parity-{group}-{index}")),
    }
}

/// A [`StoreFactory`] rooted at `root`: each shard gets its own
/// subdirectory. Returns `None` from the factory (modelling a dead disk)
/// when the directory cannot be opened.
pub fn factory(root: PathBuf, fsync: FsyncPolicy) -> StoreFactory {
    Rc::new(move |_node, id| {
        let dir = store_dir(&root, id);
        FileWal::open(dir, fsync)
            .ok()
            .map(|w| Box::new(w) as Box<dyn BucketStore>)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::SeqCst);
        std::env::temp_dir().join(format!("lhrs-wal-{tag}-{}-{n}", std::process::id()))
    }

    #[test]
    fn crc32_matches_known_vector() {
        // IEEE CRC-32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            match get_varint(&buf) {
                VarintEnd::Value(got, used) => {
                    assert_eq!(got, v);
                    assert_eq!(used, buf.len());
                }
                _ => panic!("varint {v} failed to decode"),
            }
        }
    }

    #[test]
    fn append_snapshot_replay_roundtrip() {
        let dir = temp_dir("roundtrip");
        let mut w = FileWal::open(&dir, FsyncPolicy::Never).unwrap();
        w.snapshot(b"state-1").unwrap();
        w.append(b"op-a").unwrap();
        w.append(b"op-bb").unwrap();
        assert_eq!(w.appended_since_snapshot(), 2);
        assert_eq!(w.wal_bytes(), 9);
        drop(w);

        let mut w = FileWal::open(&dir, FsyncPolicy::Never).unwrap();
        assert_eq!(w.appended_since_snapshot(), 2);
        let rep = w.replay().unwrap();
        assert_eq!(rep.snapshot.as_deref(), Some(&b"state-1"[..]));
        assert_eq!(rep.ops, vec![b"op-a".to_vec(), b"op-bb".to_vec()]);
        assert_eq!(rep.tail, TailState::Clean);

        // A new snapshot truncates the log.
        w.snapshot(b"state-2").unwrap();
        assert_eq!(w.appended_since_snapshot(), 0);
        let rep = w.replay().unwrap();
        assert_eq!(rep.snapshot.as_deref(), Some(&b"state-2"[..]));
        assert!(rep.ops.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_rotate_and_replay_in_order() {
        let dir = temp_dir("rotate");
        let mut w = FileWal::open(&dir, FsyncPolicy::Never)
            .unwrap()
            .with_segment_cap(64);
        w.snapshot(b"base").unwrap();
        for i in 0..32u8 {
            w.append(&[i; 8]).unwrap();
        }
        assert!(segments(&dir).unwrap().len() > 1, "rotation never fired");
        drop(w);
        let mut w = FileWal::open(&dir, FsyncPolicy::Never).unwrap();
        let rep = w.replay().unwrap();
        assert_eq!(rep.ops.len(), 32);
        for (i, op) in rep.ops.iter().enumerate() {
            assert_eq!(op, &vec![u8::try_from(i).unwrap(); 8]);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_clean_eof() {
        let dir = temp_dir("torn");
        let mut w = FileWal::open(&dir, FsyncPolicy::Always).unwrap();
        w.snapshot(b"base").unwrap();
        w.append(b"keep-me").unwrap();
        w.append(b"torn-away").unwrap();
        drop(w);
        // Chop mid-record: drop the last 3 bytes of the segment.
        let (_, path) = segments(&dir).unwrap().pop().unwrap();
        let len = fs::metadata(&path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 3)
            .unwrap();

        let mut w = FileWal::open(&dir, FsyncPolicy::Always).unwrap();
        assert_eq!(w.appended_since_snapshot(), 1);
        let rep = w.replay().unwrap();
        assert_eq!(rep.ops, vec![b"keep-me".to_vec()]);
        assert!(matches!(rep.tail, TailState::Torn { bytes_dropped } if bytes_dropped > 0));
        // The repair means appends after the reopen land cleanly.
        w.append(b"after").unwrap();
        drop(w);
        let mut w = FileWal::open(&dir, FsyncPolicy::Always).unwrap();
        let rep = w.replay().unwrap();
        assert_eq!(rep.ops, vec![b"keep-me".to_vec(), b"after".to_vec()]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_surfaces_corrupt_tail() {
        let dir = temp_dir("flip");
        let mut w = FileWal::open(&dir, FsyncPolicy::Always).unwrap();
        w.snapshot(b"base").unwrap();
        w.append(b"good-record").unwrap();
        w.append(b"bad-record!").unwrap();
        drop(w);
        let (_, path) = segments(&dir).unwrap().pop().unwrap();
        let mut buf = fs::read(&path).unwrap();
        let at = buf.len() - 2; // inside the second payload
        buf[at] ^= 0x40;
        fs::write(&path, &buf).unwrap();

        let mut w = FileWal::open(&dir, FsyncPolicy::Always).unwrap();
        assert_eq!(w.appended_since_snapshot(), 1);
        let rep = w.replay().unwrap();
        assert_eq!(rep.ops, vec![b"good-record".to_vec()]);
        assert!(matches!(rep.tail, TailState::Corrupt { .. }));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damaged_snapshot_refuses_to_seed() {
        let dir = temp_dir("snapdmg");
        let mut w = FileWal::open(&dir, FsyncPolicy::Always).unwrap();
        w.snapshot(b"important-state").unwrap();
        drop(w);
        let path = dir.join("SNAPSHOT");
        let mut buf = fs::read(&path).unwrap();
        let at = buf.len() - 4;
        buf[at] ^= 0x01;
        fs::write(&path, &buf).unwrap();
        let mut w = FileWal::open(&dir, FsyncPolicy::Always).unwrap();
        assert!(matches!(w.replay(), Err(StoreError::Corrupt(_))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reset_erases_everything() {
        let dir = temp_dir("reset");
        let mut w = FileWal::open(&dir, FsyncPolicy::Never).unwrap();
        w.snapshot(b"state").unwrap();
        w.append(b"op").unwrap();
        w.reset().unwrap();
        assert!(!FileWal::has_state(&dir));
        assert_eq!(w.appended_since_snapshot(), 0);
        let rep = w.replay().unwrap();
        assert!(rep.snapshot.is_none());
        assert!(rep.ops.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_and_snapshot_rename_are_durable_ordered() {
        // `MemDisk` has no directory model, so this asserts the *sequence*
        // of durability-relevant IO calls via the probe (crate docs on
        // `mod probe`): the old segment's data reaches disk before the new
        // segment's directory entry exists, and that entry is itself
        // sync_dir'd before any op can land in the new file; a snapshot
        // fsyncs the tmp file before the rename and sync_dirs after it.
        let dir = temp_dir("ordered");
        let mut w = FileWal::open(&dir, FsyncPolicy::Always)
            .unwrap()
            .with_segment_cap(64);
        let _ = probe::take(); // discard open()'s events

        while segments(&dir).unwrap().len() < 2 {
            w.append(&[7u8; 8]).unwrap();
        }
        let ev = probe::take();
        let pos = |needle: &str| {
            ev.iter()
                .position(|e| *e == needle)
                .unwrap_or_else(|| panic!("{needle} missing from {ev:?}"))
        };
        assert!(
            pos("segment_sync") < pos("segment_create"),
            "old segment data must be durable before the new entry: {ev:?}"
        );
        assert!(
            pos("segment_create") < pos("sync_dir"),
            "the new entry must be sync_dir'd: {ev:?}"
        );

        w.snapshot(b"state").unwrap();
        let ev = probe::take();
        let pos = |needle: &str| {
            ev.iter()
                .position(|e| *e == needle)
                .unwrap_or_else(|| panic!("{needle} missing from {ev:?}"))
        };
        assert!(pos("snapshot_tmp_fsync") < pos("snapshot_rename"), "{ev:?}");
        assert!(pos("snapshot_rename") < pos("sync_dir"), "{ev:?}");
        let trailing_create = ev
            .iter()
            .rposition(|e| *e == "segment_create")
            .unwrap_or_else(|| panic!("no segment_create in {ev:?}"));
        assert!(
            ev.get(trailing_create..)
                .is_some_and(|rest| rest.contains(&"sync_dir")),
            "the fresh segment after a snapshot must be sync_dir'd: {ev:?}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn factory_roots_each_shard_in_its_own_dir() {
        let root = temp_dir("factory");
        let f = factory(root.clone(), FsyncPolicy::Never);
        let data_id = StoreId::Data { bucket: 4 };
        let parity_id = StoreId::Parity { group: 1, index: 0 };
        let mut a = f(lhrs_core::NodeId(7), &data_id).unwrap();
        let mut b = f(lhrs_core::NodeId(8), &parity_id).unwrap();
        a.snapshot(b"A").unwrap();
        b.snapshot(b"B").unwrap();
        assert!(FileWal::has_state(&store_dir(&root, &data_id)));
        assert!(FileWal::has_state(&store_dir(&root, &parity_id)));
        assert_eq!(a.replay().unwrap().snapshot.as_deref(), Some(&b"A"[..]));
        assert_eq!(b.replay().unwrap().snapshot.as_deref(), Some(&b"B"[..]));
        fs::remove_dir_all(&root).unwrap();
    }
}
