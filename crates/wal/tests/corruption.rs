//! Crash-shaped damage drills for [`lhrs_wal::FileWal`]: every byte prefix
//! of a real log, and random bit flips anywhere in it, must yield either a
//! clean replay of a prefix of the appended ops or a structured error —
//! never a panic, and never fabricated ops.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use lhrs_core::storage::{BucketStore, TailState};
use lhrs_core::FsyncPolicy;
use lhrs_testkit::{cases, Rng};
use lhrs_wal::FileWal;

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::SeqCst);
    std::env::temp_dir().join(format!("lhrs-walfx-{tag}-{}-{n}", std::process::id()))
}

/// Deterministic op payload for index `i` (length varies to exercise the
/// varint framing).
fn op(i: u64) -> Vec<u8> {
    let mut v = format!("op-{i}-").into_bytes();
    v.extend(std::iter::repeat_n(i as u8, (i % 23) as usize));
    v
}

/// Build a store with a snapshot and `n` logged ops; return its dir and
/// the segment path (single-segment by construction).
fn seed_store(tag: &str, n: u64) -> (PathBuf, PathBuf) {
    let dir = temp_dir(tag);
    let mut wal = FileWal::open(dir.clone(), FsyncPolicy::Never).unwrap();
    wal.snapshot(b"snapshot-state").unwrap();
    for i in 0..n {
        wal.append(&op(i)).unwrap();
    }
    wal.sync().unwrap();
    let seg = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .find(|p| {
            p.file_name()
                .map(|f| f.to_string_lossy().starts_with("wal-"))
                .unwrap_or(false)
        })
        .expect("seeded store has a segment");
    (dir, seg)
}

/// Reopen the store and check the contract: the snapshot survives and the
/// replayed ops are exactly a prefix of what was appended. A cut landing
/// precisely on a frame boundary is indistinguishable from a clean
/// shutdown after fewer ops — by design: the Δ-suffix handshake, not the
/// log format, reconciles a replayed state that is behind the parity
/// group. Anywhere else the damage must be visible as a non-clean tail.
fn check_replay(dir: &PathBuf, n: u64, mid_frame_cut: bool) {
    let mut wal = FileWal::open(dir.clone(), FsyncPolicy::Never).expect("open repairs damage");
    let replay = wal.replay().expect("repaired store must replay");
    assert_eq!(replay.snapshot.as_deref(), Some(&b"snapshot-state"[..]));
    assert!(replay.ops.len() as u64 <= n, "no fabricated ops");
    for (i, got) in replay.ops.iter().enumerate() {
        assert_eq!(got, &op(i as u64), "replayed op {i} must match");
    }
    if mid_frame_cut {
        assert!(
            !matches!(replay.tail, TailState::Clean),
            "a mid-frame cut must surface as a torn or corrupt tail"
        );
    }
    // The reopened store must accept new appends and replay them.
    let boundary = replay.ops.len() as u64;
    wal.append(&op(boundary)).unwrap();
    let again = wal.replay().unwrap();
    assert_eq!(again.ops.len() as u64, boundary + 1);
    let _ = std::fs::remove_dir_all(dir);
}

/// A kill can land mid-write at any byte: every prefix of the segment must
/// reopen to a clean prefix of the ops.
#[test]
fn every_truncation_point_replays_a_clean_prefix() {
    const N: u64 = 12;
    let (dir, seg) = seed_store("trunc-probe", N);
    let full = std::fs::read(&seg).unwrap();
    let _ = std::fs::remove_dir_all(&dir);

    // Clean frame boundaries: after the 4-byte magic, each frame is a
    // 1-byte length varint (all seeded ops are < 128 B), a 4-byte CRC, and
    // the payload. Cuts exactly here mimic a clean shutdown.
    let mut boundaries = std::collections::BTreeSet::new();
    let mut pos = 4usize;
    boundaries.insert(pos);
    while pos < full.len() {
        pos += 1 + 4 + full[pos] as usize;
        boundaries.insert(pos);
    }

    for cut in 0..=full.len() {
        let dir = temp_dir("trunc");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("SNAPSHOT"), {
            // Re-seed the snapshot file verbatim from a pristine store so
            // only the segment is damaged.
            let (src, _) = seed_store("trunc-snap", 0);
            let bytes = std::fs::read(src.join("SNAPSHOT")).unwrap();
            let _ = std::fs::remove_dir_all(&src);
            bytes
        })
        .unwrap();
        std::fs::write(seg.file_name().map(|f| dir.join(f)).unwrap(), &full[..cut]).unwrap();
        check_replay(&dir, N, !boundaries.contains(&cut));
    }
}

/// Seeded random bit flips anywhere in the segment: the CRC must catch the
/// damage — replay stops at the corrupt frame with everything before it
/// intact, and nothing panics.
#[test]
fn random_bit_flips_never_panic_and_never_fabricate() {
    cases("wal-bit-flips", 64, |rng: &mut Rng| {
        const N: u64 = 10;
        let (dir, seg) = seed_store("flip", N);
        let mut bytes = std::fs::read(&seg).unwrap();
        let flips = rng.range_usize(1, 4);
        for _ in 0..flips {
            let at = rng.below(bytes.len() as u64) as usize;
            let bit = rng.below(8) as u8;
            if let Some(b) = bytes.get_mut(at) {
                *b ^= 1u8 << bit;
            }
        }
        std::fs::write(&seg, &bytes).unwrap();
        check_replay(&dir, N, false);
    });
}

/// Flipping a bit inside the SNAPSHOT file must surface as a structured
/// corrupt error from `replay` — a damaged foundation must never seed a
/// bucket (the caller falls back to the full RS rebuild).
#[test]
fn snapshot_bit_flips_are_refused_not_replayed() {
    cases("wal-snap-flips", 32, |rng: &mut Rng| {
        let (dir, _seg) = seed_store("snapflip", 4);
        let snap = dir.join("SNAPSHOT");
        let mut bytes = std::fs::read(&snap).unwrap();
        let at = rng.below(bytes.len() as u64) as usize;
        let bit = rng.below(8) as u8;
        if let Some(b) = bytes.get_mut(at) {
            *b ^= 1u8 << bit;
        }
        std::fs::write(&snap, &bytes).unwrap();
        match FileWal::open(dir.clone(), FsyncPolicy::Never) {
            Ok(mut wal) => match wal.replay() {
                // The flip landed somewhere the frame survives bit-for-bit
                // semantics (it cannot: CRC covers the payload and the
                // magic/length are checked) — or it was caught. Either way
                // the payload must be pristine if accepted.
                Ok(r) => assert_eq!(r.snapshot.as_deref(), Some(&b"snapshot-state"[..])),
                Err(e) => {
                    let msg = format!("{e}");
                    assert!(!msg.is_empty(), "error must carry context");
                }
            },
            Err(e) => {
                let msg = format!("{e}");
                assert!(!msg.is_empty(), "error must carry context");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    });
}
