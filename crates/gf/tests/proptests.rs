//! Property-based tests of the field axioms and slice-kernel linearity for
//! all three fields. These are the invariants the Reed–Solomon layer and the
//! LH*RS parity Δ-protocol depend on.

use lhrs_gf::{add_slice, GaloisField, Gf16, Gf4, Gf8};
use proptest::prelude::*;

fn axioms<F: GaloisField>(
    a: F::Elem,
    b: F::Elem,
    c: F::Elem,
) -> Result<(), TestCaseError> {
    // Group/ring axioms.
    prop_assert_eq!(F::add(a, b), F::add(b, a));
    prop_assert_eq!(F::mul(a, b), F::mul(b, a));
    prop_assert_eq!(F::add(F::add(a, b), c), F::add(a, F::add(b, c)));
    prop_assert_eq!(F::mul(F::mul(a, b), c), F::mul(a, F::mul(b, c)));
    prop_assert_eq!(F::mul(a, F::add(b, c)), F::add(F::mul(a, b), F::mul(a, c)));
    prop_assert_eq!(F::add(a, F::zero()), a);
    prop_assert_eq!(F::mul(a, F::one()), a);
    prop_assert_eq!(F::add(a, a), F::zero());
    // Division is the inverse of multiplication.
    if b != F::zero() {
        let q = F::div(a, b).unwrap();
        prop_assert_eq!(F::mul(q, b), a);
    }
    Ok(())
}

proptest! {
    #[test]
    fn gf8_axioms(a: u8, b: u8, c: u8) {
        axioms::<Gf8>(a, b, c)?;
    }

    #[test]
    fn gf16_axioms(a: u16, b: u16, c: u16) {
        axioms::<Gf16>(a, b, c)?;
    }

    #[test]
    fn gf4_axioms(a in 0u8..16, b in 0u8..16, c in 0u8..16) {
        axioms::<Gf4>(a, b, c)?;
    }

    /// mul_add_slice must be linear: applying (c1 then c2) equals applying
    /// (c1 ^+ c2 products) — i.e. accumulation over GF distributes, which is
    /// exactly what lets parity buckets apply record deltas incrementally.
    #[test]
    fn gf8_mul_add_slice_is_linear(
        c1: u8,
        c2: u8,
        data in proptest::collection::vec(any::<u8>(), 0..257),
    ) {
        let mut acc = vec![0u8; data.len()];
        Gf8::mul_add_slice(c1, &data, &mut acc);
        Gf8::mul_add_slice(c2, &data, &mut acc);
        let mut direct = vec![0u8; data.len()];
        Gf8::mul_add_slice(c1 ^ c2, &data, &mut direct);
        prop_assert_eq!(acc, direct);
    }

    /// Scalar multiplication distributes over buffer XOR:
    /// c*(x ^ y) == c*x ^ c*y. This is the correctness core of the LH*RS
    /// Δ-commit: sending Δ = new ^ old and accumulating γ·Δ onto the parity
    /// yields the same parity as re-encoding from scratch.
    #[test]
    fn gf8_delta_commit_equivalence(
        c: u8,
        old in proptest::collection::vec(any::<u8>(), 1..129),
        new_seed in proptest::collection::vec(any::<u8>(), 1..129),
    ) {
        let n = old.len().min(new_seed.len());
        let old = &old[..n];
        let newv = &new_seed[..n];

        // Parity after encoding `old`, then Δ-committing to `new`.
        let mut parity = vec![0u8; n];
        Gf8::mul_add_slice(c, old, &mut parity);
        let mut delta = old.to_vec();
        add_slice(newv, &mut delta);
        Gf8::mul_add_slice(c, &delta, &mut parity);

        // Parity from encoding `new` directly.
        let mut direct = vec![0u8; n];
        Gf8::mul_add_slice(c, newv, &mut direct);
        prop_assert_eq!(parity, direct);
    }

    #[test]
    fn gf16_mul_slice_then_inverse_roundtrips(
        c in 1u16..,
        data in proptest::collection::vec(any::<u8>(), 0..65).prop_map(|mut v| {
            if v.len() % 2 == 1 { v.pop(); }
            v
        }),
    ) {
        let mut enc = vec![0u8; data.len()];
        Gf16::mul_slice(c, &data, &mut enc);
        let mut dec = vec![0u8; data.len()];
        Gf16::mul_slice(Gf16::inv(c).unwrap(), &enc, &mut dec);
        prop_assert_eq!(dec, data);
    }

    /// GF(2^4) packed-pair kernel agrees with nibble-wise scalar math.
    #[test]
    fn gf4_mul_slice_matches_scalar(
        c in 0u8..16,
        data in proptest::collection::vec(any::<u8>(), 0..129),
    ) {
        let mut dst = vec![0u8; data.len()];
        Gf4::mul_slice(c, &data, &mut dst);
        for (s, d) in data.iter().zip(&dst) {
            prop_assert_eq!(d & 0x0F, Gf4::mul(c, s & 0x0F));
            prop_assert_eq!(d >> 4, Gf4::mul(c, s >> 4));
        }
    }

    /// GF(2^16) mul_add accumulates exactly like per-symbol scalar math.
    #[test]
    fn gf16_mul_add_slice_matches_scalar(
        c: u16,
        syms in proptest::collection::vec(any::<u16>(), 0..65),
        base in proptest::collection::vec(any::<u16>(), 0..65),
    ) {
        let n = syms.len().min(base.len());
        let src: Vec<u8> = syms[..n].iter().flat_map(|s| s.to_le_bytes()).collect();
        let mut dst: Vec<u8> = base[..n].iter().flat_map(|s| s.to_le_bytes()).collect();
        Gf16::mul_add_slice(c, &src, &mut dst);
        for i in 0..n {
            let got = u16::from_le_bytes([dst[2 * i], dst[2 * i + 1]]);
            prop_assert_eq!(got, base[i] ^ Gf16::mul(c, syms[i]));
        }
    }

    #[test]
    fn pow_laws_gf16(a: u16, e1 in 0u32..1000, e2 in 0u32..1000) {
        if a != 0 {
            prop_assert_eq!(
                Gf16::mul(Gf16::pow(a, e1), Gf16::pow(a, e2)),
                Gf16::pow(a, e1 + e2)
            );
        }
    }
}
