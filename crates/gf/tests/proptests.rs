//! Property-based tests of the field axioms and slice-kernel linearity for
//! all three fields. These are the invariants the Reed–Solomon layer and the
//! LH*RS parity Δ-protocol depend on. Each property runs as seeded cases
//! via `lhrs-testkit` (hermetic stand-in for proptest).

use lhrs_gf::{add_slice, GaloisField, Gf16, Gf4, Gf8};
use lhrs_testkit::cases;

fn axioms<F: GaloisField>(a: F::Elem, b: F::Elem, c: F::Elem) {
    // Group/ring axioms.
    assert_eq!(F::add(a, b), F::add(b, a));
    assert_eq!(F::mul(a, b), F::mul(b, a));
    assert_eq!(F::add(F::add(a, b), c), F::add(a, F::add(b, c)));
    assert_eq!(F::mul(F::mul(a, b), c), F::mul(a, F::mul(b, c)));
    assert_eq!(F::mul(a, F::add(b, c)), F::add(F::mul(a, b), F::mul(a, c)));
    assert_eq!(F::add(a, F::zero()), a);
    assert_eq!(F::mul(a, F::one()), a);
    assert_eq!(F::add(a, a), F::zero());
    // Division is the inverse of multiplication.
    if b != F::zero() {
        let q = F::div(a, b).unwrap();
        assert_eq!(F::mul(q, b), a);
    }
}

#[test]
fn gf8_axioms() {
    cases("gf8_axioms", 256, |rng| {
        axioms::<Gf8>(rng.next_u8(), rng.next_u8(), rng.next_u8());
    });
}

#[test]
fn gf16_axioms() {
    cases("gf16_axioms", 256, |rng| {
        axioms::<Gf16>(rng.next_u16(), rng.next_u16(), rng.next_u16());
    });
}

#[test]
fn gf4_axioms() {
    cases("gf4_axioms", 256, |rng| {
        axioms::<Gf4>(
            rng.below(16) as u8,
            rng.below(16) as u8,
            rng.below(16) as u8,
        );
    });
}

/// mul_add_slice must be linear: applying (c1 then c2) equals applying
/// (c1 ^+ c2 products) — i.e. accumulation over GF distributes, which is
/// exactly what lets parity buckets apply record deltas incrementally.
#[test]
fn gf8_mul_add_slice_is_linear() {
    cases("gf8_mul_add_slice_is_linear", 128, |rng| {
        let c1 = rng.next_u8();
        let c2 = rng.next_u8();
        let data = {
            let n = rng.range_usize(0, 257);
            rng.bytes(n)
        };
        let mut acc = vec![0u8; data.len()];
        Gf8::mul_add_slice(c1, &data, &mut acc);
        Gf8::mul_add_slice(c2, &data, &mut acc);
        let mut direct = vec![0u8; data.len()];
        Gf8::mul_add_slice(c1 ^ c2, &data, &mut direct);
        assert_eq!(acc, direct);
    });
}

/// Scalar multiplication distributes over buffer XOR:
/// c*(x ^ y) == c*x ^ c*y. This is the correctness core of the LH*RS
/// Δ-commit: sending Δ = new ^ old and accumulating γ·Δ onto the parity
/// yields the same parity as re-encoding from scratch.
#[test]
fn gf8_delta_commit_equivalence() {
    cases("gf8_delta_commit_equivalence", 128, |rng| {
        let c = rng.next_u8();
        let old = {
            let n = rng.range_usize(1, 129);
            rng.bytes(n)
        };
        let new_seed = {
            let n = rng.range_usize(1, 129);
            rng.bytes(n)
        };
        let n = old.len().min(new_seed.len());
        let old = &old[..n];
        let newv = &new_seed[..n];

        // Parity after encoding `old`, then Δ-committing to `new`.
        let mut parity = vec![0u8; n];
        Gf8::mul_add_slice(c, old, &mut parity);
        let mut delta = old.to_vec();
        add_slice(newv, &mut delta);
        Gf8::mul_add_slice(c, &delta, &mut parity);

        // Parity from encoding `new` directly.
        let mut direct = vec![0u8; n];
        Gf8::mul_add_slice(c, newv, &mut direct);
        assert_eq!(parity, direct);
    });
}

#[test]
fn gf16_mul_slice_then_inverse_roundtrips() {
    cases("gf16_mul_slice_then_inverse_roundtrips", 128, |rng| {
        let c = rng.range(1, u16::MAX as u64 + 1) as u16;
        let mut data = {
            let n = rng.range_usize(0, 65);
            rng.bytes(n)
        };
        if data.len() % 2 == 1 {
            data.pop();
        }
        let mut enc = vec![0u8; data.len()];
        Gf16::mul_slice(c, &data, &mut enc);
        let mut dec = vec![0u8; data.len()];
        Gf16::mul_slice(Gf16::inv(c).unwrap(), &enc, &mut dec);
        assert_eq!(dec, data);
    });
}

/// GF(2^4) packed-pair kernel agrees with nibble-wise scalar math.
#[test]
fn gf4_mul_slice_matches_scalar() {
    cases("gf4_mul_slice_matches_scalar", 128, |rng| {
        let c = rng.below(16) as u8;
        let data = {
            let n = rng.range_usize(0, 129);
            rng.bytes(n)
        };
        let mut dst = vec![0u8; data.len()];
        Gf4::mul_slice(c, &data, &mut dst);
        for (s, d) in data.iter().zip(&dst) {
            assert_eq!(d & 0x0F, Gf4::mul(c, s & 0x0F));
            assert_eq!(d >> 4, Gf4::mul(c, s >> 4));
        }
    });
}

/// GF(2^16) mul_add accumulates exactly like per-symbol scalar math.
#[test]
fn gf16_mul_add_slice_matches_scalar() {
    cases("gf16_mul_add_slice_matches_scalar", 128, |rng| {
        let c = rng.next_u16();
        let syms: Vec<u16> = (0..rng.range_usize(0, 65))
            .map(|_| rng.next_u16())
            .collect();
        let base: Vec<u16> = (0..rng.range_usize(0, 65))
            .map(|_| rng.next_u16())
            .collect();
        let n = syms.len().min(base.len());
        let src: Vec<u8> = syms[..n].iter().flat_map(|s| s.to_le_bytes()).collect();
        let mut dst: Vec<u8> = base[..n].iter().flat_map(|s| s.to_le_bytes()).collect();
        Gf16::mul_add_slice(c, &src, &mut dst);
        for i in 0..n {
            let got = u16::from_le_bytes([dst[2 * i], dst[2 * i + 1]]);
            assert_eq!(got, base[i] ^ Gf16::mul(c, syms[i]));
        }
    });
}

#[test]
fn pow_laws_gf16() {
    cases("pow_laws_gf16", 256, |rng| {
        let a = rng.next_u16();
        let e1 = rng.below(1000) as u32;
        let e2 = rng.below(1000) as u32;
        if a != 0 {
            assert_eq!(
                Gf16::mul(Gf16::pow(a, e1), Gf16::pow(a, e2)),
                Gf16::pow(a, e1 + e2)
            );
        }
    });
}
