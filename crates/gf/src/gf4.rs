//! GF(2^4) with primitive polynomial x^4 + x + 1 (0x13) and generator α = 2.
//!
//! The SIGMOD 2000 paper discusses GF(2^4) as the smallest practical field:
//! its multiplication table fits in 256 bytes, at the price of supporting at
//! most 2^4 = 16 code symbols (m + k ≤ 17 for generalized RS). Buffers pack
//! two symbols per byte (low nibble first); scalar multiplication acts
//! nibble-wise, so one 256-entry lookup table per multiplier processes a
//! whole byte (both symbols) at once.

use crate::field::GaloisField;

const POLY: u8 = 0x13;

const EXP: [u8; 30] = build_exp();
const LOG: [u8; 16] = build_log();

const fn build_exp() -> [u8; 30] {
    let mut t = [0u8; 30];
    let mut x: u8 = 1;
    let mut i = 0;
    while i < 15 {
        t[i] = x;
        t[i + 15] = x;
        x <<= 1;
        if x & 0x10 != 0 {
            x ^= POLY;
        }
        i += 1;
    }
    t
}

const fn build_log() -> [u8; 16] {
    let mut t = [0u8; 16];
    let mut i = 0;
    while i < 15 {
        t[EXP[i] as usize] = i as u8;
        i += 1;
    }
    t
}

/// For each multiplier c in 0..16, a 256-entry table mapping a packed byte
/// (two nibbles) to the packed byte of both nibble products. 4 KiB total,
/// const-built.
const PAIR_MUL: [[u8; 256]; 16] = build_pair_mul();

const fn scalar_mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        0
    } else {
        EXP[(LOG[a as usize] + LOG[b as usize]) as usize]
    }
}

const fn build_pair_mul() -> [[u8; 256]; 16] {
    let mut t = [[0u8; 256]; 16];
    let mut c = 0;
    while c < 16 {
        let mut x = 0usize;
        while x < 256 {
            let lo = scalar_mul(c as u8, (x & 0x0F) as u8);
            let hi = scalar_mul(c as u8, (x >> 4) as u8);
            t[c][x] = lo | (hi << 4);
            x += 1;
        }
        c += 1;
    }
    t
}

/// Zero table for the (unreachable) out-of-range multiplier fallback.
static ZERO_PAIR: [u8; 256] = [0; 256];

/// Antilog lookup that degrades to 0 (never a valid α^i) instead of
/// aborting the calling actor if an index is somehow out of range.
#[inline]
fn exp_at(i: usize) -> u8 {
    EXP.get(i).copied().unwrap_or(0)
}

/// Log lookup as a ready-to-index `usize`; the multiplier is masked to the
/// low nibble so the lookup is total.
#[inline]
fn log_of(a: u8) -> usize {
    usize::from(LOG.get(usize::from(a & 0x0F)).copied().unwrap_or(0))
}

/// The 256-entry packed-pair table for multiplier `c` (masked to a nibble).
#[inline]
fn pair_table(c: u8) -> &'static [u8; 256] {
    PAIR_MUL.get(usize::from(c & 0x0F)).unwrap_or(&ZERO_PAIR)
}

/// One packed-byte multiply; a `u8` always indexes a 256-entry table.
#[inline]
fn pair_mul_at(t: &[u8; 256], s: u8) -> u8 {
    t.get(usize::from(s)).copied().unwrap_or(0)
}

/// Marker type implementing [`GaloisField`] for GF(2^4).
///
/// Elements are stored in the low nibble of a `u8`; the high nibble must be
/// zero for scalar operations (buffer kernels handle packed pairs).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Gf4;

impl GaloisField for Gf4 {
    type Elem = u8;
    const BITS: u32 = 4;
    const ORDER: u32 = 16;
    const SYMBOL_BYTES: usize = 1;
    const NAME: &'static str = "GF(2^4)";

    #[inline]
    fn zero() -> u8 {
        0
    }

    #[inline]
    fn one() -> u8 {
        1
    }

    #[inline]
    fn add(a: u8, b: u8) -> u8 {
        debug_assert!(a < 16 && b < 16);
        a ^ b
    }

    #[inline]
    fn mul(a: u8, b: u8) -> u8 {
        debug_assert!(a < 16 && b < 16);
        if a == 0 || b == 0 {
            0
        } else {
            // log(a) + log(b) <= 28, inside the doubled antilog table.
            exp_at(log_of(a).wrapping_add(log_of(b)))
        }
    }

    #[inline]
    fn inv(a: u8) -> Option<u8> {
        debug_assert!(a < 16);
        if a == 0 {
            None
        } else {
            // log(a) <= 14, so the subtraction cannot underflow.
            Some(exp_at(15usize.wrapping_sub(log_of(a))))
        }
    }

    #[inline]
    fn exp(i: u32) -> u8 {
        exp_at(usize::try_from(i % 15).unwrap_or(0))
    }

    #[inline]
    fn log(a: u8) -> Option<u32> {
        debug_assert!(a < 16);
        if a == 0 {
            None
        } else {
            Some(u32::try_from(log_of(a)).unwrap_or(0))
        }
    }

    #[inline]
    fn from_usize(x: usize) -> u8 {
        // Truncation to the field width is this method's documented contract.
        u8::try_from(x & 0x0F).unwrap_or(0)
    }

    #[inline]
    fn to_usize(a: u8) -> usize {
        usize::from(a)
    }

    fn mul_slice(c: u8, src: &[u8], dst: &mut [u8]) {
        debug_assert!(c < 16);
        let n = src.len().min(dst.len());
        let (Some(src), Some(dst)) = (src.get(..n), dst.get_mut(..n)) else {
            return;
        };
        let t = pair_table(c);
        for (s, d) in src.iter().zip(dst.iter_mut()) {
            *d = pair_mul_at(t, *s);
        }
    }

    fn mul_add_slice(c: u8, src: &[u8], dst: &mut [u8]) {
        debug_assert!(c < 16);
        let n = src.len().min(dst.len());
        let (Some(src), Some(dst)) = (src.get(..n), dst.get_mut(..n)) else {
            return;
        };
        match c {
            0 => {}
            1 => crate::field::add_slice(src, dst),
            _ => {
                let t = pair_table(c);
                for (s, d) in src.iter().zip(dst.iter_mut()) {
                    *d ^= pair_mul_at(t, *s);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_table_exhaustive_against_carryless() {
        fn slow_mul(mut a: u8, mut b: u8) -> u8 {
            let mut p = 0u8;
            while b != 0 {
                if b & 1 != 0 {
                    p ^= a;
                }
                let hi = a & 0x08 != 0;
                a <<= 1;
                if hi {
                    a ^= 0x03;
                }
                a &= 0x0F;
                b >>= 1;
            }
            p
        }
        for a in 0..16u8 {
            for b in 0..16u8 {
                assert_eq!(Gf4::mul(a, b), slow_mul(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn pair_mul_handles_both_nibbles() {
        let src = [0x53u8, 0xFF, 0x01, 0x10];
        let mut dst = [0u8; 4];
        Gf4::mul_slice(0x7, &src, &mut dst);
        for (s, d) in src.iter().zip(&dst) {
            assert_eq!(d & 0x0F, Gf4::mul(7, s & 0x0F));
            assert_eq!(d >> 4, Gf4::mul(7, s >> 4));
        }
    }

    #[test]
    fn all_nonzero_elements_invertible() {
        for a in 1..16u8 {
            assert_eq!(Gf4::mul(a, Gf4::inv(a).unwrap()), 1);
        }
        assert_eq!(Gf4::inv(0), None);
    }

    #[test]
    fn mul_add_slice_accumulates() {
        let src = [0x21u8; 8];
        let mut dst = [0x12u8; 8];
        let mut expect = [0u8; 8];
        for i in 0..8 {
            let lo = Gf4::mul(3, src[i] & 0x0F) ^ (dst[i] & 0x0F);
            let hi = Gf4::mul(3, src[i] >> 4) ^ (dst[i] >> 4);
            expect[i] = lo | (hi << 4);
        }
        Gf4::mul_add_slice(3, &src, &mut dst);
        assert_eq!(dst, expect);
    }
}
