//! Galois-field arithmetic for LH\*RS Reed–Solomon coding.
//!
//! LH\*RS encodes the non-key payloads of a *record group* into parity
//! symbols using a systematic generalized Reed–Solomon code over a binary
//! extension field GF(2^f). The SIGMOD 2000 paper works with small fields
//! (GF(2^4), GF(2^8)); the later TODS refinement moves to GF(2^16) to enlarge
//! the code's support. This crate provides all three:
//!
//! * [`Gf8`] — GF(2^8), the workhorse: one symbol per byte, table-driven.
//! * [`Gf16`] — GF(2^16): one symbol per *pair* of bytes (little-endian),
//!   lazily built 512 KiB log/antilog tables.
//! * [`Gf4`] — GF(2^4): two symbols nibble-packed per byte, used for the
//!   table-size ablation the paper discusses.
//!
//! All fields share the [`GaloisField`] trait so the Reed–Solomon layer
//! (`lhrs-rs`) is generic over the field. Addition in every GF(2^f) is XOR,
//! so [`add_slice`] is field-independent; multiplication kernels
//! ([`GaloisField::mul_slice`], [`GaloisField::mul_add_slice`]) are the hot
//! path of encoding and are implemented with split nibble tables in the
//! style of ISA-L.
//!
//! # Example
//!
//! ```
//! use lhrs_gf::{GaloisField, Gf8};
//!
//! let a = 0x53u8;
//! let b = 0xCAu8;
//! let p = Gf8::mul(a, b);
//! // Multiplication is invertible for non-zero operands.
//! assert_eq!(Gf8::div(p, b), Some(a));
//! // dst ^= 0x1D * src over a whole buffer:
//! let src = [1u8, 2, 3, 4];
//! let mut dst = [0u8; 4];
//! Gf8::mul_add_slice(0x1D, &src, &mut dst);
//! assert_eq!(dst[0], Gf8::mul(0x1D, 1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod field;
mod gf16;
mod gf4;
mod gf8;

pub use field::{add_slice, GaloisField};
pub use gf16::Gf16;
pub use gf4::Gf4;
pub use gf8::Gf8;

#[cfg(test)]
mod axiom_tests {
    //! Exhaustive (small field) and sampled field-axiom checks shared by all
    //! three fields. The per-field modules hold representation-specific
    //! tests; everything generic lives here.

    use super::*;

    fn check_axioms_sampled<F: GaloisField>(elems: &[F::Elem]) {
        let zero = F::zero();
        let one = F::one();
        for &a in elems {
            // Additive identity and self-inverse (characteristic 2).
            assert_eq!(F::add(a, zero), a);
            assert_eq!(F::add(a, a), zero);
            // Multiplicative identity and annihilator.
            assert_eq!(F::mul(a, one), a);
            assert_eq!(F::mul(a, zero), zero);
            // Inverses.
            if a != zero {
                let inv = F::inv(a).expect("nonzero element has an inverse");
                assert_eq!(F::mul(a, inv), one);
            } else {
                assert_eq!(F::inv(a), None);
            }
            for &b in elems {
                // Commutativity.
                assert_eq!(F::mul(a, b), F::mul(b, a));
                assert_eq!(F::add(a, b), F::add(b, a));
                for &c in elems {
                    // Associativity and distributivity.
                    assert_eq!(F::mul(F::mul(a, b), c), F::mul(a, F::mul(b, c)));
                    assert_eq!(F::mul(a, F::add(b, c)), F::add(F::mul(a, b), F::mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn gf4_axioms_exhaustive() {
        let elems: Vec<u8> = (0..16).collect();
        check_axioms_sampled::<Gf4>(&elems);
    }

    #[test]
    fn gf8_axioms_sampled() {
        // Exhaustive triples would be 2^24; sample a structured subset plus
        // pseudo-random elements.
        let mut elems: Vec<u8> = vec![0, 1, 2, 3, 0x1D, 0x80, 0xFF, 0x53, 0xCA];
        let mut x = 7u8;
        for _ in 0..8 {
            x = x.wrapping_mul(31).wrapping_add(17);
            elems.push(x);
        }
        check_axioms_sampled::<Gf8>(&elems);
    }

    #[test]
    fn gf16_axioms_sampled() {
        let mut elems: Vec<u16> = vec![0, 1, 2, 3, 0xFFFF, 0x8000, 0x1234];
        let mut x = 7u16;
        for _ in 0..8 {
            x = x.wrapping_mul(31).wrapping_add(1017);
            elems.push(x);
        }
        check_axioms_sampled::<Gf16>(&elems);
    }

    #[test]
    fn gf8_mul_matches_carryless_reference() {
        // Reference: schoolbook carry-less multiply then reduce mod 0x11D.
        fn slow_mul(mut a: u8, mut b: u8) -> u8 {
            let mut p = 0u8;
            while b != 0 {
                if b & 1 != 0 {
                    p ^= a;
                }
                let hi = a & 0x80 != 0;
                a <<= 1;
                if hi {
                    a ^= 0x1D;
                }
                b >>= 1;
            }
            p
        }
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(Gf8::mul(a, b), slow_mul(a, b), "a={a:#x} b={b:#x}");
            }
        }
    }

    #[test]
    fn exp_log_roundtrip_all_fields() {
        for i in 0..15 {
            let e = Gf4::exp(i);
            assert_eq!(Gf4::log(e), Some(i));
        }
        for i in 0..255 {
            let e = Gf8::exp(i);
            assert_eq!(Gf8::log(e), Some(i));
        }
        for i in (0..65535).step_by(257) {
            let e = Gf16::exp(i);
            assert_eq!(Gf16::log(e), Some(i));
        }
        assert_eq!(Gf8::log(0), None);
        assert_eq!(Gf16::log(0), None);
        assert_eq!(Gf4::log(0), None);
    }

    #[test]
    fn pow_is_repeated_multiplication() {
        for f in 0..8u32 {
            let a = Gf8::exp(f * 13 + 1);
            let mut acc = Gf8::one();
            for e in 0..10u32 {
                assert_eq!(Gf8::pow(a, e), acc);
                acc = Gf8::mul(acc, a);
            }
        }
    }
}
