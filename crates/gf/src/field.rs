//! The [`GaloisField`] trait: the algebraic interface the Reed–Solomon layer
//! programs against, plus the field-independent [`add_slice`] kernel.

use std::fmt::Debug;
use std::hash::Hash;

/// A binary extension field GF(2^f) with table-driven arithmetic and
/// byte-buffer kernels.
///
/// Implementations are zero-sized marker types ([`crate::Gf4`],
/// [`crate::Gf8`], [`crate::Gf16`]); all methods are associated functions so
/// call sites read like `Gf8::mul(a, b)`.
///
/// # Buffer representation
///
/// The slice kernels operate on `&[u8]` buffers holding a packed vector of
/// field symbols:
///
/// * GF(2^8): one symbol per byte;
/// * GF(2^16): one symbol per little-endian byte pair — buffer lengths must
///   be even;
/// * GF(2^4): two symbols per byte (low nibble first).
///
/// Because scalar multiplication acts symbol-wise and addition is XOR, every
/// kernel is linear over the packed representation, which is what the
/// Reed–Solomon encoder relies on.
pub trait GaloisField: Copy + Clone + Debug + Default + Send + Sync + 'static {
    /// The unsigned integer type holding one field element.
    type Elem: Copy + Eq + Ord + Debug + Default + Hash + Send + Sync + 'static;

    /// Field width f in GF(2^f).
    const BITS: u32;

    /// Number of field elements, 2^f.
    const ORDER: u32;

    /// Bytes per symbol in packed buffers (GF(2^4) packs two symbols in one
    /// byte and reports 1).
    const SYMBOL_BYTES: usize;

    /// Short human-readable name, e.g. `"GF(2^8)"`.
    const NAME: &'static str;

    /// The additive identity.
    fn zero() -> Self::Elem;

    /// The multiplicative identity.
    fn one() -> Self::Elem;

    /// Field addition (XOR in characteristic 2).
    fn add(a: Self::Elem, b: Self::Elem) -> Self::Elem;

    /// Field multiplication.
    fn mul(a: Self::Elem, b: Self::Elem) -> Self::Elem;

    /// Multiplicative inverse; `None` for zero.
    fn inv(a: Self::Elem) -> Option<Self::Elem>;

    /// `a / b`; `None` when `b` is zero.
    fn div(a: Self::Elem, b: Self::Elem) -> Option<Self::Elem> {
        Self::inv(b).map(|ib| Self::mul(a, ib))
    }

    /// `generator^i` where the generator is the primitive element used to
    /// build the log/antilog tables. `i` is taken modulo `ORDER - 1`.
    fn exp(i: u32) -> Self::Elem;

    /// Discrete logarithm base the table generator; `None` for zero.
    fn log(a: Self::Elem) -> Option<u32>;

    /// `a^e` by log/antilog (with `0^0 = 1` by convention).
    fn pow(a: Self::Elem, e: u32) -> Self::Elem {
        if e == 0 {
            return Self::one();
        }
        let Some(la) = Self::log(a) else {
            // log is None exactly for zero, and 0^e = 0 for e > 0.
            return Self::zero();
        };
        let l = (u64::from(la) * u64::from(e)) % (u64::from(Self::ORDER) - 1);
        // l < ORDER - 1 <= u32::MAX after the modulo, so the conversion is
        // total; fall back to the zero exponent rather than aborting.
        Self::exp(u32::try_from(l).unwrap_or(0))
    }

    /// Lossy conversion from `usize` (truncates to field width). Used to
    /// build Vandermonde evaluation points 0, 1, 2, ….
    fn from_usize(x: usize) -> Self::Elem;

    /// Widening conversion to `usize` for table indexing.
    fn to_usize(a: Self::Elem) -> usize;

    /// `dst = c * src`, symbol-wise over packed buffers.
    ///
    /// Kernels never panic: mismatched or non-symbol-aligned lengths degrade
    /// to the longest symbol-aligned common prefix, leaving any excess
    /// untouched. Callers that need strict lengths (the Reed–Solomon layer)
    /// validate at their own boundary; a bad buffer from a remote peer must
    /// surface as a verify error, not abort the bucket actor.
    fn mul_slice(c: Self::Elem, src: &[u8], dst: &mut [u8]);

    /// `dst ^= c * src`, symbol-wise over packed buffers — the inner loop of
    /// Reed–Solomon encoding and of LH\*RS parity Δ-commits.
    ///
    /// Same prefix-degrade contract as [`GaloisField::mul_slice`].
    fn mul_add_slice(c: Self::Elem, src: &[u8], dst: &mut [u8]);
}

/// `dst ^= src` — field-independent buffer addition (all GF(2^f) add by XOR).
///
/// This is the entire per-parity-bucket work for the all-ones generator
/// column, i.e. the XOR fast path that makes LH\*RS's first parity bucket as
/// cheap as LH\*g's.
///
/// Mismatched lengths degrade to the common prefix (the extra suffix of the
/// longer buffer is left untouched) instead of aborting: a length bug in a
/// caller must surface as a decode/verify error on that one operation, not
/// as a killed bucket actor that the coordinator then has to rebuild.
pub fn add_slice(src: &[u8], dst: &mut [u8]) {
    let n = src.len().min(dst.len());
    let (Some(src), Some(dst)) = (src.get(..n), dst.get_mut(..n)) else {
        return;
    };
    // Process word-sized chunks; the compiler vectorizes this loop.
    let mut s8 = src.chunks_exact(8);
    let mut d8 = dst.chunks_exact_mut(8);
    for (s, d) in (&mut s8).zip(&mut d8) {
        if let (Ok(sv), Ok(dv)) = (<[u8; 8]>::try_from(s), <[u8; 8]>::try_from(&*d)) {
            let v = u64::from_ne_bytes(sv) ^ u64::from_ne_bytes(dv);
            d.copy_from_slice(&v.to_ne_bytes());
        }
    }
    for (s, d) in s8.remainder().iter().zip(d8.into_remainder()) {
        *d ^= s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_slice_xors_all_lengths() {
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65] {
            let src: Vec<u8> = (0..len as u32).map(|i| (i * 37 + 1) as u8).collect();
            let mut dst: Vec<u8> = (0..len as u32).map(|i| (i * 11 + 5) as u8).collect();
            let expect: Vec<u8> = src.iter().zip(&dst).map(|(a, b)| a ^ b).collect();
            add_slice(&src, &mut dst);
            assert_eq!(dst, expect, "len={len}");
        }
    }

    #[test]
    fn add_slice_is_involution() {
        let src: Vec<u8> = (0..100).map(|i| (i * 3) as u8).collect();
        let orig: Vec<u8> = (0..100).map(|i| (i * 7 + 2) as u8).collect();
        let mut dst = orig.clone();
        add_slice(&src, &mut dst);
        add_slice(&src, &mut dst);
        assert_eq!(dst, orig);
    }

    #[test]
    fn add_slice_length_mismatch_degrades_to_common_prefix() {
        // Longer dst: only the prefix is XORed, the suffix is untouched.
        let mut dst = [10u8, 20, 30, 40];
        add_slice(&[1, 2], &mut dst);
        assert_eq!(dst, [11, 22, 30, 40]);
        // Longer src: dst is XORed with the matching prefix of src.
        let mut dst = [10u8, 20];
        add_slice(&[1, 2, 3, 4, 5, 6, 7, 8, 9], &mut dst);
        assert_eq!(dst, [11, 22]);
        // Word-sized src against a sub-word dst still covers the prefix.
        let mut dst = [0xffu8; 3];
        add_slice(&[1u8; 16], &mut dst);
        assert_eq!(dst, [0xfe; 3]);
    }
}
