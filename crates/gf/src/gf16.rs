//! GF(2^16) with primitive polynomial x^16 + x^12 + x^3 + x + 1 (0x1100B)
//! and generator α = 2 — the field the TODS refinement of LH\*RS adopts so a
//! single code family supports bucket groups of up to 2^16 + 1 symbols.
//!
//! The log/antilog tables total ~512 KiB, too large for comfortable `const`
//! evaluation, so they are built once on first use behind a
//! [`std::sync::OnceLock`]. Packed buffers carry one symbol per
//! little-endian byte pair and must have even length.

use std::sync::OnceLock;

use crate::field::GaloisField;

const POLY: u32 = 0x1100B;
const MASK: u32 = 0xFFFF;

struct Tables {
    /// Doubled antilog table: `exp[i]` = α^i for i in 0..131070.
    exp: Vec<u16>,
    /// `log[a]` for a in 1..=65535; entry 0 is a sentinel.
    log: Vec<u16>,
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = vec![0u16; 2 * 65535];
        let mut log = vec![0u16; 65536];
        let mut x: u32 = 1;
        for i in 0..65535usize {
            exp[i] = x as u16;
            exp[i + 65535] = x as u16;
            log[x as usize] = i as u16;
            x <<= 1;
            if x & 0x10000 != 0 {
                x ^= POLY;
            }
            x &= MASK | 0x10000;
        }
        debug_assert_eq!(x, 1, "α must have order 65535");
        Tables { exp, log }
    })
}

/// Marker type implementing [`GaloisField`] for GF(2^16).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Gf16;

impl GaloisField for Gf16 {
    type Elem = u16;
    const BITS: u32 = 16;
    const ORDER: u32 = 65536;
    const SYMBOL_BYTES: usize = 2;
    const NAME: &'static str = "GF(2^16)";

    #[inline]
    fn zero() -> u16 {
        0
    }

    #[inline]
    fn one() -> u16 {
        1
    }

    #[inline]
    fn add(a: u16, b: u16) -> u16 {
        a ^ b
    }

    #[inline]
    fn mul(a: u16, b: u16) -> u16 {
        if a == 0 || b == 0 {
            return 0;
        }
        let t = tables();
        t.exp[t.log[a as usize] as usize + t.log[b as usize] as usize]
    }

    #[inline]
    fn inv(a: u16) -> Option<u16> {
        if a == 0 {
            return None;
        }
        let t = tables();
        Some(t.exp[65535 - t.log[a as usize] as usize])
    }

    #[inline]
    fn exp(i: u32) -> u16 {
        tables().exp[(i % 65535) as usize]
    }

    #[inline]
    fn log(a: u16) -> Option<u32> {
        if a == 0 {
            None
        } else {
            Some(tables().log[a as usize] as u32)
        }
    }

    #[inline]
    fn from_usize(x: usize) -> u16 {
        x as u16
    }

    #[inline]
    fn to_usize(a: u16) -> usize {
        a as usize
    }

    fn mul_slice(c: u16, src: &[u8], dst: &mut [u8]) {
        assert_eq!(src.len(), dst.len(), "mul_slice length mismatch");
        assert_eq!(src.len() % 2, 0, "GF(2^16) buffers must have even length");
        match c {
            0 => dst.fill(0),
            1 => dst.copy_from_slice(src),
            _ => {
                let t = tables();
                let lc = t.log[c as usize] as usize;
                for (s, d) in src.chunks_exact(2).zip(dst.chunks_exact_mut(2)) {
                    let sv = u16::from_le_bytes([s[0], s[1]]);
                    let prod = if sv == 0 {
                        0
                    } else {
                        t.exp[lc + t.log[sv as usize] as usize]
                    };
                    d.copy_from_slice(&prod.to_le_bytes());
                }
            }
        }
    }

    fn mul_add_slice(c: u16, src: &[u8], dst: &mut [u8]) {
        assert_eq!(src.len(), dst.len(), "mul_add_slice length mismatch");
        assert_eq!(src.len() % 2, 0, "GF(2^16) buffers must have even length");
        match c {
            0 => {}
            1 => crate::field::add_slice(src, dst),
            _ => {
                let t = tables();
                let lc = t.log[c as usize] as usize;
                for (s, d) in src.chunks_exact(2).zip(dst.chunks_exact_mut(2)) {
                    let sv = u16::from_le_bytes([s[0], s[1]]);
                    if sv != 0 {
                        let prod = t.exp[lc + t.log[sv as usize] as usize];
                        let dv = u16::from_le_bytes([d[0], d[1]]) ^ prod;
                        d.copy_from_slice(&dv.to_le_bytes());
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slow_mul(mut a: u32, mut b: u32) -> u16 {
        let mut p = 0u32;
        while b != 0 {
            if b & 1 != 0 {
                p ^= a;
            }
            a <<= 1;
            if a & 0x10000 != 0 {
                a ^= POLY;
            }
            b >>= 1;
        }
        p as u16
    }

    #[test]
    fn mul_matches_carryless_reference_sampled() {
        let samples: Vec<u16> = (0..64)
            .map(|i: u32| (i.wrapping_mul(10007) & 0xFFFF) as u16)
            .chain([0u16, 1, 2, 0xFFFF, 0x8000])
            .collect();
        for &a in &samples {
            for &b in &samples {
                assert_eq!(Gf16::mul(a, b), slow_mul(a as u32, b as u32), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn inv_sampled() {
        for i in (1..=65535u32).step_by(199) {
            let a = i as u16;
            assert_eq!(Gf16::mul(a, Gf16::inv(a).unwrap()), 1, "a={a}");
        }
    }

    #[test]
    fn slice_kernels_match_scalar_loop() {
        let syms: Vec<u16> = (0..300u32).map(|i| (i * 977 % 65536) as u16).collect();
        let src: Vec<u8> = syms.iter().flat_map(|s| s.to_le_bytes()).collect();
        for c in [0u16, 1, 2, 0x100B, 0xFFFF] {
            let mut dst = vec![0u8; src.len()];
            Gf16::mul_slice(c, &src, &mut dst);
            for (i, s) in syms.iter().enumerate() {
                let d = u16::from_le_bytes([dst[2 * i], dst[2 * i + 1]]);
                assert_eq!(d, Gf16::mul(c, *s));
            }
            let base: Vec<u8> = (0..src.len()).map(|i| (i * 13) as u8).collect();
            let mut acc = base.clone();
            Gf16::mul_add_slice(c, &src, &mut acc);
            for i in 0..syms.len() {
                let b = u16::from_le_bytes([base[2 * i], base[2 * i + 1]]);
                let d = u16::from_le_bytes([acc[2 * i], acc[2 * i + 1]]);
                assert_eq!(d, b ^ Gf16::mul(c, syms[i]));
            }
        }
    }

    #[test]
    #[should_panic(expected = "even length")]
    fn odd_length_buffers_rejected() {
        let mut dst = [0u8; 3];
        Gf16::mul_slice(2, &[1, 2, 3], &mut dst);
    }
}
