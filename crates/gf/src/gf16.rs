//! GF(2^16) with primitive polynomial x^16 + x^12 + x^3 + x + 1 (0x1100B)
//! and generator α = 2 — the field the TODS refinement of LH\*RS adopts so a
//! single code family supports bucket groups of up to 2^16 + 1 symbols.
//!
//! The log/antilog tables total ~512 KiB, too large for comfortable `const`
//! evaluation, so they are built once on first use behind a
//! [`std::sync::OnceLock`]. Packed buffers carry one symbol per
//! little-endian byte pair; the slice kernels operate on the longest even
//! common prefix of their buffers (see [`GaloisField::mul_slice`]).

use std::sync::OnceLock;

use crate::field::GaloisField;

const POLY: u32 = 0x1100B;
const MASK: u32 = 0xFFFF;

struct Tables {
    /// Doubled antilog table: `exp[i]` = α^i for i in 0..131070.
    exp: Vec<u16>,
    /// `log[a]` for a in 1..=65535; entry 0 is a sentinel.
    log: Vec<u16>,
}

impl Tables {
    /// Antilog lookup that degrades to 0 (never a valid α^i) instead of
    /// aborting the calling actor if an index is somehow out of range.
    #[inline]
    fn exp_at(&self, i: usize) -> u16 {
        self.exp.get(i).copied().unwrap_or(0)
    }

    /// Log lookup; the sentinel 0 comes back for the (excluded) zero symbol.
    #[inline]
    fn log16(&self, a: u16) -> u16 {
        self.log.get(usize::from(a)).copied().unwrap_or(0)
    }
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = vec![0u16; 2 * 65535];
        let mut log = vec![0u16; 65536];
        // Invariant: x < 0x10000 at the top of every iteration, so the
        // narrowing conversion below is total.
        let mut x: u32 = 1;
        for i in 0..65535usize {
            let sym = u16::try_from(x).unwrap_or(0);
            if let Some(e) = exp.get_mut(i) {
                *e = sym;
            }
            if let Some(e) = exp.get_mut(i.wrapping_add(65535)) {
                *e = sym;
            }
            if let Some(l) = log.get_mut(usize::from(sym)) {
                *l = u16::try_from(i).unwrap_or(0);
            }
            x = x.wrapping_shl(1);
            if x & 0x10000 != 0 {
                x ^= POLY;
            }
            x &= MASK;
        }
        debug_assert_eq!(x, 1, "α must have order 65535");
        Tables { exp, log }
    })
}

/// Marker type implementing [`GaloisField`] for GF(2^16).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Gf16;

impl GaloisField for Gf16 {
    type Elem = u16;
    const BITS: u32 = 16;
    const ORDER: u32 = 65536;
    const SYMBOL_BYTES: usize = 2;
    const NAME: &'static str = "GF(2^16)";

    #[inline]
    fn zero() -> u16 {
        0
    }

    #[inline]
    fn one() -> u16 {
        1
    }

    #[inline]
    fn add(a: u16, b: u16) -> u16 {
        a ^ b
    }

    #[inline]
    fn mul(a: u16, b: u16) -> u16 {
        if a == 0 || b == 0 {
            return 0;
        }
        let t = tables();
        // log(a) + log(b) <= 2 * 65534, inside the doubled antilog table.
        t.exp_at(usize::from(t.log16(a)).wrapping_add(usize::from(t.log16(b))))
    }

    #[inline]
    fn inv(a: u16) -> Option<u16> {
        if a == 0 {
            return None;
        }
        let t = tables();
        // log(a) <= 65534, so the subtraction cannot underflow.
        Some(t.exp_at(65535usize.wrapping_sub(usize::from(t.log16(a)))))
    }

    #[inline]
    fn exp(i: u32) -> u16 {
        tables().exp_at(usize::try_from(i % 65535).unwrap_or(0))
    }

    #[inline]
    fn log(a: u16) -> Option<u32> {
        if a == 0 {
            None
        } else {
            Some(u32::from(tables().log16(a)))
        }
    }

    #[inline]
    fn from_usize(x: usize) -> u16 {
        // Truncation to the field width is this method's documented contract.
        u16::try_from(x & 0xFFFF).unwrap_or(0)
    }

    #[inline]
    fn to_usize(a: u16) -> usize {
        usize::from(a)
    }

    fn mul_slice(c: u16, src: &[u8], dst: &mut [u8]) {
        let n = src.len().min(dst.len()) & !1;
        let (Some(src), Some(dst)) = (src.get(..n), dst.get_mut(..n)) else {
            return;
        };
        match c {
            0 => dst.fill(0),
            1 => dst.copy_from_slice(src),
            _ => {
                let t = tables();
                let lc = usize::from(t.log16(c));
                for (s, d) in src.chunks_exact(2).zip(dst.chunks_exact_mut(2)) {
                    let Ok(sa) = <[u8; 2]>::try_from(s) else {
                        continue;
                    };
                    let sv = u16::from_le_bytes(sa);
                    let prod = if sv == 0 {
                        0
                    } else {
                        t.exp_at(lc.wrapping_add(usize::from(t.log16(sv))))
                    };
                    d.copy_from_slice(&prod.to_le_bytes());
                }
            }
        }
    }

    fn mul_add_slice(c: u16, src: &[u8], dst: &mut [u8]) {
        let n = src.len().min(dst.len()) & !1;
        let (Some(src), Some(dst)) = (src.get(..n), dst.get_mut(..n)) else {
            return;
        };
        match c {
            0 => {}
            1 => crate::field::add_slice(src, dst),
            _ => {
                let t = tables();
                let lc = usize::from(t.log16(c));
                for (s, d) in src.chunks_exact(2).zip(dst.chunks_exact_mut(2)) {
                    let (Ok(sa), Ok(da)) = (<[u8; 2]>::try_from(s), <[u8; 2]>::try_from(&*d))
                    else {
                        continue;
                    };
                    let sv = u16::from_le_bytes(sa);
                    if sv != 0 {
                        let prod = t.exp_at(lc.wrapping_add(usize::from(t.log16(sv))));
                        let dv = u16::from_le_bytes(da) ^ prod;
                        d.copy_from_slice(&dv.to_le_bytes());
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slow_mul(mut a: u32, mut b: u32) -> u16 {
        let mut p = 0u32;
        while b != 0 {
            if b & 1 != 0 {
                p ^= a;
            }
            a <<= 1;
            if a & 0x10000 != 0 {
                a ^= POLY;
            }
            b >>= 1;
        }
        p as u16
    }

    #[test]
    fn mul_matches_carryless_reference_sampled() {
        let samples: Vec<u16> = (0..64)
            .map(|i: u32| (i.wrapping_mul(10007) & 0xFFFF) as u16)
            .chain([0u16, 1, 2, 0xFFFF, 0x8000])
            .collect();
        for &a in &samples {
            for &b in &samples {
                assert_eq!(Gf16::mul(a, b), slow_mul(a as u32, b as u32), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn inv_sampled() {
        for i in (1..=65535u32).step_by(199) {
            let a = i as u16;
            assert_eq!(Gf16::mul(a, Gf16::inv(a).unwrap()), 1, "a={a}");
        }
    }

    #[test]
    fn slice_kernels_match_scalar_loop() {
        let syms: Vec<u16> = (0..300u32).map(|i| (i * 977 % 65536) as u16).collect();
        let src: Vec<u8> = syms.iter().flat_map(|s| s.to_le_bytes()).collect();
        for c in [0u16, 1, 2, 0x100B, 0xFFFF] {
            let mut dst = vec![0u8; src.len()];
            Gf16::mul_slice(c, &src, &mut dst);
            for (i, s) in syms.iter().enumerate() {
                let d = u16::from_le_bytes([dst[2 * i], dst[2 * i + 1]]);
                assert_eq!(d, Gf16::mul(c, *s));
            }
            let base: Vec<u8> = (0..src.len()).map(|i| (i * 13) as u8).collect();
            let mut acc = base.clone();
            Gf16::mul_add_slice(c, &src, &mut acc);
            for i in 0..syms.len() {
                let b = u16::from_le_bytes([base[2 * i], base[2 * i + 1]]);
                let d = u16::from_le_bytes([acc[2 * i], acc[2 * i + 1]]);
                assert_eq!(d, b ^ Gf16::mul(c, syms[i]));
            }
        }
    }

    #[test]
    fn odd_or_mismatched_buffers_degrade_to_even_prefix() {
        // Odd length: the trailing byte is a partial symbol and is ignored.
        let mut dst = [0xAAu8; 3];
        Gf16::mul_slice(2, &[1, 0, 3], &mut dst);
        let expect = Gf16::mul(2, 1).to_le_bytes();
        assert_eq!(dst, [expect[0], expect[1], 0xAA]);

        // Mismatched lengths: only the even common prefix is accumulated.
        let mut acc = [0u8; 4];
        Gf16::mul_add_slice(1, &[7, 0, 9, 0, 11, 0], &mut acc);
        assert_eq!(acc, [7, 0, 9, 0]);
    }
}
