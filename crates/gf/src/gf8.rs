//! GF(2^8) with the AES-adjacent primitive polynomial
//! x^8 + x^4 + x^3 + x^2 + 1 (0x11D) and generator α = 2 — the classical
//! Reed–Solomon field and the default for LH\*RS parity buckets.
//!
//! All tables are built at compile time by `const fn`s, so there is no
//! runtime initialisation and no locking on the hot path.

use crate::field::GaloisField;

/// Reduction polynomial (without the x^8 term): x^4+x^3+x^2+1.
const POLY: u16 = 0x11D;

/// Antilog table doubled to 512 entries so `exp[log a + log b]` needs no
/// modular reduction (`log a + log b ≤ 508`).
const EXP: [u8; 512] = build_exp();
/// Log table; entry 0 is a sentinel (zero has no logarithm) guarded by the
/// callers.
const LOG: [u16; 256] = build_log();

const fn build_exp() -> [u8; 512] {
    let mut t = [0u8; 512];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        t[i] = x as u8;
        t[i + 255] = x as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= POLY;
        }
        i += 1;
    }
    // Positions 510, 511 are never indexed (max index 508) but fill them for
    // definedness.
    t[510] = t[0];
    t[511] = t[1];
    t
}

const fn build_log() -> [u16; 256] {
    let mut t = [0u16; 256];
    let mut i = 0;
    while i < 255 {
        t[EXP[i] as usize] = i as u16;
        i += 1;
    }
    t
}

/// Marker type implementing [`GaloisField`] for GF(2^8).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Gf8;

/// Antilog lookup that degrades to 0 (never a valid α^i) instead of
/// aborting the calling actor if an index is somehow out of range.
#[inline]
fn exp_at(i: usize) -> u8 {
    EXP.get(i).copied().unwrap_or(0)
}

/// Log lookup as a ready-to-index `usize`; the sentinel 0 comes back for
/// the (caller-excluded) zero symbol.
#[inline]
fn log_of(a: u8) -> usize {
    usize::from(LOG.get(usize::from(a)).copied().unwrap_or(0))
}

impl Gf8 {
    /// Build the two 16-entry split tables for multiplier `c`: products of
    /// `c` with the low nibble values and with the high nibble values. One
    /// byte multiply then costs two lookups and one XOR.
    #[inline]
    fn split_tables(c: u8) -> ([u8; 16], [u8; 16]) {
        let mut lo = [0u8; 16];
        let mut hi = [0u8; 16];
        for (x, (l, h)) in lo.iter_mut().zip(hi.iter_mut()).enumerate() {
            let xv = u8::try_from(x).unwrap_or(0);
            *l = <Gf8 as GaloisField>::mul(c, xv);
            *h = <Gf8 as GaloisField>::mul(c, xv.wrapping_shl(4));
        }
        (lo, hi)
    }

    /// One byte multiply via prebuilt split tables (both tables have 16
    /// entries, and a nibble is always < 16).
    #[inline]
    fn split_mul(lo: &[u8; 16], hi: &[u8; 16], s: u8) -> u8 {
        lo.get(usize::from(s & 0x0F)).copied().unwrap_or(0)
            ^ hi.get(usize::from(s >> 4)).copied().unwrap_or(0)
    }
}

impl GaloisField for Gf8 {
    type Elem = u8;
    const BITS: u32 = 8;
    const ORDER: u32 = 256;
    const SYMBOL_BYTES: usize = 1;
    const NAME: &'static str = "GF(2^8)";

    #[inline]
    fn zero() -> u8 {
        0
    }

    #[inline]
    fn one() -> u8 {
        1
    }

    #[inline]
    fn add(a: u8, b: u8) -> u8 {
        a ^ b
    }

    #[inline]
    fn mul(a: u8, b: u8) -> u8 {
        if a == 0 || b == 0 {
            0
        } else {
            // log(a) + log(b) <= 508, inside the doubled antilog table.
            exp_at(log_of(a).wrapping_add(log_of(b)))
        }
    }

    #[inline]
    fn inv(a: u8) -> Option<u8> {
        if a == 0 {
            None
        } else {
            // log(a) <= 254, so the subtraction cannot underflow.
            Some(exp_at(255usize.wrapping_sub(log_of(a))))
        }
    }

    #[inline]
    fn exp(i: u32) -> u8 {
        exp_at(usize::try_from(i % 255).unwrap_or(0))
    }

    #[inline]
    fn log(a: u8) -> Option<u32> {
        if a == 0 {
            None
        } else {
            Some(u32::try_from(log_of(a)).unwrap_or(0))
        }
    }

    #[inline]
    fn from_usize(x: usize) -> u8 {
        // Truncation to the field width is this method's documented contract.
        u8::try_from(x & 0xFF).unwrap_or(0)
    }

    #[inline]
    fn to_usize(a: u8) -> usize {
        usize::from(a)
    }

    fn mul_slice(c: u8, src: &[u8], dst: &mut [u8]) {
        let n = src.len().min(dst.len());
        let (Some(src), Some(dst)) = (src.get(..n), dst.get_mut(..n)) else {
            return;
        };
        match c {
            0 => dst.fill(0),
            1 => dst.copy_from_slice(src),
            _ => {
                let (lo, hi) = Self::split_tables(c);
                for (s, d) in src.iter().zip(dst.iter_mut()) {
                    *d = Self::split_mul(&lo, &hi, *s);
                }
            }
        }
    }

    fn mul_add_slice(c: u8, src: &[u8], dst: &mut [u8]) {
        let n = src.len().min(dst.len());
        let (Some(src), Some(dst)) = (src.get(..n), dst.get_mut(..n)) else {
            return;
        };
        match c {
            0 => {}
            1 => crate::field::add_slice(src, dst),
            _ => {
                let (lo, hi) = Self::split_tables(c);
                for (s, d) in src.iter().zip(dst.iter_mut()) {
                    *d ^= Self::split_mul(&lo, &hi, *s);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_has_full_order() {
        // α = 2 must generate all 255 nonzero elements.
        let mut seen = [false; 256];
        let mut x = 1u8;
        for _ in 0..255 {
            assert!(!seen[x as usize], "generator order < 255");
            seen[x as usize] = true;
            x = Gf8::mul(x, 2);
        }
        assert_eq!(x, 1, "α^255 must be 1");
    }

    #[test]
    fn inv_matches_exhaustive_search() {
        for a in 1..=255u8 {
            let inv = Gf8::inv(a).unwrap();
            assert_eq!(Gf8::mul(a, inv), 1, "a={a}");
        }
    }

    #[test]
    fn div_roundtrip() {
        for a in 0..=255u8 {
            for b in 1..=255u8 {
                let q = Gf8::div(a, b).unwrap();
                assert_eq!(Gf8::mul(q, b), a);
            }
        }
        assert_eq!(Gf8::div(7, 0), None);
    }

    #[test]
    fn mul_slice_matches_scalar_loop() {
        let src: Vec<u8> = (0..=255u8).chain(0..=100).collect();
        for c in [0u8, 1, 2, 0x1D, 0xFF, 0x53] {
            let mut dst = vec![0xAAu8; src.len()];
            Gf8::mul_slice(c, &src, &mut dst);
            for (s, d) in src.iter().zip(&dst) {
                assert_eq!(*d, Gf8::mul(c, *s));
            }
        }
    }

    #[test]
    fn mul_add_slice_matches_scalar_loop() {
        let src: Vec<u8> = (0..=255u8).collect();
        for c in [0u8, 1, 2, 0x1D, 0xFF] {
            let base: Vec<u8> = (0..=255u8).map(|x| x.wrapping_mul(7)).collect();
            let mut dst = base.clone();
            Gf8::mul_add_slice(c, &src, &mut dst);
            for i in 0..src.len() {
                assert_eq!(dst[i], base[i] ^ Gf8::mul(c, src[i]));
            }
        }
    }

    #[test]
    fn mul_add_slice_identity_multiplier_is_xor() {
        let src = [0x0Fu8; 32];
        let mut dst = [0xF0u8; 32];
        Gf8::mul_add_slice(1, &src, &mut dst);
        assert!(dst.iter().all(|&b| b == 0xFF));
    }

    #[test]
    fn mul_slice_length_mismatch_degrades_to_common_prefix() {
        let mut dst = [0xAAu8; 4];
        Gf8::mul_slice(3, &[1, 2, 3], &mut dst);
        assert_eq!(
            dst,
            [Gf8::mul(3, 1), Gf8::mul(3, 2), Gf8::mul(3, 3), 0xAA],
            "prefix multiplied, surplus dst untouched"
        );

        let mut acc = [1u8, 1];
        Gf8::mul_add_slice(2, &[5, 6, 7, 8], &mut acc);
        assert_eq!(acc, [1 ^ Gf8::mul(2, 5), 1 ^ Gf8::mul(2, 6)]);
    }
}
