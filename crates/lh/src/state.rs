//! [`FileState`]: the coordinator's `(n, i)` file state and algorithm A1.

use crate::h;
use crate::split::SplitPlan;

/// The LH\* file state `(n, i)` kept by the coordinator: split pointer `n`,
/// file level `i`, and the initial bucket count `N` (`n0`).
///
/// The file has `M = n + 2^i · N` buckets; buckets `0..n` and
/// `2^i·N..M` are at level `i + 1`, buckets `n..2^i·N` at level `i`.
///
/// ```
/// use lhrs_lh::FileState;
///
/// let mut state = FileState::new(1);
/// let plan = state.split(); // bucket 0 splits into bucket 1
/// assert_eq!((plan.source, plan.target), (0, 1));
/// assert_eq!(state.bucket_count(), 2);
/// // A1: keys address an existing bucket under any state.
/// for key in 0..100 {
///     assert!(state.address(key) < state.bucket_count());
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileState {
    n: u64,
    i: u8,
    n0: u64,
}

impl FileState {
    /// A fresh file of `n0 ≥ 1` buckets (`n = 0`, `i = 0`). A zero `n0` is
    /// clamped to 1 (an LH\* file always has at least one bucket).
    pub fn new(n0: u64) -> Self {
        debug_assert!(n0 >= 1, "initial bucket count must be at least 1");
        FileState {
            n: 0,
            i: 0,
            n0: n0.max(1),
        }
    }

    /// Reconstruct a state from raw `(n, i, n0)` — used by file-state
    /// recovery. The parts come off the wire (recomputed from per-bucket
    /// levels reported by survivors), so inconsistent values must surface
    /// as `None` for the caller to handle, never abort the coordinator.
    pub fn from_parts(n: u64, i: u8, n0: u64) -> Option<Self> {
        if n0 == 0 {
            return None;
        }
        let s = FileState { n, i, n0 };
        if n >= s.boundary() {
            return None; // split pointer out of range
        }
        Some(s)
    }

    /// `2^i · N`, the number of buckets the file had when level `i` began.
    /// Saturates instead of overflowing so a corrupt level cannot wrap
    /// into a tiny (and thus wrongly-addressing) bucket count.
    fn boundary(&self) -> u64 {
        if self.i >= 64 {
            u64::MAX
        } else {
            // The shift amount is < 64 here, so wrapping_shl is exact.
            self.n0.saturating_mul(1u64.wrapping_shl(u32::from(self.i)))
        }
    }

    /// Split pointer `n`: the next bucket to split.
    pub fn split_pointer(&self) -> u64 {
        self.n
    }

    /// File level `i`.
    pub fn level(&self) -> u8 {
        self.i
    }

    /// Initial bucket count `N`.
    pub fn n0(&self) -> u64 {
        self.n0
    }

    /// Total number of buckets `M = n + 2^i · N` (saturating).
    pub fn bucket_count(&self) -> u64 {
        self.n.saturating_add(self.boundary())
    }

    /// **Algorithm A1** — the correct address of `key` under this state:
    ///
    /// ```text
    /// a ← h_i(c); if a < n then a ← h_{i+1}(c)
    /// ```
    pub fn address(&self, key: u64) -> u64 {
        let a = h(self.i, self.n0, key);
        if a < self.n {
            h(self.i.saturating_add(1), self.n0, key)
        } else {
            a
        }
    }

    /// The level `j_m` of bucket `m` under this state.
    ///
    /// Total: a bucket number beyond the file (a stale or corrupt wire
    /// value) degrades to the level it *would* have (`i + 1`, the level of
    /// every bucket past the boundary) instead of aborting — debug builds
    /// still trap on the misuse.
    pub fn level_of(&self, m: u64) -> u8 {
        debug_assert!(m < self.bucket_count(), "bucket {m} does not exist");
        if m < self.n || m >= self.boundary() {
            self.i.saturating_add(1)
        } else {
            self.i
        }
    }

    /// Perform one split step: returns the [`SplitPlan`] (which bucket
    /// splits, where movers go, the new level) and advances `(n, i)`.
    pub fn split(&mut self) -> SplitPlan {
        let source = self.n;
        let boundary = self.boundary();
        let target = source.saturating_add(boundary);
        let new_level = self.i.saturating_add(1);
        self.n = self.n.saturating_add(1);
        if self.n == boundary {
            self.n = 0;
            self.i = self.i.saturating_add(1);
        }
        SplitPlan {
            source,
            target,
            new_level,
            n0: self.n0,
        }
    }

    /// Undo the last split (bucket merge, the shrink operation of §4.3 of
    /// the predecessor paper). Returns the plan of the merge — records of
    /// the removed bucket `plan.target` move back into `plan.source` — or
    /// `None` when the file is at its initial size.
    pub fn merge(&mut self) -> Option<SplitPlan> {
        if self.n == 0 {
            if self.i == 0 {
                return None;
            }
            self.i = self.i.saturating_sub(1);
            self.n = self.boundary();
        }
        self.n = self.n.saturating_sub(1);
        Some(SplitPlan {
            source: self.n,
            target: self.n.saturating_add(self.boundary()),
            new_level: self.i.saturating_add(1),
            n0: self.n0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_state_has_n0_buckets() {
        let s = FileState::new(3);
        assert_eq!(s.bucket_count(), 3);
        assert_eq!(s.split_pointer(), 0);
        assert_eq!(s.level(), 0);
    }

    #[test]
    fn split_sequence_follows_lh_order() {
        // With N = 1 the split sequence is 0; 0,1; 0,1,2,3; ...
        let mut s = FileState::new(1);
        let sources: Vec<u64> = (0..7).map(|_| s.split().source).collect();
        assert_eq!(sources, vec![0, 0, 1, 0, 1, 2, 3]);
        assert_eq!(s.bucket_count(), 8);
        assert_eq!(s.level(), 3);
    }

    #[test]
    fn split_targets_are_dense_new_buckets() {
        let mut s = FileState::new(1);
        for expected_target in 1..40u64 {
            let plan = s.split();
            assert_eq!(plan.target, expected_target);
            assert_eq!(s.bucket_count(), expected_target + 1);
        }
    }

    #[test]
    fn address_is_always_an_existing_bucket() {
        let mut s = FileState::new(1);
        for step in 0..100 {
            for key in 0..500u64 {
                let a = s.address(key);
                assert!(a < s.bucket_count(), "step={step} key={key}");
            }
            s.split();
        }
    }

    #[test]
    fn address_is_stable_for_unsplit_buckets() {
        // Splitting bucket n only changes addresses of keys in bucket n.
        let mut s = FileState::new(1);
        for _ in 0..10 {
            s.split();
        }
        let before: Vec<u64> = (0..1000).map(|k| s.address(k)).collect();
        let plan_source = s.split_pointer();
        s.split();
        for k in 0..1000u64 {
            if before[k as usize] != plan_source {
                assert_eq!(
                    s.address(k),
                    before[k as usize],
                    "key {k} moved unexpectedly"
                );
            }
        }
    }

    #[test]
    fn level_of_matches_split_history() {
        let mut s = FileState::new(1);
        for _ in 0..5 {
            s.split();
        }
        // M = 6, i = 2, n = 2: buckets 0,1 and 4,5 at level 3; buckets 2,3 at level 2.
        assert_eq!(s.level(), 2);
        assert_eq!(s.split_pointer(), 2);
        assert_eq!(s.level_of(0), 3);
        assert_eq!(s.level_of(1), 3);
        assert_eq!(s.level_of(2), 2);
        assert_eq!(s.level_of(3), 2);
        assert_eq!(s.level_of(4), 3);
        assert_eq!(s.level_of(5), 3);
    }

    /// Release semantics: a nonexistent bucket degrades to level `i + 1`
    /// (what it would have once created) instead of aborting. Debug builds
    /// trap via `debug_assert!`, so this can only be asserted with debug
    /// assertions compiled out.
    #[test]
    #[cfg(not(debug_assertions))]
    fn level_of_unknown_bucket_degrades() {
        assert_eq!(FileState::new(1).level_of(1), 1);
    }

    #[test]
    fn from_parts_rejects_inconsistent_wire_values() {
        assert!(FileState::from_parts(0, 0, 0).is_none(), "zero n0");
        assert!(
            FileState::from_parts(2, 1, 1).is_none(),
            "split pointer at/past the boundary"
        );
        assert!(
            FileState::from_parts(7, 200, 1).is_some(),
            "huge level is consistent"
        );
        let s = FileState::from_parts(1, 1, 1).expect("valid state");
        assert_eq!(s.bucket_count(), 3);
        // A corrupt (maximal) level saturates instead of wrapping.
        let s = FileState::from_parts(5, 255, 3).expect("saturating boundary");
        assert_eq!(s.bucket_count(), u64::MAX);
        assert_eq!(s.level_of(s.bucket_count().saturating_sub(1)), 255);
    }

    #[test]
    fn merge_is_inverse_of_split() {
        let mut s = FileState::new(1);
        let mut history = Vec::new();
        for _ in 0..23 {
            history.push(s);
            s.split();
        }
        for prev in history.into_iter().rev() {
            s.merge().unwrap();
            assert_eq!(s, prev);
        }
        assert!(s.merge().is_none(), "cannot shrink below initial size");
    }

    #[test]
    fn address_matches_level_of_bucket_hash() {
        // The invariant used by A2: m is the correct bucket for c iff
        // m == h_{j_m}(c).
        let mut s = FileState::new(1);
        for _ in 0..13 {
            s.split();
        }
        for key in 0..2000u64 {
            let a = s.address(key);
            assert_eq!(crate::h(s.level_of(a), 1, key), a);
        }
    }
}
