//! [`FileState`]: the coordinator's `(n, i)` file state and algorithm A1.

use crate::h;
use crate::split::SplitPlan;

/// The LH\* file state `(n, i)` kept by the coordinator: split pointer `n`,
/// file level `i`, and the initial bucket count `N` (`n0`).
///
/// The file has `M = n + 2^i · N` buckets; buckets `0..n` and
/// `2^i·N..M` are at level `i + 1`, buckets `n..2^i·N` at level `i`.
///
/// ```
/// use lhrs_lh::FileState;
///
/// let mut state = FileState::new(1);
/// let plan = state.split(); // bucket 0 splits into bucket 1
/// assert_eq!((plan.source, plan.target), (0, 1));
/// assert_eq!(state.bucket_count(), 2);
/// // A1: keys address an existing bucket under any state.
/// for key in 0..100 {
///     assert!(state.address(key) < state.bucket_count());
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileState {
    n: u64,
    i: u8,
    n0: u64,
}

impl FileState {
    /// A fresh file of `n0 ≥ 1` buckets (`n = 0`, `i = 0`).
    pub fn new(n0: u64) -> Self {
        assert!(n0 >= 1, "initial bucket count must be at least 1");
        FileState { n: 0, i: 0, n0 }
    }

    /// Reconstruct a state from raw `(n, i, n0)` — used by file-state
    /// recovery.
    pub fn from_parts(n: u64, i: u8, n0: u64) -> Self {
        assert!(n0 >= 1);
        assert!(n < (1u64 << i) * n0, "split pointer out of range");
        FileState { n, i, n0 }
    }

    /// Split pointer `n`: the next bucket to split.
    pub fn split_pointer(&self) -> u64 {
        self.n
    }

    /// File level `i`.
    pub fn level(&self) -> u8 {
        self.i
    }

    /// Initial bucket count `N`.
    pub fn n0(&self) -> u64 {
        self.n0
    }

    /// Total number of buckets `M = n + 2^i · N`.
    pub fn bucket_count(&self) -> u64 {
        self.n + (1u64 << self.i) * self.n0
    }

    /// **Algorithm A1** — the correct address of `key` under this state:
    ///
    /// ```text
    /// a ← h_i(c); if a < n then a ← h_{i+1}(c)
    /// ```
    pub fn address(&self, key: u64) -> u64 {
        let a = h(self.i, self.n0, key);
        if a < self.n {
            h(self.i + 1, self.n0, key)
        } else {
            a
        }
    }

    /// The level `j_m` of bucket `m` under this state.
    ///
    /// # Panics
    /// Panics if `m` is not an existing bucket.
    pub fn level_of(&self, m: u64) -> u8 {
        assert!(m < self.bucket_count(), "bucket {m} does not exist");
        let boundary = (1u64 << self.i) * self.n0;
        if m < self.n || m >= boundary {
            self.i + 1
        } else {
            self.i
        }
    }

    /// Perform one split step: returns the [`SplitPlan`] (which bucket
    /// splits, where movers go, the new level) and advances `(n, i)`.
    pub fn split(&mut self) -> SplitPlan {
        let source = self.n;
        let boundary = (1u64 << self.i) * self.n0;
        let target = source + boundary;
        let new_level = self.i + 1;
        self.n += 1;
        if self.n == boundary {
            self.n = 0;
            self.i += 1;
        }
        SplitPlan {
            source,
            target,
            new_level,
            n0: self.n0,
        }
    }

    /// Undo the last split (bucket merge, the shrink operation of §4.3 of
    /// the predecessor paper). Returns the plan of the merge — records of
    /// the removed bucket `plan.target` move back into `plan.source` — or
    /// `None` when the file is at its initial size.
    pub fn merge(&mut self) -> Option<SplitPlan> {
        if self.n == 0 {
            if self.i == 0 {
                return None;
            }
            self.i -= 1;
            self.n = (1u64 << self.i) * self.n0;
        }
        self.n -= 1;
        let boundary = (1u64 << self.i) * self.n0;
        Some(SplitPlan {
            source: self.n,
            target: self.n + boundary,
            new_level: self.i + 1,
            n0: self.n0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_state_has_n0_buckets() {
        let s = FileState::new(3);
        assert_eq!(s.bucket_count(), 3);
        assert_eq!(s.split_pointer(), 0);
        assert_eq!(s.level(), 0);
    }

    #[test]
    fn split_sequence_follows_lh_order() {
        // With N = 1 the split sequence is 0; 0,1; 0,1,2,3; ...
        let mut s = FileState::new(1);
        let sources: Vec<u64> = (0..7).map(|_| s.split().source).collect();
        assert_eq!(sources, vec![0, 0, 1, 0, 1, 2, 3]);
        assert_eq!(s.bucket_count(), 8);
        assert_eq!(s.level(), 3);
    }

    #[test]
    fn split_targets_are_dense_new_buckets() {
        let mut s = FileState::new(1);
        for expected_target in 1..40u64 {
            let plan = s.split();
            assert_eq!(plan.target, expected_target);
            assert_eq!(s.bucket_count(), expected_target + 1);
        }
    }

    #[test]
    fn address_is_always_an_existing_bucket() {
        let mut s = FileState::new(1);
        for step in 0..100 {
            for key in 0..500u64 {
                let a = s.address(key);
                assert!(a < s.bucket_count(), "step={step} key={key}");
            }
            s.split();
        }
    }

    #[test]
    fn address_is_stable_for_unsplit_buckets() {
        // Splitting bucket n only changes addresses of keys in bucket n.
        let mut s = FileState::new(1);
        for _ in 0..10 {
            s.split();
        }
        let before: Vec<u64> = (0..1000).map(|k| s.address(k)).collect();
        let plan_source = s.split_pointer();
        s.split();
        for k in 0..1000u64 {
            if before[k as usize] != plan_source {
                assert_eq!(
                    s.address(k),
                    before[k as usize],
                    "key {k} moved unexpectedly"
                );
            }
        }
    }

    #[test]
    fn level_of_matches_split_history() {
        let mut s = FileState::new(1);
        for _ in 0..5 {
            s.split();
        }
        // M = 6, i = 2, n = 2: buckets 0,1 and 4,5 at level 3; buckets 2,3 at level 2.
        assert_eq!(s.level(), 2);
        assert_eq!(s.split_pointer(), 2);
        assert_eq!(s.level_of(0), 3);
        assert_eq!(s.level_of(1), 3);
        assert_eq!(s.level_of(2), 2);
        assert_eq!(s.level_of(3), 2);
        assert_eq!(s.level_of(4), 3);
        assert_eq!(s.level_of(5), 3);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn level_of_unknown_bucket_panics() {
        FileState::new(1).level_of(1);
    }

    #[test]
    fn merge_is_inverse_of_split() {
        let mut s = FileState::new(1);
        let mut history = Vec::new();
        for _ in 0..23 {
            history.push(s);
            s.split();
        }
        for prev in history.into_iter().rev() {
            s.merge().unwrap();
            assert_eq!(s, prev);
        }
        assert!(s.merge().is_none(), "cannot shrink below initial size");
    }

    #[test]
    fn address_matches_level_of_bucket_hash() {
        // The invariant used by A2: m is the correct bucket for c iff
        // m == h_{j_m}(c).
        let mut s = FileState::new(1);
        for _ in 0..13 {
            s.split();
        }
        for key in 0..2000u64 {
            let a = s.address(key);
            assert_eq!(crate::h(s.level_of(a), 1, key), a);
        }
    }
}
