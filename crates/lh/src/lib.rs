//! Linear-hashing core for the LH\* family of Scalable Distributed Data
//! Structures.
//!
//! This crate is pure address arithmetic — no I/O, no simulation — shared by
//! LH\*RS and every baseline scheme:
//!
//! * [`FileState`] — the coordinator's view `(n, i)`: split pointer and file
//!   level, the split sequence of linear hashing, and the authoritative
//!   addressing function **A1**;
//! * [`ClientImage`] — a client's possibly stale image `(n', i')` with the
//!   image-adjustment algorithm **A3** driven by IAMs;
//! * [`a2_route`] — the server-side forwarding test **A2**, which delivers
//!   any request to the correct bucket in **at most two hops** no matter how
//!   stale the client image is (property-tested in `tests/`);
//! * [`SplitPlan`] / [`partition_keys`] — what moves where when bucket `n`
//!   splits;
//! * [`LhTable`] — a self-contained single-node linear-hash dictionary built
//!   on the same arithmetic, usable on its own and doubling as an executable
//!   specification of the bucket math.
//!
//! # Example
//!
//! ```
//! use lhrs_lh::{ClientImage, FileState, a2_route, A2Outcome};
//!
//! let mut state = FileState::new(1); // N = 1 initial bucket
//! for _ in 0..5 { state.split(); }   // file now has 6 buckets
//! let mut image = ClientImage::new(1); // fresh client: n' = 0, i' = 0
//!
//! let key = 5u64;
//! let guess = image.address(key);          // client sends to its guess
//! let correct = state.address(key);        // where the record really is
//! // Server-side A2 forwarding reaches `correct` in ≤ 2 hops:
//! let mut at = guess;
//! let mut hops = 0;
//! while at != correct {
//!     match a2_route(at, state.level_of(at), key, 1) {
//!         A2Outcome::Accept => break,
//!         A2Outcome::Forward(next) => { at = next; hops += 1; }
//!     }
//! }
//! assert!(hops <= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod image;
mod route;
mod split;
mod state;
mod table;

pub use image::ClientImage;
pub use route::{a2_route, A2Outcome};
pub use split::{partition_keys, SplitPlan};
pub use state::FileState;
pub use table::LhTable;

/// The LH hash family: `h_l(c) = c mod (2^l · n0)`.
///
/// `n0` is the initial bucket count N of the file (usually 1). The LH\*
/// papers apply `h_l` directly to the key; keys that are not uniformly
/// distributed should be pre-scrambled (see [`scramble`]).
#[inline]
pub fn h(l: u8, n0: u64, key: u64) -> u64 {
    // Total for any (l, n0): the span saturates instead of wrapping, and a
    // degenerate zero span (n0 == 0) is clamped so the modulo is defined.
    let span = if l >= 64 {
        u64::MAX
    } else {
        // Shift amount < 64 here, so wrapping_shl is exact.
        1u64.wrapping_shl(u32::from(l)).saturating_mul(n0)
    };
    key % span.max(1)
}

/// A fast 64-bit mixing function (SplitMix64 finaliser) for clients whose
/// keys are clustered; LH behaves best on uniform keys.
#[inline]
pub fn scramble(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_family_is_nested() {
        // h_{l+1}(c) is either h_l(c) or h_l(c) + 2^l·n0 — the defining
        // property that makes linear-hash splits move only "upper half"
        // keys.
        for n0 in [1u64, 2, 3] {
            for l in 0..8u8 {
                for c in 0..2000u64 {
                    let a = h(l, n0, c);
                    let b = h(l + 1, n0, c);
                    assert!(b == a || b == a + (1u64 << l) * n0, "c={c} l={l} n0={n0}");
                }
            }
        }
    }

    #[test]
    fn scramble_is_injective_on_sample() {
        use std::collections::HashSet;
        let set: HashSet<u64> = (0..10_000u64).map(scramble).collect();
        assert_eq!(set.len(), 10_000);
    }
}
