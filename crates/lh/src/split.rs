//! Split plans and key partitioning: what moves where when bucket `n`
//! splits.

use crate::h;

/// The outcome of advancing the file state by one split (or, read backwards,
/// one merge): bucket `source` re-hashes its records with `h_{new_level}`;
/// those mapping to `target` move there, the rest stay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitPlan {
    /// The bucket that splits (the old split-pointer position).
    pub source: u64,
    /// The newly appended bucket `source + 2^{new_level-1}·N`.
    pub target: u64,
    /// Level of both `source` and `target` after the split.
    pub new_level: u8,
    /// Initial bucket count of the file (needed to re-run the hash).
    pub n0: u64,
}

impl SplitPlan {
    /// Whether `key` moves from `source` to `target` under this plan.
    ///
    /// Only meaningful for keys currently addressed to `source`.
    pub fn moves(&self, key: u64) -> bool {
        h(self.new_level, self.n0, key) == self.target
    }
}

/// Partition `keys` (all currently resident in `plan.source`) into
/// `(stayers, movers)` under the plan.
pub fn partition_keys(
    plan: &SplitPlan,
    keys: impl IntoIterator<Item = u64>,
) -> (Vec<u64>, Vec<u64>) {
    let mut stay = Vec::new();
    let mut go = Vec::new();
    for k in keys {
        debug_assert_eq!(
            h(plan.new_level.saturating_sub(1), plan.n0, k),
            plan.source,
            "key {k} was not resident in the splitting bucket"
        );
        if plan.moves(k) {
            go.push(k);
        } else {
            stay.push(k);
        }
    }
    (stay, go)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FileState;

    #[test]
    fn movers_land_on_target_stayers_on_source() {
        let mut state = FileState::new(1);
        for _ in 0..6 {
            state.split();
        }
        // Collect keys for the bucket about to split.
        let source = state.split_pointer();
        let keys: Vec<u64> = (0..4000u64)
            .filter(|&k| state.address(k) == source)
            .collect();
        assert!(!keys.is_empty());
        let plan = state.split();
        let (stay, go) = partition_keys(&plan, keys.iter().copied());
        assert_eq!(stay.len() + go.len(), keys.len());
        for &k in &stay {
            assert_eq!(state.address(k), plan.source);
        }
        for &k in &go {
            assert_eq!(state.address(k), plan.target);
        }
    }

    #[test]
    fn split_moves_roughly_half_of_uniform_keys() {
        let mut state = FileState::new(1);
        for _ in 0..3 {
            state.split();
        }
        let source = state.split_pointer();
        let keys: Vec<u64> = (0..40_000u64)
            .map(crate::scramble)
            .filter(|&k| state.address(k) == source)
            .collect();
        let plan = state.split();
        let (stay, go) = partition_keys(&plan, keys.iter().copied());
        let frac = go.len() as f64 / keys.len() as f64;
        assert!(
            (0.45..=0.55).contains(&frac),
            "uniform keys should split ~50/50, got {frac}"
        );
        assert!(!stay.is_empty());
    }

    #[test]
    fn plan_numbers_match_lh_arithmetic() {
        let mut state = FileState::new(2); // N = 2
        let p0 = state.split();
        assert_eq!((p0.source, p0.target, p0.new_level), (0, 2, 1));
        let p1 = state.split();
        assert_eq!((p1.source, p1.target, p1.new_level), (1, 3, 1));
        let p2 = state.split();
        assert_eq!((p2.source, p2.target, p2.new_level), (0, 4, 2));
    }
}
