//! [`ClientImage`]: a client's possibly stale view of the file state, with
//! algorithms A1 (client side) and A3 (image adjustment).

use crate::h;

/// A client's image `(n', i')` of the LH\* file state.
///
/// Clients never read the real file state — that would make the coordinator
/// a hot spot. Instead each client keeps this image, addresses requests with
/// A1 computed over the image, and refines the image from the Image
/// Adjustment Messages (IAMs) servers send when a request arrives at a
/// forwarding bucket.
///
/// # Note on the A3 transcription
///
/// The paper states A3 as `i' ← j − 1; n' ← a + 1` followed by a wrap test.
/// Taken literally this lets the image *overtake* the real file when the
/// IAM originates from a newly created high-numbered bucket (e.g. `a = 8`,
/// `j = 4` while the true state is `n = 2, i = 3`, ten buckets: the literal
/// rule yields an image of sixteen buckets and the client would address
/// non-existent servers). The implementation therefore uses the sound form
/// of the same idea: an IAM `(j, a)` proves the file reached at least the
/// state *just after bucket `a` obtained level `j`*, which is
/// `i_min = j − 1`, `n_min = (a mod 2^{i_min}·N) + 1` (with wrap), and the
/// image advances to the lexicographic maximum of its current value and
/// that minimal state. This keeps every guarantee the paper claims for A3 —
/// forward-only movement, convergence, and "the same addressing error
/// cannot happen twice" — while never exceeding the true state; both
/// properties are enforced by tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientImage {
    n: u64,
    i: u8,
    n0: u64,
}

impl ClientImage {
    /// A brand-new client: `n' = 0`, `i' = 0` — the worst-case image. A
    /// zero `n0` is clamped to 1.
    pub fn new(n0: u64) -> Self {
        debug_assert!(n0 >= 1);
        ClientImage {
            n: 0,
            i: 0,
            n0: n0.max(1),
        }
    }

    /// `2^lvl · N`, saturating — a corrupt level in an IAM must not wrap
    /// the implied bucket count (same rule as `FileState`).
    fn boundary_at(&self, lvl: u8) -> u64 {
        if lvl >= 64 {
            u64::MAX
        } else {
            // The shift amount is < 64 here, so wrapping_shl is exact.
            self.n0.saturating_mul(1u64.wrapping_shl(u32::from(lvl)))
        }
    }

    /// Image split pointer `n'`.
    pub fn split_pointer(&self) -> u64 {
        self.n
    }

    /// Image file level `i'`.
    pub fn level(&self) -> u8 {
        self.i
    }

    /// Number of buckets the client believes exist (saturating).
    pub fn bucket_count(&self) -> u64 {
        self.n.saturating_add(self.boundary_at(self.i))
    }

    /// **A1 over the image**: the bucket this client sends a request for
    /// `key` to. May be wrong; A2 forwarding fixes it in ≤ 2 hops.
    pub fn address(&self, key: u64) -> u64 {
        let a = h(self.i, self.n0, key);
        if a < self.n {
            h(self.i.saturating_add(1), self.n0, key)
        } else {
            a
        }
    }

    /// **Algorithm A3** — refine the image from an IAM carrying the level
    /// `j` of the bucket `a` that finally handled the request (see the type
    /// docs for the exact rule implemented).
    pub fn adjust(&mut self, j: u8, a: u64) {
        if j == 0 {
            return; // a level-0 bucket proves nothing beyond the initial state
        }
        let i_min = j.saturating_sub(1);
        // n0 >= 1 keeps the span nonzero, so the modulo below is total.
        let span = self.boundary_at(i_min);
        let mut n_min = (a % span.max(1)).saturating_add(1);
        let mut i_new = i_min;
        if n_min >= span {
            n_min = 0;
            i_new = i_new.saturating_add(1);
        }
        // Forward-only: lexicographic max on (level, pointer).
        if (i_new, n_min) > (self.i, self.n) {
            self.i = i_new;
            self.n = n_min;
        }
    }

    /// The level this image assumes bucket `m` has (same arithmetic as
    /// [`crate::FileState::level_of`], over the image). Used to tag scan
    /// messages so servers can propagate them to buckets the image does not
    /// know about, exactly once.
    ///
    /// Total: a bucket outside the image's range degrades to `i' + 1` (the
    /// level it would have) instead of aborting; debug builds still trap.
    pub fn level_of(&self, m: u64) -> u8 {
        debug_assert!(m < self.bucket_count(), "bucket {m} not in image");
        if m < self.n || m >= self.boundary_at(self.i) {
            self.i.saturating_add(1)
        } else {
            self.i
        }
    }

    /// Step the image *backwards* by one split — used when a client
    /// discovers its image is ahead of a file that has shrunk through
    /// bucket merges (the allocation table reports the addressed bucket no
    /// longer exists). Returns `false` at the initial state.
    pub fn regress(&mut self) -> bool {
        if self.n == 0 {
            if self.i == 0 {
                return false;
            }
            self.i = self.i.saturating_sub(1);
            self.n = self.boundary_at(self.i);
        }
        self.n = self.n.saturating_sub(1);
        true
    }

    /// The raw `(n', i')` pair — handy for assertions in tests.
    pub fn parts(&self) -> (u64, u8) {
        (self.n, self.i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FileState;

    #[test]
    fn fresh_image_addresses_bucket_zero_family() {
        let img = ClientImage::new(1);
        for key in 0..100 {
            assert_eq!(img.address(key), 0);
        }
    }

    #[test]
    fn adjust_moves_image_forward_only() {
        let mut img = ClientImage::new(1);
        img.adjust(3, 1);
        let before = img.parts();
        // Weaker IAMs must not regress the image.
        img.adjust(1, 0);
        assert_eq!(img.parts(), before);
        img.adjust(3, 0); // same level, smaller implied pointer
        assert_eq!(img.parts(), before);
    }

    #[test]
    fn image_never_overtakes_true_state() {
        // Feed the client IAMs from the true state after every split; the
        // image bucket count must never exceed the true bucket count.
        let mut state = FileState::new(1);
        let mut img = ClientImage::new(1);
        for key in 0..500u64 {
            state.split();
            let a = state.address(key * 7 + 1);
            img.adjust(state.level_of(a), a);
            assert!(
                img.bucket_count() <= state.bucket_count(),
                "image overtook file at key {key}: {:?} vs {:?}",
                img.parts(),
                (state.split_pointer(), state.level())
            );
        }
    }

    #[test]
    fn iam_from_new_bucket_implies_exact_minimal_state() {
        // True state (n = 2, i = 3): ten buckets. Bucket 8 (level 4) was
        // created when bucket 0 split; an IAM (j = 4, a = 8) must imply
        // state (n = 1, i = 3) — nine buckets — not sixteen.
        let mut img = ClientImage::new(1);
        img.adjust(4, 8);
        assert_eq!(img.parts(), (1, 3));
        assert_eq!(img.bucket_count(), 9);
    }

    #[test]
    fn iam_wrap_to_next_level() {
        // IAM (j = 3, a = 3): bucket 3 got level 3 when it split at state
        // (n = 3, i = 2); the successor state wraps to (n = 0, i = 3).
        let mut img = ClientImage::new(1);
        img.adjust(3, 3);
        assert_eq!(img.parts(), (0, 3));
        assert_eq!(img.bucket_count(), 8);
    }

    #[test]
    fn same_error_cannot_repeat_and_key_resolves() {
        // After an IAM for key c from its correct bucket, the client
        // addresses c correctly — the strong form of "the same addressing
        // error cannot happen twice".
        for splits in [1usize, 3, 5, 9, 20, 37] {
            let mut state = FileState::new(1);
            for _ in 0..splits {
                state.split();
            }
            let mut img = ClientImage::new(1);
            for key in 0..300u64 {
                let guess = img.address(key);
                let correct = state.address(key);
                if guess != correct {
                    img.adjust(state.level_of(correct), correct);
                    assert_eq!(
                        img.address(key),
                        correct,
                        "key {key} unresolved after IAM (splits={splits})"
                    );
                }
            }
        }
    }

    #[test]
    fn regress_inverts_adjust_path() {
        // Walk an image forward via IAMs, then regress step by step: the
        // bucket count decreases by exactly one per step down to 1.
        let mut state = FileState::new(1);
        for _ in 0..13 {
            state.split();
        }
        let mut img = ClientImage::new(1);
        for key in 0..200u64 {
            let a = state.address(key);
            img.adjust(state.level_of(a), a);
        }
        let mut count = img.bucket_count();
        while img.regress() {
            assert_eq!(img.bucket_count(), count - 1);
            count -= 1;
        }
        assert_eq!(img.parts(), (0, 0));
        assert!(!img.regress(), "cannot regress below the initial state");
    }

    #[test]
    fn regress_mirrors_file_state_merge() {
        // regress() must step through exactly the same (n, i) sequence as
        // FileState::merge.
        let mut state = FileState::new(1);
        for _ in 0..23 {
            state.split();
        }
        let mut img = ClientImage::new(1);
        // Drive the image to the exact state.
        for key in 0..500u64 {
            let a = state.address(key);
            img.adjust(state.level_of(a), a);
        }
        assert_eq!(img.parts(), (state.split_pointer(), state.level()));
        while state.merge().is_some() {
            assert!(img.regress());
            assert_eq!(img.parts(), (state.split_pointer(), state.level()));
        }
    }

    #[test]
    fn converges_in_logarithmically_many_iams() {
        // A new client reaches a fully accurate image after O(log M) IAMs
        // on a uniform key stream (the paper's convergence claim). Each
        // addressing error jumps the image pointer to a uniformly random
        // later position, so the expected error count is harmonic —
        // O(log M) — for a 256-bucket file well under 40.
        let mut state = FileState::new(1);
        for _ in 0..255 {
            state.split();
        }
        let mut img = ClientImage::new(1);
        let mut iams = 0;
        for raw in 0..100_000u64 {
            let key = crate::scramble(raw);
            let guess = img.address(key);
            let correct = state.address(key);
            if guess != correct {
                iams += 1;
                img.adjust(state.level_of(correct), correct);
            }
            if img.parts() == (state.split_pointer(), state.level()) {
                break;
            }
        }
        assert_eq!(
            img.parts(),
            (state.split_pointer(), state.level()),
            "image never converged"
        );
        assert!(
            iams <= 40,
            "took {iams} IAMs to converge on a 256-bucket file"
        );
    }
}
