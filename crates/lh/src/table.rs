//! [`LhTable`]: a self-contained single-node linear-hash dictionary.
//!
//! This is classic Litwin linear hashing (the [L80] citation of the paper)
//! over the same [`FileState`] arithmetic the distributed schemes use. It
//! serves three purposes: an executable specification of the bucket math, a
//! handy in-memory dictionary for examples, and the in-bucket store behind
//! the simulated servers.

use crate::split::partition_keys;
use crate::FileState;

/// A growable linear-hash table mapping `u64` keys to values.
///
/// Splits are triggered by a load-factor threshold (records per bucket
/// exceeding `split_load × capacity`), mirroring the uncontrolled-split
/// policy of the paper's files.
///
/// ```
/// use lhrs_lh::LhTable;
///
/// let mut table = LhTable::new(8);
/// for key in 0..1000u64 {
///     table.insert(lhrs_lh::scramble(key), key * 2);
/// }
/// assert_eq!(table.get(lhrs_lh::scramble(7)), Some(&14));
/// assert!(table.bucket_count() > 64, "the table grew by splitting");
/// ```
#[derive(Debug, Clone)]
pub struct LhTable<V> {
    state: FileState,
    buckets: Vec<Vec<(u64, V)>>,
    len: usize,
    /// Records per bucket above which an insert triggers a split.
    split_threshold: usize,
}

impl<V> LhTable<V> {
    /// Create a table with the given per-bucket split threshold (`b` in the
    /// paper's notation — bucket capacity). A zero threshold is clamped
    /// to 1.
    pub fn new(split_threshold: usize) -> Self {
        debug_assert!(split_threshold >= 1);
        LhTable {
            state: FileState::new(1),
            buckets: vec![Vec::new()],
            len: 0,
            split_threshold: split_threshold.max(1),
        }
    }

    /// The bucket slot for `key`. The table invariant
    /// (`buckets.len() == state.bucket_count()`) keeps this in range; the
    /// conversion saturates rather than truncating on narrow hosts.
    fn slot(&self, key: u64) -> usize {
        usize::try_from(self.state.address(key)).unwrap_or(usize::MAX)
    }

    /// Number of records stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of buckets currently allocated.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Average load factor: records / (buckets × threshold).
    pub fn load_factor(&self) -> f64 {
        self.len as f64 / (self.buckets.len() * self.split_threshold) as f64
    }

    /// Insert or replace; returns the previous value if the key existed.
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        let a = self.slot(key);
        let Some(bucket) = self.buckets.get_mut(a) else {
            debug_assert!(false, "A1 addressed a nonexistent bucket");
            return None;
        };
        for slot in bucket.iter_mut() {
            if slot.0 == key {
                return Some(std::mem::replace(&mut slot.1, value));
            }
        }
        bucket.push((key, value));
        let overflow = bucket.len() > self.split_threshold;
        self.len = self.len.saturating_add(1);
        // Uncontrolled split policy: split whenever the *inserted-into*
        // bucket overflows (the overflow report of the paper).
        if overflow {
            self.split_once();
        }
        None
    }

    /// Look up a key.
    pub fn get(&self, key: u64) -> Option<&V> {
        self.buckets
            .get(self.slot(key))?
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    }

    /// Remove a key, returning its value.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let a = self.slot(key);
        let bucket = self.buckets.get_mut(a)?;
        let pos = bucket.iter().position(|(k, _)| *k == key)?;
        let (_, v) = bucket.swap_remove(pos);
        self.len = self.len.saturating_sub(1);
        Some(v)
    }

    /// Iterate over all `(key, value)` pairs in bucket order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.buckets
            .iter()
            .flat_map(|b| b.iter().map(|(k, v)| (*k, v)))
    }

    /// Undo the last split: fold the last bucket back into its split
    /// source (the merge of §4.3). Returns `false` at the initial size.
    /// Typical use is shrinking a deletion-heavy table:
    ///
    /// ```
    /// use lhrs_lh::LhTable;
    /// let mut t = LhTable::new(4);
    /// for k in 0..200u64 { t.insert(k, ()); }
    /// for k in 0..190u64 { t.remove(k); }
    /// while t.load_factor() < 0.4 && t.merge_once() {}
    /// assert!(t.bucket_count() < 20);
    /// assert_eq!(t.get(195), Some(&()));
    /// ```
    pub fn merge_once(&mut self) -> bool {
        let Some(plan) = self.state.merge() else {
            return false;
        };
        debug_assert_eq!(
            Some(plan.target),
            u64::try_from(self.buckets.len())
                .ok()
                .map(|l| l.saturating_sub(1))
        );
        let Some(movers) = self.buckets.pop() else {
            return false;
        };
        let source = usize::try_from(plan.source).unwrap_or(usize::MAX);
        if let Some(bucket) = self.buckets.get_mut(source) {
            bucket.extend(movers);
        }
        true
    }

    /// Perform one linear-hash split (bucket pointed to by the split
    /// pointer, which is generally *not* the overflowing bucket).
    fn split_once(&mut self) {
        let plan = self.state.split();
        debug_assert_eq!(Some(plan.target), u64::try_from(self.buckets.len()).ok());
        let slot = usize::try_from(plan.source).unwrap_or(usize::MAX);
        let Some(bucket) = self.buckets.get_mut(slot) else {
            debug_assert!(false, "split source bucket missing");
            self.buckets.push(Vec::new());
            return;
        };
        let source = std::mem::take(bucket);
        let keys = source.iter().map(|(k, _)| *k);
        let (_stay, movers) = partition_keys(&plan, keys);
        let mover_set: std::collections::HashSet<u64> = movers.into_iter().collect();
        let mut stay_records = Vec::new();
        let mut move_records = Vec::new();
        for (k, v) in source {
            if mover_set.contains(&k) {
                move_records.push((k, v));
            } else {
                stay_records.push((k, v));
            }
        }
        if let Some(bucket) = self.buckets.get_mut(slot) {
            *bucket = stay_records;
        }
        self.buckets.push(move_records);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t = LhTable::new(4);
        for k in 0..1000u64 {
            assert_eq!(t.insert(k, k * 2), None);
        }
        assert_eq!(t.len(), 1000);
        for k in 0..1000u64 {
            assert_eq!(t.get(k), Some(&(k * 2)));
        }
        assert_eq!(t.get(5000), None);
        for k in (0..1000u64).step_by(2) {
            assert_eq!(t.remove(k), Some(k * 2));
        }
        assert_eq!(t.len(), 500);
        assert_eq!(t.get(0), None);
        assert_eq!(t.get(1), Some(&2));
    }

    #[test]
    fn insert_replaces_and_returns_old() {
        let mut t = LhTable::new(4);
        assert_eq!(t.insert(7, "a"), None);
        assert_eq!(t.insert(7, "b"), Some("a"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(7), Some(&"b"));
    }

    #[test]
    fn table_scales_and_keeps_reasonable_load() {
        let mut t = LhTable::new(8);
        for k in 0..20_000u64 {
            t.insert(crate::scramble(k), k);
        }
        assert!(t.bucket_count() > 1000, "table must have split many times");
        let lf = t.load_factor();
        // The paper reports ~0.7 average load for uncontrolled splitting.
        assert!((0.5..=0.95).contains(&lf), "load factor {lf} out of range");
        // Every record still findable after thousands of splits.
        for k in 0..20_000u64 {
            assert_eq!(t.get(crate::scramble(k)), Some(&k));
        }
    }

    #[test]
    fn iter_sees_every_record_once() {
        let mut t = LhTable::new(3);
        for k in 0..500u64 {
            t.insert(k, ());
        }
        let mut keys: Vec<u64> = t.iter().map(|(k, _)| k).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 500);
    }

    #[test]
    fn merge_restores_addressability() {
        let mut t = LhTable::new(4);
        for k in 0..800u64 {
            t.insert(crate::scramble(k), k);
        }
        let big = t.bucket_count();
        // Shrink halfway down, verifying every key at each step.
        for _ in 0..big / 2 {
            assert!(t.merge_once());
        }
        assert_eq!(t.bucket_count(), big - big / 2);
        for k in 0..800u64 {
            assert_eq!(t.get(crate::scramble(k)), Some(&k), "key {k}");
        }
        // All the way to one bucket.
        while t.merge_once() {}
        assert_eq!(t.bucket_count(), 1);
        assert!(!t.merge_once());
        assert_eq!(t.len(), 800);
    }

    #[test]
    fn sequential_keys_also_work() {
        // Linear hashing degrades gracefully on sequential keys (they are
        // the best case for `c mod 2^l`).
        let mut t = LhTable::new(4);
        for k in 0..5000u64 {
            t.insert(k, k);
        }
        for k in 0..5000u64 {
            assert_eq!(t.get(k), Some(&k));
        }
        let lf = t.load_factor();
        assert!(lf > 0.4, "load factor {lf}");
    }
}
