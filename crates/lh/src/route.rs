//! Algorithm A2 — the server-side address verification and forwarding rule
//! that delivers any request to its correct bucket in at most two hops.

use crate::h;

/// Outcome of running A2 at a bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum A2Outcome {
    /// This bucket is the correct address for the key.
    Accept,
    /// Forward the request to the given bucket.
    Forward(u64),
}

/// **Algorithm A2**, run by bucket `m` (whose header stores its level
/// `j`) on receiving a request for `key`:
///
/// ```text
/// a' ← h_j(c);  if a' = m then accept;
/// a'' ← h_{j-1}(c);  if a'' > m and a'' < a' then a' ← a'';
/// forward to a'
/// ```
///
/// The correctness test exploits the LH\* invariant that `m` is the correct
/// bucket for `c` iff `m = h_{j_m}(c)`. The guarded `a''` adjustment is what
/// bounds forwarding chains at two hops regardless of how stale the sending
/// client's image is.
pub fn a2_route(m: u64, j: u8, key: u64, n0: u64) -> A2Outcome {
    let a1 = h(j, n0, key);
    if a1 == m {
        return A2Outcome::Accept;
    }
    let mut target = a1;
    if j > 0 {
        let a2 = h(j.saturating_sub(1), n0, key);
        if a2 > m && a2 < target {
            target = a2;
        }
    }
    A2Outcome::Forward(target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClientImage, FileState};

    /// Walk a request from the client's guessed bucket to acceptance,
    /// returning (final bucket, hops).
    fn resolve(state: &FileState, start: u64, key: u64) -> (u64, usize) {
        let mut at = start;
        let mut hops = 0;
        loop {
            match a2_route(at, state.level_of(at), key, state.n0()) {
                A2Outcome::Accept => return (at, hops),
                A2Outcome::Forward(next) => {
                    assert_ne!(next, at, "self-forwarding loop");
                    at = next;
                    hops += 1;
                    assert!(hops <= 3, "forwarding chain too long");
                }
            }
        }
    }

    #[test]
    fn correct_bucket_accepts_immediately() {
        let mut state = FileState::new(1);
        for _ in 0..11 {
            state.split();
        }
        for key in 0..2000u64 {
            let correct = state.address(key);
            let (at, hops) = resolve(&state, correct, key);
            assert_eq!(at, correct);
            assert_eq!(hops, 0);
        }
    }

    #[test]
    fn worst_case_client_resolves_in_at_most_two_hops() {
        // A brand-new client (image = one bucket) against files of many
        // sizes: every key must resolve to the A1-correct bucket in ≤ 2
        // hops — the headline LH* access guarantee.
        let mut state = FileState::new(1);
        for splits in 0..60 {
            let img = ClientImage::new(1);
            for key in 0..1000u64 {
                let start = img.address(key);
                let (at, hops) = resolve(&state, start, key);
                assert_eq!(at, state.address(key), "key {key} splits {splits}");
                assert!(hops <= 2, "key {key} took {hops} hops at {splits} splits");
            }
            state.split();
        }
    }

    #[test]
    fn any_stale_image_resolves_in_at_most_two_hops() {
        // Stronger: replay the file history; a client whose image is any
        // earlier state still resolves in ≤ 2 hops.
        let total_splits = 40;
        let mut images = vec![ClientImage::new(1)];
        let mut state = FileState::new(1);
        // Record images that track the state exactly at each history point
        // by feeding perfect IAMs.
        for _ in 0..total_splits {
            state.split();
            let mut img = ClientImage::new(1);
            // Drive the image to the current state via IAMs on many keys.
            for key in 0..200u64 {
                let a = state.address(key);
                img.adjust(state.level_of(a), a);
            }
            images.push(img);
        }
        for img in &images {
            for key in 0..500u64 {
                let start = img.address(key);
                let (at, hops) = resolve(&state, start, key);
                assert_eq!(at, state.address(key));
                assert!(hops <= 2);
            }
        }
    }

    #[test]
    fn forwarding_never_visits_nonexistent_buckets() {
        let mut state = FileState::new(1);
        for _ in 0..23 {
            state.split();
        }
        let img = ClientImage::new(1);
        for key in 0..3000u64 {
            let mut at = img.address(key);
            loop {
                assert!(at < state.bucket_count(), "visited ghost bucket {at}");
                match a2_route(at, state.level_of(at), key, 1) {
                    A2Outcome::Accept => break,
                    A2Outcome::Forward(next) => at = next,
                }
            }
        }
    }
}
