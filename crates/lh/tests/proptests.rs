//! Property-based tests of the LH* addressing guarantees: A1 correctness,
//! the A2 two-hop bound under arbitrarily stale images, A3 convergence and
//! safety, and split/merge inversion. Seeded cases via `lhrs-testkit`.

use lhrs_lh::{a2_route, partition_keys, A2Outcome, ClientImage, FileState, LhTable};
use lhrs_testkit::{cases, Rng};

/// Resolve a request via A2 from `start`, panicking on chains > 3.
fn resolve(state: &FileState, start: u64, key: u64) -> (u64, usize) {
    let mut at = start;
    let mut hops = 0;
    loop {
        match a2_route(at, state.level_of(at), key, state.n0()) {
            A2Outcome::Accept => return (at, hops),
            A2Outcome::Forward(next) => {
                at = next;
                hops += 1;
                assert!(hops <= 3, "A2 chain exceeded 3 hops");
            }
        }
    }
}

fn random_keys(rng: &mut Rng, lo: usize, hi: usize) -> Vec<u64> {
    (0..rng.range_usize(lo, hi))
        .map(|_| rng.next_u64())
        .collect()
}

/// A1 always yields an existing bucket, for any file size and key.
#[test]
fn a1_address_in_range() {
    cases("a1_address_in_range", 128, |rng| {
        let splits = rng.range_usize(0, 300);
        let key = rng.next_u64();
        let n0 = rng.range(1, 5);
        let mut state = FileState::new(n0);
        for _ in 0..splits {
            state.split();
        }
        assert!(state.address(key) < state.bucket_count());
    });
}

/// The two-hop guarantee: a request starting at the address computed by
/// ANY older image reaches the correct bucket in at most 2 hops.
#[test]
fn a2_two_hop_bound() {
    cases("a2_two_hop_bound", 128, |rng| {
        let splits = rng.range_usize(0, 200);
        let n0 = rng.range(1, 4);
        let mut state = FileState::new(n0);
        for _ in 0..splits {
            state.split();
        }
        // Build an image corresponding to an earlier point in history.
        let image_splits = rng.range_usize(0, splits + 1);
        let mut img_state = FileState::new(n0);
        for _ in 0..image_splits {
            img_state.split();
        }
        for key in random_keys(rng, 1, 30) {
            let start = img_state.address(key); // image = old true state
            let (at, hops) = resolve(&state, start, key);
            assert_eq!(at, state.address(key));
            assert!(hops <= 2, "took {hops} hops");
        }
    });
}

/// A3 safety: an image fed arbitrary valid IAMs from the true state
/// never overtakes it, and one IAM per key resolves that key.
#[test]
fn a3_safety_and_resolution() {
    cases("a3_safety_and_resolution", 128, |rng| {
        let splits = rng.range_usize(1, 200);
        let mut state = FileState::new(1);
        for _ in 0..splits {
            state.split();
        }
        let mut img = ClientImage::new(1);
        for key in random_keys(rng, 1, 50) {
            let correct = state.address(key);
            if img.address(key) != correct {
                img.adjust(state.level_of(correct), correct);
                assert_eq!(img.address(key), correct);
            }
            assert!(img.bucket_count() <= state.bucket_count());
        }
    });
}

/// Splits preserve addressing: after a split, every key is addressed
/// either where it was, or to the new bucket if it came from the split
/// source.
#[test]
fn split_only_moves_source_keys() {
    cases("split_only_moves_source_keys", 128, |rng| {
        let splits = rng.range_usize(0, 150);
        let mut state = FileState::new(1);
        for _ in 0..splits {
            state.split();
        }
        let keys = random_keys(rng, 1, 50);
        let before: Vec<u64> = keys.iter().map(|&k| state.address(k)).collect();
        let plan = state.split();
        for (idx, &k) in keys.iter().enumerate() {
            let now = state.address(k);
            if before[idx] == plan.source {
                assert!(now == plan.source || now == plan.target);
                assert_eq!(now == plan.target, plan.moves(k));
            } else {
                assert_eq!(now, before[idx]);
            }
        }
    });
}

/// merge() exactly undoes split() anywhere in the growth history.
#[test]
fn merge_inverts_split() {
    cases("merge_inverts_split", 128, |rng| {
        let splits = rng.range_usize(0, 300);
        let n0 = rng.range(1, 4);
        let mut state = FileState::new(n0);
        for _ in 0..splits {
            state.split();
        }
        let before = state;
        let plan = state.split();
        let merged = state.merge().unwrap();
        assert_eq!(state, before);
        assert_eq!(merged, plan);
    });
}

/// partition_keys is a partition: disjoint, exhaustive, and consistent
/// with post-split addressing.
#[test]
fn partition_is_exact() {
    cases("partition_is_exact", 128, |rng| {
        let splits = rng.range_usize(0, 100);
        let seed = rng.next_u64();
        let mut state = FileState::new(1);
        for _ in 0..splits {
            state.split();
        }
        let source = state.split_pointer();
        let keys: Vec<u64> = (0..500u64)
            .map(|i| lhrs_lh::scramble(seed.wrapping_add(i)))
            .filter(|&k| state.address(k) == source)
            .collect();
        let plan = state.split();
        let (stay, go) = partition_keys(&plan, keys.iter().copied());
        assert_eq!(stay.len() + go.len(), keys.len());
        for &k in &stay {
            assert_eq!(state.address(k), plan.source);
        }
        for &k in &go {
            assert_eq!(state.address(k), plan.target);
        }
    });
}

/// LhTable behaves like a HashMap under random workloads.
#[test]
fn lh_table_matches_model() {
    cases("lh_table_matches_model", 128, |rng| {
        use std::collections::HashMap;
        let threshold = rng.range_usize(1, 16);
        let mut table = LhTable::new(threshold);
        let mut model: HashMap<u64, u16> = HashMap::new();
        for _ in 0..rng.range_usize(1, 400) {
            let k = rng.next_u16() as u64;
            let v = rng.next_u16();
            if rng.chance(1, 2) {
                assert_eq!(table.insert(k, v), model.insert(k, v));
            } else {
                assert_eq!(table.remove(k), model.remove(&k));
            }
            assert_eq!(table.len(), model.len());
        }
        for (k, v) in &model {
            assert_eq!(table.get(*k), Some(v));
        }
    });
}
