//! Property-based tests of the LH* addressing guarantees: A1 correctness,
//! the A2 two-hop bound under arbitrarily stale images, A3 convergence and
//! safety, and split/merge inversion.

use lhrs_lh::{a2_route, partition_keys, A2Outcome, ClientImage, FileState, LhTable};
use proptest::prelude::*;

/// Resolve a request via A2 from `start`, panicking on chains > 3.
fn resolve(state: &FileState, start: u64, key: u64) -> (u64, usize) {
    let mut at = start;
    let mut hops = 0;
    loop {
        match a2_route(at, state.level_of(at), key, state.n0()) {
            A2Outcome::Accept => return (at, hops),
            A2Outcome::Forward(next) => {
                at = next;
                hops += 1;
                assert!(hops <= 3, "A2 chain exceeded 3 hops");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A1 always yields an existing bucket, for any file size and key.
    #[test]
    fn a1_address_in_range(splits in 0usize..300, key: u64, n0 in 1u64..5) {
        let mut state = FileState::new(n0);
        for _ in 0..splits {
            state.split();
        }
        prop_assert!(state.address(key) < state.bucket_count());
    }

    /// The two-hop guarantee: a request starting at the address computed by
    /// ANY older image reaches the correct bucket in at most 2 hops.
    #[test]
    fn a2_two_hop_bound(
        splits in 0usize..200,
        image_splits_frac in 0.0f64..1.0,
        keys in proptest::collection::vec(any::<u64>(), 1..30),
        n0 in 1u64..4,
    ) {
        let mut state = FileState::new(n0);
        for _ in 0..splits {
            state.split();
        }
        // Build an image corresponding to an earlier point in history.
        let image_splits = (splits as f64 * image_splits_frac) as usize;
        let mut img_state = FileState::new(n0);
        for _ in 0..image_splits {
            img_state.split();
        }
        for key in keys {
            let start = img_state.address(key); // image = old true state
            let (at, hops) = resolve(&state, start, key);
            prop_assert_eq!(at, state.address(key));
            prop_assert!(hops <= 2, "took {} hops", hops);
        }
    }

    /// A3 safety: an image fed arbitrary valid IAMs from the true state
    /// never overtakes it, and one IAM per key resolves that key.
    #[test]
    fn a3_safety_and_resolution(
        splits in 1usize..200,
        keys in proptest::collection::vec(any::<u64>(), 1..50),
    ) {
        let mut state = FileState::new(1);
        for _ in 0..splits {
            state.split();
        }
        let mut img = ClientImage::new(1);
        for key in keys {
            let correct = state.address(key);
            if img.address(key) != correct {
                img.adjust(state.level_of(correct), correct);
                prop_assert_eq!(img.address(key), correct);
            }
            prop_assert!(img.bucket_count() <= state.bucket_count());
        }
    }

    /// Splits preserve addressing: after a split, every key is addressed
    /// either where it was, or to the new bucket if it came from the split
    /// source.
    #[test]
    fn split_only_moves_source_keys(
        splits in 0usize..150,
        keys in proptest::collection::vec(any::<u64>(), 1..50),
    ) {
        let mut state = FileState::new(1);
        for _ in 0..splits {
            state.split();
        }
        let before: Vec<u64> = keys.iter().map(|&k| state.address(k)).collect();
        let plan = state.split();
        for (idx, &k) in keys.iter().enumerate() {
            let now = state.address(k);
            if before[idx] == plan.source {
                prop_assert!(now == plan.source || now == plan.target);
                prop_assert_eq!(now == plan.target, plan.moves(k));
            } else {
                prop_assert_eq!(now, before[idx]);
            }
        }
    }

    /// merge() exactly undoes split() anywhere in the growth history.
    #[test]
    fn merge_inverts_split(splits in 0usize..300, n0 in 1u64..4) {
        let mut state = FileState::new(n0);
        for _ in 0..splits {
            state.split();
        }
        let before = state;
        let plan = state.split();
        let merged = state.merge().unwrap();
        prop_assert_eq!(state, before);
        prop_assert_eq!(merged, plan);
    }

    /// partition_keys is a partition: disjoint, exhaustive, and consistent
    /// with post-split addressing.
    #[test]
    fn partition_is_exact(splits in 0usize..100, seed: u64) {
        let mut state = FileState::new(1);
        for _ in 0..splits {
            state.split();
        }
        let source = state.split_pointer();
        let keys: Vec<u64> = (0..500u64)
            .map(|i| lhrs_lh::scramble(seed.wrapping_add(i)))
            .filter(|&k| state.address(k) == source)
            .collect();
        let plan = state.split();
        let (stay, go) = partition_keys(&plan, keys.iter().copied());
        prop_assert_eq!(stay.len() + go.len(), keys.len());
        for &k in &stay {
            prop_assert_eq!(state.address(k), plan.source);
        }
        for &k in &go {
            prop_assert_eq!(state.address(k), plan.target);
        }
    }

    /// LhTable behaves like a HashMap under random workloads.
    #[test]
    fn lh_table_matches_model(
        ops in proptest::collection::vec((any::<u16>(), any::<u16>(), any::<bool>()), 1..400),
        threshold in 1usize..16,
    ) {
        use std::collections::HashMap;
        let mut table = LhTable::new(threshold);
        let mut model: HashMap<u64, u16> = HashMap::new();
        for (k, v, is_insert) in ops {
            let k = k as u64;
            if is_insert {
                prop_assert_eq!(table.insert(k, v), model.insert(k, v));
            } else {
                prop_assert_eq!(table.remove(k), model.remove(&k));
            }
            prop_assert_eq!(table.len(), model.len());
        }
        for (k, v) in &model {
            prop_assert_eq!(table.get(*k), Some(v));
        }
    }
}
