//! End-to-end scenarios for LH*RS over the simulated multicomputer:
//! growth, addressing, parity consistency, failures, degraded reads,
//! multi-bucket recovery, scalable availability, and the drills.

use lhrs_core::{Config, Error, FilterSpec, LhrsFile, UpgradeMode};
use lhrs_sim::LatencyModel;

fn small_cfg() -> Config {
    Config {
        group_size: 4,
        initial_k: 2,
        bucket_capacity: 8,
        record_len: 32,
        latency: LatencyModel::instant(),
        node_pool: 512,
        ..Config::default()
    }
}

fn payload(key: u64) -> Vec<u8> {
    format!("payload-{key:08}").into_bytes()
}

#[test]
fn insert_lookup_roundtrip_small() {
    let mut file = LhrsFile::new(small_cfg()).unwrap();
    for key in 0..50u64 {
        file.insert(key, payload(key)).unwrap();
    }
    for key in 0..50u64 {
        assert_eq!(file.lookup(key).unwrap().unwrap(), payload(key));
    }
    assert_eq!(file.lookup(9999).unwrap(), None);
    file.verify_integrity().unwrap();
}

#[test]
fn file_scales_through_many_splits() {
    let mut file = LhrsFile::new(small_cfg()).unwrap();
    for key in 0..2000u64 {
        file.insert(lhrs_lh::scramble(key), payload(key)).unwrap();
    }
    assert!(file.bucket_count() > 100, "M = {}", file.bucket_count());
    assert!(file.group_count() >= 25);
    for key in 0..2000u64 {
        assert_eq!(
            file.lookup(lhrs_lh::scramble(key)).unwrap().unwrap(),
            payload(key),
            "key {key}"
        );
    }
    file.verify_integrity().unwrap();

    let report = file.storage_report();
    assert_eq!(report.data_records, 2000);
    // Storage overhead ≈ k/m = 0.5 for m=4, k=2.
    assert!(
        (0.4..=0.75).contains(&report.storage_overhead),
        "overhead {}",
        report.storage_overhead
    );
    // Uncontrolled splitting keeps load factor near the canonical ~0.7.
    assert!(
        (0.4..=0.95).contains(&report.load_factor),
        "load {}",
        report.load_factor
    );
}

#[test]
fn duplicate_insert_rejected() {
    let mut file = LhrsFile::new(small_cfg()).unwrap();
    file.insert(7, b"a".to_vec()).unwrap();
    assert_eq!(file.insert(7, b"b".to_vec()), Err(Error::DuplicateKey(7)));
    assert_eq!(file.lookup(7).unwrap().unwrap(), b"a");
}

#[test]
fn update_and_delete_maintain_parity() {
    let mut file = LhrsFile::new(small_cfg()).unwrap();
    for key in 0..200u64 {
        file.insert(key, payload(key)).unwrap();
    }
    for key in (0..200u64).step_by(3) {
        file.update(key, format!("updated-{key}").into_bytes())
            .unwrap();
    }
    for key in (0..200u64).step_by(5) {
        // Keys divisible by 15 were updated then deleted.
        file.delete(key).unwrap();
    }
    file.verify_integrity().unwrap();
    assert_eq!(file.lookup(3).unwrap().unwrap(), b"updated-3");
    assert_eq!(file.lookup(5).unwrap(), None);
    assert_eq!(file.lookup(15).unwrap(), None);
    assert_eq!(file.update(5, b"x".to_vec()), Err(Error::KeyNotFound(5)));
    assert_eq!(file.delete(5), Err(Error::KeyNotFound(5)));
}

#[test]
fn rank_reuse_after_delete() {
    let mut file = LhrsFile::new(small_cfg()).unwrap();
    for key in 0..20u64 {
        file.insert(key, payload(key)).unwrap();
    }
    for key in 0..20u64 {
        file.delete(key).unwrap();
    }
    for key in 100..120u64 {
        file.insert(key, payload(key)).unwrap();
    }
    file.verify_integrity().unwrap();
    let report = file.storage_report();
    assert_eq!(report.data_records, 20);
}

#[test]
fn scan_returns_all_matching_records() {
    let mut file = LhrsFile::new(small_cfg()).unwrap();
    for key in 0..300u64 {
        file.insert(key, payload(key)).unwrap();
    }
    let all = file.scan(FilterSpec::All).unwrap();
    assert_eq!(all.len(), 300);
    // Sorted by key and exact.
    for (i, (k, v)) in all.iter().enumerate() {
        assert_eq!(*k, i as u64);
        assert_eq!(v, &payload(i as u64));
    }
    let range = file.scan(FilterSpec::KeyRange(100, 110)).unwrap();
    assert_eq!(range.len(), 10);
    let contains = file
        .scan(FilterSpec::PayloadContains(b"payload-00000042".to_vec()))
        .unwrap();
    assert_eq!(contains.len(), 1);
    assert_eq!(contains[0].0, 42);
}

#[test]
fn scan_from_stale_client_covers_every_bucket() {
    let mut file = LhrsFile::new(small_cfg()).unwrap();
    for key in 0..500u64 {
        file.insert(lhrs_lh::scramble(key), payload(key)).unwrap();
    }
    // A brand-new client with a one-bucket image scans the whole file via
    // server-side propagation.
    let fresh = file.add_client();
    let hits = file.scan_via(fresh, FilterSpec::All).unwrap();
    assert_eq!(hits.len(), 500);
}

#[test]
fn lookup_through_failed_bucket_served_degraded_and_recovered() {
    let mut cfg = small_cfg();
    cfg.latency = LatencyModel::default();
    let mut file = LhrsFile::new(cfg).unwrap();
    for key in 0..400u64 {
        file.insert(key, payload(key)).unwrap();
    }
    let victim_key = 123u64;
    let bucket = file.address_of(victim_key);
    file.crash_data_bucket(bucket);

    // The lookup must still succeed (timeout → coordinator → degraded
    // read), and the bucket must be rebuilt onto a spare.
    assert_eq!(
        file.lookup(victim_key).unwrap().unwrap(),
        payload(victim_key)
    );
    let recovered = file
        .events()
        .iter()
        .any(|(_, e)| matches!(e, lhrs_core::CoordEvent::GroupRecovered { .. }));
    assert!(recovered, "bucket was not rebuilt: {:?}", file.events());

    // After recovery everything is intact, including the failed bucket's
    // other records.
    file.verify_integrity().unwrap();
    for key in 0..400u64 {
        assert_eq!(
            file.lookup(key).unwrap().unwrap(),
            payload(key),
            "key {key}"
        );
    }
}

#[test]
fn degraded_lookup_of_absent_key_is_unsuccessful_search() {
    let mut cfg = small_cfg();
    cfg.latency = LatencyModel::default();
    let mut file = LhrsFile::new(cfg).unwrap();
    for key in 0..100u64 {
        file.insert(key, payload(key)).unwrap();
    }
    let missing_key = 100_000u64;
    let bucket = file.address_of(missing_key);
    file.crash_data_bucket(bucket);
    assert_eq!(file.lookup(missing_key).unwrap(), None);
}

#[test]
fn double_failure_recovered_with_k2() {
    let mut cfg = small_cfg();
    cfg.latency = LatencyModel::default();
    let mut file = LhrsFile::new(cfg).unwrap();
    for key in 0..600u64 {
        file.insert(key, payload(key)).unwrap();
    }
    // Kill two data buckets of the same group (k = 2 tolerates it).
    let group = 1u64;
    file.crash_data_bucket(group * 4);
    file.crash_data_bucket(group * 4 + 1);
    let report = file.check_group(group);
    assert_eq!(report.failed_shards, vec![0, 1]);
    assert!(report.recovered, "{report:?}");
    file.verify_integrity().unwrap();
    for key in 0..600u64 {
        assert_eq!(
            file.lookup(key).unwrap().unwrap(),
            payload(key),
            "key {key}"
        );
    }
}

#[test]
fn mixed_data_and_parity_failure_recovered() {
    let mut cfg = small_cfg();
    cfg.latency = LatencyModel::default();
    let mut file = LhrsFile::new(cfg).unwrap();
    for key in 0..600u64 {
        file.insert(key, payload(key)).unwrap();
    }
    let group = 2u64;
    file.crash_data_bucket(group * 4 + 2);
    file.crash_parity_bucket(group, 1);
    let report = file.check_group(group);
    assert_eq!(report.failed_shards, vec![2, 4 + 1]);
    assert!(report.recovered);
    file.verify_integrity().unwrap();
}

#[test]
fn parity_only_failure_recovered() {
    let mut cfg = small_cfg();
    cfg.latency = LatencyModel::default();
    let mut file = LhrsFile::new(cfg).unwrap();
    for key in 0..300u64 {
        file.insert(key, payload(key)).unwrap();
    }
    file.crash_parity_bucket(0, 0);
    file.crash_parity_bucket(0, 1);
    let report = file.check_group(0);
    assert_eq!(report.failed_shards, vec![4, 5]);
    assert!(report.recovered);
    file.verify_integrity().unwrap();
}

#[test]
fn over_tolerance_failure_is_unrecoverable() {
    let mut cfg = small_cfg();
    cfg.initial_k = 1;
    cfg.latency = LatencyModel::default();
    let mut file = LhrsFile::new(cfg).unwrap();
    for key in 0..400u64 {
        file.insert(key, payload(key)).unwrap();
    }
    let group = 1u64;
    file.crash_data_bucket(group * 4);
    file.crash_data_bucket(group * 4 + 1);
    let report = file.check_group(group);
    assert_eq!(report.failed_shards.len(), 2);
    assert!(report.unrecoverable);
    assert!(!report.recovered);
}

#[test]
fn reads_in_a_dead_group_fail_cleanly() {
    // Beyond-tolerance loss: subsequent operations on that group's keys
    // return a clean error rather than hanging or panicking.
    let mut cfg = small_cfg();
    cfg.initial_k = 1;
    cfg.latency = LatencyModel::default();
    let mut file = LhrsFile::new(cfg).unwrap();
    for key in 0..400u64 {
        file.insert(key, payload(key)).unwrap();
    }
    file.crash_data_bucket(4);
    file.crash_data_bucket(5);
    let report = file.check_group(1);
    assert!(report.unrecoverable);
    // A key whose bucket is in the dead group:
    let dead_key = (0..400u64)
        .find(|&k| (4..8).contains(&file.address_of(k)) && file.address_of(k) < 6)
        .expect("some key lives in a dead bucket");
    assert!(file.lookup(dead_key).is_err(), "dead-group read must error");
    // Keys in healthy groups are unaffected.
    let live_key = (0..400u64)
        .find(|&k| !(4..8).contains(&file.address_of(k)))
        .unwrap();
    assert_eq!(file.lookup(live_key).unwrap().unwrap(), payload(live_key));
}

#[test]
fn writes_to_failed_bucket_complete_after_recovery() {
    let mut cfg = small_cfg();
    cfg.ack_writes = true; // failure detection needs write acks
    cfg.latency = LatencyModel::default();
    let mut file = LhrsFile::new(cfg).unwrap();
    for key in 0..300u64 {
        file.insert(key, payload(key)).unwrap();
    }
    let key = 42u64;
    let bucket = file.address_of(key);
    file.crash_data_bucket(bucket);
    // The update stalls, escalates, waits for recovery, then lands.
    file.update(key, b"after-recovery".to_vec()).unwrap();
    file.verify_integrity().unwrap();
    assert_eq!(file.lookup(key).unwrap().unwrap(), b"after-recovery");
}

#[test]
fn scalable_availability_eager_upgrades_groups() {
    let mut cfg = small_cfg();
    cfg.initial_k = 1;
    cfg.scale_thresholds = vec![8, 32];
    cfg.upgrade_mode = UpgradeMode::Eager;
    let mut file = LhrsFile::new(cfg).unwrap();
    for key in 0..1500u64 {
        file.insert(lhrs_lh::scramble(key), payload(key)).unwrap();
    }
    assert!(file.bucket_count() > 32);
    assert_eq!(file.k_file(), 3);
    // Eager mode: every group is at k_file.
    for g in 0..file.group_count() as u64 {
        assert_eq!(file.group_k(g), 3, "group {g} lagging");
    }
    file.verify_integrity().unwrap();
    // And the extra parity actually works: kill 3 shards of group 0.
    let mut cfg2 = file.config().clone();
    cfg2.latency = LatencyModel::default();
    file.crash_data_bucket(0);
    file.crash_data_bucket(1);
    file.crash_parity_bucket(0, 2);
    let report = file.check_group(0);
    assert!(report.recovered, "{report:?}");
    file.verify_integrity().unwrap();
}

#[test]
fn scalable_availability_lazy_upgrades_on_touch() {
    let mut cfg = small_cfg();
    cfg.initial_k = 1;
    cfg.scale_thresholds = vec![8];
    cfg.upgrade_mode = UpgradeMode::Lazy;
    let mut file = LhrsFile::new(cfg).unwrap();
    for key in 0..2000u64 {
        file.insert(lhrs_lh::scramble(key), payload(key)).unwrap();
    }
    assert_eq!(file.k_file(), 2);
    // Groups recently touched by splits are upgraded; verify at least that
    // integrity holds everywhere and at least one group reached k = 2.
    assert!((0..file.group_count() as u64).any(|g| file.group_k(g) == 2));
    file.verify_integrity().unwrap();
}

#[test]
fn file_state_recovery_drill() {
    let mut file = LhrsFile::new(small_cfg()).unwrap();
    for key in 0..700u64 {
        file.insert(lhrs_lh::scramble(key), payload(key)).unwrap();
    }
    let m = file.bucket_count();
    let (n, i) = file.drill_file_state_recovery();
    assert_eq!(n + (1u64 << i), m, "recovered state inconsistent with M");
    // File still fully operational afterwards.
    assert_eq!(
        file.lookup(lhrs_lh::scramble(3)).unwrap().unwrap(),
        payload(3)
    );
}

#[test]
fn fresh_client_image_converges_via_iams() {
    let mut file = LhrsFile::new(small_cfg()).unwrap();
    for key in 0..1000u64 {
        file.insert(lhrs_lh::scramble(key), payload(key)).unwrap();
    }
    let fresh = file.add_client();
    assert_eq!(file.client_image(fresh), (0, 0));
    let mut errors = 0;
    for key in 0..200u64 {
        let k = lhrs_lh::scramble(key);
        let before = file.client_iams(fresh);
        assert_eq!(file.lookup_via(fresh, k).unwrap().unwrap(), payload(key));
        if file.client_iams(fresh) > before {
            errors += 1;
        }
    }
    // Image converges: the number of addressing errors is logarithmic, and
    // late lookups stop erring entirely.
    assert!(errors <= 25, "too many IAMs: {errors}");
    let before = file.client_iams(fresh);
    for key in 200..300u64 {
        let k = lhrs_lh::scramble(key);
        file.lookup_via(fresh, k).unwrap();
    }
    let late_errors = file.client_iams(fresh) - before;
    assert!(late_errors <= 2, "image failed to converge: {late_errors}");
}

#[test]
fn insert_batch_pipelines() {
    let mut file = LhrsFile::new(small_cfg()).unwrap();
    let n = file
        .insert_batch((0..500u64).map(|k| (k, payload(k))))
        .unwrap();
    assert_eq!(n, 500);
    file.verify_integrity().unwrap();
    for key in (0..500u64).step_by(17) {
        assert_eq!(file.lookup(key).unwrap().unwrap(), payload(key));
    }
}

#[test]
fn message_costs_match_the_paper_model() {
    // Key search ≈ 2 messages (request + reply), insert ≈ 1 + k messages
    // (request + one parity delta per parity bucket), independent of file
    // size — the headline LH*RS cost model.
    let mut cfg = small_cfg();
    cfg.initial_k = 2;
    let mut file = LhrsFile::new(cfg).unwrap();
    for key in 0..1200u64 {
        file.insert(lhrs_lh::scramble(key), payload(key)).unwrap();
    }
    // Warm the default client's image.
    for key in 0..50u64 {
        file.lookup(lhrs_lh::scramble(key)).unwrap();
    }

    // Steady-state lookups: exactly 2 messages once the image is exact.
    let cost = file.cost_of(|f| {
        for key in 500..600u64 {
            f.lookup(lhrs_lh::scramble(key)).unwrap();
        }
    });
    let per_lookup = cost.total_messages() as f64 / 100.0;
    assert!(
        (2.0..=2.3).contains(&per_lookup),
        "lookup cost {per_lookup} msg"
    );

    // Steady-state inserts (no splits triggered: use fresh keys but count
    // only non-structural messages).
    let cost = file.cost_of(|f| {
        for key in 10_000..10_050u64 {
            f.insert(lhrs_lh::scramble(key), payload(key)).unwrap();
        }
    });
    let structural: u64 = [
        "overflow",
        "split",
        "split-load",
        "split-done",
        "init-data",
        "init-parity",
        "parity-batch",
    ]
    .iter()
    .map(|k| cost.count(k))
    .sum();
    let op_msgs = cost.total_messages() - structural;
    let per_insert = op_msgs as f64 / 50.0;
    // 1 (request) + 2 (parity deltas, k = 2), small slack for forwarding.
    assert!(
        (3.0..=3.5).contains(&per_insert),
        "insert cost {per_insert} msg"
    );
}

#[test]
fn default_config_demo_matches_docs() {
    // Mirrors the crate-level example (with default latency + jitter).
    let mut file = LhrsFile::new(Config::default()).unwrap();
    for key in 0..500u64 {
        file.insert(key, format!("value-{key}").into_bytes())
            .unwrap();
    }
    assert_eq!(file.lookup(42).unwrap().unwrap(), b"value-42");
    let victim = file.address_of(42);
    file.crash_data_bucket(victim);
    assert_eq!(file.lookup(42).unwrap().unwrap(), b"value-42");
    file.verify_integrity().unwrap();
}
