//! §2.5.4 self-detected recovery: a node restarting after an outage must
//! ask the coordinator whether it still owns its bucket before serving —
//! and is demoted to a hot spare if the bucket was recreated elsewhere.

use lhrs_core::{Config, LhrsFile};
use lhrs_sim::LatencyModel;

fn cfg() -> Config {
    Config {
        group_size: 4,
        initial_k: 2,
        bucket_capacity: 16,
        record_len: 32,
        latency: LatencyModel::default(),
        node_pool: 512,
        ..Config::default()
    }
}

fn payload(key: u64) -> Vec<u8> {
    format!("sr{key}").into_bytes()
}

#[test]
fn unnoticed_outage_resumes_ownership() {
    // The bucket crashes and comes back before anyone touches it: it is
    // still the owner and resumes with its (intact, un-missed) state.
    let mut file = LhrsFile::new(cfg()).unwrap();
    for key in 0..300u64 {
        file.insert(key, payload(key)).unwrap();
    }
    let bucket = file.address_of(42);
    file.crash_data_bucket(bucket);
    // Nobody accessed it during the outage.
    assert!(
        file.restart_data_bucket(bucket),
        "unreplaced node must resume as owner"
    );
    file.verify_integrity().unwrap();
    for key in 0..300u64 {
        assert_eq!(
            file.lookup(key).unwrap().unwrap(),
            payload(key),
            "key {key}"
        );
    }
}

#[test]
fn replaced_node_is_demoted_to_spare() {
    // The bucket crashes, a lookup triggers detection + rebuild onto a
    // spare, then the old node comes back: it must retire, and the file
    // keeps serving from the replacement.
    let mut file = LhrsFile::new(cfg()).unwrap();
    for key in 0..300u64 {
        file.insert(key, payload(key)).unwrap();
    }
    let victim_key = 42u64;
    let bucket = file.address_of(victim_key);
    file.crash_data_bucket(bucket);
    // Access during the outage → degraded read + recovery onto a spare.
    assert_eq!(
        file.lookup(victim_key).unwrap().unwrap(),
        payload(victim_key)
    );
    let recovered = file
        .events()
        .iter()
        .any(|(_, e)| matches!(e, lhrs_core::CoordEvent::GroupRecovered { .. }));
    assert!(recovered, "rebuild must have run during the outage");

    assert!(
        !file.restart_data_bucket(bucket),
        "displaced node must be demoted to a spare"
    );
    file.verify_integrity().unwrap();
    for key in 0..300u64 {
        assert_eq!(
            file.lookup(key).unwrap().unwrap(),
            payload(key),
            "key {key}"
        );
    }
    // The demoted node is reusable: grow the file and everything stays
    // consistent.
    for key in 1000..1400u64 {
        file.insert(key, payload(key)).unwrap();
    }
    file.verify_integrity().unwrap();
}

#[test]
fn ownership_check_clears_false_suspicion() {
    // A transient outage that WAS noticed (suspicion recorded) but healed
    // before the group check confirmed anything: after the node resumes
    // ownership, normal operation continues without a rebuild.
    let mut file = LhrsFile::new(cfg()).unwrap();
    for key in 0..200u64 {
        file.insert(key, payload(key)).unwrap();
    }
    let bucket = file.address_of(7);
    file.crash_data_bucket(bucket);
    assert!(file.restart_data_bucket(bucket));
    // Now a lookup goes straight through — no degraded path.
    let cost = file.cost_of(|f| {
        assert_eq!(f.lookup(7).unwrap().unwrap(), payload(7));
    });
    assert_eq!(cost.count("find-record"), 0, "no degraded read needed");
    assert!(cost.total_messages() <= 4);
}
