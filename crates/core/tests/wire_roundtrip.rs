//! Codec round-trip fuzzing: every [`Msg`] variant survives
//! encode→decode unchanged, and the decoder rejects truncated, oversized,
//! and unknown-tag frames instead of panicking or mis-decoding.

use lhrs_core::msg::{
    ClientOp, DeltaEntry, FilterSpec, Iam, KeyOp, Msg, OpResult, ReplayEntry, ReqKind, ShardContent,
};
use lhrs_core::record::Record;
use lhrs_core::wire::{decode_msg, encode_msg, put_varint, tag, WireError, MAX_LEN, WIRE_VERSION};
use lhrs_core::{Key, NodeId, Rank};
use lhrs_testkit::{cases, Rng};

fn arb_node(rng: &mut Rng) -> NodeId {
    if rng.chance(1, 16) {
        lhrs_sim::EXTERNAL // the driver sentinel must round-trip too
    } else {
        NodeId(rng.next_u32())
    }
}

fn arb_key(rng: &mut Rng) -> Key {
    // Mix small and huge keys so varint length classes all get exercised.
    match rng.below(3) {
        0 => rng.below(128),
        1 => rng.below(1 << 20),
        _ => rng.next_u64(),
    }
}

fn arb_payload(rng: &mut Rng) -> Vec<u8> {
    let len = rng.range_usize(0, 48);
    rng.bytes(len)
}

fn arb_filter(rng: &mut Rng) -> FilterSpec {
    match rng.below(3) {
        0 => FilterSpec::All,
        1 => FilterSpec::PayloadContains(arb_payload(rng)),
        _ => {
            let lo = arb_key(rng);
            FilterSpec::KeyRange(lo, lo.saturating_add(rng.below(1000)))
        }
    }
}

fn arb_client_op(rng: &mut Rng) -> ClientOp {
    match rng.below(5) {
        0 => ClientOp::Insert {
            key: arb_key(rng),
            payload: arb_payload(rng),
        },
        1 => ClientOp::Lookup { key: arb_key(rng) },
        2 => ClientOp::Update {
            key: arb_key(rng),
            payload: arb_payload(rng),
        },
        3 => ClientOp::Delete { key: arb_key(rng) },
        _ => ClientOp::Scan {
            filter: arb_filter(rng),
        },
    }
}

fn arb_req_kind(rng: &mut Rng) -> ReqKind {
    match rng.below(4) {
        0 => ReqKind::Insert(arb_key(rng), arb_payload(rng)),
        1 => ReqKind::Lookup(arb_key(rng)),
        2 => ReqKind::Update(arb_key(rng), arb_payload(rng)),
        _ => ReqKind::Delete(arb_key(rng)),
    }
}

fn arb_hits(rng: &mut Rng) -> Vec<(Key, Vec<u8>)> {
    (0..rng.below(5))
        .map(|_| (arb_key(rng), arb_payload(rng)))
        .collect()
}

fn arb_op_result(rng: &mut Rng) -> OpResult {
    match rng.below(9) {
        0 => OpResult::Inserted,
        1 => OpResult::DuplicateKey,
        2 => OpResult::Updated,
        3 => OpResult::Deleted,
        4 => OpResult::Value(None),
        5 => OpResult::Value(Some(arb_payload(rng))),
        6 => OpResult::NotFound,
        7 => OpResult::ScanHits(arb_hits(rng)),
        _ => OpResult::Failed(format!("err-{}", rng.below(100))),
    }
}

fn arb_iam(rng: &mut Rng) -> Option<Iam> {
    rng.chance(1, 2).then(|| Iam {
        level: rng.next_u8(),
        bucket: rng.below(1 << 30),
    })
}

fn arb_key_op(rng: &mut Rng) -> KeyOp {
    match rng.below(3) {
        0 => KeyOp::Add(arb_key(rng)),
        1 => KeyOp::Remove(arb_key(rng)),
        _ => KeyOp::Keep,
    }
}

fn arb_delta_entry(rng: &mut Rng) -> DeltaEntry {
    DeltaEntry {
        seq: rng.next_u64() >> rng.below(60),
        rank: rng.below(1 << 20),
        col: rng.range_usize(0, 8),
        key_op: arb_key_op(rng),
        delta_cell: arb_payload(rng),
    }
}

fn arb_replay_entry(rng: &mut Rng) -> ReplayEntry {
    ReplayEntry {
        client: arb_node(rng),
        op_id: rng.next_u64(),
        key: arb_key(rng),
        result: arb_op_result(rng),
    }
}

fn arb_records(rng: &mut Rng) -> Vec<Record> {
    (0..rng.below(4))
        .map(|_| Record {
            key: arb_key(rng),
            payload: arb_payload(rng),
        })
        .collect()
}

fn arb_replay_list(rng: &mut Rng) -> Vec<ReplayEntry> {
    (0..rng.below(3)).map(|_| arb_replay_entry(rng)).collect()
}

fn arb_member_keys(rng: &mut Rng) -> Vec<Option<Key>> {
    (0..rng.below(5))
        .map(|_| rng.chance(2, 3).then(|| arb_key(rng)))
        .collect()
}

fn arb_shard_content(rng: &mut Rng) -> ShardContent {
    if rng.chance(1, 2) {
        ShardContent::Data {
            level: rng.next_u8(),
            next_rank: rng.below(1 << 20),
            delta_seq: rng.next_u64() >> 8,
            records: (0..rng.below(4))
                .map(|_| (rng.below(1 << 20) as Rank, arb_key(rng), arb_payload(rng)))
                .collect(),
        }
    } else {
        ShardContent::Parity {
            records: (0..rng.below(4))
                .map(|_| {
                    (
                        rng.below(1 << 20) as Rank,
                        arb_member_keys(rng),
                        arb_payload(rng),
                    )
                })
                .collect(),
            col_seqs: (0..rng.below(5)).map(|_| rng.next_u64() >> 16).collect(),
        }
    }
}

/// One random message of variant index `v` (0..37, msg.rs declaration
/// order), so deterministic sweeps can force coverage of every variant.
fn arb_msg_variant(rng: &mut Rng, v: u64) -> Msg {
    match v {
        0 => Msg::Do {
            op_id: rng.next_u64(),
            op: arb_client_op(rng),
        },
        1 => Msg::Req {
            op_id: rng.next_u64(),
            client: arb_node(rng),
            intended: rng.below(1 << 30),
            hops: rng.next_u8(),
            kind: arb_req_kind(rng),
        },
        2 => Msg::Reply {
            op_id: rng.next_u64(),
            result: arb_op_result(rng),
            iam: arb_iam(rng),
        },
        3 => Msg::Scan {
            op_id: rng.next_u64(),
            client: arb_node(rng),
            filter: arb_filter(rng),
            assumed_level: rng.next_u8(),
            reply_if_empty: rng.chance(1, 2),
        },
        4 => Msg::ScanReply {
            op_id: rng.next_u64(),
            bucket: rng.below(1 << 30),
            level: rng.next_u8(),
            hits: arb_hits(rng),
        },
        5 => Msg::ParityDelta {
            group: rng.below(1 << 20),
            entry: arb_delta_entry(rng),
            ack_to: rng.chance(1, 2).then(|| arb_node(rng)),
        },
        6 => Msg::ParityBatch {
            group: rng.below(1 << 20),
            entries: (0..rng.below(4)).map(|_| arb_delta_entry(rng)).collect(),
            ack_to: rng.chance(1, 2).then(|| arb_node(rng)),
        },
        7 => Msg::ParityAck {
            col: rng.range_usize(0, 8),
            upto: rng.next_u64() >> 8,
        },
        8 => Msg::ReportOverflow {
            bucket: rng.below(1 << 30),
            size: rng.range_usize(0, 10_000),
        },
        9 => Msg::InitData {
            bucket: rng.below(1 << 30),
            level: rng.next_u8(),
            delta_seq: rng.next_u64() >> 16,
        },
        10 => Msg::InitParity {
            group: rng.below(1 << 20),
            index: rng.range_usize(0, 8),
            k: rng.range_usize(1, 8),
        },
        11 => Msg::DoSplit {
            source: rng.below(1 << 30),
            target: rng.below(1 << 30),
            new_level: rng.next_u8(),
        },
        12 => Msg::SplitLoad {
            bucket: rng.below(1 << 30),
            level: rng.next_u8(),
            records: arb_records(rng),
            replay: arb_replay_list(rng),
        },
        13 => Msg::Suspect {
            op_id: rng.next_u64(),
            client: arb_node(rng),
            bucket: rng.below(1 << 30),
            kind: arb_req_kind(rng),
        },
        14 => Msg::Probe {
            token: rng.next_u64(),
        },
        15 => Msg::ProbeAck {
            token: rng.next_u64(),
            bucket: rng.chance(1, 2).then(|| rng.below(1 << 30)),
        },
        16 => Msg::TransferShard {
            token: rng.next_u64(),
        },
        17 => Msg::ShardData {
            token: rng.next_u64(),
            shard: rng.range_usize(0, 12),
            content: arb_shard_content(rng),
        },
        18 => Msg::Install {
            group: rng.below(1 << 20),
            bucket: rng.chance(1, 2).then(|| rng.below(1 << 30)),
            index: rng.chance(1, 2).then(|| rng.range_usize(0, 8)),
            k: rng.range_usize(1, 8),
            content: arb_shard_content(rng),
            token: rng.next_u64(),
        },
        19 => Msg::InstallAck {
            token: rng.next_u64(),
        },
        20 => Msg::FindRecord {
            key: arb_key(rng),
            token: rng.next_u64(),
        },
        21 => Msg::FindRecordReply {
            token: rng.next_u64(),
            found: rng
                .chance(1, 2)
                .then(|| (rng.below(1 << 20) as Rank, arb_member_keys(rng))),
        },
        22 => Msg::ReadCell {
            rank: rng.below(1 << 20),
            token: rng.next_u64(),
        },
        23 => Msg::CellData {
            token: rng.next_u64(),
            shard: rng.range_usize(0, 12),
            cell: arb_payload(rng),
        },
        24 => Msg::SplitDone {
            bucket: rng.below(1 << 30),
        },
        25 => Msg::ForceMerge,
        26 => Msg::DoMerge {
            source: rng.below(1 << 30),
            target: rng.below(1 << 30),
            new_level: rng.next_u8(),
        },
        27 => Msg::MergeLoad {
            level: rng.next_u8(),
            records: arb_records(rng),
            replay: arb_replay_list(rng),
            final_seq: rng.next_u64() >> 16,
        },
        28 => Msg::MergeDone {
            bucket: rng.below(1 << 30),
            final_seq: rng.next_u64() >> 16,
        },
        29 => Msg::Retire,
        30 => Msg::SelfReport,
        31 => Msg::CheckOwnership {
            bucket: rng.chance(1, 2).then(|| rng.below(1 << 30)),
            parity: rng
                .chance(1, 2)
                .then(|| (rng.below(1 << 20), rng.range_usize(0, 8))),
        },
        32 => Msg::OwnershipAck,
        33 => Msg::CheckGroup {
            group: rng.below(1 << 20),
        },
        34 => Msg::RecoverFileState,
        35 => Msg::StateQuery,
        _ => Msg::StateReply {
            bucket: rng.below(1 << 30),
            level: rng.next_u8(),
        },
    }
}

const VARIANTS: u64 = 37;

#[test]
fn every_variant_roundtrips() {
    // Deterministic coverage: each of the 37 variants, several instances.
    cases("wire_roundtrip_sweep", 16, |rng| {
        for v in 0..VARIANTS {
            let msg = arb_msg_variant(rng, v);
            let buf = encode_msg(&msg);
            assert_eq!(buf[0], WIRE_VERSION);
            let back = decode_msg(&buf)
                .unwrap_or_else(|e| panic!("variant {v} failed to decode: {e} (msg {msg:?})"));
            assert_eq!(back, msg, "variant {v} round-trip");
        }
    });
}

#[test]
fn random_messages_roundtrip() {
    cases("wire_roundtrip_random", 300, |rng| {
        let v = rng.below(VARIANTS);
        let msg = arb_msg_variant(rng, v);
        let buf = encode_msg(&msg);
        assert_eq!(decode_msg(&buf).unwrap(), msg);
    });
}

#[test]
fn every_strict_prefix_is_rejected() {
    // A truncated frame must error (never mis-decode or panic). Every
    // strict prefix of a valid encoding is a truncated frame.
    cases("wire_prefix_rejection", 24, |rng| {
        let v = rng.below(VARIANTS);
        let msg = arb_msg_variant(rng, v);
        let buf = encode_msg(&msg);
        for cut in 0..buf.len() {
            // Any typed error is correct; only a successful decode is a bug.
            if let Ok(m) = decode_msg(&buf[..cut]) {
                panic!("prefix {cut}/{} decoded as {m:?}", buf.len());
            }
        }
    });
}

#[test]
fn random_garbage_never_panics() {
    cases("wire_garbage", 200, |rng| {
        let len = rng.range_usize(0, 64);
        let garbage = rng.bytes(len);
        let _ = decode_msg(&garbage); // must return, not panic
    });
}

#[test]
fn unknown_tags_are_rejected_with_context() {
    // Top-level tag 0 and anything above the table.
    for bad in [0u8, 44, 99, 255] {
        let buf = [WIRE_VERSION, bad];
        assert_eq!(
            decode_msg(&buf).unwrap_err(),
            WireError::UnknownTag {
                what: "Msg",
                tag: bad
            }
        );
    }
    // Nested enum tag: a Do frame whose ClientOp tag is bogus.
    let mut buf = vec![WIRE_VERSION, tag::DO];
    put_varint(&mut buf, 1); // op_id
    buf.push(9); // no such ClientOp
    assert_eq!(
        decode_msg(&buf).unwrap_err(),
        WireError::UnknownTag {
            what: "ClientOp",
            tag: 9
        }
    );
}

#[test]
fn oversized_length_claims_are_rejected() {
    // SplitLoad claiming an absurd record count.
    let mut buf = vec![WIRE_VERSION, tag::SPLIT_LOAD];
    put_varint(&mut buf, 3); // bucket
    buf.push(0); // level
    put_varint(&mut buf, MAX_LEN + 7); // record count claim
    assert_eq!(
        decode_msg(&buf).unwrap_err(),
        WireError::Oversized {
            what: "record list",
            len: MAX_LEN + 7
        }
    );
    // A large-but-under-cap claim with no data behind it is truncation,
    // and must be detected before allocating the claimed amount.
    let mut buf = vec![WIRE_VERSION, tag::SPLIT_LOAD];
    put_varint(&mut buf, 3);
    buf.push(0);
    put_varint(&mut buf, MAX_LEN - 1);
    assert_eq!(decode_msg(&buf).unwrap_err(), WireError::Truncated);
}

#[test]
fn trailing_bytes_are_rejected() {
    cases("wire_trailing", 32, |rng| {
        let v = rng.below(VARIANTS);
        let msg = arb_msg_variant(rng, v);
        let mut buf = encode_msg(&msg);
        buf.push(rng.next_u8());
        assert!(matches!(
            decode_msg(&buf),
            Err(WireError::Trailing { .. }) | Err(WireError::Truncated)
        ));
    });
}
