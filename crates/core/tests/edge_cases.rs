//! Edge cases and unusual configurations: degenerate group sizes, extreme
//! keys and payloads, acknowledged-parity mode, pool exhaustion handling,
//! and bit-for-bit determinism of whole runs.

use lhrs_core::{Config, Error, FilterSpec, LhrsFile};
use lhrs_sim::LatencyModel;

fn base() -> Config {
    Config {
        group_size: 4,
        initial_k: 2,
        bucket_capacity: 8,
        record_len: 32,
        latency: LatencyModel::instant(),
        node_pool: 512,
        ..Config::default()
    }
}

#[test]
fn group_size_one_behaves_like_per_bucket_replication() {
    // m = 1: every bucket is its own group with k dedicated parity buckets
    // (RS over a single data shard degenerates to k copies' worth of
    // redundancy — structurally closest to mirroring).
    let mut cfg = base();
    cfg.group_size = 1;
    cfg.initial_k = 1;
    let mut file = LhrsFile::new(cfg).unwrap();
    for key in 0..200u64 {
        file.insert(key, vec![key as u8; 16]).unwrap();
    }
    file.verify_integrity().unwrap();
    let r = file.storage_report();
    assert_eq!(
        r.parity_buckets, r.data_buckets,
        "one parity bucket per data bucket"
    );
    // Failure of any single bucket recoverable.
    let mut cfg2 = file.config().clone();
    cfg2.latency = LatencyModel::default();
    file.crash_data_bucket(3);
    let rep = file.check_group(3); // group == bucket when m = 1
    assert!(rep.recovered);
    file.verify_integrity().unwrap();
}

#[test]
fn large_group_small_file() {
    // m = 64 while the file has only a handful of buckets: most columns
    // are non-existent (implicit zero shards).
    let mut cfg = base();
    cfg.group_size = 64;
    cfg.initial_k = 2;
    cfg.latency = LatencyModel::default();
    let mut file = LhrsFile::new(cfg).unwrap();
    for key in 0..120u64 {
        file.insert(key, vec![7u8; 20]).unwrap();
    }
    assert!(
        file.bucket_count() < 64,
        "file must not have filled group 0"
    );
    file.verify_integrity().unwrap();
    // Two failures still recoverable from mostly-phantom columns.
    file.crash_data_bucket(0);
    file.crash_data_bucket(1);
    let rep = file.check_group(0);
    assert!(rep.recovered, "{rep:?}");
    for key in 0..120u64 {
        assert_eq!(file.lookup(key).unwrap().unwrap(), vec![7u8; 20]);
    }
}

#[test]
fn extreme_keys_and_payload_sizes() {
    let mut file = LhrsFile::new(base()).unwrap();
    // Empty payload, max-length payload, extreme key values.
    file.insert(0, Vec::new()).unwrap();
    file.insert(u64::MAX, vec![0xFF; 32]).unwrap();
    file.insert(1, vec![0xAB; 32]).unwrap();
    assert_eq!(file.lookup(0).unwrap().unwrap(), Vec::<u8>::new());
    assert_eq!(file.lookup(u64::MAX).unwrap().unwrap(), vec![0xFF; 32]);
    // Over-length payload rejected before touching the network.
    let before = file.stats().clone();
    assert!(matches!(
        file.insert(2, vec![0u8; 33]),
        Err(Error::PayloadTooLarge { got: 33, max: 32 })
    ));
    assert_eq!(file.stats().since(&before).total_messages(), 0);
    file.verify_integrity().unwrap();
}

#[test]
fn empty_payload_records_survive_recovery() {
    // Zero-length payloads produce all-zero cells; membership is tracked
    // by key lists, so they must survive a rebuild.
    let mut cfg = base();
    cfg.latency = LatencyModel::default();
    let mut file = LhrsFile::new(cfg).unwrap();
    for key in 0..80u64 {
        file.insert(key, Vec::new()).unwrap();
    }
    file.crash_data_bucket(file.address_of(17));
    assert_eq!(file.lookup(17).unwrap().unwrap(), Vec::<u8>::new());
    file.verify_integrity().unwrap();
    let r = file.storage_report();
    assert_eq!(r.data_records, 80);
}

#[test]
fn acked_parity_mode_roundtrip() {
    let mut cfg = base();
    cfg.ack_parity = true;
    cfg.ack_writes = true;
    let mut file = LhrsFile::new(cfg).unwrap();
    for key in 0..300u64 {
        file.insert(key, vec![key as u8; 24]).unwrap();
    }
    file.verify_integrity().unwrap();
    // Cost check: 1 + 2k + 1(write ack) per steady insert.
    let cost = file.cost_of(|f| {
        for key in 10_000..10_020u64 {
            f.insert(key, vec![1u8; 24]).unwrap();
        }
    });
    let structural: u64 = [
        "overflow",
        "split",
        "split-load",
        "split-done",
        "init-data",
        "init-parity",
        "parity-batch",
    ]
    .iter()
    .map(|k| cost.count(k))
    .sum();
    let per_op = (cost.total_messages() - structural) as f64 / 20.0;
    assert!(
        (6.0..=6.6).contains(&per_op),
        "acked insert should cost 1 + 2k + ack = 6, got {per_op}"
    );
}

#[test]
fn identical_runs_are_bit_identical() {
    fn run() -> (u64, u64, Vec<(u64, Vec<u8>)>) {
        let mut cfg = base();
        cfg.latency = LatencyModel::default(); // jitter included
        let mut file = LhrsFile::new(cfg).unwrap();
        for key in 0..400u64 {
            file.insert(lhrs_lh::scramble(key), vec![(key % 256) as u8; 16])
                .unwrap();
        }
        file.crash_data_bucket(5);
        // Read a key that lives in the crashed bucket so the degraded path
        // plus rebuild run before the scan.
        let victim = (0..400u64)
            .map(lhrs_lh::scramble)
            .find(|&k| file.address_of(k) == 5)
            .expect("some key lives in bucket 5");
        let _ = file.lookup(victim).unwrap();
        let hits = file.scan(FilterSpec::KeyRange(0, u64::MAX / 7)).unwrap();
        (file.stats().total_messages(), file.now_us(), hits)
    }
    assert_eq!(run(), run());
}

#[test]
fn small_pool_is_rejected_up_front() {
    let mut cfg = base();
    cfg.node_pool = 3; // cannot even host coordinator+client+bucket+parity
    assert!(matches!(LhrsFile::new(cfg), Err(Error::InvalidConfig(_))));
}

#[test]
fn duplicate_key_after_recovery_still_detected() {
    let mut cfg = base();
    cfg.latency = LatencyModel::default();
    let mut file = LhrsFile::new(cfg).unwrap();
    for key in 0..200u64 {
        file.insert(key, vec![1u8; 8]).unwrap();
    }
    let bucket = file.address_of(50);
    file.crash_data_bucket(bucket);
    let rep = file.check_group(bucket / 4);
    assert!(rep.recovered);
    // The rebuilt bucket still knows key 50 exists.
    assert_eq!(file.insert(50, vec![2u8; 8]), Err(Error::DuplicateKey(50)));
    assert_eq!(file.lookup(50).unwrap().unwrap(), vec![1u8; 8]);
}

#[test]
fn rank_counter_survives_recovery() {
    // After a rebuild, the recovered bucket's insert counter must not
    // collide with ranks already used by pre-crash records.
    let mut cfg = base();
    cfg.latency = LatencyModel::default();
    let mut file = LhrsFile::new(cfg).unwrap();
    for key in 0..200u64 {
        file.insert(key, vec![3u8; 8]).unwrap();
    }
    let bucket = file.address_of(10);
    file.crash_data_bucket(bucket);
    let rep = file.check_group(bucket / 4);
    assert!(rep.recovered);
    // Insert more records that land in the recovered bucket; parity must
    // stay consistent (a rank collision would corrupt a parity record).
    for key in 200..600u64 {
        file.insert(key, vec![4u8; 8]).unwrap();
    }
    file.verify_integrity().unwrap();
}
