//! Logical snapshots: export every record, rebuild a file — possibly under
//! different (m, k, field) — and round-trip exactly.

use lhrs_core::{Config, Error, FilterSpec, GfField, LhrsFile};
use lhrs_sim::LatencyModel;

fn cfg(m: usize, k: usize) -> Config {
    Config {
        group_size: m,
        initial_k: k,
        bucket_capacity: 8,
        record_len: 32,
        latency: LatencyModel::instant(),
        node_pool: 1024,
        ..Config::default()
    }
}

#[test]
fn snapshot_roundtrip_same_config() {
    let mut file = LhrsFile::new(cfg(4, 2)).unwrap();
    for key in 0..400u64 {
        file.insert(lhrs_lh::scramble(key), format!("snap-{key}").into_bytes())
            .unwrap();
    }
    let bytes = file.export_snapshot();
    let mut restored = LhrsFile::import_snapshot(cfg(4, 2), &bytes).unwrap();
    restored.verify_integrity().unwrap();
    for key in 0..400u64 {
        assert_eq!(
            restored.lookup(lhrs_lh::scramble(key)).unwrap().unwrap(),
            format!("snap-{key}").into_bytes()
        );
    }
    assert_eq!(restored.scan(FilterSpec::All).unwrap().len(), 400);
}

#[test]
fn snapshot_migrates_across_configurations() {
    // Export from (m=4, k=1, GF(2^8)) and import into (m=8, k=3, GF(2^16)):
    // the paper's "add/retune availability without reorganising" use case.
    let mut file = LhrsFile::new(cfg(4, 1)).unwrap();
    for key in 0..300u64 {
        file.insert(key, vec![(key % 251) as u8; 20]).unwrap();
    }
    let bytes = file.export_snapshot();
    let mut target_cfg = cfg(8, 3);
    target_cfg.field = GfField::Gf16;
    let mut restored = LhrsFile::import_snapshot(target_cfg, &bytes).unwrap();
    restored.verify_integrity().unwrap();
    assert_eq!(restored.k_file(), 3);
    for key in 0..300u64 {
        assert_eq!(
            restored.lookup(key).unwrap().unwrap(),
            vec![(key % 251) as u8; 20]
        );
    }
    // And the restored file survives its k-level of failures.
    let mut c2 = restored.config().clone();
    c2.latency = LatencyModel::default();
    restored.crash_data_bucket(0);
    restored.crash_data_bucket(1);
    let rep = restored.check_group(0);
    assert!(rep.recovered, "{rep:?}");
}

#[test]
fn snapshot_of_empty_file() {
    let file = LhrsFile::new(cfg(4, 1)).unwrap();
    let bytes = file.export_snapshot();
    let restored = LhrsFile::import_snapshot(cfg(4, 1), &bytes).unwrap();
    assert_eq!(restored.storage_report().data_records, 0);
}

#[test]
fn malformed_snapshots_rejected() {
    assert!(matches!(
        LhrsFile::import_snapshot(cfg(4, 1), b"garbage"),
        Err(Error::InvalidConfig(_))
    ));
    // Truncated payload.
    let mut file = LhrsFile::new(cfg(4, 1)).unwrap();
    file.insert(1, vec![9u8; 16]).unwrap();
    let mut bytes = file.export_snapshot();
    bytes.truncate(bytes.len() - 3);
    assert!(matches!(
        LhrsFile::import_snapshot(cfg(4, 1), &bytes),
        Err(Error::InvalidConfig(_))
    ));
    // Trailing junk.
    let mut bytes = file.export_snapshot();
    bytes.push(0);
    assert!(LhrsFile::import_snapshot(cfg(4, 1), &bytes).is_err());
}

#[test]
fn snapshot_is_deterministic_and_sorted() {
    let mut a = LhrsFile::new(cfg(4, 2)).unwrap();
    let mut b = LhrsFile::new(cfg(2, 1)).unwrap();
    // Insert the same set in different orders into different layouts.
    for key in 0..200u64 {
        a.insert(key, vec![key as u8; 8]).unwrap();
    }
    for key in (0..200u64).rev() {
        b.insert(key, vec![key as u8; 8]).unwrap();
    }
    assert_eq!(
        a.export_snapshot(),
        b.export_snapshot(),
        "snapshots are canonical: sorted by key, layout-independent"
    );
}
