//! Scan termination protocols: deterministic (every bucket replies, exact)
//! vs probabilistic (only hit buckets reply, silence-window termination) —
//! correctness and the message-cost trade-off of §2.1.

use lhrs_core::{Config, FilterSpec, LhrsFile, ScanTermination};
use lhrs_sim::LatencyModel;

fn base_cfg() -> Config {
    Config {
        group_size: 4,
        initial_k: 1,
        bucket_capacity: 16,
        record_len: 32,
        latency: LatencyModel::default(),
        node_pool: 1024,
        ..Config::default()
    }
}

fn load(file: &mut LhrsFile, n: u64) {
    for key in 0..n {
        file.insert(lhrs_lh::scramble(key), format!("s{key}").into_bytes())
            .unwrap();
    }
}

#[test]
fn probabilistic_scan_finds_everything_with_adequate_silence() {
    let mut cfg = base_cfg();
    cfg.scan_termination = ScanTermination::Probabilistic { silence_us: 5_000 };
    let mut file = LhrsFile::new(cfg).unwrap();
    load(&mut file, 800);
    let hits = file.scan(FilterSpec::All).unwrap();
    assert_eq!(hits.len(), 800);
    // Selective scan too.
    let one = file
        .scan(FilterSpec::PayloadContains(b"s00000".to_vec()))
        .unwrap();
    assert!(one.is_empty() || !one.is_empty()); // structural smoke
    let range = file.scan(FilterSpec::KeyRange(0, u64::MAX)).unwrap();
    assert_eq!(range.len(), 800);
}

#[test]
fn probabilistic_selective_scan_saves_reply_messages() {
    // A needle-in-haystack filter: deterministic pays a reply per bucket,
    // probabilistic pays one reply total.
    let needle_key = lhrs_lh::scramble(123);

    let mut det_file = LhrsFile::new(base_cfg()).unwrap();
    load(&mut det_file, 1000);
    let det_m = det_file.bucket_count();
    let det = det_file.cost_of(|f| {
        let hits = f
            .scan(FilterSpec::KeyRange(needle_key, needle_key + 1))
            .unwrap();
        assert_eq!(hits.len(), 1);
    });

    let mut cfg = base_cfg();
    cfg.scan_termination = ScanTermination::Probabilistic { silence_us: 5_000 };
    let mut prob_file = LhrsFile::new(cfg).unwrap();
    load(&mut prob_file, 1000);
    assert_eq!(prob_file.bucket_count(), det_m, "same workload, same file");
    let prob = prob_file.cost_of(|f| {
        let hits = f
            .scan(FilterSpec::KeyRange(needle_key, needle_key + 1))
            .unwrap();
        assert_eq!(hits.len(), 1);
    });

    // Deterministic: M requests + M replies. Probabilistic: M requests + 1.
    assert_eq!(det.count("scan"), det_m);
    assert_eq!(det.count("scan-reply"), det_m);
    assert_eq!(prob.count("scan"), det_m);
    assert_eq!(prob.count("scan-reply"), 1);
    assert!(prob.total_messages() < det.total_messages() / 2 + 2);
}

#[test]
fn probabilistic_scan_with_empty_result_terminates() {
    let mut cfg = base_cfg();
    cfg.scan_termination = ScanTermination::Probabilistic { silence_us: 2_000 };
    let mut file = LhrsFile::new(cfg).unwrap();
    load(&mut file, 300);
    let hits = file
        .scan(FilterSpec::KeyRange(u64::MAX - 1, u64::MAX))
        .unwrap();
    assert!(hits.is_empty());
}

#[test]
fn too_short_silence_window_can_miss_results() {
    // The documented risk of the probabilistic protocol: a window shorter
    // than the network latency truncates the result set. (Deterministic
    // termination exists precisely because of this.)
    let mut cfg = base_cfg();
    cfg.latency = LatencyModel::fixed(1_000);
    cfg.scan_termination = ScanTermination::Probabilistic { silence_us: 10 };
    let mut file = LhrsFile::new(cfg).unwrap();
    load(&mut file, 500);
    let hits = file.scan(FilterSpec::All).unwrap();
    assert!(
        hits.len() < 500,
        "a 10 µs window on a 1 ms network must truncate (got {})",
        hits.len()
    );
}

#[test]
fn deterministic_scan_exact_under_both_latency_models() {
    for latency in [LatencyModel::instant(), LatencyModel::default()] {
        let mut cfg = base_cfg();
        cfg.latency = latency;
        let mut file = LhrsFile::new(cfg).unwrap();
        load(&mut file, 400);
        let hits = file.scan(FilterSpec::All).unwrap();
        assert_eq!(hits.len(), 400);
    }
}
