//! Multiple concurrent clients: independent images, interleaved pipelined
//! traffic, and convergence — the "clients are autonomous and can be
//! mobile" side of the SDDS contract.

use lhrs_core::{Config, FilterSpec, LhrsFile};
use lhrs_sim::LatencyModel;

fn cfg() -> Config {
    Config {
        group_size: 4,
        initial_k: 2,
        bucket_capacity: 16,
        record_len: 32,
        latency: LatencyModel::default(),
        node_pool: 1024,
        ..Config::default()
    }
}

#[test]
fn many_clients_see_one_consistent_file() {
    let mut file = LhrsFile::new(cfg()).unwrap();
    for key in 0..600u64 {
        file.insert(lhrs_lh::scramble(key), vec![(key % 251) as u8; 16])
            .unwrap();
    }
    let clients: Vec<usize> = (0..5).map(|_| file.add_client()).collect();
    // Every client independently reads a sample; all agree.
    for (i, &c) in clients.iter().enumerate() {
        for key in (i as u64 * 40)..(i as u64 * 40 + 80) {
            let k = lhrs_lh::scramble(key);
            assert_eq!(
                file.lookup_via(c, k).unwrap().unwrap(),
                vec![(key % 251) as u8; 16],
                "client {i} key {key}"
            );
        }
    }
    // Each image converged independently; IAM counts are per client.
    for &c in &clients {
        assert!(file.client_iams(c) > 0, "fresh client must have erred once");
        assert!(file.client_iams(c) < 30, "image failed to converge");
    }
    file.verify_integrity().unwrap();
}

#[test]
fn clients_with_wildly_different_staleness_coexist() {
    let mut file = LhrsFile::new(cfg()).unwrap();
    // Client A warms early (small file), then the file grows 10x, then a
    // brand-new client C appears; both must work, with ≤ 2 hops each.
    for key in 0..100u64 {
        file.insert(lhrs_lh::scramble(key), vec![1u8; 8]).unwrap();
    }
    let a = file.add_client();
    for key in 0..40u64 {
        file.lookup_via(a, lhrs_lh::scramble(key)).unwrap();
    }
    let image_a_before = file.client_image(a);
    for key in 100..1500u64 {
        file.insert(lhrs_lh::scramble(key), vec![1u8; 8]).unwrap();
    }
    let c = file.add_client();
    assert!(
        file.client_image(a) == image_a_before,
        "A idled while the file grew"
    );
    for key in 0..1500u64 {
        let k = lhrs_lh::scramble(key);
        assert_eq!(file.lookup_via(a, k).unwrap().unwrap(), vec![1u8; 8]);
        assert_eq!(file.lookup_via(c, k).unwrap().unwrap(), vec![1u8; 8]);
    }
    // Both images ended within the true file.
    let m = file.bucket_count();
    let (na, ia) = file.client_image(a);
    let (nc, ic) = file.client_image(c);
    assert!(na + (1 << ia) <= m);
    assert!(nc + (1 << ic) <= m);
}

#[test]
fn scans_from_multiple_clients_agree() {
    let mut file = LhrsFile::new(cfg()).unwrap();
    for key in 0..400u64 {
        file.insert(lhrs_lh::scramble(key), vec![7u8; 12]).unwrap();
    }
    let c1 = file.add_client();
    let c2 = file.add_client();
    let h0 = file.scan(FilterSpec::All).unwrap();
    let h1 = file.scan_via(c1, FilterSpec::All).unwrap();
    let h2 = file.scan_via(c2, FilterSpec::All).unwrap();
    assert_eq!(h0, h1);
    assert_eq!(h1, h2);
    assert_eq!(h0.len(), 400);
}

#[test]
fn parallel_load_stores_everything_exactly_once() {
    let mut file = LhrsFile::new(cfg()).unwrap();
    let n = file
        .parallel_load(
            4,
            (0..800u64).map(|k| (lhrs_lh::scramble(k), vec![(k % 251) as u8; 16])),
        )
        .unwrap();
    assert_eq!(n, 800);
    file.verify_integrity().unwrap();
    let report = file.storage_report();
    assert_eq!(report.data_records, 800);
    for k in (0..800u64).step_by(13) {
        assert_eq!(
            file.lookup(lhrs_lh::scramble(k)).unwrap().unwrap(),
            vec![(k % 251) as u8; 16]
        );
    }
    // Duplicates across clients are surfaced.
    assert!(file
        .parallel_load(4, [(lhrs_lh::scramble(3), vec![1u8])])
        .is_err());
}

#[test]
fn failure_reported_by_one_client_heals_for_all() {
    let mut file = LhrsFile::new(cfg()).unwrap();
    for key in 0..400u64 {
        file.insert(key, vec![3u8; 16]).unwrap();
    }
    let c1 = file.add_client();
    let c2 = file.add_client();
    // Warm both.
    for key in 0..30u64 {
        file.lookup_via(c1, key).unwrap();
        file.lookup_via(c2, key).unwrap();
    }
    let bucket = file.address_of(200);
    file.crash_data_bucket(bucket);
    // c1 trips the failure and gets a degraded read + recovery.
    assert_eq!(file.lookup_via(c1, 200).unwrap().unwrap(), vec![3u8; 16]);
    // c2 then reads the SAME key with no degraded machinery at all.
    let cost = file.cost_of(|f| {
        assert_eq!(f.lookup_via(c2, 200).unwrap().unwrap(), vec![3u8; 16]);
    });
    assert_eq!(cost.count("find-record"), 0);
    assert_eq!(cost.count("suspect"), 0);
    assert!(cost.total_messages() <= 4);
    file.verify_integrity().unwrap();
}
