//! Network-fault drills: the acceptance gauntlet for the hardened protocol
//! stack. A lossy, duplicating, reordering network with a timed partition
//! must never lose an acknowledged record, never drift parity, and — being
//! a deterministic simulation — must reproduce bit-for-bit across runs.
//!
//! The model discipline: an operation the driver API acknowledged
//! (`Ok`/`Err(DuplicateKey)`/`Err(KeyNotFound)`) updates the oracle; an
//! operation that failed after retries (`Err(Stuck)`) leaves the key in an
//! *unknown* state (the request may or may not have been applied before the
//! ack was lost), so the key is tainted and excluded from exact-match
//! assertions. Everything untainted must read back exactly.

use std::collections::{BTreeMap, HashSet};

use lhrs_core::{Config, Error, FaultPlan, LhrsFile, Partition};
use lhrs_obs::{Event, RecoveryReport};
use lhrs_sim::LatencyModel;
use lhrs_testkit::{cases, Rng};

/// Base configuration for chaos drills: small buckets so splits trigger
/// early, and both acknowledgement paths on — loss without retransmission
/// has no correctness story (see `Config::ack_parity`).
fn chaos_cfg() -> Config {
    Config {
        group_size: 4,
        initial_k: 2,
        bucket_capacity: 8,
        record_len: 32,
        ack_writes: true,
        ack_parity: true,
        latency: LatencyModel::instant(),
        node_pool: 512,
        ..Config::default()
    }
}

fn payload(key: u64, generation: u64) -> Vec<u8> {
    format!("chaos-{key}-{generation}").into_bytes()
}

/// The oracle: last acknowledged value per key (`None` = acknowledged
/// delete), plus the taint set of keys whose state is unknown.
#[derive(Default)]
struct Oracle {
    acked: BTreeMap<u64, Option<Vec<u8>>>,
    tainted: HashSet<u64>,
}

impl Oracle {
    fn live_untainted(&self) -> Vec<u64> {
        self.acked
            .iter()
            .filter(|(k, v)| v.is_some() && !self.tainted.contains(*k))
            .map(|(k, _)| *k)
            .collect()
    }
}

/// What a drill run produced, for determinism comparison.
#[derive(Debug, PartialEq, Eq)]
struct DrillOutcome {
    now_us: u64,
    total_messages: u64,
    fault_dropped: u64,
    partition_dropped: u64,
    duplicated: u64,
    reordered: u64,
    buckets: u64,
    acked: Vec<(u64, Option<Vec<u8>>)>,
    tainted: usize,
}

/// One full chaos drill: clean growth, a faulty phase (loss + duplication +
/// reordering + one timed partition), healing, then total verification.
fn run_chaos_drill(seed: u64, ops: usize, with_partition: bool) -> DrillOutcome {
    let mut file = LhrsFile::new(chaos_cfg()).unwrap();
    let mut oracle = Oracle::default();
    let mut rng = Rng::new(seed);
    let mut next_key = 0u64;

    // Phase A — fault-free growth past the first splits, so the faulty
    // phase runs against a multi-bucket, multi-group file.
    for _ in 0..40 {
        let key = next_key;
        next_key += 1;
        file.insert(key, payload(key, 0)).unwrap();
        oracle.acked.insert(key, Some(payload(key, 0)));
    }
    assert!(file.bucket_count() > 1, "phase A must have split");
    file.verify_integrity().unwrap();

    // Phase B — the network turns hostile. ≥1% random loss, duplication,
    // reordering, and (optionally) a timed partition isolating the node
    // behind data bucket 1.
    let mut plan = FaultPlan::new(seed)
        .drop_permille(15)
        .dup_permille(10)
        .reorder_permille(20)
        .reorder_window_us(300);
    if with_partition {
        let now = file.now_us();
        let victim = file.data_node_id(1);
        plan = plan.partition(Partition::new(vec![victim], now + 2_000, now + 40_000));
    }
    file.set_fault_plan(plan);

    for _ in 0..ops {
        let roll = rng.below(100);
        if roll < 55 {
            // Insert a fresh key.
            let key = next_key;
            next_key += 1;
            match file.insert(key, payload(key, 1)) {
                Ok(()) => {
                    oracle.acked.insert(key, Some(payload(key, 1)));
                }
                Err(Error::Stuck(_)) => {
                    oracle.tainted.insert(key);
                }
                Err(e) => panic!("insert {key}: {e}"),
            }
        } else if roll < 70 {
            // Update a live untainted key.
            let Some(&key) = rng.choose(&oracle.live_untainted()) else {
                continue;
            };
            let generation = rng.range(2, 1_000_000);
            match file.update(key, payload(key, generation)) {
                Ok(()) => {
                    oracle.acked.insert(key, Some(payload(key, generation)));
                }
                Err(Error::Stuck(_)) => {
                    oracle.tainted.insert(key);
                }
                Err(e) => panic!("acked key {key} lost on update: {e}"),
            }
        } else if roll < 80 {
            // Delete a live untainted key.
            let Some(&key) = rng.choose(&oracle.live_untainted()) else {
                continue;
            };
            match file.delete(key) {
                Ok(()) => {
                    oracle.acked.insert(key, None);
                }
                Err(Error::Stuck(_)) => {
                    oracle.tainted.insert(key);
                }
                Err(e) => panic!("acked key {key} lost on delete: {e}"),
            }
        } else {
            // Lookup: a successful read of an untainted key must match the
            // oracle even mid-fault; a timeout is tolerated while the
            // network is hostile.
            let Some(&key) = rng.choose(&oracle.live_untainted()) else {
                continue;
            };
            match file.lookup(key) {
                Ok(found) => assert_eq!(
                    found.as_ref(),
                    oracle.acked[&key].as_ref(),
                    "mid-fault read of acked key {key} diverged"
                ),
                Err(Error::Stuck(_)) => {}
                Err(e) => panic!("lookup {key}: {e}"),
            }
        }
    }

    // Phase C — the network heals; drain in-flight traffic, then every
    // acknowledged operation must be durable and parity must be exact.
    file.clear_fault_plan();
    let _ = file.lookup(0);
    for (key, value) in &oracle.acked {
        if oracle.tainted.contains(key) {
            continue;
        }
        let found = file.lookup(*key).unwrap();
        assert_eq!(
            found.as_ref(),
            value.as_ref(),
            "acked key {key} lost after healing"
        );
    }
    file.verify_integrity().unwrap();

    let stats = file.stats();
    DrillOutcome {
        now_us: file.now_us(),
        total_messages: stats.total_messages(),
        fault_dropped: stats.fault_dropped,
        partition_dropped: stats.partition_dropped,
        duplicated: stats.duplicated,
        reordered: stats.reordered,
        buckets: file.bucket_count(),
        acked: oracle.acked.into_iter().collect(),
        tainted: oracle.tainted.len(),
    }
}

/// The headline acceptance drill: ≥1% loss + duplication + reordering + a
/// timed partition, zero acked-data loss, clean parity.
#[test]
fn chaos_drill_never_loses_acked_data() {
    let outcome = run_chaos_drill(0xC0FFEE, 120, true);
    assert!(outcome.fault_dropped > 0, "loss must actually fire");
    assert!(outcome.duplicated > 0, "duplication must actually fire");
    assert!(outcome.reordered > 0, "reordering must actually fire");
    assert!(
        outcome.partition_dropped > 0,
        "the partition must actually drop traffic"
    );
}

/// The same drill twice: a deterministic simulation under a deterministic
/// fault plan must reproduce every counter and every byte.
#[test]
fn chaos_drill_is_deterministic() {
    let a = run_chaos_drill(0xDECADE, 80, true);
    let b = run_chaos_drill(0xDECADE, 80, true);
    assert_eq!(a, b);
}

/// Property-style sweep: many seeds, randomized fault rates, no acked loss
/// at any of them. Partitions excluded here (the dedicated drill covers
/// them); rates stay within the retransmission budget.
#[test]
fn chaos_sweep_over_seeds() {
    cases("chaos_sweep", 6, |rng| {
        let seed = rng.next_u64();
        run_chaos_drill(seed, 50, false);
    });
}

/// Idempotency, per message type — client requests. Every message is
/// duplicated (`dup_permille(1000)`), so each insert `Req` arrives at its
/// data bucket at least twice; the replay cache must answer the duplicate
/// without re-applying, or the client would see `DuplicateKey` for its own
/// retransmission.
#[test]
fn duplicated_insert_requests_are_applied_once() {
    let mut file = LhrsFile::new(chaos_cfg()).unwrap();
    file.set_fault_plan(FaultPlan::new(7).dup_permille(1000));
    for key in 0..30u64 {
        file.insert(key, payload(key, 0)).unwrap();
    }
    for key in 0..30u64 {
        assert_eq!(file.lookup(key).unwrap().unwrap(), payload(key, 0));
    }
    assert!(file.stats().duplicated > 0);
    file.clear_fault_plan();
    file.verify_integrity().unwrap();
}

/// Idempotency, per message type — Δ-commits. Updates emit one Δ per
/// parity bucket; with every message duplicated, each Δ arrives twice and
/// the per-column sequence check must drop the copy, or parity XORs the
/// delta in twice and drifts (`verify_integrity` recomputes the full
/// Reed–Solomon encoding, so any double-apply is caught).
#[test]
fn duplicated_delta_commits_do_not_drift_parity() {
    let mut file = LhrsFile::new(chaos_cfg()).unwrap();
    for key in 0..25u64 {
        file.insert(key, payload(key, 0)).unwrap();
    }
    file.set_fault_plan(FaultPlan::new(11).dup_permille(1000));
    for key in 0..25u64 {
        file.update(key, payload(key, 1)).unwrap();
    }
    for key in (0..25u64).step_by(3) {
        file.delete(key).unwrap();
    }
    assert!(file.stats().duplicated > 0);
    file.clear_fault_plan();
    file.verify_integrity().unwrap();
}

/// Loss alone, at 3%: the retransmission paths (client retry, Go-Back-N Δ
/// resend, coordinator re-probe) must absorb it with no failed operations
/// at all — 3% is far inside the retry budget.
#[test]
fn pure_loss_is_absorbed_by_retransmission() {
    let mut file = LhrsFile::new(chaos_cfg()).unwrap();
    file.set_fault_plan(FaultPlan::new(3).drop_permille(30));
    for key in 0..60u64 {
        file.insert(key, payload(key, 0)).unwrap();
    }
    for key in 0..60u64 {
        assert_eq!(file.lookup(key).unwrap().unwrap(), payload(key, 0));
    }
    assert!(file.stats().fault_dropped > 0, "loss must actually fire");
    file.clear_fault_plan();
    file.verify_integrity().unwrap();
}

/// Heavy reordering alone: per-column Δ sequencing must re-serialize the
/// stream (buffer futures, drain in order) with exact parity at the end.
#[test]
fn pure_reordering_keeps_parity_exact() {
    let mut file = LhrsFile::new(chaos_cfg()).unwrap();
    file.set_fault_plan(
        FaultPlan::new(5)
            .reorder_permille(250)
            .reorder_window_us(400),
    );
    for key in 0..60u64 {
        file.insert(key, payload(key, 0)).unwrap();
    }
    for key in (0..60u64).step_by(2) {
        file.update(key, payload(key, 1)).unwrap();
    }
    assert!(file.stats().reordered > 0, "reordering must actually fire");
    file.clear_fault_plan();
    file.verify_integrity().unwrap();
    for key in 0..60u64 {
        let expect = if key % 2 == 0 {
            payload(key, 1)
        } else {
            payload(key, 0)
        };
        assert_eq!(file.lookup(key).unwrap().unwrap(), expect);
    }
}

/// The observability drill: kill k = 2 data buckets of one group (the full
/// availability budget), read straight through the failure, and require the
/// whole episode to be visible through the [`Metrics`] API — exactly k
/// shards rebuilt, the degraded read counted, a coherent trace timeline,
/// and a [`RecoveryReport`] that agrees with the raw counters.
///
/// [`Metrics`]: lhrs_obs::Metrics
#[test]
fn kill_drill_reports_k_shards_rebuilt_through_metrics() {
    // Built through the validating builder, and — unlike the chaos drills —
    // under the default latency model, so the recovery timeline spans
    // nonzero simulated time.
    let cfg = Config::builder()
        .group_size(4)
        .initial_k(2)
        .bucket_capacity(8)
        .record_len(32)
        .ack_writes(true)
        .ack_parity(true)
        .node_pool(512)
        .build()
        .expect("drill config is valid");
    let k = cfg.initial_k as u64;
    let m = cfg.group_size as u64;
    let mut file = LhrsFile::new(cfg).unwrap();
    for key in 0..40u64 {
        file.insert(key, payload(key, 0)).unwrap();
    }

    // Crash the probed record's own bucket plus one group sibling: k
    // concurrent losses, the worst survivable failure.
    let probe_key = 7u64;
    let bucket = file.address_of(probe_key);
    let group = bucket / m;
    let sibling = group * m + (bucket + 1) % m;
    file.crash_data_bucket(bucket);
    file.crash_data_bucket(sibling);

    assert_eq!(
        file.lookup(probe_key).unwrap().unwrap(),
        payload(probe_key, 0),
        "read through k failures must succeed via parity decode"
    );
    file.verify_integrity().unwrap();

    // Counters: exactly k shards came back, nothing failed, the degraded
    // path actually ran, and latency samples were recorded.
    let snap = file.metrics().snapshot();
    assert_eq!(
        snap.counter("recovery_shards_rebuilt", ""),
        k,
        "exactly k = {k} shards must be rebuilt after k kills"
    );
    assert!(snap.counter("recoveries_completed", "") >= 1);
    assert_eq!(snap.counter("recoveries_failed", ""), 0);
    assert!(snap.counter("degraded_reads", "") >= 1);
    assert!(snap.counter("recovery_bytes_moved", "") > 0);
    let (_, op_latency) = snap
        .histograms
        .iter()
        .find(|(name, _)| name == "op_latency")
        .expect("op_latency histogram present");
    assert!(op_latency.count >= 40, "every client op records a latency");

    // Trace: the timeline brackets the rebuild with start/end events.
    let events = file.metrics().events();
    assert!(events
        .iter()
        .any(|e| matches!(e.event, Event::RecoveryStart { .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e.event, Event::RecoveryEnd { ok: true, .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e.event, Event::DegradedRead { .. })));

    // The derived report must agree with the raw counters.
    let report = RecoveryReport::from_metrics("kill_drill", file.metrics());
    assert_eq!(report.shards_rebuilt, k);
    assert_eq!(report.clock, "logical-us");
    assert!(report.duration_us > 0, "recovery spans simulated time");
    assert!(report.total_messages > 0);
    let json = report.to_json();
    assert!(json.contains(&format!("\"shards_rebuilt\": {k}")));
}

/// The split/recovery interleaving drill: the coordinator commits a split
/// (the address space now says two buckets) and the source bucket dies
/// before the `DoSplit` order partitions it. The RS rebuild restores the
/// *pre-split* content at the *post-split* level, so the install path must
/// expel the records that now address the new bucket — leaving them in
/// place would be acked-data loss without a single lost message.
#[test]
fn kill_between_split_commit_and_partition_loses_nothing() {
    let cfg = Config::builder()
        .group_size(2)
        .initial_k(1)
        .bucket_capacity(16)
        .record_len(32)
        .ack_writes(true)
        .ack_parity(true)
        .node_pool(64)
        .build()
        .expect("drill config is valid");
    let mut file = LhrsFile::new(cfg).unwrap();
    for key in 0..12u64 {
        file.insert(key, payload(key, 0)).unwrap();
    }

    let (source, target) = file.drill_kill_during_split();
    assert_eq!((source, target), (0, 1));
    assert_eq!(file.bucket_count(), 2, "the address-space change committed");

    // Drive the failure path: a read aimed at the dead bucket escalates
    // (suspect → probe → rebuild → install → expel). The read itself may
    // fail after client retries; the recovery still completes inside the
    // run-to-quiescence.
    let probe = (0..12u64)
        .find(|&k| file.address_of(k) == source)
        .expect("some key addresses the split source");
    let _ = file.lookup(probe);

    // Zero loss: every acked record reads back, including the movers that
    // were stranded above the committed address space.
    let movers = (0..12u64).filter(|&k| file.address_of(k) == target).count() as u64;
    assert!(movers > 0, "some keys must address the new bucket");
    for key in 0..12u64 {
        assert_eq!(
            file.lookup(key).unwrap().unwrap(),
            payload(key, 0),
            "key {key} must survive the kill-during-split interleaving"
        );
    }
    file.verify_integrity().unwrap();

    let snap = file.metrics().snapshot();
    assert_eq!(snap.counter("recovery_shards_rebuilt", ""), 1);
    assert_eq!(
        snap.counter("recovery_expelled_records", ""),
        movers,
        "exactly the post-split movers are expelled at install"
    );
    // Defense-in-depth paths that must stay quiet in this deterministic
    // interleaving: the collected cut is consistent, and the write freeze
    // ends through ResumeWrites, never through its safety timer.
    assert_eq!(snap.counter("recovery_torn_cuts", ""), 0);
    assert_eq!(snap.counter("recovery_freeze_expired", ""), 0);
}

/// A focused partition drill: isolate one data node for a fixed window.
/// Operations during the window may fail after retries (tolerated); once
/// the partition lifts, every acknowledged record must be readable —
/// whether the coordinator recovered the bucket onto a spare mid-window or
/// the original node answered again after healing.
#[test]
fn timed_partition_heals_without_acked_loss() {
    let mut file = LhrsFile::new(chaos_cfg()).unwrap();
    for key in 0..40u64 {
        file.insert(key, payload(key, 0)).unwrap();
    }
    let now = file.now_us();
    let victim = file.data_node_id(1);
    file.set_fault_plan(FaultPlan::new(9).partition(Partition::new(
        vec![victim],
        now,
        now + 60_000,
    )));

    let mut acked: Vec<u64> = (0..40).collect();
    for key in 40..70u64 {
        match file.insert(key, payload(key, 0)) {
            Ok(()) => acked.push(key),
            Err(Error::Stuck(_)) => {}
            Err(e) => panic!("insert {key}: {e}"),
        }
    }
    assert!(
        file.stats().partition_dropped > 0,
        "the partition must actually drop traffic"
    );

    file.clear_fault_plan();
    let _ = file.lookup(0);
    for key in acked {
        assert_eq!(
            file.lookup(key).unwrap().unwrap(),
            payload(key, 0),
            "acked key {key} lost across the partition"
        );
    }
    file.verify_integrity().unwrap();
}
