//! Running the whole LH*RS stack over GF(2^16) — the TODS refinement that
//! lifts the GF(2^8) group-size ceiling. Everything the GF(2^8) tests
//! verify must hold unchanged: parity integrity, degraded reads,
//! multi-failure recovery, and scalable availability upgrades.

use lhrs_core::{Config, GfField, LhrsFile};
use lhrs_sim::LatencyModel;

fn cfg() -> Config {
    Config {
        group_size: 4,
        initial_k: 2,
        bucket_capacity: 8,
        record_len: 32, // even: GF(2^16) cells must symbol-align
        field: GfField::Gf16,
        latency: LatencyModel::instant(),
        node_pool: 1024,
        ..Config::default()
    }
}

fn payload(key: u64) -> Vec<u8> {
    format!("gf16-{key}").into_bytes()
}

#[test]
fn full_lifecycle_over_gf16() {
    let mut file = LhrsFile::new(cfg()).unwrap();
    for key in 0..500u64 {
        file.insert(lhrs_lh::scramble(key), payload(key)).unwrap();
    }
    file.verify_integrity().unwrap();
    for key in (0..500u64).step_by(3) {
        file.update(lhrs_lh::scramble(key), format!("u{key}").into_bytes())
            .unwrap();
    }
    for key in (0..500u64).step_by(7) {
        file.delete(lhrs_lh::scramble(key)).unwrap();
    }
    file.verify_integrity().unwrap();
}

#[test]
fn double_failure_recovery_over_gf16() {
    let mut c = cfg();
    c.latency = LatencyModel::default();
    let mut file = LhrsFile::new(c).unwrap();
    for key in 0..400u64 {
        file.insert(key, payload(key)).unwrap();
    }
    file.crash_data_bucket(4);
    file.crash_data_bucket(6);
    let rep = file.check_group(1);
    assert!(rep.recovered, "{rep:?}");
    file.verify_integrity().unwrap();
    for key in 0..400u64 {
        assert_eq!(
            file.lookup(key).unwrap().unwrap(),
            payload(key),
            "key {key}"
        );
    }
}

#[test]
fn degraded_read_over_gf16() {
    let mut c = cfg();
    c.latency = LatencyModel::default();
    let mut file = LhrsFile::new(c).unwrap();
    for key in 0..300u64 {
        file.insert(key, payload(key)).unwrap();
    }
    let victim = 111u64;
    file.crash_data_bucket(file.address_of(victim));
    assert_eq!(file.lookup(victim).unwrap().unwrap(), payload(victim));
    file.verify_integrity().unwrap();
}

#[test]
fn scalable_availability_over_gf16() {
    let mut c = cfg();
    c.initial_k = 1;
    c.scale_thresholds = vec![8];
    let mut file = LhrsFile::new(c).unwrap();
    for key in 0..600u64 {
        file.insert(lhrs_lh::scramble(key), payload(key)).unwrap();
    }
    assert_eq!(file.k_file(), 2);
    for g in 0..file.group_count() as u64 {
        assert_eq!(file.group_k(g), 2);
    }
    file.verify_integrity().unwrap();
}

#[test]
fn odd_record_len_rejected_under_gf16() {
    let mut c = cfg();
    c.record_len = 31; // odd ⇒ 35-byte cells: not 2-byte aligned
    assert!(LhrsFile::new(c).is_err());
}

#[test]
fn wide_group_config_only_possible_under_gf16() {
    // m + k beyond 256 shards: invalid with GF(2^8), valid with GF(2^16).
    let mut c = cfg();
    c.group_size = 300;
    c.initial_k = 4;
    c.node_pool = 512; // validation only needs the minimum
    assert!(LhrsFile::new(c.clone()).is_ok());
    c.field = GfField::Gf8;
    assert!(LhrsFile::new(c).is_err());
}
