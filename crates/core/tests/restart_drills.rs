//! Kill -9 restart drills: the three-way matrix the durable-bucket
//! subsystem must survive.
//!
//! * **memory-loss** — RAM-only node (no store factory): the classic
//!   LH\*RS path, a full k-out-of-m+k Reed–Solomon rebuild.
//! * **disk-survives** — the node's store outlives the process: restart is
//!   a local snapshot+WAL replay plus a Δ-suffix pull from the parity
//!   group, and must move strictly fewer bytes than the full rebuild.
//! * **disk-lost** — the disk died with the process (k of them, to
//!   exercise the worst tolerable loss): the coordinator falls back to the
//!   full rebuild and `recovery_shards_rebuilt == k`.
//!
//! Zero acked-data loss in every arm, asserted through the
//! `Metrics`/`RestartReport` API.

use std::collections::BTreeMap;

use lhrs_core::storage::{MemHub, StoreId};
use lhrs_core::{Config, FaultPlan, LhrsFile, Partition};
use lhrs_obs::RestartReport;
use lhrs_sim::LatencyModel;

fn restart_cfg() -> Config {
    Config {
        group_size: 4,
        initial_k: 2,
        bucket_capacity: 8,
        record_len: 32,
        ack_writes: true,
        ack_parity: true,
        latency: LatencyModel::instant(),
        node_pool: 256,
        // Never auto-snapshot: the drills steer the snapshot/log split
        // themselves (structural snapshots at splits still fire).
        wal_snapshot_every: 0,
        ..Config::default()
    }
}

fn payload(key: u64) -> Vec<u8> {
    format!("restart-{key}").into_bytes()
}

/// Grow a file past its first splits; returns the acked oracle.
fn load(file: &mut LhrsFile, n: u64) -> BTreeMap<u64, Vec<u8>> {
    let mut oracle = BTreeMap::new();
    for key in 0..n {
        file.insert(key, payload(key)).unwrap();
        oracle.insert(key, payload(key));
    }
    assert!(file.bucket_count() > 4, "workload must span two groups");
    oracle
}

/// Every acked record must read back exactly.
fn assert_no_acked_loss(file: &mut LhrsFile, oracle: &BTreeMap<u64, Vec<u8>>) {
    for (key, want) in oracle {
        let got = file.lookup(*key).unwrap();
        assert_eq!(got.as_deref(), Some(want.as_slice()), "key {key}");
    }
    file.verify_integrity().unwrap();
}

const LOAD: u64 = 60;

/// Arm 1 — memory-loss: no durable store, full RS rebuild. Returns the
/// bytes the rebuild moved (the baseline the Δ-suffix arm must beat).
fn run_memory_loss_arm() -> u64 {
    let mut file = LhrsFile::new(restart_cfg()).unwrap();
    let oracle = load(&mut file, LOAD);

    file.crash_data_bucket(0);
    let rec = file.check_group(0);
    assert!(rec.recovered, "group must recover: {rec:?}");
    assert_eq!(rec.failed_shards, vec![0]);

    let report = RestartReport::from_metrics("memory-loss", file.metrics());
    assert_eq!(report.restart_recoveries, 0);
    assert_eq!(report.restart_fallbacks, 0);
    assert_eq!(report.recovery_shards_rebuilt, 1);
    assert!(report.recovery_bytes_moved > 0);
    // No store was ever attached: the WAL counters must stay silent.
    assert_eq!(report.wal_appends, 0);
    assert_eq!(report.replay_ops, 0);

    assert_no_acked_loss(&mut file, &oracle);
    report.recovery_bytes_moved
}

/// Arm 2 — disk-survives: local replay + Δ-suffix. Returns the bytes the
/// catch-up moved over the network.
fn run_disk_survives_arm() -> u64 {
    let mut file = LhrsFile::new(restart_cfg()).unwrap();
    let hub = MemHub::new();
    file.install_store_factory(hub.factory());
    let oracle = load(&mut file, LOAD);

    let id = StoreId::Data { bucket: 0 };
    let disk = hub.disk(&id).expect("bucket 0 has a disk");
    assert!(
        disk.ops_len() > 0,
        "drill needs logged ops beyond the last snapshot"
    );
    file.crash_data_bucket(0);
    // Simulate the unsynced page cache dying with the process: the log
    // tail after the last snapshot is gone, so the replayed state is
    // behind the parity group and a real Δ-suffix is needed.
    disk.truncate_ops(0);

    let resumed = file.restart_data_bucket_from_store(0).unwrap();
    assert!(resumed, "bucket 0 must resume as owner");

    let report = RestartReport::from_metrics("disk-survives", file.metrics());
    assert_eq!(report.restart_recoveries, 1, "{report:?}");
    assert_eq!(report.restart_fallbacks, 0);
    assert_eq!(
        report.recovery_shards_rebuilt, 0,
        "no RS rebuild on this path"
    );
    assert!(report.suffix_entries > 0, "catch-up must apply a suffix");
    assert!(report.recovery_bytes_moved > 0);
    assert!(report.wal_appends > 0, "committed ops must hit the WAL");
    assert!(report.wal_snapshots > 0, "splits must snapshot");

    assert_no_acked_loss(&mut file, &oracle);
    report.recovery_bytes_moved
}

/// Arm 3 — disk-lost: k disks die with their processes; the factory
/// declines and the coordinator rebuilds all k shards the classic way.
fn run_disk_lost_arm() {
    let cfg = restart_cfg();
    let k = cfg.initial_k;
    let mut file = LhrsFile::new(cfg).unwrap();
    let hub = MemHub::new();
    file.install_store_factory(hub.factory());
    let oracle = load(&mut file, LOAD);

    for bucket in 0..k as u64 {
        file.crash_data_bucket(bucket);
        hub.destroy(&StoreId::Data { bucket });
    }
    for bucket in 0..k as u64 {
        let err = file.restart_data_bucket_from_store(bucket);
        assert!(err.is_err(), "destroyed disk must refuse to seed");
    }
    let rec = file.check_group(0);
    assert!(rec.recovered, "group must recover: {rec:?}");

    let report = RestartReport::from_metrics("disk-lost", file.metrics());
    assert_eq!(report.restart_recoveries, 0);
    assert_eq!(
        report.recovery_shards_rebuilt, k as u64,
        "full rebuild of every lost shard"
    );
    assert!(report.recovery_bytes_moved > 0);

    assert_no_acked_loss(&mut file, &oracle);
}

#[test]
fn three_way_restart_matrix() {
    let full_bytes = run_memory_loss_arm();
    let suffix_bytes = run_disk_survives_arm();
    run_disk_lost_arm();
    assert!(
        suffix_bytes < full_bytes,
        "Δ-suffix catch-up ({suffix_bytes} B) must move strictly fewer \
         bytes than the full RS rebuild ({full_bytes} B)"
    );
}

/// Disk survives but the parity group's Δ-history no longer reaches back
/// to the replayed sequence: the coordinator must detect the uncovered
/// suffix and fall back to the full rebuild — without losing a record.
#[test]
fn truncated_history_falls_back_to_full_rebuild() {
    let mut cfg = restart_cfg();
    cfg.delta_history_cap = 2; // far less than the gap the drill creates
    let mut file = LhrsFile::new(cfg).unwrap();
    let hub = MemHub::new();
    file.install_store_factory(hub.factory());
    let oracle = load(&mut file, LOAD);

    file.crash_data_bucket(0);
    hub.disk(&StoreId::Data { bucket: 0 })
        .expect("bucket 0 has a disk")
        .truncate_ops(0);

    let resumed = file.restart_data_bucket_from_store(0).unwrap();
    assert!(
        !resumed,
        "the node must be demoted when the suffix is uncoverable"
    );

    let report = RestartReport::from_metrics("history-truncated", file.metrics());
    assert_eq!(report.restart_recoveries, 0);
    assert_eq!(report.restart_fallbacks, 1, "{report:?}");
    assert!(
        report.recovery_shards_rebuilt >= 1,
        "fallback must trigger the RS rebuild"
    );

    assert_no_acked_loss(&mut file, &oracle);
}

/// A store whose writes start failing must be *poisoned* — the snapshot
/// erased and the store detached — so the next boot cannot silently
/// replay the holey log as if it were complete. The crashed shard routes
/// through the full RS rebuild instead, with zero acked loss (the RAM
/// state stayed authoritative while the node lived).
#[test]
fn failing_store_is_poisoned_and_rebuilt() {
    let mut file = LhrsFile::new(restart_cfg()).unwrap();
    let hub = MemHub::new();
    file.install_store_factory(hub.factory());
    let mut oracle = load(&mut file, LOAD);

    let disk = hub
        .disk(&StoreId::Data { bucket: 0 })
        .expect("bucket 0 has a disk");
    assert!(disk.has_snapshot(), "seeded store starts with a snapshot");
    disk.fail_writes(true);
    for key in LOAD..LOAD + 40 {
        file.insert(key, payload(key)).unwrap();
        oracle.insert(key, payload(key));
    }
    let report = RestartReport::from_metrics("poisoning", file.metrics());
    assert!(report.wal_errors > 0, "some write must have hit bucket 0");
    assert!(
        !disk.has_snapshot(),
        "the first failed write must erase the snapshot"
    );

    file.crash_data_bucket(0);
    disk.fail_writes(false);
    assert!(
        file.restart_data_bucket_from_store(0).is_err(),
        "a poisoned store must refuse to resurrect"
    );
    let rec = file.check_group(0);
    assert!(rec.recovered, "group must recover: {rec:?}");

    let report = RestartReport::from_metrics("poisoning", file.metrics());
    assert_eq!(report.restart_recoveries, 0, "{report:?}");
    assert!(report.recovery_shards_rebuilt >= 1, "{report:?}");
    assert_no_acked_loss(&mut file, &oracle);
}

/// The Δ-suffix handshake can wedge: if the boot `RestartReport` is lost,
/// the restarted bucket would sit catching-up forever — deferring all
/// traffic while still answering probes, so no audit ever notices. The
/// catch-up watchdog must abort the handshake and hand the shard to the
/// full RS rebuild.
#[test]
fn wedged_catchup_aborts_to_full_rebuild() {
    let mut file = LhrsFile::new(restart_cfg()).unwrap();
    let hub = MemHub::new();
    file.install_store_factory(hub.factory());
    let oracle = load(&mut file, LOAD);

    let node = file.data_node_id(0);
    file.crash_data_bucket(0);
    hub.disk(&StoreId::Data { bucket: 0 })
        .expect("bucket 0 has a disk")
        .truncate_ops(0);

    // Swallow the boot `RestartReport`: the node is partitioned for the
    // first instant after its restart, and neither side retransmits the
    // report — without the watchdog the handshake never completes.
    let now = file.now_us();
    file.set_fault_plan(FaultPlan::new(7).partition(Partition::new(vec![node], now, now + 1_000)));
    // Ownership result is irrelevant here: after the fallback the rebuilt
    // bucket may even land back on the same (pooled) node.
    let _ = file.restart_data_bucket_from_store(0).unwrap();
    file.clear_fault_plan();

    let report = RestartReport::from_metrics("wedged-catchup", file.metrics());
    assert_eq!(report.restart_recoveries, 0, "{report:?}");
    assert_eq!(
        report.restart_aborts, 1,
        "the watchdog must fire: {report:?}"
    );
    assert_eq!(report.restart_fallbacks, 1, "{report:?}");
    assert!(
        report.recovery_shards_rebuilt >= 1,
        "abort must end in the RS rebuild: {report:?}"
    );
    assert_no_acked_loss(&mut file, &oracle);
}

/// A Δ-suffix entry that cannot be applied must abort the catch-up: the
/// bucket must not skip it and resume below the watermark the coordinator
/// certified (acked records committed past the skipped entry would
/// vanish). Both parity histories are mangled so whichever suffix arrives
/// first is undecodable.
#[test]
fn undecodable_suffix_aborts_catchup() {
    let mut file = LhrsFile::new(restart_cfg()).unwrap();
    let hub = MemHub::new();
    file.install_store_factory(hub.factory());
    let oracle = load(&mut file, LOAD);

    file.crash_data_bucket(0);
    hub.disk(&StoreId::Data { bucket: 0 })
        .expect("bucket 0 has a disk")
        .truncate_ops(0);
    for q in 0..2 {
        file.corrupt_parity_history(0, q, 0);
    }

    let _ = file.restart_data_bucket_from_store(0).unwrap();

    let report = RestartReport::from_metrics("corrupt-suffix", file.metrics());
    assert_eq!(report.restart_aborts, 1, "{report:?}");
    assert_eq!(report.restart_fallbacks, 1, "{report:?}");
    assert!(
        report.recovery_shards_rebuilt >= 1,
        "abort must end in the RS rebuild: {report:?}"
    );
    // `restart_recoveries` is deliberately not asserted: the coordinator
    // may certify (both SuffixInfos precede the abort in FIFO order)
    // before the RestartAbort lands — the bucket ignores that ack and the
    // coordinator still falls back. Correctness is the rebuild + no loss.
    assert_no_acked_loss(&mut file, &oracle);
}

/// A restart with nothing missed (clean shutdown: the log held everything)
/// must complete with an empty suffix and zero extra bytes moved.
#[test]
fn clean_restart_needs_no_suffix() {
    let mut file = LhrsFile::new(restart_cfg()).unwrap();
    let hub = MemHub::new();
    file.install_store_factory(hub.factory());
    let oracle = load(&mut file, LOAD);

    file.crash_data_bucket(0);
    // Disk fully intact: replay lands exactly at the parity watermark.
    let resumed = file.restart_data_bucket_from_store(0).unwrap();
    assert!(resumed);

    let report = RestartReport::from_metrics("clean-restart", file.metrics());
    assert_eq!(report.restart_recoveries, 1, "{report:?}");
    assert_eq!(report.restart_fallbacks, 0);
    assert_eq!(report.suffix_entries, 0, "nothing was missed");
    assert_eq!(report.recovery_bytes_moved, 0);
    assert!(report.replay_ops > 0, "the local log did the work");

    assert_no_acked_loss(&mut file, &oracle);
}
