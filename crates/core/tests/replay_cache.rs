//! The data-bucket replay cache stays bounded by
//! [`Config::replay_cache_cap`] under sustained retried writes, evicting
//! least-recently-*used*: recent duplicates are still suppressed, evicted
//! ones re-execute, and — the pipelined-client case — an old id whose
//! retries keep touching the cache outlives colder entries that plain
//! FIFO insertion order would have kept instead.

use lhrs_core::data_bucket::DataBucket;
use lhrs_core::msg::{Msg, OpResult, ReqKind};
use lhrs_core::registry::Shared;
use lhrs_core::Config;
use lhrs_obs::Metrics;
use lhrs_sim::{Effect, Env, NodeId};

const CAP: usize = 8;

fn test_bucket() -> DataBucket {
    let cfg = Config {
        replay_cache_cap: CAP,
        ack_writes: true,
        bucket_capacity: 10_000, // never overflow in this test
        ..Config::default()
    };
    let shared = Shared::new(cfg);
    // No registry entries: the bucket is level 0 (every key routes here)
    // and the group has no parity buckets, so no Δs are emitted.
    DataBucket::new(shared, 0, 0)
}

/// Drive one request straight into the bucket via an external Env (the
/// same harness a socket host uses) and return the reply, if any.
fn drive(bucket: &mut DataBucket, client: NodeId, op_id: u64, kind: ReqKind) -> Option<OpResult> {
    let mut next_timer = 0u64;
    let mut effects: Vec<Effect<Msg>> = Vec::new();
    let metrics = Metrics::disabled();
    let mut env = Env::external(NodeId(0), 0, &mut next_timer, &mut effects, &metrics);
    bucket.on_message(
        &mut env,
        client,
        Msg::Req {
            op_id,
            client,
            intended: 0,
            hops: 0,
            kind,
        },
    );
    effects.into_iter().find_map(|e| match e {
        Effect::Send {
            msg: Msg::Reply { result, .. },
            ..
        } => Some(result),
        _ => None,
    })
}

#[test]
fn cache_is_lru_bounded() {
    let mut bucket = test_bucket();
    let client = NodeId(99);

    // 50 distinct writes: the cache must never exceed the configured cap.
    for op in 0..50u64 {
        let r = drive(&mut bucket, client, op, ReqKind::Insert(op, vec![op as u8]));
        assert_eq!(r, Some(OpResult::Inserted));
        assert!(
            bucket.replay_cache_len() <= CAP,
            "cache grew to {} after op {op} (cap {CAP})",
            bucket.replay_cache_len()
        );
    }
    assert_eq!(bucket.replay_cache_len(), CAP);
}

#[test]
fn recent_duplicate_is_suppressed_evicted_one_reexecutes() {
    let mut bucket = test_bucket();
    let client = NodeId(99);
    for op in 0..20u64 {
        drive(&mut bucket, client, op, ReqKind::Insert(op, vec![1]));
    }

    // Op 19 is still cached: the retry is answered from the cache with the
    // original result, not re-executed (a re-run insert of an existing key
    // would say DuplicateKey).
    let r = drive(&mut bucket, client, 19, ReqKind::Insert(19, vec![1]));
    assert_eq!(r, Some(OpResult::Inserted), "cached result replayed");

    // Op 0 went cold and was evicted (cap 8 < 20 entries, never touched
    // since): its retry re-executes, and the re-run insert sees the
    // existing key.
    let r = drive(&mut bucket, client, 0, ReqKind::Insert(0, vec![1]));
    assert_eq!(r, Some(OpResult::DuplicateKey), "evicted retry re-executed");
}

#[test]
fn sustained_retries_do_not_grow_the_cache() {
    let mut bucket = test_bucket();
    let client = NodeId(7);
    // Interleave fresh writes with retries of recent ones.
    for round in 0..30u64 {
        drive(&mut bucket, client, round, ReqKind::Insert(round, vec![0]));
        // Retry every op still plausibly in flight.
        for back in 0..4 {
            let op = round.saturating_sub(back);
            drive(&mut bucket, client, op, ReqKind::Insert(op, vec![0]));
            assert!(bucket.replay_cache_len() <= CAP);
        }
    }
    assert_eq!(bucket.replay_cache_len(), CAP);
}

#[test]
fn retried_id_outlives_colder_entries() {
    let mut bucket = test_bucket();
    let client = NodeId(3);
    // Fill the cache to its cap.
    for op in 0..CAP as u64 {
        drive(&mut bucket, client, op, ReqKind::Insert(op, vec![0]));
    }

    // A pipelined client's out-of-order retries: op 0 keeps being retried
    // (every retry must refresh its recency) while two caps' worth of
    // newer ids stream past. Under FIFO eviction op 0 — the oldest
    // *insertion* — would be dropped while still pending, and its next
    // retry would re-execute as DuplicateKey: a lost-reply bug.
    for op in CAP as u64..(3 * CAP as u64) {
        let r = drive(&mut bucket, client, 0, ReqKind::Insert(0, vec![0]));
        assert_eq!(
            r,
            Some(OpResult::Inserted),
            "op 0 still suppressed after {op} newer writes"
        );
        drive(&mut bucket, client, op, ReqKind::Insert(op, vec![0]));
        assert!(bucket.replay_cache_len() <= CAP);
    }

    // And one more duplicate, long after FIFO would have evicted it.
    let r = drive(&mut bucket, client, 0, ReqKind::Insert(0, vec![0]));
    assert_eq!(r, Some(OpResult::Inserted), "hot id survived the sweep");

    // Meanwhile op 1 — inserted in the same first batch but never
    // retried — went cold and re-executes.
    let r = drive(&mut bucket, client, 1, ReqKind::Insert(1, vec![0]));
    assert_eq!(r, Some(OpResult::DuplicateKey), "cold id was evicted");
}
