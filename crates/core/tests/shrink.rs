//! File shrinking through bucket merges (§4.3 design variation): the exact
//! inverse of splitting, with parity retraction/re-enrolment, node
//! decommissioning, and client-image coarsening.

use lhrs_core::{Config, CoordEvent, FilterSpec, LhrsFile};
use lhrs_sim::LatencyModel;

fn cfg() -> Config {
    Config {
        group_size: 4,
        initial_k: 2,
        bucket_capacity: 8,
        record_len: 32,
        latency: LatencyModel::instant(),
        node_pool: 512,
        ..Config::default()
    }
}

fn payload(key: u64) -> Vec<u8> {
    format!("m{key}").into_bytes()
}

#[test]
fn merge_undoes_one_split() {
    let mut file = LhrsFile::new(cfg()).unwrap();
    for key in 0..200u64 {
        file.insert(key, payload(key)).unwrap();
    }
    let m_before = file.bucket_count();
    assert!(file.force_merge());
    assert_eq!(file.bucket_count(), m_before - 1);
    let merged = file
        .events()
        .iter()
        .any(|(_, e)| matches!(e, CoordEvent::Merged { .. }));
    assert!(merged);
    file.verify_integrity().unwrap();
    for key in 0..200u64 {
        assert_eq!(
            file.lookup(key).unwrap().unwrap(),
            payload(key),
            "key {key}"
        );
    }
}

#[test]
fn shrink_all_the_way_to_one_bucket() {
    let mut file = LhrsFile::new(cfg()).unwrap();
    for key in 0..150u64 {
        file.insert(key, payload(key)).unwrap();
    }
    // Delete most records, then shrink repeatedly.
    for key in 30..150u64 {
        file.delete(key).unwrap();
    }
    while file.force_merge() {}
    assert_eq!(file.bucket_count(), 1);
    assert!(!file.force_merge(), "cannot shrink below one bucket");
    file.verify_integrity().unwrap();
    for key in 0..30u64 {
        assert_eq!(file.lookup(key).unwrap().unwrap(), payload(key));
    }
    for key in 30..150u64 {
        assert_eq!(file.lookup(key).unwrap(), None);
    }
    // All records are back in bucket 0; parity groups beyond group 0 were
    // decommissioned.
    assert_eq!(file.group_count(), 1);
    let r = file.storage_report();
    assert_eq!(r.data_buckets, 1);
    assert_eq!(r.parity_buckets, 2);
}

#[test]
fn stale_ahead_client_coarsens_its_image() {
    let mut file = LhrsFile::new(cfg()).unwrap();
    for key in 0..300u64 {
        file.insert(key, payload(key)).unwrap();
    }
    // Warm the default client's image to the full size.
    for key in 0..50u64 {
        file.lookup(key).unwrap();
    }
    let (_, _) = file.client_image(0);
    // Shrink by several buckets; the client's image is now AHEAD.
    for _ in 0..5 {
        assert!(file.force_merge());
    }
    // Lookups still work: the client coarsens its image via the allocation
    // table instead of addressing ghosts.
    for key in 0..300u64 {
        assert_eq!(
            file.lookup(key).unwrap().unwrap(),
            payload(key),
            "key {key}"
        );
    }
    // Scans too.
    let hits = file.scan(FilterSpec::All).unwrap();
    assert_eq!(hits.len(), 300);
    file.verify_integrity().unwrap();
}

#[test]
fn shrink_then_regrow_reuses_pool_nodes() {
    let mut file = LhrsFile::new(cfg()).unwrap();
    for key in 0..400u64 {
        file.insert(key, payload(key)).unwrap();
    }
    let m_big = file.bucket_count();
    for _ in 0..6 {
        assert!(file.force_merge());
    }
    // Regrow past the original size: the retired nodes must serve again.
    for key in 400..900u64 {
        file.insert(key, payload(key)).unwrap();
    }
    assert!(file.bucket_count() >= m_big);
    file.verify_integrity().unwrap();
    for key in 0..900u64 {
        assert_eq!(
            file.lookup(key).unwrap().unwrap(),
            payload(key),
            "key {key}"
        );
    }
}

#[test]
fn merge_interleaved_with_failures() {
    let mut c = cfg();
    c.latency = LatencyModel::default();
    let mut file = LhrsFile::new(c).unwrap();
    for key in 0..300u64 {
        file.insert(key, payload(key)).unwrap();
    }
    assert!(file.force_merge());
    // Crash a bucket after the merge and recover.
    file.crash_data_bucket(2);
    let rep = file.check_group(0);
    assert!(rep.recovered, "{rep:?}");
    file.verify_integrity().unwrap();
    // Merge again after the recovery.
    assert!(file.force_merge());
    file.verify_integrity().unwrap();
    for key in 0..300u64 {
        assert_eq!(file.lookup(key).unwrap().unwrap(), payload(key));
    }
}
