//! Error type of the LH\*RS driver API.

use std::fmt;

/// Errors surfaced by [`crate::LhrsFile`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Bad [`crate::Config`] parameters.
    InvalidConfig(String),
    /// The payload exceeds `Config::record_len`.
    PayloadTooLarge {
        /// Bytes supplied.
        got: usize,
        /// Configured maximum.
        max: usize,
    },
    /// The simulated server pool is exhausted; grow `Config::node_pool`.
    PoolExhausted,
    /// An operation did not complete inside the simulation (a bug or an
    /// unrecoverable failure pattern — more crashed buckets in one group
    /// than the availability level tolerates).
    Stuck(String),
    /// Data is unrecoverable: more than `k` buckets of one group are down.
    Unrecoverable {
        /// The bucket group concerned.
        group: u64,
        /// Failed shards in that group.
        failed: usize,
        /// The group's availability level.
        tolerated: usize,
    },
    /// A key-specific operation referenced a key that does not exist
    /// (update/delete of a missing key).
    KeyNotFound(u64),
    /// An insert collided with an existing key.
    DuplicateKey(u64),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidConfig(s) => write!(f, "invalid configuration: {s}"),
            Error::PayloadTooLarge { got, max } => {
                write!(f, "payload of {got} bytes exceeds record_len {max}")
            }
            Error::PoolExhausted => write!(f, "simulated server pool exhausted"),
            Error::Stuck(s) => write!(f, "operation did not complete: {s}"),
            Error::Unrecoverable {
                group,
                failed,
                tolerated,
            } => write!(
                f,
                "group {group} lost {failed} buckets but tolerates only {tolerated}"
            ),
            Error::KeyNotFound(k) => write!(f, "key {k} not found"),
            Error::DuplicateKey(k) => write!(f, "key {k} already exists"),
        }
    }
}

impl std::error::Error for Error {}
