//! [`LhrsFile`]: the synchronous driver API wrapping the simulated LH\*RS
//! multicomputer.
//!
//! The driver owns the discrete-event simulation, injects operations
//! through a client node, runs the network to quiescence, and returns the
//! result — so library users get an ordinary key-value API while every
//! message, failure, and recovery underneath is fully simulated and
//! accounted.

use lhrs_obs::{Clock, Metrics};
use lhrs_sim::{NetStats, NodeId, Sim};

use crate::code::AnyCode;

use crate::client::Client;
use crate::coordinator::{CoordEvent, Coordinator};
use crate::data_bucket::DataBucket;
use crate::msg::{ClientOp, FilterSpec, Msg, OpId, OpResult};
use crate::node::Node;
use crate::parity_bucket::ParityBucket;
use crate::record::encode_cell;
use crate::registry::{Shared, SharedHandle};
use crate::storage::{self, StoreError, StoreFactory, StoreId};
use crate::{Config, Error, Key};

/// Index of a client created by [`LhrsFile::add_client`]; the file always
/// has client 0.
pub type ClientId = usize;

/// Storage accounting of the whole file.
#[derive(Debug, Clone, PartialEq)]
pub struct StorageReport {
    /// Data buckets in the file (`M`).
    pub data_buckets: usize,
    /// Parity buckets across all groups.
    pub parity_buckets: usize,
    /// Primary records stored.
    pub data_records: usize,
    /// Parity records stored.
    pub parity_records: usize,
    /// Application payload bytes in data buckets.
    pub data_bytes: usize,
    /// Parity cell bytes in parity buckets.
    pub parity_bytes: usize,
    /// Average data-bucket load factor (records / (buckets × capacity)).
    pub load_factor: f64,
    /// Parity storage overhead: parity buckets / data buckets (the paper's
    /// ≈ k/m figure).
    pub storage_overhead: f64,
}

/// What a failure drill did, distilled from the coordinator event log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Shard indices detected as failed (`0..m` data, `m..` parity).
    pub failed_shards: Vec<usize>,
    /// Whether the group was rebuilt.
    pub recovered: bool,
    /// Whether the group was declared unrecoverable.
    pub unrecoverable: bool,
    /// Simulated duration from detection to recovery, µs.
    pub duration_us: u64,
}

/// A running LH\*RS file over the simulated multicomputer.
pub struct LhrsFile {
    sim: Sim<Msg, Node>,
    shared: SharedHandle,
    coordinator: NodeId,
    clients: Vec<NodeId>,
    next_op: OpId,
    /// Nodes taken down by the failure-injection API, so restart drills can
    /// find them again: (node, what it carried).
    crashed_log: Vec<(NodeId, CrashedShard)>,
}

/// What a crashed node was carrying at crash time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CrashedShard {
    Data(u64),
    Parity(u64, usize),
}

impl LhrsFile {
    /// Create a file: one data bucket, `k` parity buckets for group 0, one
    /// client, a coordinator, and a pool of blank spare nodes.
    pub fn new(cfg: Config) -> Result<Self, Error> {
        cfg.validate()?;
        let latency = cfg.latency;
        let k = cfg.initial_k;
        let shared = Shared::new(cfg);
        let mut sim: Sim<Msg, Node> = Sim::new(latency);
        // Logical-clock metrics: events are stamped with sim time, so
        // latency histograms and recovery timelines are deterministic.
        sim.set_metrics(Metrics::new(Clock::logical()));
        let total = shared.cfg.node_pool;
        let ids: Vec<NodeId> = (0..total)
            .map(|_| {
                sim.add_node(Node::Blank {
                    shared: shared.clone(),
                    pending: Vec::new(),
                })
            })
            .collect();
        let coordinator = ids[0];
        let client = ids[1];
        let bucket0 = ids[2];
        let parity: Vec<NodeId> = ids[3..3 + k].to_vec();
        let pool: Vec<NodeId> = ids[3 + k..].iter().rev().copied().collect();

        {
            let mut reg = shared.registry.borrow_mut();
            reg.coordinator = coordinator;
            reg.push_data(0, bucket0);
            reg.set_parity(0, parity.clone());
        }
        sim.replace(
            coordinator,
            Node::Coordinator(Box::new(Coordinator::new(shared.clone(), pool))),
        );
        sim.replace(client, Node::Client(Client::new(shared.clone())));
        sim.replace(bucket0, Node::Data(DataBucket::new(shared.clone(), 0, 0)));
        for (q, node) in parity.iter().enumerate() {
            sim.replace(
                *node,
                Node::Parity(ParityBucket::new(shared.clone(), 0, q, k)),
            );
        }
        Ok(LhrsFile {
            sim,
            shared,
            coordinator,
            clients: vec![client],
            next_op: 1,
            crashed_log: Vec::new(),
        })
    }

    // ----- key-value API -----

    /// Insert a record.
    pub fn insert(&mut self, key: Key, payload: Vec<u8>) -> Result<(), Error> {
        self.check_payload(&payload)?;
        match self.exec_on(0, ClientOp::Insert { key, payload })? {
            OpResult::Inserted => Ok(()),
            OpResult::DuplicateKey => Err(Error::DuplicateKey(key)),
            other => Err(Error::Stuck(format!("unexpected insert result {other:?}"))),
        }
    }

    /// Key search; `Ok(None)` is an unsuccessful search.
    pub fn lookup(&mut self, key: Key) -> Result<Option<Vec<u8>>, Error> {
        self.lookup_via(0, key)
    }

    /// Key search through a specific client.
    pub fn lookup_via(&mut self, client: ClientId, key: Key) -> Result<Option<Vec<u8>>, Error> {
        match self.exec_on(client, ClientOp::Lookup { key })? {
            OpResult::Value(v) => Ok(v),
            OpResult::Failed(e) => Err(Error::Stuck(e)),
            other => Err(Error::Stuck(format!("unexpected lookup result {other:?}"))),
        }
    }

    /// Replace the payload of an existing record.
    pub fn update(&mut self, key: Key, payload: Vec<u8>) -> Result<(), Error> {
        self.check_payload(&payload)?;
        match self.exec_on(0, ClientOp::Update { key, payload })? {
            OpResult::Updated => Ok(()),
            OpResult::NotFound => Err(Error::KeyNotFound(key)),
            other => Err(Error::Stuck(format!("unexpected update result {other:?}"))),
        }
    }

    /// Delete a record.
    pub fn delete(&mut self, key: Key) -> Result<(), Error> {
        match self.exec_on(0, ClientOp::Delete { key })? {
            OpResult::Deleted => Ok(()),
            OpResult::NotFound => Err(Error::KeyNotFound(key)),
            other => Err(Error::Stuck(format!("unexpected delete result {other:?}"))),
        }
    }

    /// Parallel scan with a server-side filter; results sorted by key.
    pub fn scan(&mut self, filter: FilterSpec) -> Result<Vec<(Key, Vec<u8>)>, Error> {
        self.scan_via(0, filter)
    }

    /// Scan through a specific client.
    pub fn scan_via(
        &mut self,
        client: ClientId,
        filter: FilterSpec,
    ) -> Result<Vec<(Key, Vec<u8>)>, Error> {
        match self.exec_on(client, ClientOp::Scan { filter })? {
            OpResult::ScanHits(hits) => Ok(hits),
            OpResult::Failed(e) => Err(Error::Stuck(e)),
            other => Err(Error::Stuck(format!("unexpected scan result {other:?}"))),
        }
    }

    /// Pipelined bulk insert: all operations are injected before the
    /// network runs, modelling a client streaming inserts. Fails on the
    /// first error.
    ///
    /// Structural maintenance (splits/upgrades) may interleave; do not
    /// combine with concurrent failure injection.
    pub fn insert_batch(
        &mut self,
        items: impl IntoIterator<Item = (Key, Vec<u8>)>,
    ) -> Result<usize, Error> {
        let client = self.clients[0];
        let mut ids = Vec::new();
        for (key, payload) in items {
            self.check_payload(&payload)?;
            let op_id = self.next_op;
            self.next_op += 1;
            ids.push((op_id, key));
            self.sim.send_external(
                client,
                Msg::Do {
                    op_id,
                    op: ClientOp::Insert { key, payload },
                },
            );
        }
        self.sim.run_until_idle();
        self.sim
            .actor_mut(client)
            .as_client_mut()
            .settle_optimistic();
        let results = self.sim.actor_mut(client).as_client_mut().take_results();
        let mut ok = 0;
        for (op_id, result) in results {
            match result {
                OpResult::Inserted => ok += 1,
                OpResult::DuplicateKey => {
                    let key = ids.iter().find(|(i, _)| *i == op_id).map(|(_, k)| *k);
                    return Err(Error::DuplicateKey(key.unwrap_or_default()));
                }
                other => return Err(Error::Stuck(format!("bulk insert: {other:?}"))),
            }
        }
        Ok(ok)
    }

    /// Pipelined bulk insert spread round-robin across `n_clients` clients
    /// (created on demand), modelling concurrent writers. Returns the
    /// number of records inserted. Same caveats as
    /// [`LhrsFile::insert_batch`].
    pub fn parallel_load(
        &mut self,
        n_clients: usize,
        items: impl IntoIterator<Item = (Key, Vec<u8>)>,
    ) -> Result<usize, Error> {
        assert!(n_clients >= 1);
        while self.clients.len() < n_clients {
            self.add_client();
        }
        let mut count = 0usize;
        for (i, (key, payload)) in items.into_iter().enumerate() {
            self.check_payload(&payload)?;
            let node = self.clients[i % n_clients];
            let op_id = self.next_op;
            self.next_op += 1;
            self.sim.send_external(
                node,
                Msg::Do {
                    op_id,
                    op: ClientOp::Insert { key, payload },
                },
            );
            count += 1;
        }
        self.sim.run_until_idle();
        let mut ok = 0usize;
        for c in 0..n_clients {
            let node = self.clients[c];
            let client = self.sim.actor_mut(node).as_client_mut();
            client.settle_optimistic();
            for (_, result) in client.take_results() {
                match result {
                    OpResult::Inserted => ok += 1,
                    OpResult::DuplicateKey => return Err(Error::DuplicateKey(0)),
                    other => return Err(Error::Stuck(format!("parallel load: {other:?}"))),
                }
            }
        }
        debug_assert_eq!(ok, count);
        Ok(ok)
    }

    /// Insert/lookup via an explicit client id (any [`ClientOp`]).
    /// Run `op` through client 0 and map its protocol result into the
    /// [`crate::api::KvClient`] outcome shape.
    fn outcome_of(&mut self, op: ClientOp) -> crate::api::OpOutcome {
        match self.exec_on(0, op) {
            Ok(result) => crate::api::OpOutcome::from_result(result),
            Err(e) => crate::api::OpOutcome::Failed(e.to_string()),
        }
    }

    fn exec_on(&mut self, client: ClientId, op: ClientOp) -> Result<OpResult, Error> {
        let node = *self
            .clients
            .get(client)
            .ok_or_else(|| Error::Stuck(format!("unknown client {client}")))?;
        let op_id = self.next_op;
        self.next_op += 1;
        self.sim.send_external(node, Msg::Do { op_id, op });
        self.sim.run_until_idle();
        self.sim.actor_mut(node).as_client_mut().settle_optimistic();
        let results = self.sim.actor_mut(node).as_client_mut().take_results();
        results
            .into_iter()
            .find(|(id, _)| *id == op_id)
            .map(|(_, r)| r)
            .ok_or_else(|| Error::Stuck("operation produced no result".into()))
    }

    fn check_payload(&self, payload: &[u8]) -> Result<(), Error> {
        if payload.len() > self.shared.cfg.record_len {
            return Err(Error::PayloadTooLarge {
                got: payload.len(),
                max: self.shared.cfg.record_len,
            });
        }
        Ok(())
    }

    // ----- topology & introspection -----

    /// Create an additional client with a fresh (worst-case) image;
    /// returns its id for the `*_via` methods.
    pub fn add_client(&mut self) -> ClientId {
        let node = self
            .sim
            .add_node(Node::Client(Client::new(self.shared.clone())));
        self.clients.push(node);
        self.clients.len() - 1
    }

    /// Number of data buckets `M`.
    pub fn bucket_count(&self) -> u64 {
        self.coord().state.bucket_count()
    }

    /// The correct bucket for `key` under the true file state.
    pub fn address_of(&self, key: Key) -> u64 {
        self.coord().state.address(key)
    }

    /// Number of bucket groups with parity provisioned.
    pub fn group_count(&self) -> usize {
        self.coord().group_k.len()
    }

    /// Availability level of group `g`.
    pub fn group_k(&self, g: u64) -> usize {
        self.coord().group_k[g as usize]
    }

    /// Current file-wide availability level.
    pub fn k_file(&self) -> usize {
        self.coord().k_file
    }

    /// The file configuration.
    pub fn config(&self) -> &Config {
        &self.shared.cfg
    }

    /// Network statistics accumulated so far.
    pub fn stats(&self) -> &NetStats {
        self.sim.stats()
    }

    /// The observability handle: counters, latency histograms, and the
    /// structured trace ring recorded by every actor in this file.
    ///
    /// [`Metrics`] is cheaply cloneable (`Arc` inside), so callers can hold
    /// a copy across mutations of the file.
    pub fn metrics(&self) -> &Metrics {
        self.sim.metrics()
    }

    /// Run `f` and return the message statistics it generated.
    pub fn cost_of(&mut self, f: impl FnOnce(&mut Self)) -> NetStats {
        let before = self.sim.stats().clone();
        f(self);
        self.sim.stats().since(&before)
    }

    /// Coordinator event log `(simulated µs, event)`.
    pub fn events(&self) -> &[(u64, CoordEvent)] {
        &self.coord().events
    }

    /// IAMs received by a client (image-convergence metric).
    pub fn client_iams(&self, client: ClientId) -> u64 {
        self.sim
            .actor(self.clients[client])
            .as_client()
            .iams_received
    }

    /// The image `(n', i')` a client currently holds.
    pub fn client_image(&self, client: ClientId) -> (u64, u8) {
        self.sim
            .actor(self.clients[client])
            .as_client()
            .image
            .parts()
    }

    /// Current simulated time (µs).
    pub fn now_us(&self) -> u64 {
        self.sim.now()
    }

    /// Storage accounting across all buckets.
    pub fn storage_report(&self) -> StorageReport {
        let reg = self.shared.registry.borrow();
        let m_buckets = reg.data_count();
        let mut data_records = 0;
        let mut data_bytes = 0;
        for b in 0..m_buckets as u64 {
            let node = reg.data_node(b);
            if self.sim.is_crashed(node) {
                continue;
            }
            let d = self.sim.actor(node).as_data();
            data_records += d.len();
            data_bytes += d.payload_bytes();
        }
        let mut parity_buckets = 0;
        let mut parity_records = 0;
        let mut parity_bytes = 0;
        for g in 0..reg.group_count() as u64 {
            for node in reg.parity_nodes(g) {
                parity_buckets += 1;
                if self.sim.is_crashed(*node) {
                    continue;
                }
                let p = self.sim.actor(*node).as_parity();
                parity_records += p.len();
                parity_bytes += p.parity_bytes();
            }
        }
        StorageReport {
            data_buckets: m_buckets,
            parity_buckets,
            data_records,
            parity_records,
            data_bytes,
            parity_bytes,
            load_factor: data_records as f64
                / (m_buckets as f64 * self.shared.cfg.bucket_capacity as f64),
            storage_overhead: parity_buckets as f64 / m_buckets as f64,
        }
    }

    // ----- failure injection & drills -----

    /// Install a network fault plan (message loss, duplication, reordering,
    /// timed partitions) on the underlying simulator. Takes effect for all
    /// traffic sent after the call; replaces any previous plan. Drills that
    /// inject loss should run with [`Config::ack_parity`] (and usually
    /// [`Config::ack_writes`]) enabled, otherwise lost Δ-commits have no
    /// retransmission path and parity may drift until the next recovery.
    pub fn set_fault_plan(&mut self, plan: lhrs_sim::FaultPlan) {
        self.sim.set_fault_plan(plan);
    }

    /// Remove the active fault plan (the network is reliable again);
    /// returns the plan that was installed, if any.
    pub fn clear_fault_plan(&mut self) -> Option<lhrs_sim::FaultPlan> {
        self.sim.clear_fault_plan()
    }

    /// The simulator node currently carrying data bucket `bucket` — the
    /// handle fault drills need to aim a [`lhrs_sim::Partition`] at a
    /// specific server.
    pub fn data_node_id(&self, bucket: u64) -> NodeId {
        self.shared.registry.borrow().data_node(bucket)
    }

    /// The simulator node currently carrying parity bucket `index` of
    /// `group`.
    pub fn parity_node_id(&self, group: u64, index: usize) -> NodeId {
        self.shared.registry.borrow().parity_nodes(group)[index]
    }

    /// Crash the node carrying data bucket `bucket`.
    pub fn crash_data_bucket(&mut self, bucket: u64) {
        let node = self.shared.registry.borrow().data_node(bucket);
        self.sim.crash(node);
        self.crashed_log.push((node, CrashedShard::Data(bucket)));
    }

    /// Drill hook: corrupt the retained Δ-history of data column `col` on
    /// parity bucket `index` of `group`. Pair with a data-bucket restart to
    /// drive the catch-up abort path: the shipped suffix arrives
    /// undecodable and the bucket must give itself up to the full RS
    /// rebuild rather than resume below the certified watermark.
    pub fn corrupt_parity_history(&mut self, group: u64, index: usize, col: usize) {
        let node = self.shared.registry.borrow().parity_nodes(group)[index];
        self.sim
            .actor_mut(node)
            .as_parity_mut()
            .corrupt_history(col);
    }

    /// Crash parity bucket `index` of `group`.
    pub fn crash_parity_bucket(&mut self, group: u64, index: usize) {
        let node = self.shared.registry.borrow().parity_nodes(group)[index];
        self.sim.crash(node);
        self.crashed_log
            .push((node, CrashedShard::Parity(group, index)));
    }

    /// Drill hook: commit a split in the coordinator's address space, then
    /// crash the split's source bucket before the `DoSplit` order reaches
    /// it — the interleaving where a node dies after `state.split()` has
    /// committed the new address space but before the bucket partitioned.
    /// The RS rebuild later restores the pre-split content at the
    /// post-split level, and the install path must expel the records that
    /// address elsewhere. Returns the committed `(source, target)` pair.
    ///
    /// Call on an idle file with a non-busy coordinator and spare nodes in
    /// the pool; otherwise the split is deferred and the hook panics.
    pub fn drill_kill_during_split(&mut self) -> (u64, u64) {
        let source = self.coord().state.split_pointer();
        let target = self.bucket_count();
        let node = self.shared.registry.borrow().data_node(source);
        // Ask for a split exactly as an overflowing bucket would (the
        // coordinator ignores the report fields) ...
        self.sim.send_external(
            self.coordinator,
            Msg::ReportOverflow {
                bucket: source,
                size: 0,
            },
        );
        // ... deliver events until the address space commits ...
        while self.bucket_count() == target {
            assert!(self.sim.step(), "coordinator must act on the overflow");
        }
        // ... and kill the source before anything else — the DoSplit order
        // in particular — can reach it.
        self.sim.crash(node);
        self.crashed_log.push((node, CrashedShard::Data(source)));
        (source, target)
    }

    /// Bring back the node that was crashed while carrying data bucket
    /// `bucket`, with its state intact, and run the §2.5.4 self-detection
    /// protocol: the node asks the coordinator whether it still owns the
    /// bucket. Returns `true` if it resumed as the owner, `false` if it was
    /// demoted to a hot spare (the bucket had been recreated elsewhere).
    ///
    /// # Panics
    /// Panics if no such crash was injected.
    pub fn restart_data_bucket(&mut self, bucket: u64) -> bool {
        let pos = self
            .crashed_log
            .iter()
            .position(|(_, s)| *s == CrashedShard::Data(bucket))
            .expect("no crashed node recorded for this bucket");
        let (node, _) = self.crashed_log.remove(pos);
        self.sim.restart(node);
        self.sim.send_external(node, Msg::SelfReport);
        self.sim.run_until_idle();
        self.shared.registry.borrow().data_node(bucket) == node && !self.sim.actor(node).is_blank()
    }

    // ----- durable-store drills -----

    /// Install a [`StoreFactory`]: every bucket initialised from now on
    /// logs its committed ops to a per-shard store, and every *live* bucket
    /// already in the file gets a store attached and seeded with a snapshot
    /// of its current state. Pair with [`storage::MemHub`] for
    /// deterministic disk-survives/disk-lost drills.
    pub fn install_store_factory(&mut self, factory: StoreFactory) {
        self.shared.set_store_factory(factory);
        let reg = self.shared.registry.borrow();
        let data: Vec<(u64, NodeId)> = (0..reg.data_count() as u64)
            .map(|b| (b, reg.data_node(b)))
            .collect();
        let parity: Vec<(u64, usize, NodeId)> = (0..reg.group_count() as u64)
            .flat_map(|g| {
                reg.parity_nodes(g)
                    .iter()
                    .enumerate()
                    .map(move |(q, n)| (g, q, *n))
                    .collect::<Vec<_>>()
            })
            .collect();
        drop(reg);
        for (bucket, node) in data {
            if self.sim.is_crashed(node) {
                continue;
            }
            let id = StoreId::Data { bucket };
            if let Some(mut store) = self.shared.make_store(node, &id) {
                let _ = store.reset();
                let d = self.sim.actor_mut(node).as_data_mut();
                d.attach_store(store);
                d.snapshot_now();
            }
        }
        for (group, index, node) in parity {
            if self.sim.is_crashed(node) {
                continue;
            }
            let id = StoreId::Parity { group, index };
            if let Some(mut store) = self.shared.make_store(node, &id) {
                let _ = store.reset();
                let p = self.sim.actor_mut(node).as_parity_mut();
                p.attach_store(store);
                p.snapshot_now();
            }
        }
    }

    /// Bring back the node that was crashed while carrying data bucket
    /// `bucket`, with its *memory lost* but its durable store intact: the
    /// bucket is rebuilt from its local snapshot + WAL, then runs the
    /// Δ-suffix handshake with the coordinator to catch up on whatever it
    /// missed while down. Returns `true` if it resumed as the owner.
    ///
    /// # Errors
    /// [`StoreError`] when no store factory is installed, the factory
    /// declines (disk lost), or the store cannot seed a bucket — the
    /// caller's fallback is the full RS rebuild via
    /// [`LhrsFile::check_group`].
    ///
    /// # Panics
    /// Panics if no such crash was injected.
    pub fn restart_data_bucket_from_store(&mut self, bucket: u64) -> Result<bool, StoreError> {
        let pos = self
            .crashed_log
            .iter()
            .position(|(_, s)| *s == CrashedShard::Data(bucket))
            .expect("no crashed node recorded for this bucket");
        let (node, _) = self.crashed_log[pos];
        let store = self
            .shared
            .make_store(node, &StoreId::Data { bucket })
            .ok_or_else(|| StoreError::Io("no durable store for this bucket".into()))?;
        let recovered = storage::recover(&self.shared, store)?;
        self.crashed_log.remove(pos);
        self.metrics().trace(
            self.sim.now(),
            lhrs_obs::Event::WalReplay {
                bucket,
                ops: recovered.ops_replayed,
                bytes: recovered.bytes_replayed,
            },
        );
        self.sim.replace(node, recovered.node);
        self.sim.send_external(node, Msg::SelfReport);
        self.sim.run_until_idle();
        Ok(self.shared.registry.borrow().data_node(bucket) == node
            && !self.sim.actor(node).is_blank())
    }

    /// Audit a group's liveness and recover any failed shards; returns what
    /// happened.
    pub fn check_group(&mut self, group: u64) -> RecoveryReport {
        let events_before = self.coord().events.len();
        self.sim
            .send_external(self.coordinator, Msg::CheckGroup { group });
        self.sim.run_until_idle();
        let events = &self.coord().events[events_before..];
        let mut report = RecoveryReport {
            failed_shards: Vec::new(),
            recovered: false,
            unrecoverable: false,
            duration_us: 0,
        };
        let mut t_detect = None;
        for (t, ev) in events {
            match ev {
                CoordEvent::FailureDetected { group: g, shards } if *g == group => {
                    report.failed_shards = shards.clone();
                    t_detect = Some(*t);
                }
                CoordEvent::GroupRecovered { group: g, .. } if *g == group => {
                    report.recovered = true;
                    report.duration_us = t - t_detect.unwrap_or(*t);
                }
                CoordEvent::GroupUnrecoverable { group: g, .. } if *g == group => {
                    report.unrecoverable = true;
                }
                _ => {}
            }
        }
        report
    }

    /// Undo the last split: merge the last bucket back into its split
    /// source (§4.3 shrink operation for deletion-heavy files), retiring
    /// the freed node — and, when a group empties, its parity nodes — to
    /// the spare pool. Returns `false` when the file is at its initial
    /// size. The *when* (load-control policy) is left to the deployment,
    /// as in the paper; call this when the load factor warrants it.
    pub fn force_merge(&mut self) -> bool {
        let before = self.bucket_count();
        if before <= 1 {
            return false;
        }
        self.sim.send_external(self.coordinator, Msg::ForceMerge);
        self.sim.run_until_idle();
        self.bucket_count() == before - 1
    }

    /// Drill algorithm A6: wipe the coordinator's `(n, i)` and rebuild it
    /// from a bucket scan. Returns the recovered `(n, i)`.
    ///
    /// As in the paper, the scan assumes the queried data buckets are
    /// available (A6 handles the loss of the *state*, held at bucket 0 in
    /// the original design, not concurrent bucket outages — recover those
    /// first via [`LhrsFile::check_group`]). If some buckets never reply,
    /// the scan does not terminate and the previous state is returned
    /// unchanged.
    pub fn drill_file_state_recovery(&mut self) -> (u64, u8) {
        self.sim
            .send_external(self.coordinator, Msg::RecoverFileState);
        self.sim.run_until_idle();
        let state = self.coord().state;
        (state.split_pointer(), state.level())
    }

    // ----- deep invariants (used heavily by the test suite) -----

    /// Verify the global LH\*RS invariants across every group:
    ///
    /// 1. every record's bucket matches A1 under the true file state;
    /// 2. for every group and rank, the parity cells equal the
    ///    Reed–Solomon encoding of the member cells;
    /// 3. the key lists in every parity bucket match the data buckets;
    /// 4. all parity buckets of a group agree on membership.
    ///
    /// Groups containing crashed nodes are skipped (call after recovery).
    pub fn verify_integrity(&self) -> Result<(), String> {
        let reg = self.shared.registry.borrow();
        let cfg = &self.shared.cfg;
        let m = cfg.group_size;
        let cell_len = cfg.cell_len();
        let state = self.coord().state;
        let total = reg.data_count() as u64;
        let groups = reg.group_count() as u64;

        for g in 0..groups {
            let k_g = reg.group_k(g);
            let data_nodes: Vec<(u64, NodeId)> = (g * m as u64..((g + 1) * m as u64).min(total))
                .map(|b| (b, reg.data_node(b)))
                .collect::<Vec<_>>();
            let parity_nodes = reg.parity_nodes(g);
            if data_nodes.iter().any(|(_, n)| self.sim.is_crashed(*n))
                || parity_nodes.iter().any(|n| self.sim.is_crashed(*n))
            {
                continue;
            }
            let code = AnyCode::new(cfg.field, m, k_g).map_err(|e| e.to_string())?;

            // Gather per-rank member cells and keys.
            use std::collections::BTreeMap;
            type MemberRow = Vec<Option<(Key, Vec<u8>)>>;
            let mut members: BTreeMap<u64, MemberRow> = BTreeMap::new();
            for (b, node) in &data_nodes {
                let bucket = self.sim.actor(*node).as_data();
                if bucket.bucket != *b {
                    return Err(format!("node carries bucket {} not {b}", bucket.bucket));
                }
                if state.level_of(*b) != bucket.level {
                    return Err(format!(
                        "bucket {b} level {} but state implies {}",
                        bucket.level,
                        state.level_of(*b)
                    ));
                }
                let col = (b % m as u64) as usize;
                for (rank, key, payload) in bucket.iter() {
                    if state.address(key) != *b {
                        return Err(format!("record {key} misplaced in bucket {b}"));
                    }
                    members.entry(rank).or_insert_with(|| vec![None; m])[col] =
                        Some((key, payload.to_vec()));
                }
            }

            for (q, pnode) in parity_nodes.iter().enumerate() {
                let pb = self.sim.actor(*pnode).as_parity();
                if pb.group != g || pb.index != q {
                    return Err(format!(
                        "parity node mismatch: carries ({}, {}), expected ({g}, {q})",
                        pb.group, pb.index
                    ));
                }
                let mut seen = 0usize;
                for (rank, rec) in pb.iter() {
                    seen += 1;
                    let Some(row) = members.get(&rank) else {
                        return Err(format!(
                            "group {g} parity {q} has ghost record at rank {rank}"
                        ));
                    };
                    // Keys must match exactly.
                    for (c, slot) in row.iter().enumerate() {
                        let expect = slot.as_ref().map(|(k, _)| *k);
                        if rec.keys[c] != expect {
                            return Err(format!(
                                "group {g} parity {q} rank {rank} col {c}: keys {:?} != {:?}",
                                rec.keys[c], expect
                            ));
                        }
                    }
                    // Parity cell must equal the RS encoding.
                    let cells: Vec<Vec<u8>> = row
                        .iter()
                        .map(|slot| match slot {
                            Some((_, payload)) => encode_cell(payload, cell_len),
                            None => vec![0u8; cell_len],
                        })
                        .collect();
                    let refs: Vec<&[u8]> = cells.iter().map(|c| c.as_slice()).collect();
                    let expect = code.encode(&refs).map_err(|e| e.to_string())?;
                    if rec.cell != expect[q] {
                        return Err(format!(
                            "group {g} parity {q} rank {rank}: parity cell mismatch"
                        ));
                    }
                }
                if seen != members.len() {
                    return Err(format!(
                        "group {g} parity {q}: {seen} parity records but {} record groups",
                        members.len()
                    ));
                }
            }
        }
        Ok(())
    }

    fn coord(&self) -> &Coordinator {
        self.sim.actor(self.coordinator).as_coordinator()
    }

    // ----- snapshots -----

    /// Export every live record as a portable byte snapshot (logical dump:
    /// keys + payloads, not the physical bucket layout). Format:
    /// `LHRS1 | u64 count | (u64 key | u32 len | bytes)*`, little-endian.
    pub fn export_snapshot(&self) -> Vec<u8> {
        let reg = self.shared.registry.borrow();
        let mut records: Vec<(Key, Vec<u8>)> = Vec::new();
        for b in 0..reg.data_count() as u64 {
            let node = reg.data_node(b);
            if self.sim.is_crashed(node) {
                continue;
            }
            for (_, key, payload) in self.sim.actor(node).as_data().iter() {
                records.push((key, payload.to_vec()));
            }
        }
        records.sort_by_key(|(k, _)| *k);
        let mut out = Vec::with_capacity(16 + records.len() * 24);
        out.extend_from_slice(b"LHRS1");
        out.extend_from_slice(&(records.len() as u64).to_le_bytes());
        for (key, payload) in &records {
            out.extend_from_slice(&key.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            out.extend_from_slice(payload);
        }
        out
    }

    /// Rebuild a file from a snapshot produced by
    /// [`LhrsFile::export_snapshot`] (records are re-inserted under the
    /// given configuration, so `m`, `k`, and field may all differ from the
    /// original file's).
    ///
    /// # Errors
    /// [`Error::InvalidConfig`] for a malformed snapshot, plus anything
    /// [`LhrsFile::insert_batch`] can return.
    pub fn import_snapshot(cfg: Config, bytes: &[u8]) -> Result<Self, Error> {
        let malformed = || Error::InvalidConfig("malformed snapshot".into());
        if bytes.len() < 13 || &bytes[..5] != b"LHRS1" {
            return Err(malformed());
        }
        let count = u64::from_le_bytes(bytes[5..13].try_into().expect("8 bytes")) as usize;
        let mut records = Vec::with_capacity(count);
        let mut at = 13usize;
        for _ in 0..count {
            if at + 12 > bytes.len() {
                return Err(malformed());
            }
            let key = u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
            let len =
                u32::from_le_bytes(bytes[at + 8..at + 12].try_into().expect("4 bytes")) as usize;
            at += 12;
            if at + len > bytes.len() {
                return Err(malformed());
            }
            records.push((key, bytes[at..at + len].to_vec()));
            at += len;
        }
        if at != bytes.len() {
            return Err(malformed());
        }
        let mut file = LhrsFile::new(cfg)?;
        file.insert_batch(records)?;
        Ok(file)
    }
}

/// The unified client API over the simulated file: every operation runs
/// through client 0 and drives the simulation to quiescence.
impl crate::api::KvClient for LhrsFile {
    fn insert(&mut self, key: Key, payload: Vec<u8>) -> crate::api::OpOutcome {
        if let Err(e) = self.check_payload(&payload) {
            return crate::api::OpOutcome::Failed(e.to_string());
        }
        self.outcome_of(ClientOp::Insert { key, payload })
    }

    fn lookup(&mut self, key: Key) -> crate::api::OpOutcome {
        self.outcome_of(ClientOp::Lookup { key })
    }

    fn update(&mut self, key: Key, payload: Vec<u8>) -> crate::api::OpOutcome {
        if let Err(e) = self.check_payload(&payload) {
            return crate::api::OpOutcome::Failed(e.to_string());
        }
        self.outcome_of(ClientOp::Update { key, payload })
    }

    fn delete(&mut self, key: Key) -> crate::api::OpOutcome {
        self.outcome_of(ClientOp::Delete { key })
    }

    fn scan(&mut self, filter: FilterSpec) -> crate::api::OpOutcome {
        self.outcome_of(ClientOp::Scan { filter })
    }
}
