//! File-level configuration.

use lhrs_sim::LatencyModel;

use crate::code::GfField;

/// How existing bucket groups acquire additional parity buckets when the
/// scalable-availability rule raises the file's availability level `k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpgradeMode {
    /// Upgrade every existing group immediately when `k` increases.
    /// Predictable availability, bursty messaging.
    Eager,
    /// Upgrade a group the next time a split touches it (source or target
    /// in the group). Spreads the cost over normal growth; groups lag until
    /// touched.
    Lazy,
}

/// How scan completion is detected (§2.1 of the LH\* design).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanTermination {
    /// Every reached bucket replies (with its number and level even when it
    /// has no hits); the client verifies it heard from *all* buckets of the
    /// file. Exact, costs ~2 messages per bucket.
    Deterministic,
    /// Only buckets with matching records reply; the client finishes after
    /// `silence_us` µs without a new reply. Costs M + hits messages but can
    /// in principle terminate early (hence "probabilistic").
    Probabilistic {
        /// Silence window that ends the scan.
        silence_us: u64,
    },
}

/// When the durable bucket store issues `fsync` on its write-ahead log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Sync after every appended record. Safest, slowest.
    Always,
    /// Sync once per message batch (the default): an OS crash can lose the
    /// tail of the current batch, a process crash loses nothing.
    #[default]
    Batch,
    /// Never sync explicitly; leave flushing to the OS. Fastest, loses the
    /// page-cache tail on power failure — fine for experiments.
    Never,
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Batch => "batch",
            FsyncPolicy::Never => "never",
        })
    }
}

impl std::str::FromStr for FsyncPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "batch" => Ok(FsyncPolicy::Batch),
            "never" => Ok(FsyncPolicy::Never),
            other => Err(format!(
                "unknown fsync policy {other:?} (expected always|batch|never)"
            )),
        }
    }
}

/// Configuration of an LH\*RS file.
#[derive(Debug, Clone)]
pub struct Config {
    /// Bucket-group size `m`: data buckets per group (the paper uses 4–128).
    pub group_size: usize,
    /// Initial availability level `k`: parity buckets per group (`k ≥ 1`).
    pub initial_k: usize,
    /// Data-bucket capacity `b`: records per bucket above which the bucket
    /// reports an overflow to the coordinator.
    pub bucket_capacity: usize,
    /// Maximum record payload length in bytes. Payloads are stored in
    /// fixed-size coding cells of `record_len + 4` bytes (4-byte length
    /// prefix), which is what the parity arithmetic runs over.
    pub record_len: usize,
    /// Scalable-availability thresholds: when the data-bucket count `M`
    /// first exceeds `thresholds[t]`, the file availability level becomes
    /// `initial_k + t + 1`. Empty = fixed `k` forever.
    pub scale_thresholds: Vec<u64>,
    /// How lagging groups catch up after a `k` increase.
    pub upgrade_mode: UpgradeMode,
    /// Whether parity buckets acknowledge Δ-commits (2-messages-per-parity
    /// reliable mode). The paper's base cost model is unacknowledged
    /// (1 + k messages per insert), the default here.
    pub ack_parity: bool,
    /// Whether data buckets acknowledge inserts/updates/deletes to the
    /// client. Required for client-side failure detection of blind writes;
    /// adds one message per operation. Lookups always get replies.
    pub ack_writes: bool,
    /// Galois field for the parity arithmetic: GF(2^8) (default, compact
    /// tables, `m + k ≤ 256`) or GF(2^16) (huge groups, two-byte symbols —
    /// `record_len` must be even so coding cells symbol-align).
    pub field: GfField,
    /// Scan termination protocol.
    pub scan_termination: ScanTermination,
    /// Client request timeout (µs) before reporting a suspected bucket
    /// failure to the coordinator.
    pub client_timeout_us: u64,
    /// Retransmissions a client attempts per operation (with exponential
    /// backoff, doubling from `client_timeout_us`) before escalating to the
    /// coordinator. Rides out message loss without involving the
    /// coordinator; 0 restores the escalate-immediately behaviour.
    pub client_retries: u32,
    /// Ceiling (µs) on the client's per-retry backoff delay.
    pub retry_backoff_cap_us: u64,
    /// Interval (µs) at which a data bucket retransmits unacknowledged
    /// Δ-commits to parity buckets. Only used when `ack_parity` is on;
    /// nothing is retransmitted (or even tracked) in the paper's
    /// fire-and-forget base mode.
    pub delta_retransmit_us: u64,
    /// Consecutive no-progress retransmission rounds before a data bucket
    /// gives up on a parity bucket (recovery will rebuild it).
    pub delta_retry_limit: u32,
    /// Coordinator probe timeout (µs) before declaring a suspect dead.
    pub probe_timeout_us: u64,
    /// Interval (µs) at which the coordinator retransmits unanswered
    /// recovery traffic (shard transfers, installs) and structural orders
    /// (splits, merges).
    pub coord_retransmit_us: u64,
    /// Retransmission rounds the coordinator attempts (per probe, shard
    /// transfer, install, split, or merge) before giving up.
    pub coord_retries: u32,
    /// Data-bucket replay-cache capacity: how many recent client-op results
    /// each bucket remembers for duplicate suppression. FIFO-evicted beyond
    /// this bound; must be ≥ 1. Size it above `clients × in-flight ops` so
    /// a retried write still finds its first execution's result.
    pub replay_cache_cap: usize,
    /// Pipelined-client in-flight window: how many operations a batch
    /// driver (`KvClient::run_batch` over the multiplexed network client)
    /// keeps outstanding at once. 1 restores strict one-op-at-a-time
    /// behaviour; must be ≥ 1. Keep `replay_cache_cap` above
    /// `clients × client_window` so a retried write still finds its first
    /// execution's result.
    pub client_window: usize,
    /// Snapshot interval for durable buckets: after this many write-ahead
    /// log appends since the last snapshot, a bucket writes a fresh
    /// snapshot and truncates its log. 0 disables periodic snapshots
    /// (structural events — splits, merges, installs — still snapshot).
    /// Ignored when no [`crate::storage::BucketStore`] is attached.
    pub wal_snapshot_every: u64,
    /// Per-column Δ-commit history retained by each parity bucket, used to
    /// serve Δ-suffix catch-up to restarting data buckets. A restart whose
    /// gap exceeds this cap falls back to a full RS rebuild.
    pub delta_history_cap: usize,
    /// When the durable store fsyncs its write-ahead log.
    pub wal_fsync: FsyncPolicy,
    /// Network latency model for the simulated multicomputer.
    pub latency: LatencyModel,
    /// Total simulated server pool (data + parity + spares). The file
    /// cannot outgrow the pool; size it to the experiment.
    pub node_pool: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            group_size: 4,
            initial_k: 1,
            bucket_capacity: 32,
            record_len: 64,
            scale_thresholds: Vec::new(),
            upgrade_mode: UpgradeMode::Eager,
            ack_parity: false,
            ack_writes: false,
            field: GfField::default(),
            scan_termination: ScanTermination::Deterministic,
            client_timeout_us: 10_000,
            client_retries: 3,
            retry_backoff_cap_us: 160_000,
            delta_retransmit_us: 8_000,
            delta_retry_limit: 20,
            probe_timeout_us: 5_000,
            coord_retransmit_us: 8_000,
            coord_retries: 10,
            replay_cache_cap: 4096,
            client_window: 64,
            wal_snapshot_every: 1024,
            delta_history_cap: 4096,
            wal_fsync: FsyncPolicy::default(),
            latency: LatencyModel::default(),
            node_pool: 512,
        }
    }
}

impl Config {
    /// Start building a validated configuration.
    pub fn builder() -> ConfigBuilder {
        ConfigBuilder::new()
    }

    /// Validate parameter sanity; called by [`crate::LhrsFile::new`].
    pub(crate) fn validate(&self) -> Result<(), crate::Error> {
        if self.group_size == 0
            || self.initial_k == 0
            || self.bucket_capacity == 0
            || self.record_len == 0
        {
            return Err(crate::Error::InvalidConfig(
                "group_size, initial_k, bucket_capacity, record_len must all be ≥ 1".into(),
            ));
        }
        let max_k = self.initial_k + self.scale_thresholds.len();
        if self.group_size + max_k > self.field.max_shards() {
            return Err(crate::Error::InvalidConfig(format!(
                "m + k_max = {} exceeds the {:?} limit of {}",
                self.group_size + max_k,
                self.field,
                self.field.max_shards()
            )));
        }
        if !self.cell_len().is_multiple_of(self.field.symbol_bytes()) {
            return Err(crate::Error::InvalidConfig(format!(
                "coding cell of {} bytes is not {:?}-symbol aligned: use an even record_len",
                self.cell_len(),
                self.field
            )));
        }
        if self.delta_retransmit_us == 0 || self.coord_retransmit_us == 0 {
            return Err(crate::Error::InvalidConfig(
                "delta_retransmit_us and coord_retransmit_us must be ≥ 1 µs".into(),
            ));
        }
        if self.replay_cache_cap == 0 {
            return Err(crate::Error::InvalidConfig(
                "replay_cache_cap must be ≥ 1".into(),
            ));
        }
        if self.client_window == 0 {
            return Err(crate::Error::InvalidConfig(
                "client_window must be ≥ 1".into(),
            ));
        }
        if self.delta_history_cap == 0 {
            return Err(crate::Error::InvalidConfig(
                "delta_history_cap must be ≥ 1".into(),
            ));
        }
        if self.retry_backoff_cap_us < self.client_timeout_us {
            return Err(crate::Error::InvalidConfig(
                "retry_backoff_cap_us must be at least client_timeout_us".into(),
            ));
        }
        if !self.scale_thresholds.windows(2).all(|w| w[0] < w[1]) {
            return Err(crate::Error::InvalidConfig(
                "scale_thresholds must be strictly increasing".into(),
            ));
        }
        if self.node_pool < 2 + self.group_size + self.initial_k {
            return Err(crate::Error::InvalidConfig(
                "node_pool too small for even the initial file".into(),
            ));
        }
        Ok(())
    }

    /// The fixed coding-cell length: payload length prefix plus padded
    /// payload.
    pub(crate) fn cell_len(&self) -> usize {
        4 + self.record_len
    }
}

/// Upper bound on [`Config::record_len`] accepted by the builder: a whole
/// bucket's shard transfer of maximal records must still fit a network
/// frame with room to spare.
pub const MAX_RECORD_LEN: usize = 1 << 20;

/// Why [`ConfigBuilder::build`] rejected a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `group_size` below 2: a bucket group needs at least two data
    /// columns for the record-group coding to be meaningful.
    GroupSize(usize),
    /// `initial_k` is 0: the paper's scheme requires at least one parity
    /// bucket per group.
    InitialK,
    /// `record_len` outside `1..=`[`MAX_RECORD_LEN`].
    RecordLen(usize),
    /// `scale_thresholds` is not strictly increasing.
    Thresholds,
    /// Cross-field validation failed (field shard limit, symbol alignment,
    /// pool sizing, timer sanity, ...).
    Invalid(String),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::GroupSize(got) => {
                write!(f, "group_size must be ≥ 2 (got {got})")
            }
            ConfigError::InitialK => write!(f, "initial_k must be ≥ 1"),
            ConfigError::RecordLen(got) => {
                write!(f, "record_len must be in 1..={MAX_RECORD_LEN} (got {got})")
            }
            ConfigError::Thresholds => {
                write!(f, "scale_thresholds must be strictly increasing")
            }
            ConfigError::Invalid(why) => write!(f, "{why}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Fluent, validating constructor for [`Config`].
///
/// Starts from [`Config::default`], applies the setters, and checks the
/// result once in [`ConfigBuilder::build`] — so an invalid combination is
/// an explicit [`ConfigError`] at construction time, never a panic (or a
/// silently ignored knob) later.
///
/// ```
/// use lhrs_core::{Config, ConfigError};
///
/// let cfg = Config::builder()
///     .group_size(4)
///     .initial_k(2)
///     .bucket_capacity(16)
///     .scale_thresholds([8, 64])
///     .build()
///     .unwrap();
/// assert_eq!(cfg.initial_k, 2);
///
/// assert!(matches!(
///     Config::builder().group_size(1).build(),
///     Err(ConfigError::GroupSize(1))
/// ));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ConfigBuilder {
    cfg: Config,
}

impl ConfigBuilder {
    /// A builder seeded with [`Config::default`].
    pub fn new() -> ConfigBuilder {
        ConfigBuilder {
            cfg: Config::default(),
        }
    }

    /// Bucket-group size `m` (see [`Config::group_size`]).
    pub fn group_size(mut self, m: usize) -> Self {
        self.cfg.group_size = m;
        self
    }

    /// Initial availability level `k` (see [`Config::initial_k`]).
    pub fn initial_k(mut self, k: usize) -> Self {
        self.cfg.initial_k = k;
        self
    }

    /// Data-bucket capacity `b` (see [`Config::bucket_capacity`]).
    pub fn bucket_capacity(mut self, b: usize) -> Self {
        self.cfg.bucket_capacity = b;
        self
    }

    /// Maximum record payload length (see [`Config::record_len`]).
    pub fn record_len(mut self, len: usize) -> Self {
        self.cfg.record_len = len;
        self
    }

    /// Scalable-availability thresholds (see [`Config::scale_thresholds`]).
    pub fn scale_thresholds(mut self, t: impl Into<Vec<u64>>) -> Self {
        self.cfg.scale_thresholds = t.into();
        self
    }

    /// How lagging groups catch up after a `k` increase.
    pub fn upgrade_mode(mut self, mode: UpgradeMode) -> Self {
        self.cfg.upgrade_mode = mode;
        self
    }

    /// Whether parity buckets acknowledge Δ-commits.
    pub fn ack_parity(mut self, on: bool) -> Self {
        self.cfg.ack_parity = on;
        self
    }

    /// Whether data buckets acknowledge writes to the client.
    pub fn ack_writes(mut self, on: bool) -> Self {
        self.cfg.ack_writes = on;
        self
    }

    /// Galois field for the parity arithmetic.
    pub fn field(mut self, field: GfField) -> Self {
        self.cfg.field = field;
        self
    }

    /// Scan termination protocol.
    pub fn scan_termination(mut self, t: ScanTermination) -> Self {
        self.cfg.scan_termination = t;
        self
    }

    /// Client request timeout in µs.
    pub fn client_timeout_us(mut self, us: u64) -> Self {
        self.cfg.client_timeout_us = us;
        self
    }

    /// Client retransmissions per operation before escalating.
    pub fn client_retries(mut self, n: u32) -> Self {
        self.cfg.client_retries = n;
        self
    }

    /// Ceiling (µs) on the client's per-retry backoff delay.
    pub fn retry_backoff_cap_us(mut self, us: u64) -> Self {
        self.cfg.retry_backoff_cap_us = us;
        self
    }

    /// Δ-commit retransmission interval in µs (reliable parity mode).
    pub fn delta_retransmit_us(mut self, us: u64) -> Self {
        self.cfg.delta_retransmit_us = us;
        self
    }

    /// No-progress Δ retransmission rounds before giving up on a parity
    /// bucket.
    pub fn delta_retry_limit(mut self, n: u32) -> Self {
        self.cfg.delta_retry_limit = n;
        self
    }

    /// Coordinator probe timeout in µs.
    pub fn probe_timeout_us(mut self, us: u64) -> Self {
        self.cfg.probe_timeout_us = us;
        self
    }

    /// Coordinator retransmission interval in µs.
    pub fn coord_retransmit_us(mut self, us: u64) -> Self {
        self.cfg.coord_retransmit_us = us;
        self
    }

    /// Coordinator retransmission rounds before giving up.
    pub fn coord_retries(mut self, n: u32) -> Self {
        self.cfg.coord_retries = n;
        self
    }

    /// Data-bucket replay-cache capacity.
    pub fn replay_cache_cap(mut self, n: usize) -> Self {
        self.cfg.replay_cache_cap = n;
        self
    }

    /// Pipelined-client in-flight window (1 = one op at a time).
    pub fn client_window(mut self, n: usize) -> Self {
        self.cfg.client_window = n;
        self
    }

    /// Snapshot interval (appends) for durable buckets; 0 disables.
    pub fn wal_snapshot_every(mut self, n: u64) -> Self {
        self.cfg.wal_snapshot_every = n;
        self
    }

    /// Per-column Δ-commit history cap at parity buckets.
    pub fn delta_history_cap(mut self, n: usize) -> Self {
        self.cfg.delta_history_cap = n;
        self
    }

    /// Fsync policy for the durable store's write-ahead log.
    pub fn wal_fsync(mut self, policy: FsyncPolicy) -> Self {
        self.cfg.wal_fsync = policy;
        self
    }

    /// Network latency model for the simulated multicomputer.
    pub fn latency(mut self, model: LatencyModel) -> Self {
        self.cfg.latency = model;
        self
    }

    /// Total simulated server pool.
    pub fn node_pool(mut self, n: usize) -> Self {
        self.cfg.node_pool = n;
        self
    }

    /// Validate and produce the configuration.
    ///
    /// # Errors
    /// A [`ConfigError`] naming the first violated constraint.
    pub fn build(self) -> Result<Config, ConfigError> {
        let cfg = self.cfg;
        if cfg.group_size < 2 {
            return Err(ConfigError::GroupSize(cfg.group_size));
        }
        if cfg.initial_k == 0 {
            return Err(ConfigError::InitialK);
        }
        if cfg.record_len == 0 || cfg.record_len > MAX_RECORD_LEN {
            return Err(ConfigError::RecordLen(cfg.record_len));
        }
        if !cfg.scale_thresholds.windows(2).all(|w| w[0] < w[1]) {
            return Err(ConfigError::Thresholds);
        }
        match cfg.validate() {
            Ok(()) => Ok(cfg),
            Err(crate::Error::InvalidConfig(why)) => Err(ConfigError::Invalid(why)),
            Err(other) => Err(ConfigError::Invalid(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(Config::default().validate().is_ok());
    }

    #[test]
    fn zero_parameters_rejected() {
        for f in [
            |c: &mut Config| c.group_size = 0,
            |c: &mut Config| c.initial_k = 0,
            |c: &mut Config| c.bucket_capacity = 0,
            |c: &mut Config| c.record_len = 0,
        ] {
            let mut c = Config::default();
            f(&mut c);
            assert!(c.validate().is_err());
        }
    }

    #[test]
    fn field_shard_limits_enforced() {
        let c = Config {
            group_size: 250,
            initial_k: 10,
            ..Config::default()
        };
        assert!(c.validate().is_err(), "m + k > 256 invalid under GF(2^8)");
        let c = Config {
            group_size: 250,
            initial_k: 10,
            field: GfField::Gf16,
            node_pool: 4096,
            ..Config::default()
        };
        assert!(c.validate().is_ok(), "GF(2^16) lifts the limit");
        let c = Config {
            field: GfField::Gf16,
            record_len: 33, // odd ⇒ odd cell: misaligned for 2-byte symbols
            ..Config::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn thresholds_must_increase() {
        let c = Config {
            scale_thresholds: vec![16, 16],
            ..Config::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn builder_defaults_build() {
        let cfg = Config::builder().build().unwrap();
        assert_eq!(cfg.group_size, Config::default().group_size);
    }

    #[test]
    fn builder_rejects_each_constraint() {
        assert_eq!(
            Config::builder().group_size(1).build().err(),
            Some(ConfigError::GroupSize(1))
        );
        assert_eq!(
            Config::builder().initial_k(0).build().err(),
            Some(ConfigError::InitialK)
        );
        assert_eq!(
            Config::builder().record_len(0).build().err(),
            Some(ConfigError::RecordLen(0))
        );
        assert_eq!(
            Config::builder()
                .record_len(MAX_RECORD_LEN + 1)
                .build()
                .err(),
            Some(ConfigError::RecordLen(MAX_RECORD_LEN + 1))
        );
        assert_eq!(
            Config::builder().scale_thresholds([8, 8]).build().err(),
            Some(ConfigError::Thresholds)
        );
        // Cross-field constraints still flow through `Config::validate`.
        assert!(matches!(
            Config::builder().group_size(250).initial_k(10).build(),
            Err(ConfigError::Invalid(_))
        ));
    }

    #[test]
    fn builder_applies_every_setter() {
        let cfg = Config::builder()
            .group_size(8)
            .initial_k(2)
            .bucket_capacity(64)
            .record_len(128)
            .scale_thresholds([32])
            .upgrade_mode(UpgradeMode::Lazy)
            .ack_parity(true)
            .ack_writes(true)
            .field(GfField::Gf16)
            .scan_termination(ScanTermination::Probabilistic { silence_us: 500 })
            .client_timeout_us(20_000)
            .client_retries(5)
            .retry_backoff_cap_us(320_000)
            .delta_retransmit_us(9_000)
            .delta_retry_limit(7)
            .probe_timeout_us(6_000)
            .coord_retransmit_us(9_000)
            .coord_retries(4)
            .replay_cache_cap(128)
            .client_window(16)
            .wal_snapshot_every(256)
            .delta_history_cap(512)
            .wal_fsync(FsyncPolicy::Never)
            .latency(LatencyModel::default())
            .node_pool(1024)
            .build()
            .unwrap();
        assert_eq!(cfg.group_size, 8);
        assert_eq!(cfg.initial_k, 2);
        assert_eq!(cfg.bucket_capacity, 64);
        assert_eq!(cfg.record_len, 128);
        assert_eq!(cfg.scale_thresholds, vec![32]);
        assert_eq!(cfg.upgrade_mode, UpgradeMode::Lazy);
        assert!(cfg.ack_parity && cfg.ack_writes);
        assert_eq!(cfg.field, GfField::Gf16);
        assert_eq!(cfg.client_retries, 5);
        assert_eq!(cfg.client_window, 16);
        assert_eq!(cfg.wal_snapshot_every, 256);
        assert_eq!(cfg.delta_history_cap, 512);
        assert_eq!(cfg.wal_fsync, FsyncPolicy::Never);
        assert_eq!(cfg.node_pool, 1024);
    }

    #[test]
    fn fsync_policy_round_trips_through_strings() {
        for p in [FsyncPolicy::Always, FsyncPolicy::Batch, FsyncPolicy::Never] {
            assert_eq!(p.to_string().parse::<FsyncPolicy>(), Ok(p));
        }
        assert!("sometimes".parse::<FsyncPolicy>().is_err());
    }

    #[test]
    fn zero_delta_history_cap_rejected() {
        let c = Config {
            delta_history_cap: 0,
            ..Config::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn zero_client_window_rejected() {
        let c = Config {
            client_window: 0,
            ..Config::default()
        };
        assert!(c.validate().is_err());
    }
}
