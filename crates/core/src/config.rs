//! File-level configuration.

use lhrs_sim::LatencyModel;

use crate::code::GfField;

/// How existing bucket groups acquire additional parity buckets when the
/// scalable-availability rule raises the file's availability level `k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpgradeMode {
    /// Upgrade every existing group immediately when `k` increases.
    /// Predictable availability, bursty messaging.
    Eager,
    /// Upgrade a group the next time a split touches it (source or target
    /// in the group). Spreads the cost over normal growth; groups lag until
    /// touched.
    Lazy,
}

/// How scan completion is detected (§2.1 of the LH\* design).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanTermination {
    /// Every reached bucket replies (with its number and level even when it
    /// has no hits); the client verifies it heard from *all* buckets of the
    /// file. Exact, costs ~2 messages per bucket.
    Deterministic,
    /// Only buckets with matching records reply; the client finishes after
    /// `silence_us` µs without a new reply. Costs M + hits messages but can
    /// in principle terminate early (hence "probabilistic").
    Probabilistic {
        /// Silence window that ends the scan.
        silence_us: u64,
    },
}

/// Configuration of an LH\*RS file.
#[derive(Debug, Clone)]
pub struct Config {
    /// Bucket-group size `m`: data buckets per group (the paper uses 4–128).
    pub group_size: usize,
    /// Initial availability level `k`: parity buckets per group (`k ≥ 1`).
    pub initial_k: usize,
    /// Data-bucket capacity `b`: records per bucket above which the bucket
    /// reports an overflow to the coordinator.
    pub bucket_capacity: usize,
    /// Maximum record payload length in bytes. Payloads are stored in
    /// fixed-size coding cells of `record_len + 4` bytes (4-byte length
    /// prefix), which is what the parity arithmetic runs over.
    pub record_len: usize,
    /// Scalable-availability thresholds: when the data-bucket count `M`
    /// first exceeds `thresholds[t]`, the file availability level becomes
    /// `initial_k + t + 1`. Empty = fixed `k` forever.
    pub scale_thresholds: Vec<u64>,
    /// How lagging groups catch up after a `k` increase.
    pub upgrade_mode: UpgradeMode,
    /// Whether parity buckets acknowledge Δ-commits (2-messages-per-parity
    /// reliable mode). The paper's base cost model is unacknowledged
    /// (1 + k messages per insert), the default here.
    pub ack_parity: bool,
    /// Whether data buckets acknowledge inserts/updates/deletes to the
    /// client. Required for client-side failure detection of blind writes;
    /// adds one message per operation. Lookups always get replies.
    pub ack_writes: bool,
    /// Galois field for the parity arithmetic: GF(2^8) (default, compact
    /// tables, `m + k ≤ 256`) or GF(2^16) (huge groups, two-byte symbols —
    /// `record_len` must be even so coding cells symbol-align).
    pub field: GfField,
    /// Scan termination protocol.
    pub scan_termination: ScanTermination,
    /// Client request timeout (µs) before reporting a suspected bucket
    /// failure to the coordinator.
    pub client_timeout_us: u64,
    /// Retransmissions a client attempts per operation (with exponential
    /// backoff, doubling from `client_timeout_us`) before escalating to the
    /// coordinator. Rides out message loss without involving the
    /// coordinator; 0 restores the escalate-immediately behaviour.
    pub client_retries: u32,
    /// Ceiling (µs) on the client's per-retry backoff delay.
    pub retry_backoff_cap_us: u64,
    /// Interval (µs) at which a data bucket retransmits unacknowledged
    /// Δ-commits to parity buckets. Only used when `ack_parity` is on;
    /// nothing is retransmitted (or even tracked) in the paper's
    /// fire-and-forget base mode.
    pub delta_retransmit_us: u64,
    /// Consecutive no-progress retransmission rounds before a data bucket
    /// gives up on a parity bucket (recovery will rebuild it).
    pub delta_retry_limit: u32,
    /// Coordinator probe timeout (µs) before declaring a suspect dead.
    pub probe_timeout_us: u64,
    /// Interval (µs) at which the coordinator retransmits unanswered
    /// recovery traffic (shard transfers, installs) and structural orders
    /// (splits, merges).
    pub coord_retransmit_us: u64,
    /// Retransmission rounds the coordinator attempts (per probe, shard
    /// transfer, install, split, or merge) before giving up.
    pub coord_retries: u32,
    /// Data-bucket replay-cache capacity: how many recent client-op results
    /// each bucket remembers for duplicate suppression. FIFO-evicted beyond
    /// this bound; must be ≥ 1. Size it above `clients × in-flight ops` so
    /// a retried write still finds its first execution's result.
    pub replay_cache_cap: usize,
    /// Network latency model for the simulated multicomputer.
    pub latency: LatencyModel,
    /// Total simulated server pool (data + parity + spares). The file
    /// cannot outgrow the pool; size it to the experiment.
    pub node_pool: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            group_size: 4,
            initial_k: 1,
            bucket_capacity: 32,
            record_len: 64,
            scale_thresholds: Vec::new(),
            upgrade_mode: UpgradeMode::Eager,
            ack_parity: false,
            ack_writes: false,
            field: GfField::default(),
            scan_termination: ScanTermination::Deterministic,
            client_timeout_us: 10_000,
            client_retries: 3,
            retry_backoff_cap_us: 160_000,
            delta_retransmit_us: 8_000,
            delta_retry_limit: 20,
            probe_timeout_us: 5_000,
            coord_retransmit_us: 8_000,
            coord_retries: 10,
            replay_cache_cap: 4096,
            latency: LatencyModel::default(),
            node_pool: 512,
        }
    }
}

impl Config {
    /// Validate parameter sanity; called by [`crate::LhrsFile::new`].
    pub(crate) fn validate(&self) -> Result<(), crate::Error> {
        if self.group_size == 0
            || self.initial_k == 0
            || self.bucket_capacity == 0
            || self.record_len == 0
        {
            return Err(crate::Error::InvalidConfig(
                "group_size, initial_k, bucket_capacity, record_len must all be ≥ 1".into(),
            ));
        }
        let max_k = self.initial_k + self.scale_thresholds.len();
        if self.group_size + max_k > self.field.max_shards() {
            return Err(crate::Error::InvalidConfig(format!(
                "m + k_max = {} exceeds the {:?} limit of {}",
                self.group_size + max_k,
                self.field,
                self.field.max_shards()
            )));
        }
        if !self.cell_len().is_multiple_of(self.field.symbol_bytes()) {
            return Err(crate::Error::InvalidConfig(format!(
                "coding cell of {} bytes is not {:?}-symbol aligned: use an even record_len",
                self.cell_len(),
                self.field
            )));
        }
        if self.delta_retransmit_us == 0 || self.coord_retransmit_us == 0 {
            return Err(crate::Error::InvalidConfig(
                "delta_retransmit_us and coord_retransmit_us must be ≥ 1 µs".into(),
            ));
        }
        if self.replay_cache_cap == 0 {
            return Err(crate::Error::InvalidConfig(
                "replay_cache_cap must be ≥ 1".into(),
            ));
        }
        if self.retry_backoff_cap_us < self.client_timeout_us {
            return Err(crate::Error::InvalidConfig(
                "retry_backoff_cap_us must be at least client_timeout_us".into(),
            ));
        }
        if !self.scale_thresholds.windows(2).all(|w| w[0] < w[1]) {
            return Err(crate::Error::InvalidConfig(
                "scale_thresholds must be strictly increasing".into(),
            ));
        }
        if self.node_pool < 2 + self.group_size + self.initial_k {
            return Err(crate::Error::InvalidConfig(
                "node_pool too small for even the initial file".into(),
            ));
        }
        Ok(())
    }

    /// The fixed coding-cell length: payload length prefix plus padded
    /// payload.
    pub(crate) fn cell_len(&self) -> usize {
        4 + self.record_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(Config::default().validate().is_ok());
    }

    #[test]
    fn zero_parameters_rejected() {
        for f in [
            |c: &mut Config| c.group_size = 0,
            |c: &mut Config| c.initial_k = 0,
            |c: &mut Config| c.bucket_capacity = 0,
            |c: &mut Config| c.record_len = 0,
        ] {
            let mut c = Config::default();
            f(&mut c);
            assert!(c.validate().is_err());
        }
    }

    #[test]
    fn field_shard_limits_enforced() {
        let c = Config {
            group_size: 250,
            initial_k: 10,
            ..Config::default()
        };
        assert!(c.validate().is_err(), "m + k > 256 invalid under GF(2^8)");
        let c = Config {
            group_size: 250,
            initial_k: 10,
            field: GfField::Gf16,
            node_pool: 4096,
            ..Config::default()
        };
        assert!(c.validate().is_ok(), "GF(2^16) lifts the limit");
        let c = Config {
            field: GfField::Gf16,
            record_len: 33, // odd ⇒ odd cell: misaligned for 2-byte symbols
            ..Config::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn thresholds_must_increase() {
        let c = Config {
            scale_thresholds: vec![16, 16],
            ..Config::default()
        };
        assert!(c.validate().is_err());
    }
}
